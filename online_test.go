package oblivious_test

import (
	"context"
	"math/rand"
	"testing"

	oblivious "repro"
	"repro/internal/instance"
)

func onlineTestInstance(t *testing.T, n int) *oblivious.Instance {
	t.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(1)), n, 100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestOnlineSolverRegistered(t *testing.T) {
	found := false
	for _, name := range oblivious.Solvers() {
		if name == "online" {
			found = true
		}
	}
	if !found {
		t.Fatalf("online solver missing from registry: %v", oblivious.Solvers())
	}
}

// TestOnlineSolverAllPolicies solves one instance through every admission
// × repair combination; each run must produce a complete, valid schedule
// (WithValidation re-checks through the uncached oracle) and fill the
// online counters.
func TestOnlineSolverAllPolicies(t *testing.T) {
	m := oblivious.DefaultModel()
	in := onlineTestInstance(t, 48)
	for _, adm := range []string{"first-fit", "best-fit", "power-fit"} {
		for _, rep := range []string{"lazy", "threshold", "eager"} {
			res, err := oblivious.Lookup("online").Solve(context.Background(), m, in,
				oblivious.WithAdmission(adm),
				oblivious.WithRepair(rep),
				oblivious.WithSeed(7),
				oblivious.WithValidation(true))
			if err != nil {
				t.Fatalf("%s/%s: %v", adm, rep, err)
			}
			if !res.Schedule.Complete() {
				t.Fatalf("%s/%s: incomplete schedule", adm, rep)
			}
			st := res.Stats.Online
			if st == nil {
				t.Fatalf("%s/%s: Stats.Online not filled", adm, rep)
			}
			// The replay arrives all n, then churns a third twice.
			wantArrivals := in.N() + 2*(in.N()/3)
			if st.Arrivals != wantArrivals || st.Departures != 2*(in.N()/3) {
				t.Fatalf("%s/%s: %d arrivals / %d departures, want %d / %d",
					adm, rep, st.Arrivals, st.Departures, wantArrivals, 2*(in.N()/3))
			}
			if st.PeakSlots < res.Stats.Colors {
				t.Fatalf("%s/%s: peak %d below final colors %d", adm, rep, st.PeakSlots, res.Stats.Colors)
			}
			if st.RowOps == 0 {
				t.Fatalf("%s/%s: zero row operations recorded", adm, rep)
			}
		}
	}
}

// TestOnlineSolverDirected covers the directed variant under any
// assignment — the online engine, like greedy, is variant- and
// assignment-agnostic.
func TestOnlineSolverDirected(t *testing.T) {
	m := oblivious.DefaultModel()
	in := onlineTestInstance(t, 32)
	res, err := oblivious.Lookup("online").Solve(context.Background(), m, in,
		oblivious.WithVariant(oblivious.Directed),
		oblivious.WithAssignment(oblivious.Linear()),
		oblivious.WithValidation(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Colors <= 0 {
		t.Fatal("no colors")
	}
}

func TestOnlineSolverReproducible(t *testing.T) {
	m := oblivious.DefaultModel()
	in := onlineTestInstance(t, 40)
	var colors [2][]int
	for k := range colors {
		res, err := oblivious.Lookup("online").Solve(context.Background(), m, in, oblivious.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		colors[k] = res.Schedule.Colors
	}
	for i := range colors[0] {
		if colors[0][i] != colors[1][i] {
			t.Fatalf("same seed, different schedules at request %d", i)
		}
	}
}

func TestOnlineSolverBadPolicies(t *testing.T) {
	m := oblivious.DefaultModel()
	in := onlineTestInstance(t, 8)
	if _, err := oblivious.Lookup("online").Solve(context.Background(), m, in,
		oblivious.WithAdmission("worst-fit")); err == nil {
		t.Error("unknown admission policy must fail")
	}
	if _, err := oblivious.Lookup("online").Solve(context.Background(), m, in,
		oblivious.WithRepair("optimistic")); err == nil {
		t.Error("unknown repair strategy must fail")
	}
}

func TestOnlineSolverCancellation(t *testing.T) {
	m := oblivious.DefaultModel()
	in := onlineTestInstance(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := oblivious.Lookup("online").Solve(ctx, m, in); err == nil {
		t.Error("canceled context must abort the replay")
	}
}
