// Seed-determinism suite for the parallelized pipeline: the PR that
// fanned stage 2/3/5 across a bounded worker pool promises that
// schedules stay bitwise-reproducible — same seed, same instance, same
// engine ⇒ the same schedule regardless of GOMAXPROCS. This suite pins
// that contract for the pipeline solver under both affectance engines.
package oblivious_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	oblivious "repro"
	"repro/internal/instance"
)

// TestPipelineSeedDeterminismAcrossGOMAXPROCS solves the same instance
// with the same seed at GOMAXPROCS 1 and 4 for pipeline × {dense,
// sparse} and requires bitwise-identical schedules: identical color
// vectors and identical power assignments.
func TestPipelineSeedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	m := oblivious.DefaultModel()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(41)), 96, 150, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]oblivious.AffectanceMode{
		"dense":  oblivious.AffectDense,
		"sparse": oblivious.AffectSparse,
	}
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			solve := func(workers int) *oblivious.Schedule {
				old := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(old)
				res, err := oblivious.Lookup("pipeline").Solve(context.Background(), m, in,
					oblivious.WithSeed(7), oblivious.WithAffectanceMode(mode))
				if err != nil {
					t.Fatal(err)
				}
				return res.Schedule
			}
			a, b := solve(1), solve(4)
			for i := range a.Colors {
				if a.Colors[i] != b.Colors[i] {
					t.Fatalf("Colors[%d]: GOMAXPROCS=1 gives %d, GOMAXPROCS=4 gives %d",
						i, a.Colors[i], b.Colors[i])
				}
				if a.Powers[i] != b.Powers[i] {
					t.Fatalf("Powers[%d] differs across GOMAXPROCS", i)
				}
			}
		})
	}
}
