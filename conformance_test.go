// Cross-solver conformance: every registry solver, run under every
// affectance engine and every oblivious assignment it supports, over a
// shared corpus of instance shapes, must produce a schedule the dense
// exact oracle accepts — and the engines must agree with each other up to
// the sparse ε-budget's documented cost in schedule length. This suite is
// what pins "the system scales" to "the system stays correct": a solver
// whose sparse path accepted an infeasible set, or whose auto mode drifted
// from the dense result below the threshold, fails here.
package oblivious_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	oblivious "repro"
	"repro/internal/instance"
)

// conformanceCorpus returns the shared instance shapes: uniform spread
// (the benign regime), clustered (dense local contention), and a line
// chain (1-D metric, exercising the grid's line support).
func conformanceCorpus(t *testing.T) map[string]*oblivious.Instance {
	t.Helper()
	uniform, err := instance.UniformRandom(rand.New(rand.NewSource(41)), 96, 150, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := instance.Clustered(rand.New(rand.NewSource(42)), 90, 5, 12, 240, 1)
	if err != nil {
		t.Fatal(err)
	}
	line, err := instance.LineChain(64, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*oblivious.Instance{
		"uniform": uniform, "clustered": clustered, "line": line,
	}
}

// sqrtOnly names the solvers defined only for the square root assignment
// (Theorems 2 and 15); any other -power must be rejected, not ignored.
func sqrtOnly(solver string) bool { return solver == "lp" || solver == "pipeline" }

// TestCrossSolverConformance runs every registry solver × {dense, sparse,
// auto} × {uniform, sqrt, linear} over the corpus. Every produced schedule
// must pass the exact dense oracle (oblivious.Validate runs the uncached
// direct computation), auto must agree with dense bitwise below the auto
// threshold, and the sparse color count must stay within the ε-budget's
// slack of the dense one.
func TestCrossSolverConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite skipped in short mode")
	}
	m := oblivious.DefaultModel()
	modes := []oblivious.AffectanceMode{
		oblivious.AffectDense, oblivious.AffectSparse, oblivious.AffectAuto,
	}
	assignments := map[string]oblivious.Assignment{
		"uniform": oblivious.Uniform(1), "sqrt": oblivious.Sqrt(), "linear": oblivious.Linear(),
	}
	for shape, in := range conformanceCorpus(t) {
		for _, solver := range oblivious.Solvers() {
			for powName, a := range assignments {
				if sqrtOnly(solver) && powName != "sqrt" {
					// The guard is behavioral; conformance includes the
					// rejection being uniform across engines.
					for _, mode := range modes {
						if _, err := oblivious.Lookup(solver).Solve(context.Background(), m, in,
							oblivious.WithAssignment(a), oblivious.WithAffectanceMode(mode)); err == nil {
							t.Errorf("%s/%s/%s/%s: non-sqrt assignment accepted", shape, solver, mode, powName)
						}
					}
					continue
				}
				colors := map[oblivious.AffectanceMode]int{}
				for _, mode := range modes {
					res, err := oblivious.Lookup(solver).Solve(context.Background(), m, in,
						oblivious.WithAssignment(a),
						oblivious.WithAffectanceMode(mode),
						oblivious.WithSeed(7))
					if err != nil {
						t.Errorf("%s/%s/%s/%s: %v", shape, solver, mode, powName, err)
						continue
					}
					// The dense exact oracle is the arbiter for every engine.
					if err := oblivious.Validate(m, in, oblivious.Bidirectional, res.Schedule); err != nil {
						t.Errorf("%s/%s/%s/%s: schedule fails the dense oracle: %v", shape, solver, mode, powName, err)
					}
					want := mode
					if mode == oblivious.AffectAuto {
						want = oblivious.AffectDense // corpus sizes sit below the auto threshold
					}
					if res.Stats.Engine != want.String() {
						t.Errorf("%s/%s/%s/%s: Stats.Engine = %q, want %q", shape, solver, mode, powName, res.Stats.Engine, want)
					}
					colors[mode] = res.Stats.Colors
				}
				if len(colors) != len(modes) {
					continue
				}
				// Below the threshold auto IS dense: same engine, same seed,
				// bitwise the same schedule length.
				if colors[oblivious.AffectAuto] != colors[oblivious.AffectDense] {
					t.Errorf("%s/%s/%s: auto %d colors, dense %d — auto must match dense below the threshold",
						shape, solver, powName, colors[oblivious.AffectAuto], colors[oblivious.AffectDense])
				}
				// The conservative margins may cost colors, bounded by the
				// ε-budget slack; a sparse run far off the dense one means a
				// tracker bug, not a loose bound. The band is two-sided:
				// sparse dramatically *under* dense would mean it accepted
				// sets the exact margins reject.
				ds, sp := colors[oblivious.AffectDense], colors[oblivious.AffectSparse]
				if sp > 4*ds+8 || ds > 4*sp+8 {
					t.Errorf("%s/%s/%s: sparse %d colors vs dense %d outside the ε-budget slack",
						shape, solver, powName, sp, ds)
				}
			}
		}
	}
}

// TestConformanceDirectedGreedy extends the suite to the directed variant
// for the one solver that supports it, across all three engines.
func TestConformanceDirectedGreedy(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite skipped in short mode")
	}
	m := oblivious.DefaultModel()
	for shape, in := range conformanceCorpus(t) {
		for _, mode := range []oblivious.AffectanceMode{
			oblivious.AffectDense, oblivious.AffectSparse, oblivious.AffectAuto,
		} {
			res, err := oblivious.Lookup("greedy").Solve(context.Background(), m, in,
				oblivious.WithVariant(oblivious.Directed),
				oblivious.WithAffectanceMode(mode))
			if err != nil {
				t.Errorf("%s/%s: %v", shape, mode, err)
				continue
			}
			if err := oblivious.Validate(m, in, oblivious.Directed, res.Schedule); err != nil {
				t.Errorf("%s/%s: directed schedule fails the dense oracle: %v", shape, mode, err)
			}
		}
	}
}

// TestConformanceUnsupportedMetric pins the failure side: a metric without
// grid coordinates rejects a forced sparse engine with the same loud error
// for every solver, while auto degrades to dense and still solves.
func TestConformanceUnsupportedMetric(t *testing.T) {
	m := oblivious.DefaultModel()
	// Node-disjoint requests: the pipeline's node-loss split rejects
	// shared endpoints, and this suite is about engines, not that guard.
	dm := [][]float64{
		{0, 2, 9, 9},
		{2, 0, 9, 9},
		{9, 9, 0, 3},
		{9, 9, 3, 0},
	}
	in, err := oblivious.NewMatrixInstance(dm, []oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range oblivious.Solvers() {
		_, err := oblivious.Lookup(solver).Solve(context.Background(), m, in,
			oblivious.WithAffectanceMode(oblivious.AffectSparse))
		if err == nil {
			t.Errorf("%s: forced sparse on a matrix metric should fail", solver)
		} else if !strings.Contains(err.Error(), "grid coordinates") {
			t.Errorf("%s: forced-sparse error does not name the metric gap: %v", solver, err)
		}
		if res, err := oblivious.Lookup(solver).Solve(context.Background(), m, in,
			oblivious.WithValidation(true)); err != nil {
			t.Errorf("%s: auto on a matrix metric should fall back to dense: %v", solver, err)
		} else if res.Stats.Engine != "dense" {
			t.Errorf("%s: auto on a matrix metric reports engine %q, want dense", solver, res.Stats.Engine)
		}
	}
}
