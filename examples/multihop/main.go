// Multi-hop cross-layer scenario: routing plus interference scheduling.
//
// The related work the paper builds on (Chafekar et al., Section 1.3)
// studies the multi-hop version of the problem: end-to-end flows must be
// routed and their hops scheduled. This example builds a jittered grid
// network, routes random flows along shortest paths, schedules all hops as
// bidirectional requests under the square root assignment, and reports the
// frame layout and per-flow end-to-end latencies.
//
// Run with:
//
//	go run ./examples/multihop
package main

import (
	"fmt"
	"log"
	"math/rand"

	oblivious "repro"
	"repro/internal/geom"
	"repro/internal/multihop"
)

func main() {
	const (
		gridSide = 7
		flows    = 8
		seed     = 21
	)
	rng := rand.New(rand.NewSource(seed))

	// A jittered grid of relay nodes.
	pts := make([][]float64, 0, gridSide*gridSide)
	for y := 0; y < gridSide; y++ {
		for x := 0; x < gridSide; x++ {
			pts = append(pts, []float64{
				float64(x) + 0.1*rng.Float64(),
				float64(y) + 0.1*rng.Float64(),
			})
		}
	}
	space, err := geom.NewEuclidean(pts)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := multihop.NewNetwork(space, 1.35)
	if err != nil {
		log.Fatal(err)
	}

	fs, err := multihop.RandomFlows(rng, gridSide*gridSide, flows)
	if err != nil {
		log.Fatal(err)
	}
	m := oblivious.DefaultModel()
	in, s, lat, err := nw.ScheduleFlows(m, fs, oblivious.Sqrt(), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := oblivious.Validate(m, in, oblivious.Bidirectional, s); err != nil {
		log.Fatalf("invalid hop schedule: %v", err)
	}

	fmt.Printf("network: %d relays, %d flows, %d scheduled hops\n", gridSide*gridSide, flows, in.N())
	fmt.Printf("frame: %d slots (square root powers)\n\n", s.NumColors())
	fmt.Println("flow   src -> dst   hops   latency (slots)")
	_, routed, err := nw.Route(fs)
	if err != nil {
		log.Fatal(err)
	}
	for i, rf := range routed {
		fmt.Printf("%4d   %3d -> %-3d   %4d   %7d\n",
			i, rf.Flow.Src, rf.Flow.Dst, len(rf.HopRequests), lat[i])
	}
	fmt.Println("\nevery hop class satisfies the exact SINR constraints; latency is")
	fmt.Println("measured under the periodic frame induced by the coloring.")
}
