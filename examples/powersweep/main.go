// Power-exponent sweep: why the square root?
//
// The example sweeps the oblivious assignment p = ℓ^τ from uniform (τ=0)
// through square root (τ=0.5) to super-linear (τ=1.25) on three workloads
// and prints the schedule lengths, reproducing the paper's intuition that
// τ = 0.5 balances the interference between nested requests "in the right
// way" (Section 1.2).
//
// Run with:
//
//	go run ./examples/powersweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	oblivious "repro"
	"repro/internal/instance"
)

func main() {
	const n = 48
	m := oblivious.DefaultModel()
	taus := []float64{0, 0.25, 0.5, 0.75, 1, 1.25}
	rng := rand.New(rand.NewSource(7))

	workloads := []struct {
		name  string
		build func() (*oblivious.Instance, error)
	}{
		{name: "nested chain (u_i=-2^i, v_i=2^i)", build: func() (*oblivious.Instance, error) {
			return instance.NestedExponential(n, 2)
		}},
		{name: "uniform random square", build: func() (*oblivious.Instance, error) {
			return instance.UniformRandom(rng, n, 300, 1, 8)
		}},
		{name: "clustered hotspots", build: func() (*oblivious.Instance, error) {
			return instance.Clustered(rng, n, 4, 15, 300, 1)
		}},
	}

	fmt.Printf("bidirectional schedule length for p = loss^tau (n = %d)\n\n", n)
	fmt.Printf("%-34s", "workload")
	for _, tau := range taus {
		fmt.Printf("  t=%-5.2f", tau)
	}
	fmt.Println()
	for _, w := range workloads {
		in, err := w.build()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s", w.name)
		best := -1
		colors := make([]int, len(taus))
		for i, tau := range taus {
			s, err := oblivious.ScheduleGreedy(m, in, oblivious.Bidirectional, oblivious.Exponent(tau))
			if err != nil {
				log.Fatal(err)
			}
			colors[i] = s.NumColors()
			if best < 0 || colors[i] < colors[best] {
				best = i
			}
		}
		for i, c := range colors {
			marker := " "
			if i == best {
				marker = "*"
			}
			fmt.Printf("  %4d%s  ", c, marker)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = best exponent per workload; the square root wins where nesting occurs)")
}
