// Power-exponent sweep: why the square root?
//
// The example sweeps the oblivious assignment p = ℓ^τ from uniform (τ=0)
// through square root (τ=0.5) to super-linear (τ=1.25) on three workloads
// and prints the schedule lengths, reproducing the paper's intuition that
// τ = 0.5 balances the interference between nested requests "in the right
// way" (Section 1.2). Each sweep column is one SolveAll batch: the three
// workloads are solved concurrently by the registry's greedy solver.
//
// Run with:
//
//	go run ./examples/powersweep
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	oblivious "repro"
	"repro/internal/instance"
)

func main() {
	const n = 48
	m := oblivious.DefaultModel()
	taus := []float64{0, 0.25, 0.5, 0.75, 1, 1.25}
	rng := rand.New(rand.NewSource(7))

	workloads := []struct {
		name  string
		build func() (*oblivious.Instance, error)
	}{
		{name: "nested chain (u_i=-2^i, v_i=2^i)", build: func() (*oblivious.Instance, error) {
			return instance.NestedExponential(n, 2)
		}},
		{name: "uniform random square", build: func() (*oblivious.Instance, error) {
			return instance.UniformRandom(rng, n, 300, 1, 8)
		}},
		{name: "clustered hotspots", build: func() (*oblivious.Instance, error) {
			return instance.Clustered(rng, n, 4, 15, 300, 1)
		}},
	}
	instances := make([]*oblivious.Instance, len(workloads))
	for i, w := range workloads {
		in, err := w.build()
		if err != nil {
			log.Fatal(err)
		}
		instances[i] = in
	}

	// colors[w][t] = schedule length of workload w under exponent τ_t.
	greedy := oblivious.Lookup("greedy")
	ctx := context.Background()
	colors := make([][]int, len(workloads))
	for i := range colors {
		colors[i] = make([]int, len(taus))
	}
	for t, tau := range taus {
		results, err := oblivious.SolveAll(ctx, m, instances, greedy,
			oblivious.WithAssignment(oblivious.Exponent(tau)))
		if err != nil {
			log.Fatal(err)
		}
		for w, res := range results {
			colors[w][t] = res.Stats.Colors
		}
	}

	fmt.Printf("bidirectional schedule length for p = loss^tau (n = %d)\n\n", n)
	fmt.Printf("%-34s", "workload")
	for _, tau := range taus {
		fmt.Printf("  t=%-5.2f", tau)
	}
	fmt.Println()
	for w, wl := range workloads {
		fmt.Printf("%-34s", wl.name)
		best := 0
		for t := range taus {
			if colors[w][t] < colors[w][best] {
				best = t
			}
		}
		for t, c := range colors[w] {
			marker := " "
			if t == best {
				marker = "*"
			}
			fmt.Printf("  %4d%s  ", c, marker)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = best exponent per workload; the square root wins where nesting occurs)")
}
