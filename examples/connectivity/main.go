// Strong-connectivity scheduling: the workload that started the field.
//
// Moscibroda and Wattenhofer (Section 1.3 of the paper) asked how many time
// slots are needed to schedule a set of links that strongly connects n
// arbitrarily placed nodes. This example places random sensor nodes, takes
// the minimum spanning tree as the connecting link set, and schedules its
// edges as full-duplex (bidirectional) channels under the oblivious power
// assignments of the paper, plus a distributed contention protocol that
// needs no coordinator at all — every algorithm resolved by name from the
// solver registry.
//
// Run with:
//
//	go run ./examples/connectivity
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	oblivious "repro"
	"repro/internal/topology"
)

func main() {
	const (
		nodes = 80
		side  = 500.0
		seed  = 12
	)
	rng := rand.New(rand.NewSource(seed))
	in, err := topology.ConnectivityInstance(rng, nodes, side)
	if err != nil {
		log.Fatal(err)
	}
	m := oblivious.DefaultModel()
	degree := topology.MaxDegree(in.Space, in.Reqs)
	ctx := context.Background()

	fmt.Printf("sensor field: %d nodes, MST with %d edges, max degree %d\n\n", nodes, in.N(), degree)
	fmt.Println("slots to schedule the spanning tree (degree is a hard lower bound):")
	greedy := oblivious.Lookup("greedy")
	for _, name := range []string{"uniform", "linear", "sqrt"} {
		a, err := oblivious.ParseAssignment(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := greedy.Solve(ctx, m, in,
			oblivious.WithAssignment(a),
			oblivious.WithValidation(true))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-8s %2d slots\n", a.Name(), res.Stats.Colors)
	}

	// Fully distributed: no coordinator, just local powers and backoff.
	res, err := oblivious.Lookup("distributed").Solve(ctx, m, in,
		oblivious.WithSeed(seed),
		oblivious.WithValidation(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-8s %2d contention slots (%d attempts, %d failures)\n\n",
		"decay", res.Stats.Slots, res.Stats.Attempts, res.Stats.Failures)

	fmt.Println("every schedule above satisfies the exact SINR constraints;")
	fmt.Println("the square root assignment tracks the degree bound without any")
	fmt.Println("global knowledge — the paper's case for oblivious power control.")
}
