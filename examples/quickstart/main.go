// Quickstart: build a small instance, schedule it under the square root
// power assignment, and validate the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	oblivious "repro"
)

func main() {
	// Eight devices in the plane: four communication links. Nodes 2i and
	// 2i+1 are the endpoints of request i.
	points := [][]float64{
		{0, 0}, {3, 0}, // link 0, length 3
		{1, 1}, {1, 5}, // link 1, length 4
		{40, 40}, {42, 40}, // link 2, far away, length 2
		{41, 45}, {41, 41}, // link 3, length 4
	}
	reqs := []oblivious.Request{
		{U: 0, V: 1},
		{U: 2, V: 3},
		{U: 4, V: 5},
		{U: 6, V: 7},
	}
	in, err := oblivious.NewEuclideanInstance(points, reqs)
	if err != nil {
		log.Fatal(err)
	}

	// The physical model: path-loss exponent α = 3, SINR gain β = 1.
	m := oblivious.DefaultModel()

	// Schedule the full-duplex (bidirectional) links under the square root
	// power assignment — the paper's universally good oblivious assignment.
	// The greedy algorithm comes from the solver registry; WithValidation
	// re-checks the schedule against the exact SINR constraints.
	res, err := oblivious.Lookup("greedy").Solve(context.Background(), m, in,
		oblivious.WithAssignment(oblivious.Sqrt()),
		oblivious.WithValidation(true))
	if err != nil {
		log.Fatal(err)
	}
	s := res.Schedule

	fmt.Printf("scheduled %d links in %d time slot(s) (%.2gms)\n",
		in.N(), res.Stats.Colors, float64(res.Stats.Elapsed.Microseconds())/1000)
	for c, class := range s.Classes() {
		fmt.Printf("  slot %d:", c)
		for _, i := range class {
			fmt.Printf(" link%d(len=%.1f, p=%.2f)", i, in.Length(i), s.Powers[i])
		}
		fmt.Println()
	}

	// Could all four links share a single slot with unconstrained powers?
	feasible, _, err := oblivious.SingleSlotFeasible(m, in, oblivious.Bidirectional, []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single slot with optimal power control: %v\n", feasible)
}
