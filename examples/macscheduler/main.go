// MAC-layer scheduling scenario: the paper's motivating application.
//
// A wireless deployment across several office "rooms" (dense clusters of
// devices) must provide full-duplex channels between device pairs — the
// bidirectional interference scheduling problem. The MAC layer must assign
// every channel a transmission power and a time slot so that all channels
// of a slot satisfy the SINR constraints simultaneously, using as few slots
// as possible.
//
// The example compares the oblivious power assignments studied in the
// paper (uniform, linear, square root) and the LP-based coloring of
// Theorem 15 — both obtained through the solver registry — and prints the
// resulting frame lengths.
//
// Run with:
//
//	go run ./examples/macscheduler
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	oblivious "repro"
)

const (
	rooms         = 5
	linksPerRoom  = 8
	roomSize      = 12.0  // metres
	buildingSize  = 120.0 // metres
	minLinkLength = 0.5
	seed          = 2009 // PODC 2009
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	in, err := buildDeployment(rng)
	if err != nil {
		log.Fatal(err)
	}
	m := oblivious.DefaultModel()
	ctx := context.Background()

	fmt.Printf("deployment: %d full-duplex channels in %d rooms\n\n", in.N(), rooms)
	fmt.Println("frame length (time slots) by power assignment:")
	greedy := oblivious.Lookup("greedy")
	for _, a := range []oblivious.Assignment{
		oblivious.Uniform(1),
		oblivious.Linear(),
		oblivious.Sqrt(),
	} {
		res, err := greedy.Solve(ctx, m, in,
			oblivious.WithAssignment(a),
			oblivious.WithValidation(true))
		if err != nil {
			log.Fatalf("%s: %v", a.Name(), err)
		}
		fmt.Printf("  %-8s greedy: %2d slots (total energy %.3g)\n",
			a.Name(), res.Stats.Colors, res.Stats.Energy)
	}

	lpRes, err := oblivious.Lookup("lp").Solve(ctx, m, in,
		oblivious.WithSeed(seed),
		oblivious.WithValidation(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-8s LP:     %2d slots (%d LP solves)\n\n",
		"sqrt", lpRes.Stats.Colors, lpRes.Stats.LP.LPSolves)

	// Show the first slots of the square-root frame.
	res, err := greedy.Solve(ctx, m, in, oblivious.WithAssignment(oblivious.Sqrt()))
	if err != nil {
		log.Fatal(err)
	}
	s := res.Schedule
	fmt.Println("square-root frame layout (first 4 slots):")
	for c, class := range s.Classes() {
		if c >= 4 {
			fmt.Printf("  ... %d more slot(s)\n", s.NumColors()-4)
			break
		}
		fmt.Printf("  slot %d: %2d channels, lengths", c, len(class))
		for _, i := range class {
			fmt.Printf(" %.1f", in.Length(i))
		}
		fmt.Println()
	}
}

// buildDeployment places rooms uniformly in the building and links inside
// rooms, mimicking dense local contention with sparse cross-room traffic.
func buildDeployment(rng *rand.Rand) (*oblivious.Instance, error) {
	var points [][]float64
	var reqs []oblivious.Request
	for r := 0; r < rooms; r++ {
		cx := rng.Float64() * buildingSize
		cy := rng.Float64() * buildingSize
		for l := 0; l < linksPerRoom; l++ {
			for {
				ax, ay := cx+rng.Float64()*roomSize, cy+rng.Float64()*roomSize
				bx, by := cx+rng.Float64()*roomSize, cy+rng.Float64()*roomSize
				if math.Hypot(ax-bx, ay-by) < minLinkLength {
					continue
				}
				u := len(points)
				points = append(points, []float64{ax, ay}, []float64{bx, by})
				reqs = append(reqs, oblivious.Request{U: u, V: u + 1})
				break
			}
		}
	}
	return oblivious.NewEuclideanInstance(points, reqs)
}
