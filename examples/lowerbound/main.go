// Theorem 1 demo: no oblivious power assignment can beat Ω(n) for directed
// requests.
//
// The example regenerates the paper's adversarial family against the
// linear and square root assignments (and the nested exponential family
// against uniform powers), schedules each instance with its target
// assignment through the public solver API, and contrasts the result with
// the optimal power-control baseline — which packs everything into O(1)
// slots.
//
// Run with:
//
//	go run ./examples/lowerbound
package main

import (
	"context"
	"fmt"
	"log"

	oblivious "repro"
	"repro/internal/coloring"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func main() {
	m := sinr.Default()

	fmt.Println("Theorem 1: directed scheduling, oblivious assignment vs optimal powers")
	fmt.Println()
	fmt.Printf("%-10s %-12s %4s  %10s  %10s\n", "target f", "family", "n", "colors(f)", "opt slots")

	// Unbounded assignments: the recursive construction from the proof.
	for _, a := range []power.Assignment{power.Linear(), power.Sqrt()} {
		for _, n := range []int{4, 8, 16} {
			adv, err := instance.AdversarialDirected(m, a, n, 1e60)
			if err != nil {
				log.Fatal(err)
			}
			report(m, a, "adversarial", adv.Instance)
			if adv.Built < n {
				fmt.Printf("%-10s %-12s       (construction capped at %d pairs: float64 range)\n",
					"", "", adv.Built)
				break
			}
		}
	}

	// Uniform powers are bounded; the nested exponential chain is the
	// standard Ω(n) family for them.
	for _, n := range []int{4, 8, 16} {
		in, err := instance.NestedExponential(n, 2)
		if err != nil {
			log.Fatal(err)
		}
		report(m, power.Uniform(1), "nested", in)
	}

	fmt.Println()
	fmt.Println("Reading: colors(f) grows linearly with n for every oblivious f,")
	fmt.Println("while the optimal (non-oblivious) baseline stays flat — the Ω(n)")
	fmt.Println("separation of Theorem 1.")
}

func report(m sinr.Model, a power.Assignment, family string, in *problem.Instance) {
	res, err := oblivious.Lookup("greedy").Solve(context.Background(), m, in,
		oblivious.WithVariant(oblivious.Directed),
		oblivious.WithAssignment(a))
	if err != nil {
		log.Fatal(err)
	}
	// Optimal baseline: first-fit where class feasibility is decided by
	// the optimal power-control oracle of the public API.
	pub := toPublic(in)
	opt, err := optimalColors(m, pub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-12s %4d  %10d  %10d\n", a.Name(), family, in.N(), res.Stats.Colors, opt)
}

// toPublic re-wraps an internal instance for the public facade (both share
// the same underlying types via aliases).
func toPublic(in *problem.Instance) *oblivious.Instance { return in }

func optimalColors(m sinr.Model, in *oblivious.Instance) (int, error) {
	order := coloring.LengthOrder(in)
	var classes [][]int
	for _, j := range order {
		placed := false
		for c := range classes {
			cand := append(append([]int(nil), classes[c]...), j)
			ok, _, err := oblivious.SingleSlotFeasible(m, in, oblivious.Directed, cand)
			if err != nil {
				return 0, err
			}
			if ok {
				classes[c] = cand
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{j})
		}
	}
	return len(classes), nil
}
