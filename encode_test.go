package oblivious

import "testing"

func TestScheduleRoundTrip(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	s, err := ScheduleGreedy(m, in, Bidirectional, Sqrt())
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumColors() != s.NumColors() {
		t.Errorf("colors %d != %d", back.NumColors(), s.NumColors())
	}
	for i := range s.Colors {
		if back.Colors[i] != s.Colors[i] || back.Powers[i] != s.Powers[i] {
			t.Fatalf("request %d differs after round trip", i)
		}
	}
	if err := Validate(m, in, Bidirectional, back); err != nil {
		t.Errorf("round-tripped schedule invalid: %v", err)
	}
}

func TestScheduleCodecValidation(t *testing.T) {
	if _, err := MarshalSchedule(nil); err == nil {
		t.Error("nil schedule should fail")
	}
	if _, err := MarshalSchedule(&Schedule{Colors: []int{0}, Powers: nil}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := UnmarshalSchedule([]byte(`{`)); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := UnmarshalSchedule([]byte(`{"colors":[],"powers":[]}`)); err == nil {
		t.Error("empty schedule should fail")
	}
	if _, err := UnmarshalSchedule([]byte(`{"colors":[0],"powers":[1,2]}`)); err == nil {
		t.Error("mismatched lengths should fail")
	}
}
