package oblivious

import (
	"math"
	"testing"
)

// fourLinks is the quickstart topology: two nearby links and two far links.
func fourLinks(t *testing.T) *Instance {
	t.Helper()
	points := [][]float64{
		{0, 0}, {3, 0},
		{1, 1}, {1, 5},
		{40, 40}, {42, 40},
		{41, 45}, {41, 41},
	}
	reqs := []Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}}
	in, err := NewEuclideanInstance(points, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestDefaultModel(t *testing.T) {
	m := DefaultModel()
	if m.Alpha != 3 || m.Beta != 1 || m.Noise != 0 {
		t.Errorf("DefaultModel = %+v", m)
	}
}

func TestConstructors(t *testing.T) {
	if _, err := NewEuclideanInstance(nil, nil); err == nil {
		t.Error("empty Euclidean instance should fail")
	}
	if _, err := NewLineInstance([]float64{0, 1}, []Request{{U: 0, V: 1}}); err != nil {
		t.Errorf("line instance: %v", err)
	}
	if _, err := NewMatrixInstance([][]float64{{0, 2}, {2, 0}}, []Request{{U: 0, V: 1}}); err != nil {
		t.Errorf("matrix instance: %v", err)
	}
}

func TestAssignments(t *testing.T) {
	if got := Sqrt().Power(16); got != 4 {
		t.Errorf("Sqrt(16) = %g", got)
	}
	if got := Uniform(3).Power(100); got != 3 {
		t.Errorf("Uniform(3) = %g", got)
	}
	if got := Linear().Power(7); got != 7 {
		t.Errorf("Linear(7) = %g", got)
	}
	if got := Exponent(2).Power(3); got != 9 {
		t.Errorf("Exponent(2)(3) = %g", got)
	}
}

func TestPowersFor(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	ps := PowersFor(m, in, Sqrt())
	if len(ps) != 4 {
		t.Fatalf("len = %d", len(ps))
	}
	// Link 0 has length 3 → loss 27 → power √27.
	if math.Abs(ps[0]-math.Sqrt(27)) > 1e-12 {
		t.Errorf("power[0] = %g, want √27", ps[0])
	}
}

func TestScheduleGreedyEndToEnd(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	for _, v := range []Variant{Directed, Bidirectional} {
		s, err := ScheduleGreedy(m, in, v, Sqrt())
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(m, in, v, s); err != nil {
			t.Errorf("%v: %v", v, err)
		}
	}
}

func TestScheduleGreedyPowers(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	s, err := ScheduleGreedyPowers(m, in, Bidirectional, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Bidirectional, s); err != nil {
		t.Error(err)
	}
}

func TestScheduleLPEndToEnd(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	s, stats, err := ScheduleLP(m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Bidirectional, s); err != nil {
		t.Error(err)
	}
	if stats.Rounds < 1 {
		t.Error("no rounds recorded")
	}
	// Determinism: same seed, same coloring.
	s2, _, err := ScheduleLP(m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Colors {
		if s.Colors[i] != s2.Colors[i] {
			t.Fatal("LP coloring not deterministic for a fixed seed")
		}
	}
}

func TestSchedulePipelineEndToEnd(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	s, err := SchedulePipeline(m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Bidirectional, s); err != nil {
		t.Error(err)
	}
}

func TestSingleSlotFeasible(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	ok, powers, err := SingleSlotFeasible(m, in, Bidirectional, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("two far-apart links should share a slot")
	}
	if len(powers) != in.N() {
		t.Errorf("witness powers length %d", len(powers))
	}
	// Links 0 and 1 are adjacent with comparable lengths: cannot share at
	// β = 1 without... actually verify against the oracle's own answer by
	// checking witness consistency instead.
	ok01, p01, err := SingleSlotFeasible(m, in, Bidirectional, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok01 {
		s := &Schedule{Colors: []int{0, 0, 1, 1}, Powers: p01}
		s.Powers[2], s.Powers[3] = 1, 1
		if err := Validate(m, in, Bidirectional, s); err != nil {
			t.Errorf("oracle said feasible but witness fails: %v", err)
		}
	}
}

func TestMaxSimultaneous(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	set := MaxSimultaneous(m, in, Bidirectional, Sqrt())
	if len(set) == 0 {
		t.Fatal("empty set")
	}
	powers := PowersFor(m, in, Sqrt())
	if !m.SetFeasible(in, Bidirectional, powers, set) {
		t.Error("MaxSimultaneous returned an infeasible set")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	in := fourLinks(t)
	data, err := MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() {
		t.Fatalf("round trip N = %d, want %d", back.N(), in.N())
	}
	for i := 0; i < in.N(); i++ {
		if math.Abs(back.Length(i)-in.Length(i)) > 1e-12 {
			t.Errorf("length %d changed: %g vs %g", i, back.Length(i), in.Length(i))
		}
	}
}

func TestMarshalLineAndMatrix(t *testing.T) {
	lin, err := NewLineInstance([]float64{0, 1, 10, 12}, []Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalInstance(lin)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Length(1) != 2 {
		t.Errorf("line round trip length = %g", back.Length(1))
	}

	mat, err := NewMatrixInstance([][]float64{{0, 1, 3}, {1, 0, 2}, {3, 2, 0}}, []Request{{U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	data, err = MarshalInstance(mat)
	if err != nil {
		t.Fatal(err)
	}
	back, err = UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Length(0) != 3 {
		t.Errorf("matrix round trip length = %g", back.Length(0))
	}
}

func TestUnmarshalValidation(t *testing.T) {
	if _, err := UnmarshalInstance([]byte(`not json`)); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := UnmarshalInstance([]byte(`{"requests":[{"u":0,"v":1}]}`)); err == nil {
		t.Error("missing space should fail")
	}
	if _, err := UnmarshalInstance([]byte(`{"line":[0,1],"points":[[0],[1]],"requests":[{"u":0,"v":1}]}`)); err == nil {
		t.Error("ambiguous space should fail")
	}
	if _, err := MarshalInstance(nil); err == nil {
		t.Error("nil instance should fail")
	}
}
