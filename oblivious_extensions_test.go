package oblivious

import "testing"

func TestLiftToNoiseEndToEnd(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	s, err := ScheduleGreedy(m, in, Bidirectional, Sqrt())
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := LiftToNoise(m, in, Bidirectional, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	noisy := m
	noisy.Noise = 3
	if err := Validate(noisy, in, Bidirectional, lifted); err != nil {
		t.Errorf("lifted schedule invalid at noise 3: %v", err)
	}
	// Colors unchanged, powers scaled.
	for i := range s.Colors {
		if lifted.Colors[i] != s.Colors[i] {
			t.Fatal("lifting changed the coloring")
		}
	}
}

func TestScheduleDistributedEndToEnd(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	s, slots, err := ScheduleDistributed(m, in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Bidirectional, s); err != nil {
		t.Errorf("distributed schedule invalid: %v", err)
	}
	if slots < s.NumColors() {
		t.Errorf("slots %d below colors %d", slots, s.NumColors())
	}
	// Determinism for a fixed seed.
	s2, slots2, err := ScheduleDistributed(m, in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if slots != slots2 {
		t.Error("distributed protocol not deterministic for a fixed seed")
	}
	for i := range s.Colors {
		if s.Colors[i] != s2.Colors[i] {
			t.Fatal("distributed coloring not deterministic for a fixed seed")
		}
	}
}

func TestMaxSimultaneousLPEndToEnd(t *testing.T) {
	in := fourLinks(t)
	m := DefaultModel()
	set, err := MaxSimultaneousLP(m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("empty set")
	}
	powers := PowersFor(m, in, Sqrt())
	if !m.SetFeasible(in, Bidirectional, powers, set) {
		t.Error("LP single-slot set infeasible")
	}
}
