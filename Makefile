# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally is a green
# pipeline modulo the network-installed tools (staticcheck, govulncheck).

GO ?= go

.PHONY: build test race lint fmt vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# oblint: the project-invariant analyzers (internal/lint). It loads
# through the stdlib source importer, so it needs no tool installation —
# but also cannot run as a `go vet -vettool`; invoke it as a command.
lint:
	$(GO) run ./cmd/oblint ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

check: build vet lint test

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
