// Solver API: every scheduling algorithm of the package behind one
// interface, selectable by name from a registry, configured through
// functional options, and runnable in bulk with SolveAll.
package oblivious

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/affect"
	"repro/internal/affect/sparse"
	"repro/internal/coloring"
	"repro/internal/distributed"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/power"
	"repro/internal/sinr"
	"repro/internal/treestar"
)

// Solver is the uniform entry point to every scheduling algorithm. A
// solver colors an instance under the physical model m, honoring the
// functional options (variant, power assignment, seed, ...).
//
// Implementations must be safe for concurrent use: SolveAll calls Solve
// from many goroutines.
type Solver interface {
	// Name is the registry key the solver was built with.
	Name() string
	// Solve colors the instance and reports the schedule together with
	// unified statistics and timing.
	Solve(ctx context.Context, m Model, in *Instance, opts ...Option) (*Result, error)
}

// Stats unifies the diagnostics of all algorithms. Fields that do not
// apply to the solver that produced the result stay at their zero value.
type Stats struct {
	// Colors is the schedule length (number of time slots).
	Colors int
	// Energy is the total transmission energy of the schedule.
	Energy float64
	// Elapsed is the wall-clock time of the Solve call.
	Elapsed time.Duration
	// Engine names the affectance engine the solve's mode resolved to for
	// the instance — "dense" or "sparse" — or "off" when the cache was
	// disabled with WithAffectanceCache(false). It reports the resolved
	// selection, not the mode requested: an auto mode that resolved to
	// dense (small instance, coordinate-free metric, ε = 0) says so here.
	// Two solvers qualify the scalar: the online solver, whose trackers
	// require an engine, reports "dense" even with the cache option off
	// because that is what it builds; and the pipeline re-resolves the
	// mode per restricted instance it extracts a class from (and thins
	// kept sets below 32 directly), so "sparse" there means the selection
	// at the full instance, with the shrinking tail free to drop to
	// dense under auto.
	Engine string
	// LP carries the LP-based coloring diagnostics (lp solver only).
	LP *LPStats
	// Pipeline carries the Theorem 2 pipeline diagnostics (pipeline
	// solver only).
	Pipeline *PipelineStats
	// Slots is the number of contention slots (distributed solver only).
	Slots int
	// Attempts counts transmission attempts (distributed solver only).
	Attempts int
	// Failures counts failed attempts (distributed solver only).
	Failures int
	// Online carries the churn-engine counters — peak slots, repairs,
	// re-packs, migrations, row-operation cost (online solver only).
	Online *OnlineStats
}

// Result bundles everything a Solve call produces.
type Result struct {
	// Solver is the name of the solver that produced the result.
	Solver string
	// Schedule assigns a power and a color to every request.
	Schedule *Schedule
	// Stats reports the unified algorithm diagnostics.
	Stats Stats
}

// Options collects the knobs shared by all solvers. Build it with the
// With* functional options; the zero value is not meaningful — solvers
// start from DefaultOptions.
type Options struct {
	// Variant selects directed or bidirectional SINR constraints.
	Variant Variant
	// Assignment is the oblivious power assignment.
	Assignment Assignment
	// Seed drives the randomized algorithms.
	Seed int64
	// Validate re-checks the produced schedule against the exact SINR
	// constraints before returning it.
	Validate bool
	// Parallelism bounds the worker pool of SolveAll (0 = GOMAXPROCS).
	Parallelism int
	// Affectance enables the precomputed affectance cache (package
	// affect) on the solver's SINR hot path. On by default; disable with
	// WithAffectanceCache(false) to run every interference query through
	// the direct oracle computation.
	Affectance bool
	// Mode selects between the dense n×n affectance engine, the sparse
	// spatially-bucketed one, and automatic selection by instance size
	// (the default; see WithAffectanceMode).
	Mode AffectanceMode
	// Epsilon is the sparse engine's far-field error budget: every
	// stored-or-bounded entry overestimates the true affectance by at
	// most a factor 1+ε, so sparse-accepted schedules stay exactly
	// feasible. 0 degenerates to the dense path bitwise (see
	// WithEpsilon).
	Epsilon float64
	// Admission names the slot-admission policy of the online engine:
	// "first-fit", "best-fit", or "power-fit" (online solver only).
	Admission string
	// Repair names the departure-repair strategy of the online engine:
	// "lazy", "threshold", or "eager" (online solver only).
	Repair string
	// Obs is the observability collector the solve reports into (see
	// WithObserver). Nil — the default — disables all instrumentation
	// at a single predictable branch per site.
	Obs *obs.Collector
	// Deadline is the online engine's per-event admission budget (see
	// WithDeadline; online solver only). 0 — the default — disables the
	// deadline ladder entirely.
	Deadline time.Duration
	// RetryAttempts and RetryBackoff bound the online engine's retries
	// of transient tracker-provider failures (see WithRetry; online
	// solver only).
	RetryAttempts int
	RetryBackoff  time.Duration

	// caches is the per-batch cache store SolveAll shares across its
	// workers, so solving the same instance repeatedly (solver sweeps,
	// seed sweeps) fills the matrices once. Nil outside SolveAll.
	caches *affect.Store
	// fellBack is set by buildEngine when an auto-resolved sparse build
	// failed and dense matrices were built instead, so Stats.Engine
	// reports the engine that actually ran. A shared pointer because
	// Options travels by value; atomic because the pipeline builds
	// engines from concurrent stages.
	fellBack *atomic.Bool
}

// DefaultOptions returns the settings a bare Solve call runs with:
// bidirectional constraints, square root powers, seed 1, no
// re-validation, GOMAXPROCS batch parallelism, affectance cache on in
// auto mode with the default sparse error budget, first-fit admission
// with lazy repair for the online engine.
func DefaultOptions() Options {
	return Options{
		Variant: Bidirectional, Assignment: Sqrt(), Seed: 1, Affectance: true,
		Mode: AffectAuto, Epsilon: DefaultSparseEpsilon,
		Admission: online.FirstFit.String(), Repair: online.LazyRepair.String(),
	}
}

// AffectanceMode selects how the affectance engine on the SINR hot path
// is realized.
type AffectanceMode int

const (
	// AffectAuto picks the engine by instance size: dense below
	// sparse.AutoThreshold requests (bitwise-exact, ≤ ~½ GB of
	// matrices), sparse above it when the metric carries coordinates
	// and the epsilon budget is positive, dense otherwise.
	AffectAuto AffectanceMode = iota
	// AffectDense forces the dense n×n engine regardless of size.
	AffectDense
	// AffectSparse forces the grid-bucketed sparse engine; solving fails
	// if the instance metric carries no coordinates (explicit distance
	// matrices, tree or star metrics).
	AffectSparse
)

// String names the mode as the CLI flags spell it.
func (mode AffectanceMode) String() string {
	switch mode {
	case AffectAuto:
		return "auto"
	case AffectDense:
		return "dense"
	case AffectSparse:
		return "sparse"
	default:
		return fmt.Sprintf("AffectanceMode(%d)", int(mode))
	}
}

// ParseAffectanceMode parses the textual mode syntax of the CLIs:
// "auto", "dense", or "sparse".
func ParseAffectanceMode(s string) (AffectanceMode, error) {
	switch s {
	case "auto":
		return AffectAuto, nil
	case "dense":
		return AffectDense, nil
	case "sparse":
		return AffectSparse, nil
	default:
		return 0, fmt.Errorf("unknown affectance mode %q (want auto, dense, or sparse)", s)
	}
}

// DefaultSparseEpsilon is the default far-field error budget of the
// sparse affectance engine (see internal/affect/sparse).
const DefaultSparseEpsilon = sparse.DefaultEpsilon

// Resolve collapses the mode to the engine a solve would actually use
// for the instance under the given epsilon budget: auto picks sparse at
// n ≥ sparse.AutoThreshold when the metric carries grid coordinates and
// the budget is positive, dense otherwise; forced sparse with ε = 0
// resolves to dense (the documented bitwise degeneration); everything
// else resolves to itself. It is the single selection predicate — attachCache, the
// pipeline's per-sub-instance stage-5 builder, Stats.Engine reporting and
// the CLI trace path all consult it, so the rule cannot drift.
func (mode AffectanceMode) Resolve(in *Instance, eps float64) AffectanceMode {
	if mode == AffectSparse {
		if eps == 0 {
			// The documented degeneration: ε = 0 keeps every pair exact,
			// which is the dense engine bitwise — resolve (and report) it
			// as such so the run can share the dense batch store.
			return AffectDense
		}
		return mode
	}
	if mode != AffectAuto {
		return mode
	}
	if eps != 0 && in.N() >= sparse.AutoThreshold && sparse.Supported(in.Space) {
		return AffectSparse
	}
	return AffectDense
}

// Option mutates Options. Pass any number of them to Solve or SolveAll.
type Option func(*Options)

// WithVariant selects the SINR constraint variant (default Bidirectional).
func WithVariant(v Variant) Option { return func(o *Options) { o.Variant = v } }

// WithAssignment selects the oblivious power assignment (default Sqrt).
func WithAssignment(a Assignment) Option { return func(o *Options) { o.Assignment = a } }

// WithSeed seeds the randomized algorithms (default 1).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithValidation makes the solver re-check its schedule against the exact
// SINR constraints and fail if it is infeasible (default off).
func WithValidation(on bool) Option { return func(o *Options) { o.Validate = on } }

// WithParallelism bounds the SolveAll worker pool (default 0 = GOMAXPROCS).
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithAffectanceCache toggles the precomputed affectance engine on the
// SINR hot path (default on). The cache never changes results — cached and
// uncached interference queries agree bitwise — so turning it off is only
// useful for measuring its effect or bounding memory (the matrices take
// O(n²) floats per instance). The online solver is the exception: its
// per-slot trackers are built on the matrices, so it always constructs a
// cache and this option only controls whether the cache is shared with a
// SolveAll batch store.
func WithAffectanceCache(on bool) Option { return func(o *Options) { o.Affectance = on } }

// WithAffectanceMode selects the affectance engine: AffectDense for the
// exact n×n matrices, AffectSparse for the grid-bucketed conservative
// engine that scales to n≈50000, AffectAuto (the default) to switch on
// instance size. The sparse engine never produces an infeasible
// schedule — its margins are lower bounds on the exact ones — but it may
// use more colors; WithEpsilon tunes that trade.
func WithAffectanceMode(mode AffectanceMode) Option {
	return func(o *Options) { o.Mode = mode }
}

// WithEpsilon sets the sparse engine's far-field error budget (default
// DefaultSparseEpsilon): each far-pair affectance bound overestimates the
// true value by at most a factor 1+ε. Smaller ε keeps more exact entries
// (more memory, tighter margins, fewer colors); ε = 0 degenerates to the
// dense engine bitwise. Negative values fail the solve.
func WithEpsilon(eps float64) Option { return func(o *Options) { o.Epsilon = eps } }

// WithAdmission selects the online engine's slot-admission policy by name:
// "first-fit" (default), "best-fit", or "power-fit". Only the online
// solver consults it.
func WithAdmission(name string) Option { return func(o *Options) { o.Admission = name } }

// WithRepair selects the online engine's departure-repair strategy by
// name: "lazy" (default), "threshold", or "eager". Only the online solver
// consults it.
func WithRepair(name string) Option { return func(o *Options) { o.Repair = name } }

// WithObserver attaches an observability collector (internal/obs) to the
// solve. Every layer reports into it: the wrapper counts solves and
// spans the whole call ("span/solve/<name>"), the engine builders record
// build latency and resident bytes ("affect/…", "sparse/…"), the
// pipeline spans its stages and HST builds ("span/pipeline/…"), and the
// online engine mirrors its counters and emits typed events (see
// online.WithObserver for the metric names). SolveAll passes the same
// collector to every worker, so a batch aggregates into one snapshot.
// A nil collector (the default) keeps every hot path on its zero-cost
// disabled branch.
func WithObserver(c *obs.Collector) Option { return func(o *Options) { o.Obs = c } }

// WithDeadline sets the online engine's per-event admission budget
// (default 0 = off): an event that exceeds it degrades gracefully —
// best-fit admission finishes as first-fit, compaction is deferred
// under the repair budget — instead of blocking. Only the online
// solver consults it; see online.WithDeadline for the ladder.
func WithDeadline(d time.Duration) Option { return func(o *Options) { o.Deadline = d } }

// WithRetry bounds the online engine's retries of transient tracker
// acquisition failures (default 0 = fail fast): up to attempts retries
// with exponential backoff starting at backoff. Only the online solver
// consults it; see online.WithRetry.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(o *Options) {
		o.RetryAttempts = attempts
		o.RetryBackoff = backoff
	}
}

// withCacheStore hands the workers of one SolveAll batch a shared
// per-instance cache store.
func withCacheStore(s *affect.Store) Option { return func(o *Options) { o.caches = s } }

// sparseBuild is the sparse-engine constructor, a variable so the
// resilience tests can force build failures.
var sparseBuild = sparse.For

// fallbackDenseBytes is the largest dense-matrix footprint buildEngine
// will fall back to when an auto-resolved sparse build fails: 2 GiB,
// four times the ~½ GB the auto threshold itself deems routine. Beyond
// it the sparse failure is surfaced instead — silently allocating tens
// of gigabytes is worse than failing.
const fallbackDenseBytes = int64(2) << 30

// buildEngine constructs the affectance engine the resolved mode selects
// for (instance, variant, powers). It is the single mode→constructor
// mapping: attachCache and the pipeline's per-sub-instance stage-5
// builder both go through it, so the two cannot diverge. The batch store
// dedupes dense matrices only; a sparse engine is cheap relative to the
// solves that select it, so each build is per-solve.
func (o Options) buildEngine(m Model, in *Instance, v Variant, powers []float64) (sinr.Cache, error) {
	isSparse := o.Mode.Resolve(in, o.Epsilon) == AffectSparse
	var start time.Time
	if o.Obs.Enabled() {
		start = time.Now()
	}
	var (
		c   sinr.Cache
		err error
	)
	switch {
	case isSparse:
		c, err = sparseBuild(m, v, in, powers, sparse.Options{Epsilon: o.Epsilon})
		if err != nil && o.Mode == AffectAuto && denseBytes(in, v) <= fallbackDenseBytes {
			// Resilience fallback: the auto mode selected sparse as an
			// optimization, not a mandate. When the sparse build fails and
			// the dense matrices still fit in the fallback budget, build
			// them instead of failing the solve — and record it, both in
			// the "resilience/fallbacks" counter and (via fellBack) in
			// Stats.Engine, so the degradation is visible. A forced sparse
			// mode still fails loudly: the caller asked for that engine.
			err = nil
			isSparse = false
			if o.fellBack != nil {
				o.fellBack.Store(true)
			}
			if o.Obs.Enabled() {
				o.Obs.Counter("resilience/fallbacks").Inc()
			}
			if o.caches != nil {
				c = o.caches.For(m, v, in, powers)
			} else {
				c = affect.New(m, v, in, powers)
			}
		}
	case o.caches != nil:
		c = o.caches.For(m, v, in, powers)
	default:
		c = affect.New(m, v, in, powers)
	}
	if err != nil {
		return nil, err
	}
	if o.Obs.Enabled() {
		// Build latency is a histogram (the pipeline builds one engine per
		// kept class, so the distribution matters); resident bytes is a
		// last-build gauge. The batch-store path times the store lookup —
		// near-zero on a hit, which is exactly the sharing it should show.
		name := "affect"
		if isSparse {
			name = "sparse"
		}
		o.Obs.Counter(name + "/builds").Inc()
		o.Obs.Histogram(name + "/build_ns").Observe(time.Since(start).Nanoseconds())
		if sz, ok := c.(interface{ Bytes() int64 }); ok {
			o.Obs.Gauge(name + "/bytes").Set(float64(sz.Bytes()))
		}
	}
	return c, nil
}

// denseBytes estimates the dense affectance footprint for the instance
// under the variant: two n×n float64 matrices for directed (into and
// from), four for bidirectional.
func denseBytes(in *Instance, v Variant) int64 {
	n := int64(in.N())
	matrices := int64(2)
	if v == Bidirectional {
		matrices = 4
	}
	return matrices * n * n * 8
}

// attachCache returns m with the affectance engine for (variant,
// instance, powers) attached, honoring WithAffectanceCache,
// WithAffectanceMode and WithEpsilon, and reusing the batch store when
// SolveAll provides one. It fails when the sparse engine is forced on a
// metric without coordinates or the epsilon budget is invalid.
func (o Options) attachCache(m Model, in *Instance, v Variant, powers []float64) (Model, error) {
	if o.Epsilon < 0 || math.IsNaN(o.Epsilon) {
		// Rejected up front, regardless of which engine the mode resolves
		// to — the same option must not validate size-dependently.
		return m, fmt.Errorf("epsilon must be ≥ 0, got %g", o.Epsilon)
	}
	if !o.Affectance {
		return m, nil
	}
	c, err := o.buildEngine(m, in, v, powers)
	if err != nil {
		return m, err
	}
	return m.WithCache(c), nil
}

func buildOptions(opts []Option) Options {
	o := DefaultOptions()
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	// One shared fallback flag per solve, surviving the by-value copies
	// the engine builders receive.
	o.fellBack = new(atomic.Bool)
	return o
}

// ParseAssignment parses the textual power-assignment syntax shared by the
// CLIs and examples: "uniform", "linear", "sqrt", or "exp:<tau>" for the
// assignment p = loss^tau. It is the single public parser; commands must
// not hand-roll their own.
func ParseAssignment(s string) (Assignment, error) {
	switch {
	case s == "uniform":
		return Uniform(1), nil
	case s == "linear":
		return Linear(), nil
	case s == "sqrt":
		return Sqrt(), nil
	case strings.HasPrefix(s, "exp:"):
		tau, err := strconv.ParseFloat(strings.TrimPrefix(s, "exp:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad exponent in %q: %w", s, err)
		}
		// Exponent canonicalizes the named special cases, so "exp:0.5"
		// is the sqrt assignment and satisfies the sqrt-only solvers.
		return Exponent(tau), nil
	default:
		return nil, fmt.Errorf("unknown power assignment %q (want uniform, linear, sqrt, or exp:<tau>)", s)
	}
}

// SolveFunc is the algorithm core a Solver wraps: it receives the fully
// resolved Options and returns a Result whose Schedule is set and whose
// algorithm-specific Stats fields are filled in. Name, timing, Colors,
// Energy and optional validation are handled by the wrapper.
type SolveFunc func(ctx context.Context, m Model, in *Instance, o Options) (*Result, error)

// NewSolver wraps an algorithm core as a Solver. The wrapper applies the
// options, rejects an already-canceled context, measures wall-clock time,
// fills the shared Stats fields and, with WithValidation(true), re-checks
// the schedule against the SINR constraints.
func NewSolver(name string, fn SolveFunc) Solver {
	return solverFunc{name: name, fn: fn}
}

type solverFunc struct {
	name string
	fn   SolveFunc
}

func (s solverFunc) Name() string { return s.name }

func (s solverFunc) Solve(ctx context.Context, m Model, in *Instance, opts ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if in == nil {
		return nil, fmt.Errorf("%s: nil instance", s.name)
	}
	o := buildOptions(opts)
	if o.Assignment == nil {
		return nil, fmt.Errorf("%s: nil power assignment", s.name)
	}
	if o.Epsilon < 0 || math.IsNaN(o.Epsilon) {
		// Every solver rejects an invalid budget here, uniformly — not
		// just the ones whose engine selection happens to reach the
		// sparse constructor.
		return nil, fmt.Errorf("%s: epsilon must be ≥ 0, got %g", s.name, o.Epsilon)
	}
	if o.Obs.Enabled() {
		// Carry the collector in the context so instrumented internals
		// (the pipeline's stage spans) find it without their own plumbing,
		// and span the whole call — nested stage spans parent under it.
		ctx = obs.WithCollector(ctx, o.Obs)
		o.Obs.Counter("solve/" + s.name).Inc()
		var sp *obs.Span
		ctx, sp = obs.Start(ctx, "solve/"+s.name)
		defer sp.End()
	}
	start := time.Now()
	res, err := s.fn(ctx, m, in, o)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.name, err)
	}
	// No post-run ctx check: if the core finished despite a late
	// cancellation, the computed schedule is delivered rather than
	// discarded.
	if res == nil || res.Schedule == nil {
		return nil, fmt.Errorf("%s: solver returned no schedule", s.name)
	}
	res.Solver = s.name
	res.Stats.Colors = res.Schedule.NumColors()
	res.Stats.Energy = res.Schedule.TotalEnergy()
	if res.Stats.Engine == "" {
		// Report the engine the solve ran on, not the one requested: the
		// single Resolve predicate keeps this in lockstep with attachCache,
		// so an auto→dense resolution is visible instead of silent. Cores
		// that build an engine regardless of the option (online) have
		// already filled the field themselves.
		if o.Affectance {
			res.Stats.Engine = o.Mode.Resolve(in, o.Epsilon).String()
		} else {
			res.Stats.Engine = "off"
		}
	}
	if o.fellBack != nil && o.fellBack.Load() && res.Stats.Engine == AffectSparse.String() {
		// The auto-selected sparse build failed and the solve ran on the
		// dense fallback; Resolve alone cannot know that.
		res.Stats.Engine = AffectDense.String()
	}
	if o.Validate {
		if err := Validate(m, in, o.Variant, res.Schedule); err != nil {
			return nil, fmt.Errorf("%s: produced schedule failed validation: %w", s.name, err)
		}
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// ErrUnknownSolver is wrapped by the error a Lookup of an unregistered
// name reports when solved.
var ErrUnknownSolver = errors.New("unknown solver")

var (
	registryMu sync.RWMutex
	registry   = map[string]Solver{}
)

// Register adds a solver to the registry under the given name. It panics
// on an empty name, a nil solver, or a duplicate registration — solver
// names are a flat global namespace resolved by CLI flags.
func Register(name string, s Solver) {
	if name == "" {
		panic("oblivious: Register with empty solver name")
	}
	if s == nil {
		panic("oblivious: Register with nil solver")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("oblivious: Register called twice for solver %q", name))
	}
	registry[name] = s
}

// unregister removes a solver registration. Test use only: the chaos
// tests register deliberately misbehaving solvers and must not leak
// them into the registry other tests iterate.
func unregister(name string) {
	registryMu.Lock()
	delete(registry, name)
	registryMu.Unlock()
}

// Lookup returns the solver registered under name. It never returns nil:
// an unregistered name yields a stub solver whose Solve reports an error
// wrapping ErrUnknownSolver, so the call chains as
// Lookup("lp").Solve(ctx, m, in, WithSeed(7)) without a nil check.
func Lookup(name string) Solver {
	registryMu.RLock()
	s, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return unknownSolver(name)
	}
	return s
}

func unknownSolver(name string) Solver {
	return NewSolver(name, func(context.Context, Model, *Instance, Options) (*Result, error) {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownSolver, name, strings.Join(Solvers(), ", "))
	})
}

// Solvers returns the sorted names of all registered solvers.
func Solvers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("greedy", NewSolver("greedy", solveGreedy))
	Register("lp", NewSolver("lp", solveLP))
	Register("online", NewSolver("online", solveOnline))
	Register("pipeline", NewSolver("pipeline", solvePipeline))
	Register("distributed", NewSolver("distributed", solveDistributed))
}

// solveGreedy colors by greedy first-fit (longest request first). It is
// the only solver that supports both variants and every assignment.
func solveGreedy(_ context.Context, m Model, in *Instance, o Options) (*Result, error) {
	powers := power.Powers(m, in, o.Assignment)
	m, err := o.attachCache(m, in, o.Variant, powers)
	if err != nil {
		return nil, err
	}
	s, err := coloring.GreedyFirstFit(m, in, o.Variant, powers, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s}, nil
}

// solveOnline replays the instance as a churn trace through the dynamic
// engine (internal/online): every request arrives in a seeded random
// order, then two churn rounds depart and re-admit a random third of
// them — exercising the departure-repair strategy — so the run ends with
// every request active and the engine's slot assignment is a complete
// schedule. Admission and repair are selected with WithAdmission /
// WithRepair; the engine counters land in Stats.Online. The affectance
// matrices are the engine's core data structure, so unlike the batch
// solvers it builds them even under WithAffectanceCache(false).
func solveOnline(ctx context.Context, m Model, in *Instance, o Options) (*Result, error) {
	adm, err := online.ParseAdmission(o.Admission)
	if err != nil {
		return nil, err
	}
	rep, err := online.ParseRepair(o.Repair)
	if err != nil {
		return nil, err
	}
	powers := power.Powers(m, in, o.Assignment)
	m, err = o.attachCache(m, in, o.Variant, powers)
	if err != nil {
		return nil, err
	}
	engOpts := []online.Option{online.WithAdmission(adm), online.WithRepair(rep)}
	if o.Obs.Enabled() {
		engOpts = append(engOpts, online.WithObserver(o.Obs))
	}
	if o.Deadline > 0 {
		engOpts = append(engOpts, online.WithDeadline(o.Deadline))
	}
	if o.RetryAttempts > 0 || o.RetryBackoff > 0 {
		engOpts = append(engOpts, online.WithRetry(o.RetryAttempts, o.RetryBackoff))
	}
	eng, err := online.New(m, in, o.Variant, powers, engOpts...)
	if err != nil {
		return nil, err
	}
	events := 0
	tick := func() error {
		if events++; events%64 == 0 {
			return ctx.Err()
		}
		return nil
	}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, i := range rng.Perm(in.N()) {
		if _, err := eng.Arrive(i); err != nil {
			return nil, err
		}
		if err := tick(); err != nil {
			return nil, err
		}
	}
	for round := 0; round < 2; round++ {
		churn := rng.Perm(in.N())[:in.N()/3]
		for _, i := range churn {
			if err := eng.Depart(i); err != nil {
				return nil, err
			}
			if err := tick(); err != nil {
				return nil, err
			}
		}
		for _, k := range rng.Perm(len(churn)) {
			if _, err := eng.Arrive(churn[k]); err != nil {
				return nil, err
			}
			if err := tick(); err != nil {
				return nil, err
			}
		}
	}
	st := eng.Stats()
	res := &Result{Schedule: eng.Snapshot(), Stats: Stats{Online: &st}}
	if !o.Affectance {
		// The engine's trackers need the matrices even with the cache
		// option off, so the solve really ran dense; say so.
		res.Stats.Engine = AffectDense.String()
	}
	return res, nil
}

// requireSqrtBidirectional guards the Theorem 2/15 algorithms, which are
// defined for bidirectional requests under the square root assignment.
// The assignment is checked by behavior, not by name: any implementation
// that computes √loss qualifies, and an imposter that merely calls itself
// "sqrt" does not.
func requireSqrtBidirectional(o Options) error {
	if o.Variant != Bidirectional {
		return errors.New("requires the bidirectional variant")
	}
	for _, loss := range []float64{1, 2, 9, 1e4, 1e8} {
		want := math.Sqrt(loss)
		if got := o.Assignment.Power(loss); math.Abs(got-want) > 1e-9*want {
			return fmt.Errorf("requires the sqrt assignment (got %q: power(%g) = %g, want %g)",
				o.Assignment.Name(), loss, got, want)
		}
	}
	return nil
}

// solveLP runs the randomized LP-based O(log n)-approximation of
// Theorem 15.
func solveLP(ctx context.Context, m Model, in *Instance, o Options) (*Result, error) {
	if err := requireSqrtBidirectional(o); err != nil {
		return nil, err
	}
	// Attach the cache here (rather than letting the coloring build its
	// own) so a SolveAll batch store can share it; the coloring recognizes
	// the covering cache on its internally derived powers by value.
	m, err := o.attachCache(m, in, Bidirectional, power.Powers(m, in, power.Sqrt()))
	if err != nil {
		return nil, err
	}
	s, stats, err := coloring.SqrtLPColoringCtx(ctx, m, in, rand.New(rand.NewSource(o.Seed)), coloring.LPOptions{NoCache: !o.Affectance})
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Stats: Stats{LP: stats}}, nil
}

// solvePipeline runs the constructive Theorem 2 pipeline (tree embeddings,
// centroid stars, thinning). Its stage-5 thinning engine follows the
// affectance options: the pipeline re-resolves the mode per restricted
// instance it extracts a class from, so under auto a large instance thins
// on the sparse grid and the shrinking tail drops back to dense rows.
//
// The pipeline's internal fan-out (HST builds, core scans, stage-3 star
// selection, stage-5 score init) is bounded at GOMAXPROCS and splits one
// rng seed per extracted color class, so the schedule for a given
// WithSeed is bitwise identical at any parallelism — WithParallelism
// governs only the SolveAll batch pool, not the per-solve workers.
func solvePipeline(ctx context.Context, m Model, in *Instance, o Options) (*Result, error) {
	if err := requireSqrtBidirectional(o); err != nil {
		return nil, err
	}
	pipe := treestar.Pipeline{NoCache: !o.Affectance}
	if o.Affectance {
		// Forcing sparse on a metric without coordinates must fail loudly
		// up front — the stage-5 builder only runs for kept sets of 32+, so
		// a small instance would otherwise slip through the forced mode.
		if o.Mode.Resolve(in, o.Epsilon) == AffectSparse && !sparse.Supported(in.Space) {
			return nil, sparse.ErrUnsupportedMetric
		}
		// The sub-instances are fresh per solve, so routing them through
		// the SolveAll batch store would only accumulate dead entries.
		sub := o
		sub.caches = nil
		pipe.Engine = func(mm sinr.Model, subIn *Instance, powers []float64) (sinr.Cache, error) {
			return sub.buildEngine(mm, subIn, Bidirectional, powers)
		}
	}
	s, stats, err := pipe.ColoringWithStats(ctx, m, in, rand.New(rand.NewSource(o.Seed)))
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Stats: Stats{Pipeline: stats}}, nil
}

// solveDistributed simulates the slotted decay contention protocol under
// the chosen oblivious assignment.
func solveDistributed(ctx context.Context, m Model, in *Instance, o Options) (*Result, error) {
	if o.Variant != Bidirectional {
		return nil, errors.New("requires the bidirectional variant")
	}
	p := distributed.Default()
	p.Assignment = o.Assignment
	p.NoCache = !o.Affectance
	if o.Affectance {
		// Pre-attach from the batch store so repeated simulations of one
		// instance share the matrices; RunContext skips its own build when
		// the model already carries a covering cache.
		var err error
		m, err = o.attachCache(m, in, Bidirectional, power.Powers(m, in, o.Assignment))
		if err != nil {
			return nil, err
		}
	}
	res, err := p.RunContext(ctx, m, in, rand.New(rand.NewSource(o.Seed)))
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule: res.Schedule,
		Stats:    Stats{Slots: res.Slots, Attempts: res.Attempts, Failures: res.Failures},
	}, nil
}

// safeSolve runs one Solve call with a panic barrier: a panicking
// solver core surfaces as that instance's error (with the panicking
// goroutine's stack attached) instead of killing the whole process —
// one poisoned instance must not take a batch down.
func safeSolve(ctx context.Context, solver Solver, m Model, in *Instance, opts ...Option) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("solver %s panicked: %v\n%s", solver.Name(), r, debug.Stack())
		}
	}()
	return solver.Solve(ctx, m, in, opts...)
}

// SolveAll fans the instances out across a worker pool and solves each
// with the given solver, returning one Result per instance in input
// order. Instance i is solved with seed Seed+i so a batch mixes
// independent randomness while staying reproducible regardless of worker
// interleaving. The pool size is WithParallelism (default GOMAXPROCS).
//
// The first solver error cancels the remaining work and is returned
// wrapped with the instance index; a canceled ctx aborts the batch with
// ctx.Err().
func SolveAll(ctx context.Context, m Model, instances []*Instance, solver Solver, opts ...Option) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if solver == nil {
		return nil, errors.New("oblivious: SolveAll with nil solver")
	}
	o := buildOptions(opts)
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]*Result, len(instances))
	if len(instances) == 0 {
		return results, nil
	}

	batchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if o.Affectance && o.caches == nil {
		// One cache store per batch: workers solving the same instance
		// (or re-solving across seeds) share the affectance matrices.
		opts = append(append([]Option(nil), opts...), withCacheStore(affect.NewStore()))
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	if o.Obs.Enabled() {
		o.Obs.Gauge("batch/workers").Set(float64(workers))
		o.Obs.Counter("batch/instances").Add(int64(len(instances)))
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The pprof labels make per-solver and per-worker CPU visible in
			// live profiles (oblsched -http): samples from this goroutine and
			// everything it calls carry solver=<name> worker=<k>.
			pprof.Do(batchCtx, pprof.Labels("solver", solver.Name(), "worker", strconv.Itoa(w)), func(ctx context.Context) {
				for i := range jobs {
					res, err := safeSolve(ctx, solver, m, instances[i], append(append([]Option(nil), opts...), WithSeed(o.Seed+int64(i)))...)
					if err != nil {
						fail(fmt.Errorf("instance %d: %w", i, err))
						return
					}
					results[i] = res
				}
			})
		}(w)
	}
feed:
	for i := range instances {
		select {
		case jobs <- i:
		case <-batchCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
