package oblivious

import (
	"context"
	"math"
	"testing"
)

// FuzzUnmarshalInstance guards the JSON decoder against panics and checks
// the round-trip invariant on every successfully decoded instance.
func FuzzUnmarshalInstance(f *testing.F) {
	f.Add([]byte(`{"line":[0,1],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{"points":[[0,0],[1,1]],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{"matrix":[[0,1],[1,0]],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"line":[0,0],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{"line":[0,1],"requests":[{"u":0,"v":9}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalInstance(data)
		if err != nil {
			return // malformed input must be rejected, not panic
		}
		// Decoded instances must satisfy the constructor invariants.
		if in.N() == 0 {
			t.Fatal("decoded instance with zero requests")
		}
		for i := 0; i < in.N(); i++ {
			if !(in.Length(i) > 0) {
				t.Fatalf("request %d has non-positive length", i)
			}
		}
		// And round-trip.
		out, err := MarshalInstance(in)
		if err != nil {
			t.Fatalf("marshal of a decoded instance failed: %v", err)
		}
		back, err := UnmarshalInstance(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.N() != in.N() {
			t.Fatalf("round trip changed N: %d -> %d", in.N(), back.N())
		}
	})
}

// FuzzSparseConservative is the conservativeness fuzzer of the engine
// matrix: for any decodable instance, any affectance mode, and any ε
// budget, a schedule the solve accepts must pass the exact dense oracle —
// the sparse engine's far-field bounds may cost colors but never
// feasibility. Invalid budgets must be rejected by every mode uniformly,
// and the reported engine must match the Resolve predicate.
func FuzzSparseConservative(f *testing.F) {
	f.Add([]byte(`{"line":[0,1,5,6,20,22],"requests":[{"u":0,"v":1},{"u":2,"v":3},{"u":4,"v":5}]}`), uint8(2), 8.0)
	f.Add([]byte(`{"points":[[0,0],[1,1],[9,0],[9,1.5]],"requests":[{"u":0,"v":1},{"u":2,"v":3}]}`), uint8(1), 0.5)
	f.Add([]byte(`{"points":[[0,0],[1,1],[9,0],[9,1.5]],"requests":[{"u":0,"v":1},{"u":2,"v":3}]}`), uint8(2), 0.0)
	f.Add([]byte(`{"matrix":[[0,1],[1,0]],"requests":[{"u":0,"v":1}]}`), uint8(2), 8.0)
	f.Add([]byte(`{"line":[0,1],"requests":[{"u":0,"v":1}]}`), uint8(0), -1.0)
	f.Add([]byte(`{"line":[0,1],"requests":[{"u":0,"v":1}]}`), uint8(2), 1e300)
	f.Fuzz(func(t *testing.T, data []byte, modeByte uint8, eps float64) {
		in, err := UnmarshalInstance(data)
		if err != nil || in.N() > 48 {
			return // malformed or too large to fuzz-solve
		}
		mode := AffectanceMode(int(modeByte) % 3)
		m := DefaultModel()
		res, err := Lookup("greedy").Solve(context.Background(), m, in,
			WithAffectanceMode(mode), WithEpsilon(eps))
		if eps < 0 || math.IsNaN(eps) {
			if err == nil {
				t.Fatalf("mode %s accepted invalid epsilon %g", mode, eps)
			}
			return
		}
		if err != nil {
			// Legal rejection (e.g. forced sparse on a coordinate-free
			// metric); the fuzzer only insists accepted schedules are sound.
			return
		}
		if err := Validate(m, in, Bidirectional, res.Schedule); err != nil {
			t.Fatalf("mode %s, eps %g: accepted schedule fails the dense oracle: %v", mode, eps, err)
		}
		// Engine reporting must be consistent with the mode's hard
		// constraints — checked against first principles, not against
		// Resolve (the wrapper fills the field from Resolve, so that
		// comparison would be circular).
		switch res.Stats.Engine {
		case "dense":
			if mode == AffectSparse && eps > 0 {
				t.Fatalf("forced sparse (eps %g) reported dense", eps)
			}
		case "sparse":
			if mode == AffectDense || eps == 0 {
				t.Fatalf("mode %s, eps %g reported sparse", mode, eps)
			}
		default:
			t.Fatalf("mode %s: unexpected Stats.Engine %q", mode, res.Stats.Engine)
		}
	})
}

// FuzzParseAffectanceMode pins the parser/String round trip: every string
// the parser accepts must print back to itself, and every printed mode
// must re-parse to the same value.
func FuzzParseAffectanceMode(f *testing.F) {
	f.Add("auto")
	f.Add("dense")
	f.Add("sparse")
	f.Add("octree")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		mode, err := ParseAffectanceMode(s)
		if err != nil {
			return
		}
		if mode.String() != s {
			t.Fatalf("ParseAffectanceMode(%q).String() = %q", s, mode.String())
		}
		back, err := ParseAffectanceMode(mode.String())
		if err != nil || back != mode {
			t.Fatalf("round trip of %q: %v, %v", s, back, err)
		}
	})
}

// FuzzUnmarshalSchedule guards the schedule decoder.
func FuzzUnmarshalSchedule(f *testing.F) {
	f.Add([]byte(`{"colors":[0,1],"powers":[1,2]}`))
	f.Add([]byte(`{"colors":[],"powers":[]}`))
	f.Add([]byte(`{"colors":[0],"powers":[1,2]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSchedule(data)
		if err != nil {
			return
		}
		if len(s.Colors) == 0 || len(s.Colors) != len(s.Powers) {
			t.Fatal("decoder accepted an inconsistent schedule")
		}
	})
}
