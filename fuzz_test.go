package oblivious

import "testing"

// FuzzUnmarshalInstance guards the JSON decoder against panics and checks
// the round-trip invariant on every successfully decoded instance.
func FuzzUnmarshalInstance(f *testing.F) {
	f.Add([]byte(`{"line":[0,1],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{"points":[[0,0],[1,1]],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{"matrix":[[0,1],[1,0]],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"line":[0,0],"requests":[{"u":0,"v":1}]}`))
	f.Add([]byte(`{"line":[0,1],"requests":[{"u":0,"v":9}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalInstance(data)
		if err != nil {
			return // malformed input must be rejected, not panic
		}
		// Decoded instances must satisfy the constructor invariants.
		if in.N() == 0 {
			t.Fatal("decoded instance with zero requests")
		}
		for i := 0; i < in.N(); i++ {
			if !(in.Length(i) > 0) {
				t.Fatalf("request %d has non-positive length", i)
			}
		}
		// And round-trip.
		out, err := MarshalInstance(in)
		if err != nil {
			t.Fatalf("marshal of a decoded instance failed: %v", err)
		}
		back, err := UnmarshalInstance(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.N() != in.N() {
			t.Fatalf("round trip changed N: %d -> %d", in.N(), back.N())
		}
	})
}

// FuzzUnmarshalSchedule guards the schedule decoder.
func FuzzUnmarshalSchedule(f *testing.F) {
	f.Add([]byte(`{"colors":[0,1],"powers":[1,2]}`))
	f.Add([]byte(`{"colors":[],"powers":[]}`))
	f.Add([]byte(`{"colors":[0],"powers":[1,2]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSchedule(data)
		if err != nil {
			return
		}
		if len(s.Colors) == 0 || len(s.Colors) != len(s.Powers) {
			t.Fatal("decoder accepted an inconsistent schedule")
		}
	})
}
