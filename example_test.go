package oblivious_test

import (
	"context"
	"fmt"

	oblivious "repro"
)

// Solvers are looked up by name and configured with functional options;
// the Result carries the schedule and unified statistics.
func ExampleLookup() {
	points := [][]float64{
		{0, 0}, {3, 0},
		{1, 1}, {1, 5},
		{40, 40}, {42, 40},
		{41, 45}, {41, 41},
	}
	reqs := []oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}}
	in, err := oblivious.NewEuclideanInstance(points, reqs)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := oblivious.Lookup("greedy").Solve(context.Background(), oblivious.DefaultModel(), in,
		oblivious.WithAssignment(oblivious.Sqrt()),
		oblivious.WithValidation(true))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("solver:", res.Solver, "colors:", res.Stats.Colors)
	// Output:
	// solver: greedy colors: 2
}

// SolveAll fans a batch of instances out across a worker pool.
func ExampleSolveAll() {
	var instances []*oblivious.Instance
	for i := 0; i < 4; i++ {
		in, err := oblivious.NewLineInstance(
			[]float64{0, 1, 50, 51, 200, 202},
			[]oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}},
		)
		if err != nil {
			fmt.Println(err)
			return
		}
		instances = append(instances, in)
	}
	results, err := oblivious.SolveAll(context.Background(), oblivious.DefaultModel(),
		instances, oblivious.Lookup("greedy"), oblivious.WithParallelism(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("solved:", len(results), "colors:", results[0].Stats.Colors)
	// Output:
	// solved: 4 colors: 1
}

// Four full-duplex links: two contended pairs near the origin and two far
// away. The square root assignment schedules them in two slots.
func ExampleScheduleGreedy() {
	points := [][]float64{
		{0, 0}, {3, 0},
		{1, 1}, {1, 5},
		{40, 40}, {42, 40},
		{41, 45}, {41, 41},
	}
	reqs := []oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}}
	in, err := oblivious.NewEuclideanInstance(points, reqs)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := oblivious.DefaultModel()
	s, err := oblivious.ScheduleGreedy(m, in, oblivious.Bidirectional, oblivious.Sqrt())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("colors:", s.NumColors())
	fmt.Println("valid:", oblivious.Validate(m, in, oblivious.Bidirectional, s) == nil)
	// Output:
	// colors: 2
	// valid: true
}

// The optimal-power oracle decides whether a set of requests fits in one
// time slot with unconstrained powers — the predicate the paper's theorems
// quantify over.
func ExampleSingleSlotFeasible() {
	in, err := oblivious.NewLineInstance(
		[]float64{0, 1, 100, 101},
		[]oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	ok, _, err := oblivious.SingleSlotFeasible(oblivious.DefaultModel(), in, oblivious.Directed, []int{0, 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("one slot:", ok)
	// Output:
	// one slot: true
}

// Oblivious power assignments map a request's own loss to its power.
func ExampleSqrt() {
	a := oblivious.Sqrt()
	fmt.Println(a.Name(), a.Power(64))
	// Output:
	// sqrt 8
}

// Instances round-trip through JSON for use with the CLI tools.
func ExampleMarshalInstance() {
	in, err := oblivious.NewLineInstance([]float64{0, 2}, []oblivious.Request{{U: 0, V: 1}})
	if err != nil {
		fmt.Println(err)
		return
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	back, err := oblivious.UnmarshalInstance(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("requests:", back.N(), "length:", back.Length(0))
	// Output:
	// requests: 1 length: 2
}
