// Package oblivious is a Go implementation of the algorithms and lower
// bounds from "Oblivious Interference Scheduling" (Fanghänel, Kesselheim,
// Räcke, Vöcking — PODC 2009).
//
// The interference scheduling problem asks, for n communication requests
// given as pairs of points in a metric space, for a transmission power and
// a color (time slot) per request such that all requests of a color can
// communicate simultaneously under the physical (SINR) interference model,
// minimizing the number of colors. The package provides:
//
//   - the SINR model with directed and bidirectional constraint variants;
//   - oblivious power assignments (uniform, linear, square root, ℓ^τ);
//   - greedy first-fit scheduling under any power assignment;
//   - the randomized LP-based O(log n)-approximation for coloring under the
//     square root assignment (Theorem 15);
//   - the constructive Theorem 2 pipeline (tree embeddings → centroid stars
//     → subset selection) certifying the polylog performance of the square
//     root assignment for bidirectional requests;
//   - single-slot feasibility oracles under optimal (non-oblivious) power
//     control, used as the baseline the paper compares against;
//   - workload generators, including the adversarial Ω(n) family from the
//     proof of Theorem 1;
//   - an online scheduling engine (internal/online) that maintains a
//     feasible schedule under request arrivals and departures, exposed as
//     the "online" solver with WithAdmission / WithRepair options.
//
// Every algorithm is a Solver, registered by name (greedy, lp, online,
// pipeline, distributed) and configured with functional options. Quick
// start:
//
//	m := oblivious.DefaultModel()
//	in, _ := oblivious.NewEuclideanInstance(points, reqs)
//	res, _ := oblivious.Lookup("greedy").Solve(ctx, m, in,
//		oblivious.WithAssignment(oblivious.Sqrt()),
//		oblivious.WithValidation(true))
//	fmt.Println(res.Stats.Colors)
//
// Randomized solvers take a seed, and batches of instances fan out over a
// worker pool:
//
//	res, _ := oblivious.Lookup("lp").Solve(ctx, m, in, oblivious.WithSeed(7))
//	all, _ := oblivious.SolveAll(ctx, m, instances, oblivious.Lookup("pipeline"),
//		oblivious.WithParallelism(8))
//
// Solvers(), Register and ParseAssignment round out the registry: CLIs
// resolve -algo and -power flags through them, and external packages can
// register additional solvers. The free Schedule* functions below are the
// pre-registry API, kept as deprecated wrappers.
package oblivious

import (
	"context"
	"math/rand"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/online"
	"repro/internal/power"
	"repro/internal/powerctl"
	"repro/internal/problem"
	"repro/internal/sinr"
	"repro/internal/treestar"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Model carries the physical model parameters α (path-loss exponent),
	// β (gain) and ν (noise).
	Model = sinr.Model
	// Variant selects directed or bidirectional SINR constraints.
	Variant = sinr.Variant
	// Request is a communication request between two nodes.
	Request = problem.Request
	// Instance is a set of requests over a metric space.
	Instance = problem.Instance
	// Schedule assigns a power and a color to every request.
	Schedule = problem.Schedule
	// Assignment is an oblivious power assignment.
	Assignment = power.Assignment
	// LPStats reports diagnostics of the LP-based coloring.
	LPStats = coloring.LPStats
	// PipelineStats reports diagnostics of the Theorem 2 pipeline.
	PipelineStats = treestar.PipelineStats
	// OnlineStats reports the churn-engine counters of the online solver.
	OnlineStats = online.Stats
)

// SINR constraint variants.
const (
	// Directed: dedicated sender and receiver per request.
	Directed = sinr.Directed
	// Bidirectional: both endpoints must be able to receive.
	Bidirectional = sinr.Bidirectional
)

// DefaultModel returns the parameters used throughout the experiments:
// path-loss exponent α = 3, gain β = 1, noise ν = 0.
func DefaultModel() Model { return sinr.Default() }

// Uniform returns the uniform power assignment with power p.
func Uniform(p float64) Assignment { return power.Uniform(p) }

// Linear returns the linear power assignment p_i = ℓ_i.
func Linear() Assignment { return power.Linear() }

// Sqrt returns the square root power assignment p̄_i = √ℓ_i (Theorem 2's
// universally good oblivious assignment for bidirectional requests).
func Sqrt() Assignment { return power.Sqrt() }

// Exponent returns the power assignment p_i = ℓ_i^τ.
func Exponent(tau float64) Assignment { return power.Exponent(tau) }

// NewEuclideanInstance builds an instance over points in R^d. Each request
// references two point indices.
func NewEuclideanInstance(points [][]float64, reqs []Request) (*Instance, error) {
	space, err := geom.NewEuclidean(points)
	if err != nil {
		return nil, err
	}
	return problem.New(space, reqs)
}

// NewLineInstance builds an instance over points on the real line.
func NewLineInstance(coords []float64, reqs []Request) (*Instance, error) {
	space, err := geom.NewLine(coords)
	if err != nil {
		return nil, err
	}
	return problem.New(space, reqs)
}

// NewMatrixInstance builds an instance over an explicit distance matrix
// (any finite metric space).
func NewMatrixInstance(dist [][]float64, reqs []Request) (*Instance, error) {
	space, err := geom.NewMatrix(dist)
	if err != nil {
		return nil, err
	}
	return problem.New(space, reqs)
}

// PowersFor evaluates an oblivious assignment on every request.
func PowersFor(m Model, in *Instance, a Assignment) []float64 {
	return power.Powers(m, in, a)
}

// ScheduleGreedy colors the instance by greedy first-fit under the given
// oblivious power assignment (longest request first).
//
// Deprecated: use Lookup("greedy").Solve with WithVariant and
// WithAssignment.
func ScheduleGreedy(m Model, in *Instance, v Variant, a Assignment) (*Schedule, error) {
	res, err := Lookup("greedy").Solve(context.Background(), m, in, WithVariant(v), WithAssignment(a))
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// ScheduleGreedyPowers colors the instance by greedy first-fit under an
// arbitrary per-request power vector.
func ScheduleGreedyPowers(m Model, in *Instance, v Variant, powers []float64) (*Schedule, error) {
	return coloring.GreedyFirstFit(m, in, v, powers, nil)
}

// ScheduleLP runs the randomized LP-based coloring for the bidirectional
// problem under the square root assignment (Theorem 15). The seed makes
// runs reproducible.
//
// Deprecated: use Lookup("lp").Solve with WithSeed.
func ScheduleLP(m Model, in *Instance, seed int64) (*Schedule, *LPStats, error) {
	res, err := Lookup("lp").Solve(context.Background(), m, in, WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	return res.Schedule, res.Stats.LP, nil
}

// SchedulePipeline colors the bidirectional instance with the constructive
// Theorem 2 pipeline (tree embeddings, centroid stars, thinning) under the
// square root assignment.
//
// Deprecated: use Lookup("pipeline").Solve with WithSeed.
func SchedulePipeline(m Model, in *Instance, seed int64) (*Schedule, error) {
	res, err := Lookup("pipeline").Solve(context.Background(), m, in, WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// Validate checks a complete schedule against the SINR constraints and
// returns nil if it is feasible.
func Validate(m Model, in *Instance, v Variant, s *Schedule) error {
	return m.CheckSchedule(in, v, s)
}

// SingleSlotFeasible decides whether the given requests can all be
// scheduled in one time slot under optimal (non-oblivious) power control,
// returning witness powers if so. This is the baseline predicate the
// paper's theorems quantify over.
func SingleSlotFeasible(m Model, in *Instance, v Variant, set []int) (bool, []float64, error) {
	res, err := powerctl.Feasible(m, in, v, set, powerctl.Options{})
	if err != nil {
		return false, nil, err
	}
	return res.Feasible, res.Powers, nil
}

// MaxSimultaneous greedily builds a maximal set of requests that can share
// one slot under the given oblivious assignment (longest first). It is a
// constructive lower-bound proxy for per-slot capacity.
func MaxSimultaneous(m Model, in *Instance, v Variant, a Assignment) []int {
	return coloring.MaxFeasibleSubsetGreedy(m, in, v, power.Powers(m, in, a), nil)
}

// LiftToNoise scales the powers of a zero-noise feasible schedule so that
// it remains feasible at the given positive noise level (the Section 1.1
// observation made constructive). The input schedule is not modified.
func LiftToNoise(m Model, in *Instance, v Variant, s *Schedule, nu float64) (*Schedule, error) {
	return m.LiftSchedule(in, v, s, nu)
}

// ScheduleDistributed runs a fully distributed slotted decay protocol under
// the square root assignment (the experimental answer to the paper's
// Section 6 open question) and returns the induced feasible schedule
// together with the number of contention slots the protocol needed.
//
// Deprecated: use Lookup("distributed").Solve with WithSeed; the slot
// count is Result.Stats.Slots.
func ScheduleDistributed(m Model, in *Instance, seed int64) (*Schedule, int, error) {
	res, err := Lookup("distributed").Solve(context.Background(), m, in, WithSeed(seed))
	if err != nil {
		return nil, 0, err
	}
	return res.Schedule, res.Stats.Slots, nil
}

// MaxSimultaneousLP runs the LP-guided one-shot capacity maximizer of
// algorithm A (the building block of Theorem 15) over the whole instance
// under the square root assignment, returning a feasible single-slot set.
func MaxSimultaneousLP(m Model, in *Instance, seed int64) ([]int, error) {
	return coloring.MaxFeasibleSubsetLP(m, in, rand.New(rand.NewSource(seed)))
}
