package oblivious

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/affect/sparse"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// TestSolveAllRecoversPanic pins the worker panic barrier: a solver
// core that panics surfaces as that instance's error — with the panic
// value and a stack in the message — instead of crashing the batch.
func TestSolveAllRecoversPanic(t *testing.T) {
	Register("test-panic", NewSolver("test-panic",
		func(context.Context, Model, *Instance, Options) (*Result, error) {
			panic("deliberate test panic")
		}))
	defer unregister("test-panic")
	in := fourLinks(t)
	_, err := SolveAll(context.Background(), DefaultModel(),
		[]*Instance{in, in, in}, Lookup("test-panic"), WithParallelism(2))
	if err == nil {
		t.Fatal("SolveAll swallowed a solver panic")
	}
	for _, want := range []string{"instance ", "panicked", "deliberate test panic"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("panic error %q does not contain %q", err, want)
		}
	}
}

// TestSolvePanicOutsideBatch documents the boundary: a direct Solve
// call has no panic barrier — only SolveAll workers recover, because a
// batch must survive one poisoned instance while a direct caller wants
// the real stack.
func TestSolvePanicOutsideBatch(t *testing.T) {
	s := NewSolver("test-direct-panic", func(context.Context, Model, *Instance, Options) (*Result, error) {
		panic("direct")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("direct Solve did not propagate the panic")
		}
	}()
	_, _ = s.Solve(context.Background(), DefaultModel(), fourLinks(t))
}

// failingSparse swaps the sparse-engine constructor for one that always
// fails, restoring it on cleanup.
func failingSparse(t *testing.T) {
	t.Helper()
	old := sparseBuild
	sparseBuild = func(sinr.Model, sinr.Variant, *problem.Instance, []float64, sparse.Options) (sinr.Cache, error) {
		return nil, errors.New("injected sparse build failure")
	}
	t.Cleanup(func() { sparseBuild = old })
}

// TestAutoSparseFallsBackToDense pins the resilience fallback: when the
// auto mode selects the sparse engine and its build fails, the solve
// runs on dense matrices instead (the instance is small enough for the
// fallback budget), increments resilience/fallbacks, and reports the
// engine it actually used.
func TestAutoSparseFallsBackToDense(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dense matrices for an auto-threshold instance")
	}
	failingSparse(t)
	in, err := instance.UniformRandom(rand.New(rand.NewSource(3)), sparse.AutoThreshold, 700, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	// Directed keeps the dense fallback at two matrices instead of four.
	res, err := Lookup("greedy").Solve(context.Background(), DefaultModel(), in,
		WithVariant(Directed), WithObserver(col))
	if err != nil {
		t.Fatalf("auto mode did not fall back: %v", err)
	}
	if res.Stats.Engine != AffectDense.String() {
		t.Fatalf("Stats.Engine = %q after fallback, want %q", res.Stats.Engine, AffectDense)
	}
	if got := col.Snapshot().Counters["resilience/fallbacks"]; got != 1 {
		t.Fatalf("resilience/fallbacks = %d, want 1", got)
	}
}

// TestForcedSparseStillFailsLoudly pins the fallback's boundary: a
// forced sparse mode is a mandate, not an optimization, so its build
// failure surfaces instead of silently running dense.
func TestForcedSparseStillFailsLoudly(t *testing.T) {
	failingSparse(t)
	in, err := instance.UniformRandom(rand.New(rand.NewSource(4)), 64, 150, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Lookup("greedy").Solve(context.Background(), DefaultModel(), in,
		WithAffectanceMode(AffectSparse))
	if err == nil || !strings.Contains(err.Error(), "injected sparse build failure") {
		t.Fatalf("forced sparse did not surface the build failure: %v", err)
	}
}

// TestOnlineSolverDegradeOptions threads the service-grade options
// through the online solver: a deadline plus retry budget must not
// change the correctness of the produced schedule.
func TestOnlineSolverDegradeOptions(t *testing.T) {
	in, err := instance.UniformRandom(rand.New(rand.NewSource(12)), 60, 150, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lookup("online").Solve(context.Background(), DefaultModel(), in,
		WithSeed(7), WithAdmission("best-fit"), WithRepair("threshold"),
		WithDeadline(time.Millisecond), WithRetry(3, 0), WithValidation(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumColors() < 1 {
		t.Fatal("empty schedule")
	}
	if res.Stats.Online == nil {
		t.Fatal("online stats missing")
	}
}
