package oblivious

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/geom"
)

// instanceJSON is the on-disk format used by cmd/gen and cmd/oblsched.
// Exactly one of Points, Line, Matrix must be set.
type instanceJSON struct {
	// Points are Euclidean coordinates, one per node.
	Points [][]float64 `json:"points,omitempty"`
	// Line are 1-dimensional node coordinates.
	Line []float64 `json:"line,omitempty"`
	// Matrix is an explicit symmetric distance matrix.
	Matrix [][]float64 `json:"matrix,omitempty"`
	// Requests are the communication requests over the node indices.
	Requests []Request `json:"requests"`
}

// MarshalInstance encodes an instance as JSON. Only instances over
// Euclidean, line, or explicit-matrix spaces can be encoded; other spaces
// (trees, stars, restrictions) are serialized as an explicit matrix.
func MarshalInstance(in *Instance) ([]byte, error) {
	if in == nil {
		return nil, errors.New("oblivious: nil instance")
	}
	enc := instanceJSON{Requests: in.Reqs}
	switch s := in.Space.(type) {
	case *geom.Euclidean:
		enc.Points = make([][]float64, s.N())
		for i := range enc.Points {
			enc.Points[i] = s.Point(i)
		}
	case *geom.Line:
		enc.Line = make([]float64, s.N())
		for i := range enc.Line {
			enc.Line[i] = s.Coord(i)
		}
	default:
		n := in.Space.N()
		enc.Matrix = make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = in.Space.Dist(i, j)
			}
			enc.Matrix[i] = row
		}
	}
	return json.MarshalIndent(enc, "", "  ")
}

// scheduleJSON is the on-disk schedule format.
type scheduleJSON struct {
	// Colors[i] is the 0-based time slot of request i.
	Colors []int `json:"colors"`
	// Powers[i] is the transmission power of request i.
	Powers []float64 `json:"powers"`
}

// MarshalSchedule encodes a schedule as JSON.
func MarshalSchedule(s *Schedule) ([]byte, error) {
	if s == nil {
		return nil, errors.New("oblivious: nil schedule")
	}
	if len(s.Colors) != len(s.Powers) {
		return nil, fmt.Errorf("oblivious: %d colors, %d powers", len(s.Colors), len(s.Powers))
	}
	return json.MarshalIndent(scheduleJSON{Colors: s.Colors, Powers: s.Powers}, "", "  ")
}

// UnmarshalSchedule decodes a schedule written by MarshalSchedule.
func UnmarshalSchedule(data []byte) (*Schedule, error) {
	var enc scheduleJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, fmt.Errorf("oblivious: decode schedule: %w", err)
	}
	if len(enc.Colors) == 0 || len(enc.Colors) != len(enc.Powers) {
		return nil, fmt.Errorf("oblivious: schedule with %d colors, %d powers", len(enc.Colors), len(enc.Powers))
	}
	return &Schedule{
		Colors: append([]int(nil), enc.Colors...),
		Powers: append([]float64(nil), enc.Powers...),
	}, nil
}

// UnmarshalInstance decodes an instance from the JSON produced by
// MarshalInstance (or hand-written in the same format).
func UnmarshalInstance(data []byte) (*Instance, error) {
	var enc instanceJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, fmt.Errorf("oblivious: decode instance: %w", err)
	}
	set := 0
	for _, ok := range []bool{len(enc.Points) > 0, len(enc.Line) > 0, len(enc.Matrix) > 0} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("oblivious: exactly one of points, line, matrix must be set")
	}
	switch {
	case len(enc.Points) > 0:
		return NewEuclideanInstance(enc.Points, enc.Requests)
	case len(enc.Line) > 0:
		return NewLineInstance(enc.Line, enc.Requests)
	default:
		return NewMatrixInstance(enc.Matrix, enc.Requests)
	}
}
