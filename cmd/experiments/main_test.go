package main

import (
	"io"
	"testing"
)

func TestRunSingleQuick(t *testing.T) {
	if err := run(io.Discard, true, 1, true, "E2", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelQuick(t *testing.T) {
	if err := run(io.Discard, true, 1, true, "E2,E8,E9", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Unknown ids select nothing; that is not an error.
	if err := run(io.Discard, true, 1, true, "E99", 1); err != nil {
		t.Fatal(err)
	}
}
