// Command experiments regenerates every evaluation table of the
// reproduction (E1–E10, see DESIGN.md), printing them as aligned ASCII or
// Markdown. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-md] [-only E3,E7]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run reduced workloads (seconds instead of minutes)")
		seed     = flag.Int64("seed", 1, "random seed shared by all experiments")
		md       = flag.Bool("md", false, "emit Markdown tables instead of ASCII")
		only     = flag.String("only", "", "comma-separated experiment ids to run (default: all)")
		parallel = flag.Int("parallel", 1, "number of experiments to run concurrently (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(os.Stdout, *quick, *seed, *md, *only, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// result carries one experiment's outcome back to the printer.
type result struct {
	table   *experiment.Table
	err     error
	elapsed time.Duration
}

func run(w io.Writer, quick bool, seed int64, md bool, only string, parallel int) error {
	cfg := experiment.Config{Seed: seed, Quick: quick}
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	var selected []struct {
		ID  string
		Run experiment.Runner
	}
	for _, e := range experiment.All() {
		if len(want) == 0 || want[e.ID] {
			selected = append(selected, e)
		}
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	// Run with a bounded worker pool; print strictly in registry order so
	// the output is deterministic regardless of completion order. The
	// first failure cancels the experiments that have not started yet,
	// mirroring the batch semantics of oblivious.SolveAll.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := make([]result, len(selected))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, id string, runExp experiment.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				results[i] = result{err: fmt.Errorf("%s: %w", id, ctx.Err())}
				return
			}
			start := time.Now()
			t, err := runExp(cfg)
			results[i] = result{table: t, err: err, elapsed: time.Since(start)}
			if err != nil {
				results[i].err = fmt.Errorf("%s: %w", id, err)
				cancel()
			}
		}(i, e.ID, e.Run)
	}
	wg.Wait()

	// Report the experiment that actually failed, not a "context
	// canceled" of one that was skipped because of it.
	var firstErr error
	for _, r := range results {
		if r.err != nil && !errors.Is(r.err, context.Canceled) {
			firstErr = r.err
			break
		}
	}
	if firstErr == nil {
		for _, r := range results {
			if r.err != nil {
				firstErr = r.err
				break
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}

	for i, r := range results {
		if md {
			if err := r.table.Markdown(w); err != nil {
				return err
			}
			continue
		}
		if err := r.table.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "(%s in %.1fs)\n\n", selected[i].ID, r.elapsed.Seconds())
	}
	return nil
}
