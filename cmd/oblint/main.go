// Command oblint runs the project's invariant analyzers (hotpath,
// ctxloop, trackerreset, registryhygiene, benchguard, obsguard — see
// internal/lint) over the packages matched by the given patterns.
//
// Usage:
//
//	go run ./cmd/oblint ./...
//	go run ./cmd/oblint -only hotpath,ctxloop ./internal/affect/...
//	go run ./cmd/oblint -list
//
// Diagnostics are printed one per line as
//
//	path/to/file.go:line:col: [analyzer] message
//
// with paths relative to the working directory. The exit status is 0
// when the tree is clean, 1 when any diagnostic is reported, and 2 when
// loading or analysis itself fails. Unlike a stock go/analysis checker,
// oblint loads and type-checks packages through the standard library's
// source importer, so it works without golang.org/x/tools and without
// network access; the trade-off is that it cannot run under
// `go vet -vettool`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("oblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "oblint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "oblint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "oblint: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath renders name relative to base when that is shorter, keeping
// diagnostics stable and readable regardless of checkout location.
func relPath(base, name string) string {
	if base == "" {
		return name
	}
	rel, err := filepath.Rel(base, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
