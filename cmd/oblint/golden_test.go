package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/oblint -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverges from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenDiagnostics pins the diagnostic line format — one finding per
// line as path:line:col: [analyzer] message, sorted, paths relative to
// the working directory — against the demo fixture package, which holds
// exactly one hotpath and one ctxloop violation. CI and editor
// integrations parse this format; changing it is a breaking change that
// must show up here.
func TestGoldenDiagnostics(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(&stdout, &stderr, []string{"-dir", "testdata", "./demo"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %s", stderr.String())
	}
	checkGolden(t, "demo", stdout.String())
}

// TestGoldenList pins the -list inventory: the analyzer names are part of
// the -only flag's interface and of the CI job definition.
func TestGoldenList(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(&stdout, &stderr, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	checkGolden(t, "list", stdout.String())
}

// TestUnknownAnalyzer pins the -only error path: an unrecognized name is
// a usage error (exit 2), not an empty clean run.
func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(&stdout, &stderr, []string{"-only", "nosuch", "./demo"})
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q, want unknown-analyzer mention", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected stdout: %s", stdout.String())
	}
}
