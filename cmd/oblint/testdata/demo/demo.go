// Package demo is the fixture behind cmd/oblint's golden CLI test: a
// tiny package carrying one hotpath violation and one ctxloop violation,
// so the test can pin the exact diagnostic line format the CI gate and
// editors parse.
package demo

import (
	"context"
	"math"
)

// Loss is annotated hot and calls math.Pow, the canonical hotpath
// finding.
//
//oblint:hotpath
func Loss(d, alpha float64) float64 {
	return math.Pow(d, alpha)
}

// Sweep is an exported context-taking entry point whose loop never polls
// ctx, the canonical ctxloop finding.
func Sweep(ctx context.Context, xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += Loss(x, 2)
	}
	return sum
}
