package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	oblivious "repro"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/oblsched -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// writeLineInstance64 writes the deterministic 64-request line-chain
// instance the golden runs schedule: requests of length 10 spaced 25
// apart, the same shape as the conformance corpus's line entry. It is
// generated rather than committed so the golden directory holds outputs
// only.
func writeLineInstance64(t *testing.T) string {
	t.Helper()
	const n = 64
	coords := make([]float64, 0, 2*n)
	reqs := make([]oblivious.Request, 0, n)
	for i := 0; i < n; i++ {
		u := float64(i) * 35
		coords = append(coords, u, u+10)
		reqs = append(reqs, oblivious.Request{U: 2 * i, V: 2*i + 1})
	}
	in, err := oblivious.NewLineInstance(coords, reqs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "line64.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverges from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenSparseSolvers pins the CLI output of the two solver cores that
// gained a sparse path when the dense-engine gate fell: pipeline and
// distributed under -affect sparse were hard errors before and are now a
// scheduling run on the grid engine, reporting it in the engine line.
func TestGoldenSparseSolvers(t *testing.T) {
	path := writeLineInstance64(t)
	for _, algo := range []string{"pipeline", "distributed"} {
		cfg := baseConfig(path)
		cfg.algo = algo
		cfg.affect = "sparse"
		var sb strings.Builder
		if err := run(&sb, cfg); err != nil {
			t.Errorf("%s -affect sparse: %v", algo, err)
			continue
		}
		checkGolden(t, algo+"_sparse", sb.String())
	}
}

// TestGoldenSparseMatrixMetricError pins the failure path: forcing the
// sparse engine over a metric that carries no grid coordinates must stay
// a loud, stable error for both cores (auto mode on the same instance
// falls back to dense and solves; that path is covered by the root
// conformance suite).
func TestGoldenSparseMatrixMetricError(t *testing.T) {
	data := []byte(`{"matrix":[[0,2,9,9],[2,0,9,9],[9,9,0,3],[9,9,3,0]],"requests":[{"u":0,"v":1},{"u":2,"v":3}]}`)
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"pipeline", "distributed"} {
		cfg := baseConfig(path)
		cfg.algo = algo
		cfg.affect = "sparse"
		err := run(io.Discard, cfg)
		if err == nil {
			t.Errorf("%s -affect sparse on a matrix metric should fail", algo)
			continue
		}
		checkGolden(t, algo+"_sparse_matrix_err", err.Error()+"\n")
	}
}
