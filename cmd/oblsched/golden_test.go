package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	oblivious "repro"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/oblsched -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// writeLineInstance64 writes the deterministic 64-request line-chain
// instance the golden runs schedule: requests of length 10 spaced 25
// apart, the same shape as the conformance corpus's line entry. It is
// generated rather than committed so the golden directory holds outputs
// only.
func writeLineInstance64(t *testing.T) string {
	t.Helper()
	const n = 64
	coords := make([]float64, 0, 2*n)
	reqs := make([]oblivious.Request, 0, n)
	for i := 0; i < n; i++ {
		u := float64(i) * 35
		coords = append(coords, u, u+10)
		reqs = append(reqs, oblivious.Request{U: 2 * i, V: 2*i + 1})
	}
	in, err := oblivious.NewLineInstance(coords, reqs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "line64.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverges from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// latencyField strips the latency_ns field from an event stream: every
// other field of every event is deterministic for a replay trace, wall
// clock readings are not.
var latencyField = regexp.MustCompile(`,"latency_ns":\d+`)

// stableMetrics renders the deterministic projection of a -metrics
// snapshot: counters and gauges in full (they mirror the engine's event
// counts and final state) and, per histogram, only the observation
// count (engine/arrive_ns counts arrivals; its latency values and
// bucket placement are wall-clock noise).
func stableMetrics(t *testing.T, raw []byte) string {
	t.Helper()
	var snap struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	var sb strings.Builder
	section := func(name string, keys []string, line func(k string)) {
		sort.Strings(keys)
		fmt.Fprintf(&sb, "[%s]\n", name)
		for _, k := range keys {
			line(k)
		}
	}
	ck := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		ck = append(ck, k)
	}
	section("counters", ck, func(k string) { fmt.Fprintf(&sb, "%s = %d\n", k, snap.Counters[k]) })
	gk := make([]string, 0, len(snap.Gauges))
	for k := range snap.Gauges {
		gk = append(gk, k)
	}
	section("gauges", gk, func(k string) { fmt.Fprintf(&sb, "%s = %g\n", k, snap.Gauges[k]) })
	hk := make([]string, 0, len(snap.Histograms))
	for k := range snap.Histograms {
		hk = append(hk, k)
	}
	section("histogram counts", hk, func(k string) { fmt.Fprintf(&sb, "%s = %d\n", k, snap.Histograms[k].Count) })
	return sb.String()
}

// TestGoldenTraceObservability pins the -events and -metrics outputs of
// a deterministic replay trace: the full event stream (minus wall-clock
// latencies) and the deterministic projection of the metrics snapshot.
// The two goldens cross-check each other — the arrive/depart counters in
// trace_metrics must equal the arrive/depart line counts in
// trace_events.
func TestGoldenTraceObservability(t *testing.T) {
	path := writeLineInstance64(t)
	dir := t.TempDir()
	cfg := baseConfig(path)
	cfg.trace = "replay"
	cfg.admission, cfg.repair = "best-fit", "eager"
	cfg.events = filepath.Join(dir, "events.jsonl")
	cfg.metrics = filepath.Join(dir, "metrics.json")
	if err := run(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.events)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_events", latencyField.ReplaceAllString(string(raw), ""))
	mraw, err := os.ReadFile(cfg.metrics)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_metrics", stableMetrics(t, mraw))
}

// TestGoldenSolveMetrics pins the deterministic projection of a batch
// solve's -metrics snapshot: the solver counter, the engine build
// counter/bytes gauge, and the per-stage span counts of the pipeline.
func TestGoldenSolveMetrics(t *testing.T) {
	path := writeLineInstance64(t)
	cfg := baseConfig(path)
	cfg.algo = "pipeline"
	cfg.metrics = filepath.Join(t.TempDir(), "metrics.json")
	if err := run(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
	mraw, err := os.ReadFile(cfg.metrics)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "solve_metrics", stableMetrics(t, mraw))
}

// TestGoldenSparseSolvers pins the CLI output of the two solver cores that
// gained a sparse path when the dense-engine gate fell: pipeline and
// distributed under -affect sparse were hard errors before and are now a
// scheduling run on the grid engine, reporting it in the engine line.
func TestGoldenSparseSolvers(t *testing.T) {
	path := writeLineInstance64(t)
	for _, algo := range []string{"pipeline", "distributed"} {
		cfg := baseConfig(path)
		cfg.algo = algo
		cfg.affect = "sparse"
		var sb strings.Builder
		if err := run(&sb, cfg); err != nil {
			t.Errorf("%s -affect sparse: %v", algo, err)
			continue
		}
		checkGolden(t, algo+"_sparse", sb.String())
	}
}

// TestGoldenSparseMatrixMetricError pins the failure path: forcing the
// sparse engine over a metric that carries no grid coordinates must stay
// a loud, stable error for both cores (auto mode on the same instance
// falls back to dense and solves; that path is covered by the root
// conformance suite).
func TestGoldenSparseMatrixMetricError(t *testing.T) {
	data := []byte(`{"matrix":[[0,2,9,9],[2,0,9,9],[9,9,0,3],[9,9,3,0]],"requests":[{"u":0,"v":1},{"u":2,"v":3}]}`)
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"pipeline", "distributed"} {
		cfg := baseConfig(path)
		cfg.algo = algo
		cfg.affect = "sparse"
		err := run(io.Discard, cfg)
		if err == nil {
			t.Errorf("%s -affect sparse on a matrix metric should fail", algo)
			continue
		}
		checkGolden(t, algo+"_sparse_matrix_err", err.Error()+"\n")
	}
}
