package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	oblivious "repro"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	in, err := oblivious.NewLineInstance(
		[]float64{0, 1, 50, 51, 200, 202},
		[]oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGreedy(t *testing.T) {
	path := writeInstance(t)
	// Every registered solver is reachable through -algo.
	for _, algo := range oblivious.Solvers() {
		if err := run(io.Discard, path, "bidirectional", "sqrt", algo, 3, 1, 0, 1, false, "", ""); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunDirectedGreedy(t *testing.T) {
	path := writeInstance(t)
	if err := run(io.Discard, path, "directed", "linear", "greedy", 3, 1, 0, 1, true, "", ""); err != nil {
		t.Error(err)
	}
}

func TestRunWriteAndCheck(t *testing.T) {
	path := writeInstance(t)
	out := filepath.Join(t.TempDir(), "sched.json")
	if err := run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, out, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", out); err != nil {
		t.Errorf("check of a written schedule failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInstance(t)
	cases := []struct {
		name string
		err  error
	}{
		{name: "missing input", err: run(io.Discard, "", "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad variant", err: run(io.Discard, path, "sideways", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad algo", err: run(io.Discard, path, "bidirectional", "sqrt", "annealing", 3, 1, 0, 1, false, "", "")},
		{name: "bad power", err: run(io.Discard, path, "bidirectional", "cubic", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "lp directed", err: run(io.Discard, path, "directed", "sqrt", "lp", 3, 1, 0, 1, false, "", "")},
		{name: "missing file", err: run(io.Discard, filepath.Join(t.TempDir(), "no.json"), "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad check file", err: run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", path)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// The assignment syntax itself is covered by the root package's
// ParseAssignment tests; here we only check the CLI surfaces its errors.
func TestRunBadPowerForLP(t *testing.T) {
	path := writeInstance(t)
	if err := run(io.Discard, path, "bidirectional", "uniform", "lp", 3, 1, 0, 1, false, "", ""); err == nil {
		t.Error("lp with a non-sqrt -power should fail")
	}
}
