package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	oblivious "repro"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	in, err := oblivious.NewLineInstance(
		[]float64{0, 1, 50, 51, 200, 202},
		[]oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// baseConfig returns the flag defaults of the command for one instance.
func baseConfig(inPath string) config {
	return config{
		in: inPath, variant: "bidirectional", power: "sqrt", algo: "greedy",
		alpha: 3, beta: 1, seed: 1,
		admission: "first-fit", repair: "lazy",
		affect: "auto", eps: oblivious.DefaultSparseEpsilon,
	}
}

// sched runs the CLI with scheduling defaults for the trailing flags.
func sched(w io.Writer, inPath, variant, powerFn, algo string, alpha, beta, noise float64, seed int64, verbose bool, outPath, check string) error {
	cfg := baseConfig(inPath)
	cfg.variant, cfg.power, cfg.algo = variant, powerFn, algo
	cfg.alpha, cfg.beta, cfg.noise, cfg.seed = alpha, beta, noise, seed
	cfg.verbose, cfg.out, cfg.check = verbose, outPath, check
	return run(w, cfg)
}

// churn runs the CLI with explicit online/trace knobs.
func churn(w io.Writer, inPath, algo, admission, repair, trace string, nevents int) error {
	cfg := baseConfig(inPath)
	cfg.algo, cfg.admission, cfg.repair = algo, admission, repair
	cfg.trace, cfg.nevents = trace, nevents
	return run(w, cfg)
}

func TestRunGreedy(t *testing.T) {
	path := writeInstance(t)
	// Every registered solver is reachable through -algo.
	for _, algo := range oblivious.Solvers() {
		if err := sched(io.Discard, path, "bidirectional", "sqrt", algo, 3, 1, 0, 1, false, "", ""); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunDirectedGreedy(t *testing.T) {
	path := writeInstance(t)
	if err := sched(io.Discard, path, "directed", "linear", "greedy", 3, 1, 0, 1, true, "", ""); err != nil {
		t.Error(err)
	}
}

func TestRunWriteAndCheck(t *testing.T) {
	path := writeInstance(t)
	out := filepath.Join(t.TempDir(), "sched.json")
	if err := sched(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, out, ""); err != nil {
		t.Fatal(err)
	}
	if err := sched(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", out); err != nil {
		t.Errorf("check of a written schedule failed: %v", err)
	}
}

func TestRunOnlinePolicies(t *testing.T) {
	path := writeInstance(t)
	for _, adm := range []string{"first-fit", "best-fit", "power-fit"} {
		for _, rep := range []string{"lazy", "threshold", "eager"} {
			if err := churn(io.Discard, path, "online", adm, rep, "", 0); err != nil {
				t.Errorf("online %s/%s: %v", adm, rep, err)
			}
		}
	}
}

func TestRunTrace(t *testing.T) {
	path := writeInstance(t)
	for _, trace := range []string{"poisson", "bursty", "replay"} {
		var sb strings.Builder
		if err := churn(&sb, path, "greedy", "best-fit", "eager", trace, 40); err != nil {
			t.Errorf("trace %s: %v", trace, err)
			continue
		}
		out := sb.String()
		for _, want := range []string{"trace:", "peak:", "repairs:", "feasible:  yes"} {
			if !strings.Contains(out, want) {
				t.Errorf("trace %s output missing %q:\n%s", trace, want, out)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInstance(t)
	cases := []struct {
		name string
		err  error
	}{
		{name: "missing input", err: sched(io.Discard, "", "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad variant", err: sched(io.Discard, path, "sideways", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad algo", err: sched(io.Discard, path, "bidirectional", "sqrt", "annealing", 3, 1, 0, 1, false, "", "")},
		{name: "bad power", err: sched(io.Discard, path, "bidirectional", "cubic", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "lp directed", err: sched(io.Discard, path, "directed", "sqrt", "lp", 3, 1, 0, 1, false, "", "")},
		{name: "missing file", err: sched(io.Discard, filepath.Join(t.TempDir(), "no.json"), "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad check file", err: sched(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", path)},
		{name: "bad admission", err: churn(io.Discard, path, "online", "worst-fit", "lazy", "", 0)},
		{name: "bad repair", err: churn(io.Discard, path, "online", "first-fit", "psychic", "", 0)},
		{name: "bad admission non-online", err: churn(io.Discard, path, "greedy", "worst-fit", "lazy", "", 0)},
		{name: "bad repair non-online", err: churn(io.Discard, path, "greedy", "first-fit", "psychic", "", 0)},
		{name: "bad trace", err: churn(io.Discard, path, "greedy", "first-fit", "lazy", "brownian", 0)},
		{name: "trace bad admission", err: churn(io.Discard, path, "greedy", "worst-fit", "lazy", "poisson", 10)},
		{name: "bad affect mode", err: func() error { cfg := baseConfig(path); cfg.affect = "octree"; return run(io.Discard, cfg) }()},
		{name: "negative eps", err: func() error {
			cfg := baseConfig(path)
			cfg.affect = "sparse"
			cfg.eps = -1
			return run(io.Discard, cfg)
		}()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// Profile plumbing: a -memprofile path that cannot be created must fail
// the run (it used to print to stderr and exit 0, leaving callers
// believing they had a profile), and a -cpuprofile failure must carry
// its own prefix. The success paths must leave non-empty profiles.
func TestRunProfileErrors(t *testing.T) {
	path := writeInstance(t)

	cfg := baseConfig(path)
	cfg.memProfile = filepath.Join(t.TempDir(), "no-such-dir", "mem.pb.gz")
	err := run(io.Discard, cfg)
	if err == nil || !strings.Contains(err.Error(), "memprofile") {
		t.Errorf("unwritable -memprofile: err = %v, want a memprofile error", err)
	}

	cfg = baseConfig(path)
	cfg.cpuProfile = filepath.Join(t.TempDir(), "no-such-dir", "cpu.pb.gz")
	err = run(io.Discard, cfg)
	if err == nil || !strings.Contains(err.Error(), "cpuprofile") {
		t.Errorf("unwritable -cpuprofile: err = %v, want a cpuprofile error", err)
	}
}

func TestRunProfilesWritten(t *testing.T) {
	path := writeInstance(t)
	dir := t.TempDir()
	cfg := baseConfig(path)
	cfg.cpuProfile = filepath.Join(dir, "cpu.pb.gz")
	cfg.memProfile = filepath.Join(dir, "mem.pb.gz")
	if err := run(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.cpuProfile, cfg.memProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// The assignment syntax itself is covered by the root package's
// ParseAssignment tests; here we only check the CLI surfaces its errors.
func TestRunBadPowerForLP(t *testing.T) {
	path := writeInstance(t)
	if err := sched(io.Discard, path, "bidirectional", "uniform", "lp", 3, 1, 0, 1, false, "", ""); err == nil {
		t.Error("lp with a non-sqrt -power should fail")
	}
}

// TestRunChaos drives the -chaos flag end to end: every fault kind at
// once, over a small seed sweep, against the tiny instance. The harness
// inside enforces the typed-error and feasibility contracts; here we
// check the CLI surfaces its summary and succeeds.
func TestRunChaos(t *testing.T) {
	path := writeInstance(t)
	var sb strings.Builder
	cfg := baseConfig(path)
	cfg.trace, cfg.nevents = "poisson", 60
	cfg.chaos, cfg.chaosSeeds = "all", 3
	if err := run(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"chaos:", "rejected", "injected:", "feasible:  yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

// TestRunCheckpoint cycles the engine through -checkpoint: the first
// run writes the file, the second restores from it (re-proving
// feasibility) and rewrites it.
func TestRunCheckpoint(t *testing.T) {
	path := writeInstance(t)
	ckpt := filepath.Join(t.TempDir(), "engine.ckpt")
	cfg := baseConfig(path)
	cfg.trace, cfg.nevents = "poisson", 40
	cfg.checkpoint = ckpt
	var first strings.Builder
	if err := run(&first, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "checkpoint: written") {
		t.Fatalf("first run did not write the checkpoint:\n%s", first.String())
	}
	if st, err := os.Stat(ckpt); err != nil || st.Size() == 0 {
		t.Fatalf("checkpoint file missing or empty: %v", err)
	}
	var second strings.Builder
	cfg.seed = 2
	if err := run(&second, cfg); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	for _, want := range []string{"restored:", "checkpoint: rewritten"} {
		if !strings.Contains(out, want) {
			t.Errorf("second run output missing %q:\n%s", want, out)
		}
	}
}

// TestRunChaosErrors pins the flag validation around -chaos/-checkpoint.
func TestRunChaosErrors(t *testing.T) {
	path := writeInstance(t)
	cases := []struct {
		name string
		err  error
	}{
		{name: "chaos without trace", err: func() error {
			cfg := baseConfig(path)
			cfg.chaos = "all"
			return run(io.Discard, cfg)
		}()},
		{name: "checkpoint without trace", err: func() error {
			cfg := baseConfig(path)
			cfg.checkpoint = filepath.Join(t.TempDir(), "c.ckpt")
			return run(io.Discard, cfg)
		}()},
		{name: "bad chaos kind", err: func() error {
			cfg := baseConfig(path)
			cfg.trace, cfg.chaos = "poisson", "gremlins"
			return run(io.Discard, cfg)
		}()},
		{name: "checkpoint with sweep", err: func() error {
			cfg := baseConfig(path)
			cfg.trace, cfg.chaos, cfg.chaosSeeds = "poisson", "all", 2
			cfg.checkpoint = filepath.Join(t.TempDir(), "c.ckpt")
			return run(io.Discard, cfg)
		}()},
		{name: "negative chaos seeds", err: func() error {
			cfg := baseConfig(path)
			cfg.trace, cfg.chaos, cfg.chaosSeeds = "poisson", "all", -1
			return run(io.Discard, cfg)
		}()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
