package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	oblivious "repro"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	in, err := oblivious.NewLineInstance(
		[]float64{0, 1, 50, 51, 200, 202},
		[]oblivious.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sched runs the CLI with scheduling defaults for the trailing flags.
func sched(w io.Writer, inPath, variant, powerFn, algo string, alpha, beta, noise float64, seed int64, verbose bool, outPath, check string) error {
	return run(w, inPath, variant, powerFn, algo, alpha, beta, noise, seed, verbose, outPath, check, "first-fit", "lazy", "", 0)
}

func TestRunGreedy(t *testing.T) {
	path := writeInstance(t)
	// Every registered solver is reachable through -algo.
	for _, algo := range oblivious.Solvers() {
		if err := sched(io.Discard, path, "bidirectional", "sqrt", algo, 3, 1, 0, 1, false, "", ""); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunDirectedGreedy(t *testing.T) {
	path := writeInstance(t)
	if err := sched(io.Discard, path, "directed", "linear", "greedy", 3, 1, 0, 1, true, "", ""); err != nil {
		t.Error(err)
	}
}

func TestRunWriteAndCheck(t *testing.T) {
	path := writeInstance(t)
	out := filepath.Join(t.TempDir(), "sched.json")
	if err := sched(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, out, ""); err != nil {
		t.Fatal(err)
	}
	if err := sched(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", out); err != nil {
		t.Errorf("check of a written schedule failed: %v", err)
	}
}

func TestRunOnlinePolicies(t *testing.T) {
	path := writeInstance(t)
	for _, adm := range []string{"first-fit", "best-fit", "power-fit"} {
		for _, rep := range []string{"lazy", "threshold", "eager"} {
			if err := run(io.Discard, path, "bidirectional", "sqrt", "online", 3, 1, 0, 1, false, "", "", adm, rep, "", 0); err != nil {
				t.Errorf("online %s/%s: %v", adm, rep, err)
			}
		}
	}
}

func TestRunTrace(t *testing.T) {
	path := writeInstance(t)
	for _, trace := range []string{"poisson", "bursty", "replay"} {
		var sb strings.Builder
		if err := run(&sb, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "", "best-fit", "eager", trace, 40); err != nil {
			t.Errorf("trace %s: %v", trace, err)
			continue
		}
		out := sb.String()
		for _, want := range []string{"trace:", "peak:", "repairs:", "feasible:  yes"} {
			if !strings.Contains(out, want) {
				t.Errorf("trace %s output missing %q:\n%s", trace, want, out)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInstance(t)
	cases := []struct {
		name string
		err  error
	}{
		{name: "missing input", err: sched(io.Discard, "", "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad variant", err: sched(io.Discard, path, "sideways", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad algo", err: sched(io.Discard, path, "bidirectional", "sqrt", "annealing", 3, 1, 0, 1, false, "", "")},
		{name: "bad power", err: sched(io.Discard, path, "bidirectional", "cubic", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "lp directed", err: sched(io.Discard, path, "directed", "sqrt", "lp", 3, 1, 0, 1, false, "", "")},
		{name: "missing file", err: sched(io.Discard, filepath.Join(t.TempDir(), "no.json"), "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "")},
		{name: "bad check file", err: sched(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", path)},
		{name: "bad admission", err: run(io.Discard, path, "bidirectional", "sqrt", "online", 3, 1, 0, 1, false, "", "", "worst-fit", "lazy", "", 0)},
		{name: "bad repair", err: run(io.Discard, path, "bidirectional", "sqrt", "online", 3, 1, 0, 1, false, "", "", "first-fit", "psychic", "", 0)},
		{name: "bad admission non-online", err: run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "", "worst-fit", "lazy", "", 0)},
		{name: "bad repair non-online", err: run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "", "first-fit", "psychic", "", 0)},
		{name: "bad trace", err: run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "", "first-fit", "lazy", "brownian", 0)},
		{name: "trace bad admission", err: run(io.Discard, path, "bidirectional", "sqrt", "greedy", 3, 1, 0, 1, false, "", "", "worst-fit", "lazy", "poisson", 10)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// The assignment syntax itself is covered by the root package's
// ParseAssignment tests; here we only check the CLI surfaces its errors.
func TestRunBadPowerForLP(t *testing.T) {
	path := writeInstance(t)
	if err := sched(io.Discard, path, "bidirectional", "uniform", "lp", 3, 1, 0, 1, false, "", ""); err == nil {
		t.Error("lp with a non-sqrt -power should fail")
	}
}
