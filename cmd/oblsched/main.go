// Command oblsched schedules an interference instance read from a JSON
// file (see cmd/gen for the format) and prints the resulting coloring.
// The -algo flag resolves through the solver registry of the root
// package, so every registered solver is available by name.
//
// Usage:
//
//	oblsched -in instance.json [-variant bidirectional] [-power sqrt]
//	         [-algo greedy|lp|online|pipeline|distributed] [-alpha 3]
//	         [-beta 1] [-seed 1] [-affect auto|dense|sparse] [-eps 8]
//
// The affectance engine behind the SINR hot path is selected with
// -affect: "dense" materializes the exact n×n matrices, "sparse" the
// grid-bucketed conservative engine that scales to tens of thousands of
// requests, and "auto" (default) switches on instance size. -eps is the
// sparse far-field error budget; 0 forces the dense path bitwise.
//
// Large runs are profiled without editing code:
//
//	oblsched -in big.json -affect sparse -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// The online solver takes two extra knobs:
//
//	oblsched -in instance.json -algo online -admission best-fit -repair eager
//
// and -trace switches from scheduling to churn simulation: the instance
// is replayed as a stream of arrivals and departures through the online
// engine, reporting peak/final slot counts, repair work, and per-event
// latency instead of a schedule:
//
//	oblsched -in instance.json -trace poisson [-nevents 2000]
//	         [-admission power-fit] [-repair threshold]
//
// -chaos hardens a -trace run into a fault-injection drill: the trace
// is mutated with the named fault kinds (duplicate arrivals, unknown
// ids, reordered pairs, bursts) and the engine's tracker provider is
// wrapped with transient failures and latency spikes; the harness
// (internal/faultinject) verifies the typed-error contract, the
// no-mutation-on-rejection contract, and per-event feasibility, and
// -chaos-seeds widens the drill into a sweep:
//
//	oblsched -in instance.json -trace poisson -chaos all -chaos-seeds 20
//	oblsched -in instance.json -trace bursty -chaos duplicate,unknown
//
// -checkpoint makes the engine durable across invocations: when the
// file exists the engine is restored from it (feasibility re-proved)
// before the replay, and the post-replay state is written back:
//
//	oblsched -in instance.json -trace poisson -checkpoint engine.ckpt
//
// Observability (internal/obs) is wired through three flags:
//
//	oblsched -in instance.json -algo pipeline -metrics metrics.json
//	oblsched -in instance.json -trace poisson -events events.jsonl -metrics m.json
//	oblsched -in big.json -algo online -http localhost:6060
//
// -metrics writes the collector snapshot (counters, gauges, span and
// latency histograms with p50/p90/p99) as JSON on exit; -events streams
// the engine's typed events (arrive/depart/admit/evict/compact/repair)
// as JSON lines during -trace runs; -http serves the live snapshot at
// /metrics plus the runtime profiling endpoints under /debug/pprof/
// while the run is in flight.
//
// Note: -power is enforced for every algorithm. Earlier versions
// silently ignored it for lp and pipeline; those algorithms require the
// sqrt assignment and now reject a conflicting -power instead. The
// churn event count moved from -events to -nevents when -events became
// the event-stream path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	oblivious "repro"
	"repro/internal/affect"
	"repro/internal/affect/sparse"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/online/sim"
	"repro/internal/sinr"
)

// config carries every flag of one invocation; run consumes it so the
// tests can drive the command without a process boundary.
type config struct {
	in, variant, power, algo string
	alpha, beta, noise       float64
	seed                     int64
	verbose                  bool
	out, check               string
	admission, repair        string
	trace                    string
	nevents                  int
	affect                   string
	eps                      float64
	cpuProfile, memProfile   string
	metrics, events          string
	httpAddr                 string
	chaos                    string
	chaosSeeds               int
	checkpoint               string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "", "path to the instance JSON (required)")
	flag.StringVar(&cfg.variant, "variant", "bidirectional", "directed or bidirectional")
	flag.StringVar(&cfg.power, "power", "sqrt", "uniform, linear, sqrt, or exp:<tau> (lp/pipeline require sqrt)")
	flag.StringVar(&cfg.algo, "algo", "greedy", "solver name: "+strings.Join(oblivious.Solvers(), ", "))
	flag.Float64Var(&cfg.alpha, "alpha", 3, "path-loss exponent α")
	flag.Float64Var(&cfg.beta, "beta", 1, "SINR gain β")
	flag.Float64Var(&cfg.noise, "noise", 0, "ambient noise ν")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the randomized algorithms")
	flag.BoolVar(&cfg.verbose, "v", false, "print the full color classes")
	flag.StringVar(&cfg.out, "out", "", "write the schedule as JSON to this path")
	flag.StringVar(&cfg.check, "check", "", "instead of scheduling, validate this schedule JSON against the instance")
	flag.StringVar(&cfg.admission, "admission", "first-fit", "online admission policy: first-fit, best-fit, or power-fit")
	flag.StringVar(&cfg.repair, "repair", "lazy", "online repair strategy: lazy, threshold, or eager")
	flag.StringVar(&cfg.trace, "trace", "", "instead of scheduling, simulate churn: poisson, bursty, or replay")
	flag.IntVar(&cfg.nevents, "nevents", 0, "churn events for -trace poisson/bursty (default 10·n)")
	flag.StringVar(&cfg.affect, "affect", "auto", "affectance engine: auto, dense, or sparse")
	flag.Float64Var(&cfg.eps, "eps", oblivious.DefaultSparseEpsilon, "sparse far-field error budget ε (0 = dense bitwise)")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write an allocation profile to this path on exit")
	flag.StringVar(&cfg.metrics, "metrics", "", "write the metrics snapshot JSON to this path on exit")
	flag.StringVar(&cfg.events, "events", "", "write the engine event stream as JSON lines to this path (-trace only)")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve live /metrics and /debug/pprof on this address while running")
	flag.StringVar(&cfg.chaos, "chaos", "", "inject faults into the -trace replay: \"all\" or a comma list of tracker, latency, duplicate, unknown, reorder, burst, cancel")
	flag.IntVar(&cfg.chaosSeeds, "chaos-seeds", 1, "number of seeds the -chaos sweep runs (seed, seed+1, ...)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "engine checkpoint path: restored before the -trace replay when it exists, written after it")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oblsched:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) (err error) {
	if cfg.in == "" {
		return errors.New("missing -in")
	}
	data, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	in, err := oblivious.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	var v oblivious.Variant
	switch cfg.variant {
	case "directed":
		v = oblivious.Directed
	case "bidirectional":
		v = oblivious.Bidirectional
	default:
		return fmt.Errorf("unknown variant %q", cfg.variant)
	}
	m := oblivious.Model{Alpha: cfg.alpha, Beta: cfg.beta, Noise: cfg.noise}

	// Only the online solver and -trace consult these, but a typo must not
	// pass silently for the others (the same lesson -power already taught).
	if _, err := online.ParseAdmission(cfg.admission); err != nil {
		return err
	}
	if _, err := online.ParseRepair(cfg.repair); err != nil {
		return err
	}
	mode, err := oblivious.ParseAffectanceMode(cfg.affect)
	if err != nil {
		return err
	}
	if cfg.eps < 0 {
		return fmt.Errorf("-eps must be ≥ 0, got %g", cfg.eps)
	}
	if cfg.events != "" && cfg.trace == "" {
		return errors.New("-events streams engine events and needs -trace (the churn event count is -nevents)")
	}
	if cfg.chaos != "" && cfg.trace == "" {
		return errors.New("-chaos injects faults into a churn replay and needs -trace")
	}
	if cfg.checkpoint != "" && cfg.trace == "" {
		return errors.New("-checkpoint snapshots the online engine and needs -trace")
	}
	if cfg.chaosSeeds == 0 {
		cfg.chaosSeeds = 1 // struct-built configs skip the flag default
	}
	if cfg.chaosSeeds < 1 {
		return fmt.Errorf("-chaos-seeds must be ≥ 1, got %d", cfg.chaosSeeds)
	}
	if cfg.chaosSeeds > 1 && cfg.checkpoint != "" {
		return errors.New("-checkpoint works with a single run; drop it or -chaos-seeds")
	}

	// One collector serves all three observability flags; nil when none
	// is given, which keeps every instrumented path on its disabled
	// branch.
	var col *obs.Collector
	if cfg.metrics != "" || cfg.events != "" || cfg.httpAddr != "" {
		col = obs.NewCollector()
	}
	if cfg.httpAddr != "" {
		ln, lerr := net.Listen("tcp", cfg.httpAddr)
		if lerr != nil {
			return fmt.Errorf("http: %w", lerr)
		}
		srv := &http.Server{Handler: col.Mux()}
		go srv.Serve(ln) //nolint — Serve returns when srv closes below
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "oblsched: serving /metrics and /debug/pprof/ on http://%s\n", ln.Addr())
	}
	// The snapshot is written after the solve or trace finished, so it
	// holds the run's final counters rather than a mid-flight cut.
	writeMetrics := func() error {
		if cfg.metrics == "" {
			return nil
		}
		f, ferr := os.Create(cfg.metrics)
		if ferr != nil {
			return fmt.Errorf("metrics: %w", ferr)
		}
		if ferr := col.WriteJSON(f); ferr != nil {
			f.Close()
			return fmt.Errorf("metrics: %w", ferr)
		}
		if ferr := f.Close(); ferr != nil {
			return fmt.Errorf("metrics: %w", ferr)
		}
		return nil
	}

	// Profile failures are run's failures: a silently truncated or missing
	// profile after a half-hour run wastes the whole run, so Close and
	// write errors propagate through the named return instead of going to
	// stderr as advisory noise.
	if cfg.cpuProfile != "" {
		f, cerr := os.Create(cfg.cpuProfile)
		if cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
	}
	if cfg.memProfile != "" {
		defer func() {
			if werr := writeMemProfile(cfg.memProfile); werr != nil && err == nil {
				err = fmt.Errorf("memprofile: %w", werr)
			}
		}()
	}

	if cfg.check != "" {
		sdata, err := os.ReadFile(cfg.check)
		if err != nil {
			return err
		}
		sched, err := oblivious.UnmarshalSchedule(sdata)
		if err != nil {
			return err
		}
		if err := oblivious.Validate(m, in, v, sched); err != nil {
			return fmt.Errorf("schedule invalid: %w", err)
		}
		fmt.Fprintf(w, "schedule valid: %d requests, %d colors\n", in.N(), sched.NumColors())
		return nil
	}

	if cfg.trace != "" {
		var terr error
		if cfg.chaos != "" || cfg.checkpoint != "" {
			terr = runChaos(w, m, in, v, mode, col, cfg)
		} else {
			terr = runTrace(w, m, in, v, mode, col, cfg)
		}
		if terr != nil {
			return terr
		}
		return writeMetrics()
	}

	a, err := oblivious.ParseAssignment(cfg.power)
	if err != nil {
		return err
	}
	opts := []oblivious.Option{
		oblivious.WithVariant(v),
		oblivious.WithAssignment(a),
		oblivious.WithSeed(cfg.seed),
		oblivious.WithAffectanceMode(mode),
		oblivious.WithEpsilon(cfg.eps),
		oblivious.WithAdmission(cfg.admission),
		oblivious.WithRepair(cfg.repair),
		oblivious.WithValidation(true),
	}
	if col.Enabled() {
		opts = append(opts, oblivious.WithObserver(col))
	}
	res, err := oblivious.Lookup(cfg.algo).Solve(context.Background(), m, in, opts...)
	if err != nil {
		return err
	}
	s := res.Schedule
	fmt.Fprintf(w, "requests: %d\ncolors:   %d\nenergy:   %.4g\nengine:   %s\nvalid:    yes\n",
		in.N(), s.NumColors(), s.TotalEnergy(), res.Stats.Engine)
	if res.Stats.Slots > 0 {
		fmt.Fprintf(w, "slots:    %d contention slots\n", res.Stats.Slots)
	}
	if st := res.Stats.Online; st != nil {
		fmt.Fprintf(w, "churn:    peak %d slots, %d repairs (%d moves, %d re-packs)\n",
			st.PeakSlots, st.Repairs, st.Moves, st.Repacks)
	}
	if cfg.out != "" {
		data, err := oblivious.MarshalSchedule(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if cfg.verbose {
		for c, class := range s.Classes() {
			fmt.Fprintf(w, "color %d:", c)
			for _, i := range class {
				fmt.Fprintf(w, " %d", i)
			}
			fmt.Fprintln(w)
		}
	}
	return writeMetrics()
}

// writeMemProfile snapshots the retained heap to path, reporting create,
// write, and close failures alike — a heap profile cut short by a full
// disk must not look like a small heap.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize the retained set before sampling
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// genTrace builds the churn trace the -trace flag names.
func genTrace(rng *rand.Rand, kind string, in *oblivious.Instance, events int) (sim.Trace, error) {
	n := in.N()
	switch kind {
	case "poisson":
		// Rate and holding time chosen for a steady state of ≈ n/2 active.
		return sim.Poisson(rng, n, float64(n)/4, 2, events), nil
	case "bursty":
		size := n / 8
		if size < 2 {
			size = 2
		}
		return sim.Bursty(rng, n, 1, size, 2, events), nil
	case "replay":
		return sim.Replay(in), nil
	default:
		return nil, fmt.Errorf("unknown -trace %q (want poisson, bursty, or replay)", kind)
	}
}

// runChaos is the hardened replay path behind -chaos and -checkpoint:
// the churn trace is mutated into a hostile one (duplicates, unknown
// ids, reordered pairs, bursts), the tracker provider is wrapped with
// transient failures and latency spikes, and the whole thing is driven
// through the fault-injection harness, which enforces the typed-error
// contract, the no-mutation-on-rejection contract, and per-event
// feasibility. The cancel kind crashes the replay mid-trace and
// verifies a checkpoint/restore round trip before finishing on the
// restored engine. With -chaos-seeds > 1 the run sweeps consecutive
// seeds. A -checkpoint path is restored before the replay when the
// file exists and (re)written after it.
func runChaos(w io.Writer, m oblivious.Model, in *oblivious.Instance, v oblivious.Variant, mode oblivious.AffectanceMode, col *obs.Collector, cfg config) error {
	var kinds []faultinject.Kind
	if cfg.chaos != "" {
		var err error
		if kinds, err = faultinject.ParseKinds(cfg.chaos); err != nil {
			return err
		}
	}
	hasKind := func(want faultinject.Kind) bool {
		for _, k := range kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	a, err := oblivious.ParseAssignment(cfg.power)
	if err != nil {
		return err
	}
	adm, err := online.ParseAdmission(cfg.admission)
	if err != nil {
		return err
	}
	rep, err := online.ParseRepair(cfg.repair)
	if err != nil {
		return err
	}
	powers := oblivious.PowersFor(m, in, a)
	n := in.N()
	events := cfg.nevents
	if events <= 0 {
		events = 10 * n
	}

	engOpts := []online.Option{online.WithAdmission(adm), online.WithRepair(rep)}
	if col.Enabled() {
		engOpts = append(engOpts, online.WithObserver(col))
	}
	var injCfg faultinject.Config
	if hasKind(faultinject.KindTrackerError) {
		injCfg.TrackerFailProb, injCfg.TrackerFailRun = 0.2, 2
		engOpts = append(engOpts, online.WithRetry(4, 50*time.Microsecond))
	}
	if hasKind(faultinject.KindLatency) {
		injCfg.LatencyProb, injCfg.Latency = 0.02, 200*time.Microsecond
		engOpts = append(engOpts, online.WithDeadline(100*time.Microsecond))
	}

	var total faultinject.Result
	var injectedFails, injectedSpikes int
	for s := 0; s < cfg.chaosSeeds; s++ {
		seed := cfg.seed + int64(s)
		// Fresh cache, injector and engine per seed: the sweep proves
		// independent runs, not one long one.
		inner, err := buildTraceCache(m, in, v, mode, powers, cfg.eps)
		if err != nil {
			return err
		}
		inj := faultinject.NewInjector(seed, injCfg)
		mm := m
		if wc := faultinject.WrapCache(inner, inj); wc != nil {
			mm = m.WithCache(wc)
		} else {
			mm = m.WithCache(inner)
		}
		var eng *online.Engine
		restored := false
		if cfg.checkpoint != "" {
			if f, oerr := os.Open(cfg.checkpoint); oerr == nil {
				cp, rerr := online.ReadCheckpoint(f)
				f.Close()
				if rerr != nil {
					return rerr
				}
				if eng, rerr = online.Restore(mm, in, powers, cp, engOpts...); rerr != nil {
					return rerr
				}
				restored = true
				fmt.Fprintf(w, "restored:  %d active requests in %d slots from %s\n",
					eng.Len(), eng.NumSlots(), cfg.checkpoint)
			} else if !errors.Is(oerr, os.ErrNotExist) {
				return oerr
			}
		}
		if eng == nil {
			if eng, err = online.New(mm, in, v, powers, engOpts...); err != nil {
				return err
			}
		}
		inj.Arm()
		rng := rand.New(rand.NewSource(seed))
		tr, err := genTrace(rng, cfg.trace, in, events)
		if err != nil {
			return err
		}
		var ft faultinject.FaultTrace
		if len(kinds) > 0 {
			ft = faultinject.Mutate(rng, n, tr, kinds, 0.08)
		} else {
			ft = faultinject.Lift(tr)
		}
		abortAt := -1
		if hasKind(faultinject.KindCancel) {
			abortAt = len(ft) / 2
		}
		res, err := faultinject.Drive(context.Background(), eng, ft, faultinject.Options{AbortAt: abortAt})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if res.Aborted && abortAt >= 0 {
			// The crash model: checkpoint the survivor, restore, verify
			// the round trip, and finish the trace on the restored engine.
			inj.Disarm()
			cp := eng.Checkpoint()
			eng, err = online.Restore(mm, in, powers, cp, engOpts...)
			if err != nil {
				return fmt.Errorf("seed %d: restore after crash: %w", seed, err)
			}
			inj.Arm()
			rest, err := faultinject.Drive(context.Background(), eng, ft[abortAt:], faultinject.Options{AbortAt: -1})
			if err != nil {
				return fmt.Errorf("seed %d: post-restore replay: %w", seed, err)
			}
			res.Applied += rest.Applied
			res.Rejected += rest.Rejected
			res.TrackerUnavailable += rest.TrackerUnavailable
		}
		inj.Disarm()
		// Oracle re-check, mirroring the plain trace path: every slot
		// against the uncached model, not just the engine's trackers.
		for sl := 0; sl < eng.NumSlots(); sl++ {
			if members := eng.Slot(sl); len(members) > 0 && !m.SetFeasible(in, v, powers, members) {
				return fmt.Errorf("seed %d: slot %d infeasible per the uncached oracle", seed, sl)
			}
		}
		if cfg.checkpoint != "" {
			f, cerr := os.Create(cfg.checkpoint)
			if cerr != nil {
				return fmt.Errorf("checkpoint: %w", cerr)
			}
			if cerr = online.WriteCheckpoint(f, eng.Checkpoint()); cerr != nil {
				f.Close()
				return fmt.Errorf("checkpoint: %w", cerr)
			}
			if cerr = f.Close(); cerr != nil {
				return fmt.Errorf("checkpoint: %w", cerr)
			}
			verb := "written"
			if restored {
				verb = "rewritten"
			}
			fmt.Fprintf(w, "checkpoint: %s to %s (%d active, %d slots)\n",
				verb, cfg.checkpoint, eng.Len(), eng.NumSlots())
		}
		total.Applied += res.Applied
		total.Rejected += res.Rejected
		total.TrackerUnavailable += res.TrackerUnavailable
		injectedFails += inj.TrackerFails()
		injectedSpikes += inj.Latencies()
	}
	faults := "none"
	if cfg.chaos != "" {
		faults = cfg.chaos
	}
	fmt.Fprintf(w, "chaos:     %s over %d seed(s), faults: %s\n", cfg.trace, cfg.chaosSeeds, faults)
	fmt.Fprintf(w, "events:    %d applied, %d rejected (all with the expected typed error), %d tracker-unavailable\n",
		total.Applied, total.Rejected, total.TrackerUnavailable)
	fmt.Fprintf(w, "injected:  %d tracker failures, %d latency spikes\n", injectedFails, injectedSpikes)
	fmt.Fprintf(w, "feasible:  yes (oracle-checked, every run)\n")
	return nil
}

// buildTraceCache builds the affectance engine the resolved mode
// selects, shared by the chaos and checkpoint paths.
func buildTraceCache(m oblivious.Model, in *oblivious.Instance, v oblivious.Variant, mode oblivious.AffectanceMode, powers []float64, eps float64) (sinr.Cache, error) {
	if mode.Resolve(in, eps) == oblivious.AffectSparse {
		return sparse.For(m, v, in, powers, sparse.Options{Epsilon: eps})
	}
	return affect.New(m, v, in, powers), nil
}

// runTrace replays the instance as a churn trace through the online
// engine and prints the time-series summary. It always runs observed:
// the cost line below needs the gated per-event timing, so when run
// passed no collector a local one is created here.
func runTrace(w io.Writer, m oblivious.Model, in *oblivious.Instance, v oblivious.Variant, mode oblivious.AffectanceMode, col *obs.Collector, cfg config) error {
	if !col.Enabled() {
		col = obs.NewCollector()
	}
	a, err := oblivious.ParseAssignment(cfg.power)
	if err != nil {
		return err
	}
	adm, err := online.ParseAdmission(cfg.admission)
	if err != nil {
		return err
	}
	rep, err := online.ParseRepair(cfg.repair)
	if err != nil {
		return err
	}
	powers := oblivious.PowersFor(m, in, a)
	// Mirror the solver-level engine selection through the same Resolve
	// predicate: the online engine reuses a covering sparse engine from
	// the model and otherwise builds the dense matrices itself.
	if mode.Resolve(in, cfg.eps) == oblivious.AffectSparse {
		c, err := sparse.For(m, v, in, powers, sparse.Options{Epsilon: cfg.eps})
		if err != nil {
			return err
		}
		m = m.WithCache(c)
	}
	eng, err := online.New(m, in, v, powers,
		online.WithAdmission(adm), online.WithRepair(rep), online.WithObserver(col))
	if err != nil {
		return err
	}
	var (
		evFile *os.File
		sink   *obs.JSONLSink
	)
	if cfg.events != "" {
		evFile, err = os.Create(cfg.events)
		if err != nil {
			return fmt.Errorf("events: %w", err)
		}
		defer evFile.Close()
		sink = obs.NewJSONLSink(evFile)
		col.Attach(sink)
	}
	n := in.N()
	events := cfg.nevents
	if events <= 0 {
		events = 10 * n
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	tr, err := genTrace(rng, cfg.trace, in, events)
	if err != nil {
		return err
	}
	res, err := sim.Run(eng, tr)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(w, "trace:     %s (%d events: %d arrivals, %d departures)\n",
		cfg.trace, res.Events, res.Arrivals, res.Departures)
	fmt.Fprintf(w, "policy:    admission %s, repair %s\n", adm, rep)
	fmt.Fprintf(w, "peak:      %d slots\n", res.PeakSlots)
	fmt.Fprintf(w, "final:     %d slots, %d active requests\n", eng.NumSlots(), eng.Len())
	fmt.Fprintf(w, "repairs:   %d (%d moves, %d re-packs)\n", st.Repairs, st.Moves, st.Repacks)
	fmt.Fprintf(w, "cost:      mean %v/event, max %v (%d tracker row ops)\n",
		time.Duration(int64(res.MeanCostNs())), time.Duration(res.MaxCostNs()), st.RowOps)
	// Re-check every slot against the uncached oracle, not just the
	// engine's own trackers.
	feasible := eng.Feasible()
	for s := 0; feasible && s < eng.NumSlots(); s++ {
		if members := eng.Slot(s); len(members) > 0 && !m.SetFeasible(in, v, powers, members) {
			feasible = false
		}
	}
	if !feasible {
		fmt.Fprintf(w, "feasible:  NO\n")
		return fmt.Errorf("infeasible slot after %d events", res.Events)
	}
	fmt.Fprintf(w, "feasible:  yes (oracle-checked)\n")
	if sink != nil {
		// Flushed (and closed, surfacing write errors) only on the success
		// path; the deferred Close covers the error returns above.
		if ferr := sink.Flush(); ferr != nil {
			return fmt.Errorf("events: %w", ferr)
		}
		if cerr := evFile.Close(); cerr != nil {
			return fmt.Errorf("events: %w", cerr)
		}
	}
	return nil
}
