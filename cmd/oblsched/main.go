// Command oblsched schedules an interference instance read from a JSON
// file (see cmd/gen for the format) and prints the resulting coloring.
// The -algo flag resolves through the solver registry of the root
// package, so every registered solver is available by name.
//
// Usage:
//
//	oblsched -in instance.json [-variant bidirectional] [-power sqrt]
//	         [-algo greedy|lp|pipeline|distributed] [-alpha 3] [-beta 1]
//	         [-seed 1]
//
// Note: -power is enforced for every algorithm. Earlier versions
// silently ignored it for lp and pipeline; those algorithms require the
// sqrt assignment and now reject a conflicting -power instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	oblivious "repro"
)

func main() {
	var (
		inPath  = flag.String("in", "", "path to the instance JSON (required)")
		variant = flag.String("variant", "bidirectional", "directed or bidirectional")
		powerFn = flag.String("power", "sqrt", "uniform, linear, sqrt, or exp:<tau> (lp/pipeline require sqrt)")
		algo    = flag.String("algo", "greedy", "solver name: "+strings.Join(oblivious.Solvers(), ", "))
		alpha   = flag.Float64("alpha", 3, "path-loss exponent α")
		beta    = flag.Float64("beta", 1, "SINR gain β")
		noise   = flag.Float64("noise", 0, "ambient noise ν")
		seed    = flag.Int64("seed", 1, "seed for the randomized algorithms")
		verbose = flag.Bool("v", false, "print the full color classes")
		outPath = flag.String("out", "", "write the schedule as JSON to this path")
		check   = flag.String("check", "", "instead of scheduling, validate this schedule JSON against the instance")
	)
	flag.Parse()
	if err := run(os.Stdout, *inPath, *variant, *powerFn, *algo, *alpha, *beta, *noise, *seed, *verbose, *outPath, *check); err != nil {
		fmt.Fprintln(os.Stderr, "oblsched:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, inPath, variant, powerFn, algo string, alpha, beta, noise float64, seed int64, verbose bool, outPath, check string) error {
	if inPath == "" {
		return fmt.Errorf("missing -in")
	}
	data, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	in, err := oblivious.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	var v oblivious.Variant
	switch variant {
	case "directed":
		v = oblivious.Directed
	case "bidirectional":
		v = oblivious.Bidirectional
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	m := oblivious.Model{Alpha: alpha, Beta: beta, Noise: noise}

	if check != "" {
		sdata, err := os.ReadFile(check)
		if err != nil {
			return err
		}
		sched, err := oblivious.UnmarshalSchedule(sdata)
		if err != nil {
			return err
		}
		if err := oblivious.Validate(m, in, v, sched); err != nil {
			return fmt.Errorf("schedule invalid: %w", err)
		}
		fmt.Fprintf(w, "schedule valid: %d requests, %d colors\n", in.N(), sched.NumColors())
		return nil
	}

	a, err := oblivious.ParseAssignment(powerFn)
	if err != nil {
		return err
	}
	res, err := oblivious.Lookup(algo).Solve(context.Background(), m, in,
		oblivious.WithVariant(v),
		oblivious.WithAssignment(a),
		oblivious.WithSeed(seed),
		oblivious.WithValidation(true))
	if err != nil {
		return err
	}
	s := res.Schedule
	fmt.Fprintf(w, "requests: %d\ncolors:   %d\nenergy:   %.4g\nvalid:    yes\n",
		in.N(), s.NumColors(), s.TotalEnergy())
	if res.Stats.Slots > 0 {
		fmt.Fprintf(w, "slots:    %d contention slots\n", res.Stats.Slots)
	}
	if outPath != "" {
		data, err := oblivious.MarshalSchedule(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if verbose {
		for c, class := range s.Classes() {
			fmt.Fprintf(w, "color %d:", c)
			for _, i := range class {
				fmt.Fprintf(w, " %d", i)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
