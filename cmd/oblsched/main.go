// Command oblsched schedules an interference instance read from a JSON
// file (see cmd/gen for the format) and prints the resulting coloring.
// The -algo flag resolves through the solver registry of the root
// package, so every registered solver is available by name.
//
// Usage:
//
//	oblsched -in instance.json [-variant bidirectional] [-power sqrt]
//	         [-algo greedy|lp|online|pipeline|distributed] [-alpha 3]
//	         [-beta 1] [-seed 1]
//
// The online solver takes two extra knobs:
//
//	oblsched -in instance.json -algo online -admission best-fit -repair eager
//
// and -trace switches from scheduling to churn simulation: the instance
// is replayed as a stream of arrivals and departures through the online
// engine, reporting peak/final slot counts, repair work, and per-event
// latency instead of a schedule:
//
//	oblsched -in instance.json -trace poisson [-events 2000]
//	         [-admission power-fit] [-repair threshold]
//
// Note: -power is enforced for every algorithm. Earlier versions
// silently ignored it for lp and pipeline; those algorithms require the
// sqrt assignment and now reject a conflicting -power instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	oblivious "repro"
	"repro/internal/online"
	"repro/internal/online/sim"
)

func main() {
	var (
		inPath    = flag.String("in", "", "path to the instance JSON (required)")
		variant   = flag.String("variant", "bidirectional", "directed or bidirectional")
		powerFn   = flag.String("power", "sqrt", "uniform, linear, sqrt, or exp:<tau> (lp/pipeline require sqrt)")
		algo      = flag.String("algo", "greedy", "solver name: "+strings.Join(oblivious.Solvers(), ", "))
		alpha     = flag.Float64("alpha", 3, "path-loss exponent α")
		beta      = flag.Float64("beta", 1, "SINR gain β")
		noise     = flag.Float64("noise", 0, "ambient noise ν")
		seed      = flag.Int64("seed", 1, "seed for the randomized algorithms")
		verbose   = flag.Bool("v", false, "print the full color classes")
		outPath   = flag.String("out", "", "write the schedule as JSON to this path")
		check     = flag.String("check", "", "instead of scheduling, validate this schedule JSON against the instance")
		admission = flag.String("admission", "first-fit", "online admission policy: first-fit, best-fit, or power-fit")
		repair    = flag.String("repair", "lazy", "online repair strategy: lazy, threshold, or eager")
		trace     = flag.String("trace", "", "instead of scheduling, simulate churn: poisson, bursty, or replay")
		events    = flag.Int("events", 0, "churn events for -trace poisson/bursty (default 10·n)")
	)
	flag.Parse()
	if err := run(os.Stdout, *inPath, *variant, *powerFn, *algo, *alpha, *beta, *noise, *seed, *verbose, *outPath, *check, *admission, *repair, *trace, *events); err != nil {
		fmt.Fprintln(os.Stderr, "oblsched:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, inPath, variant, powerFn, algo string, alpha, beta, noise float64, seed int64, verbose bool, outPath, check, admission, repair, trace string, events int) error {
	if inPath == "" {
		return fmt.Errorf("missing -in")
	}
	data, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	in, err := oblivious.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	var v oblivious.Variant
	switch variant {
	case "directed":
		v = oblivious.Directed
	case "bidirectional":
		v = oblivious.Bidirectional
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	m := oblivious.Model{Alpha: alpha, Beta: beta, Noise: noise}

	// Only the online solver and -trace consult these, but a typo must not
	// pass silently for the others (the same lesson -power already taught).
	if _, err := online.ParseAdmission(admission); err != nil {
		return err
	}
	if _, err := online.ParseRepair(repair); err != nil {
		return err
	}

	if check != "" {
		sdata, err := os.ReadFile(check)
		if err != nil {
			return err
		}
		sched, err := oblivious.UnmarshalSchedule(sdata)
		if err != nil {
			return err
		}
		if err := oblivious.Validate(m, in, v, sched); err != nil {
			return fmt.Errorf("schedule invalid: %w", err)
		}
		fmt.Fprintf(w, "schedule valid: %d requests, %d colors\n", in.N(), sched.NumColors())
		return nil
	}

	if trace != "" {
		return runTrace(w, m, in, v, powerFn, admission, repair, trace, events, seed)
	}

	a, err := oblivious.ParseAssignment(powerFn)
	if err != nil {
		return err
	}
	res, err := oblivious.Lookup(algo).Solve(context.Background(), m, in,
		oblivious.WithVariant(v),
		oblivious.WithAssignment(a),
		oblivious.WithSeed(seed),
		oblivious.WithAdmission(admission),
		oblivious.WithRepair(repair),
		oblivious.WithValidation(true))
	if err != nil {
		return err
	}
	s := res.Schedule
	fmt.Fprintf(w, "requests: %d\ncolors:   %d\nenergy:   %.4g\nvalid:    yes\n",
		in.N(), s.NumColors(), s.TotalEnergy())
	if res.Stats.Slots > 0 {
		fmt.Fprintf(w, "slots:    %d contention slots\n", res.Stats.Slots)
	}
	if st := res.Stats.Online; st != nil {
		fmt.Fprintf(w, "churn:    peak %d slots, %d repairs (%d moves, %d re-packs)\n",
			st.PeakSlots, st.Repairs, st.Moves, st.Repacks)
	}
	if outPath != "" {
		data, err := oblivious.MarshalSchedule(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if verbose {
		for c, class := range s.Classes() {
			fmt.Fprintf(w, "color %d:", c)
			for _, i := range class {
				fmt.Fprintf(w, " %d", i)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// runTrace replays the instance as a churn trace through the online
// engine and prints the time-series summary.
func runTrace(w io.Writer, m oblivious.Model, in *oblivious.Instance, v oblivious.Variant, powerFn, admission, repair, trace string, events int, seed int64) error {
	a, err := oblivious.ParseAssignment(powerFn)
	if err != nil {
		return err
	}
	adm, err := online.ParseAdmission(admission)
	if err != nil {
		return err
	}
	rep, err := online.ParseRepair(repair)
	if err != nil {
		return err
	}
	powers := oblivious.PowersFor(m, in, a)
	eng, err := online.New(m, in, v, powers, online.WithAdmission(adm), online.WithRepair(rep))
	if err != nil {
		return err
	}
	n := in.N()
	if events <= 0 {
		events = 10 * n
	}
	rng := rand.New(rand.NewSource(seed))
	var tr sim.Trace
	switch trace {
	case "poisson":
		// Rate and holding time chosen for a steady state of ≈ n/2 active.
		tr = sim.Poisson(rng, n, float64(n)/4, 2, events)
	case "bursty":
		size := n / 8
		if size < 2 {
			size = 2
		}
		tr = sim.Bursty(rng, n, 1, size, 2, events)
	case "replay":
		tr = sim.Replay(in)
	default:
		return fmt.Errorf("unknown -trace %q (want poisson, bursty, or replay)", trace)
	}
	res, err := sim.Run(eng, tr)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(w, "trace:     %s (%d events: %d arrivals, %d departures)\n",
		trace, res.Events, res.Arrivals, res.Departures)
	fmt.Fprintf(w, "policy:    admission %s, repair %s\n", adm, rep)
	fmt.Fprintf(w, "peak:      %d slots\n", res.PeakSlots)
	fmt.Fprintf(w, "final:     %d slots, %d active requests\n", eng.NumSlots(), eng.Len())
	fmt.Fprintf(w, "repairs:   %d (%d moves, %d re-packs)\n", st.Repairs, st.Moves, st.Repacks)
	fmt.Fprintf(w, "cost:      mean %v/event, max %v (%d tracker row ops)\n",
		time.Duration(int64(res.MeanCostNs())), time.Duration(res.MaxCostNs()), st.RowOps)
	// Re-check every slot against the uncached oracle, not just the
	// engine's own trackers.
	feasible := eng.Feasible()
	for s := 0; feasible && s < eng.NumSlots(); s++ {
		if members := eng.Slot(s); len(members) > 0 && !m.SetFeasible(in, v, powers, members) {
			feasible = false
		}
	}
	if !feasible {
		fmt.Fprintf(w, "feasible:  NO\n")
		return fmt.Errorf("infeasible slot after %d events", res.Events)
	}
	fmt.Fprintf(w, "feasible:  yes (oracle-checked)\n")
	return nil
}
