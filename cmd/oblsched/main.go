// Command oblsched schedules an interference instance read from a JSON
// file (see cmd/gen for the format) and prints the resulting coloring.
// The -algo flag resolves through the solver registry of the root
// package, so every registered solver is available by name.
//
// Usage:
//
//	oblsched -in instance.json [-variant bidirectional] [-power sqrt]
//	         [-algo greedy|lp|online|pipeline|distributed] [-alpha 3]
//	         [-beta 1] [-seed 1] [-affect auto|dense|sparse] [-eps 8]
//
// The affectance engine behind the SINR hot path is selected with
// -affect: "dense" materializes the exact n×n matrices, "sparse" the
// grid-bucketed conservative engine that scales to tens of thousands of
// requests, and "auto" (default) switches on instance size. -eps is the
// sparse far-field error budget; 0 forces the dense path bitwise.
//
// Large runs are profiled without editing code:
//
//	oblsched -in big.json -affect sparse -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// The online solver takes two extra knobs:
//
//	oblsched -in instance.json -algo online -admission best-fit -repair eager
//
// and -trace switches from scheduling to churn simulation: the instance
// is replayed as a stream of arrivals and departures through the online
// engine, reporting peak/final slot counts, repair work, and per-event
// latency instead of a schedule:
//
//	oblsched -in instance.json -trace poisson [-nevents 2000]
//	         [-admission power-fit] [-repair threshold]
//
// Observability (internal/obs) is wired through three flags:
//
//	oblsched -in instance.json -algo pipeline -metrics metrics.json
//	oblsched -in instance.json -trace poisson -events events.jsonl -metrics m.json
//	oblsched -in big.json -algo online -http localhost:6060
//
// -metrics writes the collector snapshot (counters, gauges, span and
// latency histograms with p50/p90/p99) as JSON on exit; -events streams
// the engine's typed events (arrive/depart/admit/evict/compact/repair)
// as JSON lines during -trace runs; -http serves the live snapshot at
// /metrics plus the runtime profiling endpoints under /debug/pprof/
// while the run is in flight.
//
// Note: -power is enforced for every algorithm. Earlier versions
// silently ignored it for lp and pipeline; those algorithms require the
// sqrt assignment and now reject a conflicting -power instead. The
// churn event count moved from -events to -nevents when -events became
// the event-stream path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	oblivious "repro"
	"repro/internal/affect/sparse"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/online/sim"
)

// config carries every flag of one invocation; run consumes it so the
// tests can drive the command without a process boundary.
type config struct {
	in, variant, power, algo string
	alpha, beta, noise       float64
	seed                     int64
	verbose                  bool
	out, check               string
	admission, repair        string
	trace                    string
	nevents                  int
	affect                   string
	eps                      float64
	cpuProfile, memProfile   string
	metrics, events          string
	httpAddr                 string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "", "path to the instance JSON (required)")
	flag.StringVar(&cfg.variant, "variant", "bidirectional", "directed or bidirectional")
	flag.StringVar(&cfg.power, "power", "sqrt", "uniform, linear, sqrt, or exp:<tau> (lp/pipeline require sqrt)")
	flag.StringVar(&cfg.algo, "algo", "greedy", "solver name: "+strings.Join(oblivious.Solvers(), ", "))
	flag.Float64Var(&cfg.alpha, "alpha", 3, "path-loss exponent α")
	flag.Float64Var(&cfg.beta, "beta", 1, "SINR gain β")
	flag.Float64Var(&cfg.noise, "noise", 0, "ambient noise ν")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the randomized algorithms")
	flag.BoolVar(&cfg.verbose, "v", false, "print the full color classes")
	flag.StringVar(&cfg.out, "out", "", "write the schedule as JSON to this path")
	flag.StringVar(&cfg.check, "check", "", "instead of scheduling, validate this schedule JSON against the instance")
	flag.StringVar(&cfg.admission, "admission", "first-fit", "online admission policy: first-fit, best-fit, or power-fit")
	flag.StringVar(&cfg.repair, "repair", "lazy", "online repair strategy: lazy, threshold, or eager")
	flag.StringVar(&cfg.trace, "trace", "", "instead of scheduling, simulate churn: poisson, bursty, or replay")
	flag.IntVar(&cfg.nevents, "nevents", 0, "churn events for -trace poisson/bursty (default 10·n)")
	flag.StringVar(&cfg.affect, "affect", "auto", "affectance engine: auto, dense, or sparse")
	flag.Float64Var(&cfg.eps, "eps", oblivious.DefaultSparseEpsilon, "sparse far-field error budget ε (0 = dense bitwise)")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write an allocation profile to this path on exit")
	flag.StringVar(&cfg.metrics, "metrics", "", "write the metrics snapshot JSON to this path on exit")
	flag.StringVar(&cfg.events, "events", "", "write the engine event stream as JSON lines to this path (-trace only)")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve live /metrics and /debug/pprof on this address while running")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oblsched:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) (err error) {
	if cfg.in == "" {
		return errors.New("missing -in")
	}
	data, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	in, err := oblivious.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	var v oblivious.Variant
	switch cfg.variant {
	case "directed":
		v = oblivious.Directed
	case "bidirectional":
		v = oblivious.Bidirectional
	default:
		return fmt.Errorf("unknown variant %q", cfg.variant)
	}
	m := oblivious.Model{Alpha: cfg.alpha, Beta: cfg.beta, Noise: cfg.noise}

	// Only the online solver and -trace consult these, but a typo must not
	// pass silently for the others (the same lesson -power already taught).
	if _, err := online.ParseAdmission(cfg.admission); err != nil {
		return err
	}
	if _, err := online.ParseRepair(cfg.repair); err != nil {
		return err
	}
	mode, err := oblivious.ParseAffectanceMode(cfg.affect)
	if err != nil {
		return err
	}
	if cfg.eps < 0 {
		return fmt.Errorf("-eps must be ≥ 0, got %g", cfg.eps)
	}
	if cfg.events != "" && cfg.trace == "" {
		return errors.New("-events streams engine events and needs -trace (the churn event count is -nevents)")
	}

	// One collector serves all three observability flags; nil when none
	// is given, which keeps every instrumented path on its disabled
	// branch.
	var col *obs.Collector
	if cfg.metrics != "" || cfg.events != "" || cfg.httpAddr != "" {
		col = obs.NewCollector()
	}
	if cfg.httpAddr != "" {
		ln, lerr := net.Listen("tcp", cfg.httpAddr)
		if lerr != nil {
			return fmt.Errorf("http: %w", lerr)
		}
		srv := &http.Server{Handler: col.Mux()}
		go srv.Serve(ln) //nolint — Serve returns when srv closes below
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "oblsched: serving /metrics and /debug/pprof/ on http://%s\n", ln.Addr())
	}
	// The snapshot is written after the solve or trace finished, so it
	// holds the run's final counters rather than a mid-flight cut.
	writeMetrics := func() error {
		if cfg.metrics == "" {
			return nil
		}
		f, ferr := os.Create(cfg.metrics)
		if ferr != nil {
			return fmt.Errorf("metrics: %w", ferr)
		}
		if ferr := col.WriteJSON(f); ferr != nil {
			f.Close()
			return fmt.Errorf("metrics: %w", ferr)
		}
		if ferr := f.Close(); ferr != nil {
			return fmt.Errorf("metrics: %w", ferr)
		}
		return nil
	}

	// Profile failures are run's failures: a silently truncated or missing
	// profile after a half-hour run wastes the whole run, so Close and
	// write errors propagate through the named return instead of going to
	// stderr as advisory noise.
	if cfg.cpuProfile != "" {
		f, cerr := os.Create(cfg.cpuProfile)
		if cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
	}
	if cfg.memProfile != "" {
		defer func() {
			if werr := writeMemProfile(cfg.memProfile); werr != nil && err == nil {
				err = fmt.Errorf("memprofile: %w", werr)
			}
		}()
	}

	if cfg.check != "" {
		sdata, err := os.ReadFile(cfg.check)
		if err != nil {
			return err
		}
		sched, err := oblivious.UnmarshalSchedule(sdata)
		if err != nil {
			return err
		}
		if err := oblivious.Validate(m, in, v, sched); err != nil {
			return fmt.Errorf("schedule invalid: %w", err)
		}
		fmt.Fprintf(w, "schedule valid: %d requests, %d colors\n", in.N(), sched.NumColors())
		return nil
	}

	if cfg.trace != "" {
		if err := runTrace(w, m, in, v, mode, col, cfg); err != nil {
			return err
		}
		return writeMetrics()
	}

	a, err := oblivious.ParseAssignment(cfg.power)
	if err != nil {
		return err
	}
	opts := []oblivious.Option{
		oblivious.WithVariant(v),
		oblivious.WithAssignment(a),
		oblivious.WithSeed(cfg.seed),
		oblivious.WithAffectanceMode(mode),
		oblivious.WithEpsilon(cfg.eps),
		oblivious.WithAdmission(cfg.admission),
		oblivious.WithRepair(cfg.repair),
		oblivious.WithValidation(true),
	}
	if col.Enabled() {
		opts = append(opts, oblivious.WithObserver(col))
	}
	res, err := oblivious.Lookup(cfg.algo).Solve(context.Background(), m, in, opts...)
	if err != nil {
		return err
	}
	s := res.Schedule
	fmt.Fprintf(w, "requests: %d\ncolors:   %d\nenergy:   %.4g\nengine:   %s\nvalid:    yes\n",
		in.N(), s.NumColors(), s.TotalEnergy(), res.Stats.Engine)
	if res.Stats.Slots > 0 {
		fmt.Fprintf(w, "slots:    %d contention slots\n", res.Stats.Slots)
	}
	if st := res.Stats.Online; st != nil {
		fmt.Fprintf(w, "churn:    peak %d slots, %d repairs (%d moves, %d re-packs)\n",
			st.PeakSlots, st.Repairs, st.Moves, st.Repacks)
	}
	if cfg.out != "" {
		data, err := oblivious.MarshalSchedule(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if cfg.verbose {
		for c, class := range s.Classes() {
			fmt.Fprintf(w, "color %d:", c)
			for _, i := range class {
				fmt.Fprintf(w, " %d", i)
			}
			fmt.Fprintln(w)
		}
	}
	return writeMetrics()
}

// writeMemProfile snapshots the retained heap to path, reporting create,
// write, and close failures alike — a heap profile cut short by a full
// disk must not look like a small heap.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize the retained set before sampling
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runTrace replays the instance as a churn trace through the online
// engine and prints the time-series summary. It always runs observed:
// the cost line below needs the gated per-event timing, so when run
// passed no collector a local one is created here.
func runTrace(w io.Writer, m oblivious.Model, in *oblivious.Instance, v oblivious.Variant, mode oblivious.AffectanceMode, col *obs.Collector, cfg config) error {
	if !col.Enabled() {
		col = obs.NewCollector()
	}
	a, err := oblivious.ParseAssignment(cfg.power)
	if err != nil {
		return err
	}
	adm, err := online.ParseAdmission(cfg.admission)
	if err != nil {
		return err
	}
	rep, err := online.ParseRepair(cfg.repair)
	if err != nil {
		return err
	}
	powers := oblivious.PowersFor(m, in, a)
	// Mirror the solver-level engine selection through the same Resolve
	// predicate: the online engine reuses a covering sparse engine from
	// the model and otherwise builds the dense matrices itself.
	if mode.Resolve(in, cfg.eps) == oblivious.AffectSparse {
		c, err := sparse.For(m, v, in, powers, sparse.Options{Epsilon: cfg.eps})
		if err != nil {
			return err
		}
		m = m.WithCache(c)
	}
	eng, err := online.New(m, in, v, powers,
		online.WithAdmission(adm), online.WithRepair(rep), online.WithObserver(col))
	if err != nil {
		return err
	}
	var (
		evFile *os.File
		sink   *obs.JSONLSink
	)
	if cfg.events != "" {
		evFile, err = os.Create(cfg.events)
		if err != nil {
			return fmt.Errorf("events: %w", err)
		}
		defer evFile.Close()
		sink = obs.NewJSONLSink(evFile)
		col.Attach(sink)
	}
	n := in.N()
	events := cfg.nevents
	if events <= 0 {
		events = 10 * n
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	var tr sim.Trace
	switch cfg.trace {
	case "poisson":
		// Rate and holding time chosen for a steady state of ≈ n/2 active.
		tr = sim.Poisson(rng, n, float64(n)/4, 2, events)
	case "bursty":
		size := n / 8
		if size < 2 {
			size = 2
		}
		tr = sim.Bursty(rng, n, 1, size, 2, events)
	case "replay":
		tr = sim.Replay(in)
	default:
		return fmt.Errorf("unknown -trace %q (want poisson, bursty, or replay)", cfg.trace)
	}
	res, err := sim.Run(eng, tr)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(w, "trace:     %s (%d events: %d arrivals, %d departures)\n",
		cfg.trace, res.Events, res.Arrivals, res.Departures)
	fmt.Fprintf(w, "policy:    admission %s, repair %s\n", adm, rep)
	fmt.Fprintf(w, "peak:      %d slots\n", res.PeakSlots)
	fmt.Fprintf(w, "final:     %d slots, %d active requests\n", eng.NumSlots(), eng.Len())
	fmt.Fprintf(w, "repairs:   %d (%d moves, %d re-packs)\n", st.Repairs, st.Moves, st.Repacks)
	fmt.Fprintf(w, "cost:      mean %v/event, max %v (%d tracker row ops)\n",
		time.Duration(int64(res.MeanCostNs())), time.Duration(res.MaxCostNs()), st.RowOps)
	// Re-check every slot against the uncached oracle, not just the
	// engine's own trackers.
	feasible := eng.Feasible()
	for s := 0; feasible && s < eng.NumSlots(); s++ {
		if members := eng.Slot(s); len(members) > 0 && !m.SetFeasible(in, v, powers, members) {
			feasible = false
		}
	}
	if !feasible {
		fmt.Fprintf(w, "feasible:  NO\n")
		return fmt.Errorf("infeasible slot after %d events", res.Events)
	}
	fmt.Fprintf(w, "feasible:  yes (oracle-checked)\n")
	if sink != nil {
		// Flushed (and closed, surfacing write errors) only on the success
		// path; the deferred Close covers the error returns above.
		if ferr := sink.Flush(); ferr != nil {
			return fmt.Errorf("events: %w", ferr)
		}
		if cerr := evFile.Close(); cerr != nil {
			return fmt.Errorf("events: %w", cerr)
		}
	}
	return nil
}
