// Command oblsched schedules an interference instance read from a JSON
// file (see cmd/gen for the format) and prints the resulting coloring.
//
// Usage:
//
//	oblsched -in instance.json [-variant bidirectional] [-power sqrt]
//	         [-algo greedy|lp|pipeline] [-alpha 3] [-beta 1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	oblivious "repro"
)

func main() {
	var (
		inPath  = flag.String("in", "", "path to the instance JSON (required)")
		variant = flag.String("variant", "bidirectional", "directed or bidirectional")
		powerFn = flag.String("power", "sqrt", "uniform, linear, sqrt, or exp:<tau>")
		algo    = flag.String("algo", "greedy", "greedy, lp, or pipeline (lp/pipeline imply sqrt powers)")
		alpha   = flag.Float64("alpha", 3, "path-loss exponent α")
		beta    = flag.Float64("beta", 1, "SINR gain β")
		noise   = flag.Float64("noise", 0, "ambient noise ν")
		seed    = flag.Int64("seed", 1, "seed for the randomized algorithms")
		verbose = flag.Bool("v", false, "print the full color classes")
		outPath = flag.String("out", "", "write the schedule as JSON to this path")
		check   = flag.String("check", "", "instead of scheduling, validate this schedule JSON against the instance")
	)
	flag.Parse()
	if err := run(os.Stdout, *inPath, *variant, *powerFn, *algo, *alpha, *beta, *noise, *seed, *verbose, *outPath, *check); err != nil {
		fmt.Fprintln(os.Stderr, "oblsched:", err)
		os.Exit(1)
	}
}

func parseAssignment(s string) (oblivious.Assignment, error) {
	switch {
	case s == "uniform":
		return oblivious.Uniform(1), nil
	case s == "linear":
		return oblivious.Linear(), nil
	case s == "sqrt":
		return oblivious.Sqrt(), nil
	case strings.HasPrefix(s, "exp:"):
		tau, err := strconv.ParseFloat(strings.TrimPrefix(s, "exp:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad exponent in %q: %w", s, err)
		}
		return oblivious.Exponent(tau), nil
	default:
		return nil, fmt.Errorf("unknown power assignment %q", s)
	}
}

func run(w io.Writer, inPath, variant, powerFn, algo string, alpha, beta, noise float64, seed int64, verbose bool, outPath, check string) error {
	if inPath == "" {
		return fmt.Errorf("missing -in")
	}
	data, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	in, err := oblivious.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	var v oblivious.Variant
	switch variant {
	case "directed":
		v = oblivious.Directed
	case "bidirectional":
		v = oblivious.Bidirectional
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	m := oblivious.Model{Alpha: alpha, Beta: beta, Noise: noise}

	if check != "" {
		sdata, err := os.ReadFile(check)
		if err != nil {
			return err
		}
		sched, err := oblivious.UnmarshalSchedule(sdata)
		if err != nil {
			return err
		}
		if err := oblivious.Validate(m, in, v, sched); err != nil {
			return fmt.Errorf("schedule invalid: %w", err)
		}
		fmt.Fprintf(w, "schedule valid: %d requests, %d colors\n", in.N(), sched.NumColors())
		return nil
	}

	var s *oblivious.Schedule
	switch algo {
	case "greedy":
		a, err := parseAssignment(powerFn)
		if err != nil {
			return err
		}
		s, err = oblivious.ScheduleGreedy(m, in, v, a)
		if err != nil {
			return err
		}
	case "lp":
		if v != oblivious.Bidirectional {
			return fmt.Errorf("the LP algorithm targets the bidirectional variant")
		}
		var err error
		s, _, err = oblivious.ScheduleLP(m, in, seed)
		if err != nil {
			return err
		}
	case "pipeline":
		if v != oblivious.Bidirectional {
			return fmt.Errorf("the pipeline targets the bidirectional variant")
		}
		var err error
		s, err = oblivious.SchedulePipeline(m, in, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	if err := oblivious.Validate(m, in, v, s); err != nil {
		return fmt.Errorf("produced schedule failed validation: %w", err)
	}
	fmt.Fprintf(w, "requests: %d\ncolors:   %d\nenergy:   %.4g\nvalid:    yes\n",
		in.N(), s.NumColors(), s.TotalEnergy())
	if outPath != "" {
		data, err := oblivious.MarshalSchedule(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if verbose {
		for c, class := range s.Classes() {
			fmt.Fprintf(w, "color %d:", c)
			for _, i := range class {
				fmt.Fprintf(w, " %d", i)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
