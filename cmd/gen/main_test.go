package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	oblivious "repro"
)

// gen runs the CLI with no stdin and the default perturbation.
func gen(w io.Writer, kind string, n int, seed int64, side, maxLen float64, clusters int, length, gap float64, powerFn string, alpha float64) error {
	return run(w, strings.NewReader(""), kind, n, seed, side, maxLen, clusters, length, gap, powerFn, alpha, 0.5)
}

func TestRunKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "clustered", "nested", "chain"} {
		if err := gen(io.Discard, kind, 8, 1, 300, 8, 3, 1, 4, "linear", 3); err != nil {
			t.Errorf("kind %s: %v", kind, err)
		}
	}
}

func TestRunAdversarial(t *testing.T) {
	for _, pf := range []string{"linear", "sqrt", "quadratic"} {
		if err := gen(io.Discard, "adversarial", 4, 1, 300, 8, 3, 1, 4, pf, 3); err != nil {
			t.Errorf("power %s: %v", pf, err)
		}
	}
}

// TestRunPerturb pipes a generated base instance back through
// -kind perturb and checks the output parses to an instance of the same
// shape with moved coordinates.
func TestRunPerturb(t *testing.T) {
	var base bytes.Buffer
	if err := gen(&base, "uniform", 8, 1, 300, 8, 3, 1, 4, "linear", 3); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, bytes.NewReader(base.Bytes()), "perturb", 8, 2, 300, 8, 3, 1, 4, "linear", 3, 0.25); err != nil {
		t.Fatal(err)
	}
	orig, err := oblivious.UnmarshalInstance(base.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	pert, err := oblivious.UnmarshalInstance(out.Bytes())
	if err != nil {
		t.Fatalf("perturb output does not parse: %v", err)
	}
	if pert.N() != orig.N() {
		t.Fatalf("perturbed instance has %d requests, want %d", pert.N(), orig.N())
	}
	var moved bool
	for i := 0; i < orig.N(); i++ {
		if pert.Length(i) != orig.Length(i) {
			moved = true
		}
		// eps=0.25 jitter moves each endpoint < 0.51, so lengths change by
		// at most ~1.02 by the triangle inequality.
		if d := pert.Length(i) - orig.Length(i); d > 1.1 || d < -1.1 {
			t.Fatalf("request %d length moved by %g, beyond the eps bound", i, d)
		}
	}
	if !moved {
		t.Error("perturbation left every request length unchanged")
	}
}

func TestRunErrors(t *testing.T) {
	if err := gen(io.Discard, "mystery", 8, 1, 300, 8, 3, 1, 4, "linear", 3); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := gen(io.Discard, "adversarial", 4, 1, 300, 8, 3, 1, 4, "cubic", 3); err == nil {
		t.Error("unknown adversarial power should fail")
	}
	if err := gen(io.Discard, "uniform", 0, 1, 300, 8, 3, 1, 4, "linear", 3); err == nil {
		t.Error("n=0 should fail")
	}
	if err := gen(io.Discard, "perturb", 8, 1, 300, 8, 3, 1, 4, "linear", 3); err == nil {
		t.Error("perturb with empty stdin should fail")
	}
	// A non-Euclidean base (nested is a line instance) must be rejected by
	// Perturb with a clear error.
	var line bytes.Buffer
	if err := gen(&line, "nested", 8, 1, 300, 8, 3, 1, 4, "linear", 3); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, bytes.NewReader(line.Bytes()), "perturb", 8, 1, 300, 8, 3, 1, 4, "linear", 3, 0.5); err == nil {
		t.Error("perturbing a non-Euclidean instance should fail")
	}
}
