package main

import (
	"io"
	"testing"
)

func TestRunKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "clustered", "nested", "chain"} {
		if err := run(io.Discard, kind, 8, 1, 300, 8, 3, 1, 4, "linear", 3); err != nil {
			t.Errorf("kind %s: %v", kind, err)
		}
	}
}

func TestRunAdversarial(t *testing.T) {
	for _, pf := range []string{"linear", "sqrt", "quadratic"} {
		if err := run(io.Discard, "adversarial", 4, 1, 300, 8, 3, 1, 4, pf, 3); err != nil {
			t.Errorf("power %s: %v", pf, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(io.Discard, "mystery", 8, 1, 300, 8, 3, 1, 4, "linear", 3); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := run(io.Discard, "adversarial", 4, 1, 300, 8, 3, 1, 4, "cubic", 3); err == nil {
		t.Error("unknown adversarial power should fail")
	}
	if err := run(io.Discard, "uniform", 0, 1, 300, 8, 3, 1, 4, "linear", 3); err == nil {
		t.Error("n=0 should fail")
	}
}
