// Command gen generates interference scheduling instances as JSON for use
// with cmd/oblsched.
//
// Usage:
//
//	gen -kind uniform   -n 64 [-seed 1] > instance.json
//	gen -kind clustered -n 64 [-clusters 4]
//	gen -kind nested    -n 32
//	gen -kind chain     -n 32 [-length 1] [-gap 4]
//	gen -kind adversarial -n 16 -power linear
//	gen -kind perturb -eps 0.5 < base.json
//
// The perturb kind reads a base instance from stdin and jitters every
// Euclidean coordinate by at most eps — the building block for the
// mobility/churn robustness traces (a perturbed copy per epoch).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	oblivious "repro"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "uniform, clustered, nested, chain, or adversarial")
		n        = flag.Int("n", 32, "number of requests")
		seed     = flag.Int64("seed", 1, "random seed")
		side     = flag.Float64("side", 300, "square side for random workloads")
		maxLen   = flag.Float64("maxlen", 8, "maximum request length for random workloads")
		clusters = flag.Int("clusters", 4, "cluster count for -kind clustered")
		length   = flag.Float64("length", 1, "request length for -kind chain")
		gap      = flag.Float64("gap", 4, "gap for -kind chain")
		powerFn  = flag.String("power", "linear", "target assignment for -kind adversarial (linear, sqrt, quadratic)")
		alpha    = flag.Float64("alpha", 3, "path-loss exponent for -kind adversarial")
		eps      = flag.Float64("eps", 0.5, "coordinate jitter for -kind perturb")
	)
	flag.Parse()
	if err := run(os.Stdout, os.Stdin, *kind, *n, *seed, *side, *maxLen, *clusters, *length, *gap, *powerFn, *alpha, *eps); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, r io.Reader, kind string, n int, seed int64, side, maxLen float64, clusters int, length, gap float64, powerFn string, alpha, eps float64) error {
	rng := rand.New(rand.NewSource(seed))
	var (
		in  *problem.Instance
		err error
	)
	switch kind {
	case "uniform":
		in, err = instance.UniformRandom(rng, n, side, 1, maxLen)
	case "clustered":
		in, err = instance.Clustered(rng, n, clusters, maxLen*2.5, side, 1)
	case "nested":
		in, err = instance.NestedExponential(n, 2)
	case "chain":
		in, err = instance.LineChain(n, length, gap)
	case "perturb":
		var data []byte
		if data, err = io.ReadAll(r); err != nil {
			return err
		}
		var base *problem.Instance
		if base, err = oblivious.UnmarshalInstance(data); err != nil {
			return fmt.Errorf("reading base instance from stdin: %w", err)
		}
		in, err = instance.Perturb(rng, base, eps)
	case "adversarial":
		var a power.Assignment
		switch powerFn {
		case "linear":
			a = power.Linear()
		case "sqrt":
			a = power.Sqrt()
		case "quadratic":
			a = power.Exponent(2)
		default:
			return fmt.Errorf("unknown -power %q", powerFn)
		}
		m := sinr.Model{Alpha: alpha, Beta: 1}
		var adv *instance.Adversarial
		adv, err = instance.AdversarialDirected(m, a, n, 1e60)
		if err == nil {
			in = adv.Instance
			if adv.Built < n {
				fmt.Fprintf(os.Stderr, "gen: construction capped at %d pairs (float64 range)\n", adv.Built)
			}
		}
	default:
		return fmt.Errorf("unknown -kind %q", kind)
	}
	if err != nil {
		return err
	}
	data, err := oblivious.MarshalInstance(in)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
