// Package oblivious_test: the benchmarks live in the external test package
// because internal/experiment now consumes the public solver API, and an
// in-package test importing it would form an import cycle.
//
// One benchmark per experiment table (E1–E15, see DESIGN.md and
// EXPERIMENTS.md): each bench regenerates its table in quick mode, so
// `go test -bench=.` exercises the full evaluation pipeline. Micro
// benchmarks for the core algorithmic building blocks follow.
package oblivious_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"testing"

	oblivious "repro"
	"repro/internal/affect"
	"repro/internal/benchio"
	"repro/internal/coloring"
	"repro/internal/experiment"
	"repro/internal/hst"
	"repro/internal/instance"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/online/sim"
	"repro/internal/power"
	"repro/internal/powerctl"
	"repro/internal/sinr"
	"repro/internal/treestar"
)

// TestMain flushes the benchmark trajectories (BENCH_affect.json,
// BENCH_online.json, BENCH_scale.json, BENCH_pipeline.json — see the
// recorders below and in scale_test.go) after a -bench run; plain test runs record nothing and
// write nothing. The emission machinery lives in internal/benchio.
func TestMain(m *testing.M) {
	code := m.Run()
	for _, rec := range []*benchio.Recorder{affectRec, onlineRec, scaleRec, pipelineRec} {
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "bench: ", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

var (
	affectRec = benchio.NewRecorder("BENCH_affect.json")
	onlineRec = benchio.NewRecorder("BENCH_online.json")
)

// affectRow is one row of BENCH_affect.json: a cached-vs-uncached
// measurement of an affectance hot path at one instance size.
type affectRow struct {
	Benchmark string `json:"benchmark"`
	N         int    `json:"n"`
	Cached    bool   `json:"cached"`
	benchio.Metrics
}

// recordAffectBench captures the just-finished sub-benchmark. Call it
// after the timed loop, with the timer stopped, passing the checkpoint
// taken before the loop.
func recordAffectBench(b *testing.B, cp benchio.Checkpoint, name string, n int, cached bool) {
	b.Helper()
	affectRec.Record(fmt.Sprintf("%s/%07d/cached=%t", name, n, cached),
		affectRow{Benchmark: name, N: n, Cached: cached, Metrics: cp.End(b)})
}

// onlineRow is one row of BENCH_online.json: the per-event cost of
// handling a churn trace either incrementally (the online engine) or by
// re-running the batch greedy solver after every event. The embedded
// metrics are per full trace replay; NsPerEv divides by the trace length.
type onlineRow struct {
	Benchmark string  `json:"benchmark"`
	N         int     `json:"n"`
	Mode      string  `json:"mode"`
	NsPerEv   float64 `json:"ns_per_event"`
	benchio.Metrics
}

// recordOnlineBench captures the just-finished churn sub-benchmark
// (events is the trace length one b.N iteration replays).
func recordOnlineBench(b *testing.B, cp benchio.Checkpoint, name string, n int, mode string, events int) {
	b.Helper()
	met := cp.End(b)
	onlineRec.Record(fmt.Sprintf("%s/%07d/%s", name, n, mode),
		onlineRow{Benchmark: name, N: n, Mode: mode, NsPerEv: met.NsPerOp / float64(events), Metrics: met})
}

func benchExperiment(b *testing.B, run experiment.Runner) {
	b.Helper()
	cfg := experiment.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1DirectedLowerBound(b *testing.B) {
	benchExperiment(b, experiment.E1DirectedLowerBound)
}

func BenchmarkE2NestedSingleSlot(b *testing.B) {
	benchExperiment(b, experiment.E2NestedSingleSlot)
}

func BenchmarkE3SqrtPolylog(b *testing.B) {
	benchExperiment(b, experiment.E3SqrtPolylog)
}

func BenchmarkE4LPColoring(b *testing.B) {
	benchExperiment(b, experiment.E4LPColoring)
}

func BenchmarkE5GainScaling(b *testing.B) {
	benchExperiment(b, experiment.E5GainScaling)
}

func BenchmarkE6TreeEmbedding(b *testing.B) {
	benchExperiment(b, experiment.E6TreeEmbedding)
}

func BenchmarkE7StarSelection(b *testing.B) {
	benchExperiment(b, experiment.E7StarSelection)
}

func BenchmarkE8ExponentSweep(b *testing.B) {
	benchExperiment(b, experiment.E8ExponentSweep)
}

func BenchmarkE9DirectedVsBidirectional(b *testing.B) {
	benchExperiment(b, experiment.E9DirectedVsBidirectional)
}

func BenchmarkE10Energy(b *testing.B) {
	benchExperiment(b, experiment.E10Energy)
}

func BenchmarkE11Distributed(b *testing.B) {
	benchExperiment(b, experiment.E11Distributed)
}

func BenchmarkE12AspectRatio(b *testing.B) {
	benchExperiment(b, experiment.E12AspectRatio)
}

func BenchmarkE13Connectivity(b *testing.B) {
	benchExperiment(b, experiment.E13Connectivity)
}

func BenchmarkE14Ablations(b *testing.B) {
	benchExperiment(b, experiment.E14Ablations)
}

func BenchmarkE15MultihopLatency(b *testing.B) {
	benchExperiment(b, experiment.E15MultihopLatency)
}

func BenchmarkE16OnlineArrivals(b *testing.B) {
	benchExperiment(b, experiment.E16OnlineArrivals)
}

func BenchmarkE17GridBaseline(b *testing.B) {
	benchExperiment(b, experiment.E17GridBaseline)
}

func BenchmarkE18ModelSensitivity(b *testing.B) {
	benchExperiment(b, experiment.E18ModelSensitivity)
}

func BenchmarkE19SymmetricAsymmetric(b *testing.B) {
	benchExperiment(b, experiment.E19SymmetricAsymmetric)
}

// --- micro benchmarks of the core building blocks ---

func benchInstance(b *testing.B, n int) *oblivious.Instance {
	b.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(1)), n, 300, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkGreedyColoring128(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 128)
	powers := power.Powers(m, in, power.Sqrt())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPColoring64(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coloring.SqrtLPColoring(m, in, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline64(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := (treestar.Pipeline{}).Run(m, in, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFRTBuild128(b *testing.B) {
	in := benchInstance(b, 64) // 128 nodes
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hst.Build(in.Space, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeasibilityOracle64(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 64)
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := powerctl.Feasible(m, in, sinr.Bidirectional, set, powerctl.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplex50x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nVars, nRows := 100, 50
	p := lp.Problem{C: make([]float64, nVars), A: make([][]float64, nRows), B: make([]float64, nRows)}
	for j := range p.C {
		p.C[j] = 1
	}
	for i := range p.A {
		p.A[i] = make([]float64, nVars)
		for j := range p.A[i] {
			if rng.Float64() < 0.3 {
				p.A[i][j] = rng.Float64()
			}
		}
		p.B[i] = 1 + rng.Float64()*3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSINRCheck128(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 128)
	powers := power.Powers(m, in, power.Sqrt())
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetFeasible(in, sinr.Bidirectional, powers, set)
	}
}

// --- affectance engine benchmarks (cached vs uncached, BENCH_affect.json) ---

// affectSizes are the instance sizes of the acceptance criteria.
var affectSizes = []int{100, 500, 2000}

// BenchmarkSetFeasible measures a full-set feasibility probe — the SINR
// query every solver leans on — with and without the precomputed
// affectance matrices.
func BenchmarkSetFeasible(b *testing.B) {
	for _, n := range affectSizes {
		m := sinr.Default()
		in := benchInstance(b, n)
		powers := power.Powers(m, in, power.Sqrt())
		set := make([]int, in.N())
		for i := range set {
			set[i] = i
		}
		for _, cached := range []bool{false, true} {
			mm := m
			if cached {
				mm = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
			}
			b.Run(fmt.Sprintf("n=%d/cached=%t", n, cached), func(b *testing.B) {
				b.ReportAllocs()
				// On small machines the collector's pacing makes O(100ms)
				// timed regions bimodal; collect first and hold GC off for
				// the loop so cached-vs-uncached ratios are reproducible.
				runtime.GC()
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				cp := benchio.Begin()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mm.SetFeasible(in, sinr.Bidirectional, powers, set)
				}
				b.StopTimer()
				recordAffectBench(b, cp, "SetFeasible", n, cached)
			})
		}
	}
}

// BenchmarkGreedyColoring measures the full greedy first-fit coloring.
// The cache is built outside the timed loop: the engine's contract is
// amortization across the many feasibility probes of one (or, through the
// SolveAll store, many) solves over the same instance.
func BenchmarkGreedyColoring(b *testing.B) {
	for _, n := range affectSizes {
		m := sinr.Default()
		in := benchInstance(b, n)
		powers := power.Powers(m, in, power.Sqrt())
		for _, cached := range []bool{false, true} {
			mm := m
			if cached {
				mm = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
			}
			b.Run(fmt.Sprintf("n=%d/cached=%t", n, cached), func(b *testing.B) {
				b.ReportAllocs()
				// On small machines the collector's pacing makes O(100ms)
				// timed regions bimodal; collect first and hold GC off for
				// the loop so cached-vs-uncached ratios are reproducible.
				runtime.GC()
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				cp := benchio.Begin()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := coloring.GreedyFirstFit(mm, in, sinr.Bidirectional, powers, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				recordAffectBench(b, cp, "GreedyColoring", n, cached)
			})
		}
	}
}

// BenchmarkAffectanceBuild measures the parallel matrix fill itself — the
// one-off cost a Solve pays before the cached queries start.
func BenchmarkAffectanceBuild(b *testing.B) {
	for _, n := range affectSizes {
		m := sinr.Default()
		in := benchInstance(b, n)
		powers := power.Powers(m, in, power.Sqrt())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				affect.New(m, sinr.Bidirectional, in, powers)
			}
		})
	}
}

// BenchmarkOnlineChurn is the acceptance benchmark of the online engine:
// one Poisson churn trace per size, replayed (a) incrementally through
// the engine and (b) by re-running the batch greedy solver on the active
// set after every event — the only alternative a batch-only system has.
// Per-event costs land in BENCH_online.json; the incremental path must be
// at least an order of magnitude cheaper at n=2000. The batch mode
// replays a short prefix of the same trace (its per-event cost is flat in
// the event count but grows with n², and a full-length replay would blow
// the CI smoke budget).
func BenchmarkOnlineChurn(b *testing.B) {
	for _, n := range affectSizes {
		m := sinr.Default()
		in := benchInstance(b, n)
		powers := power.Powers(m, in, power.Sqrt())
		mc := m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
		// Steady state ≈ n/2 active requests, 4n events.
		trace := sim.Poisson(rand.New(rand.NewSource(1)), n, float64(n)/4, 2, 4*n)
		b.Run(fmt.Sprintf("n=%d/mode=incremental", n), func(b *testing.B) {
			b.ReportAllocs()
			// On small machines the collector's pacing makes O(100ms)
			// timed regions bimodal; collect first and hold GC off for
			// the loop so incremental-vs-batch ratios are reproducible.
			runtime.GC()
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			cp := benchio.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := online.New(mc, in, sinr.Bidirectional, powers,
					online.WithAdmission(online.BestFit), online.WithRepair(online.ThresholdRepair))
				if err != nil {
					b.Fatal(err)
				}
				for _, ev := range trace {
					if ev.Arrive {
						_, err = eng.Arrive(ev.Req)
					} else {
						err = eng.Depart(ev.Req)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			recordOnlineBench(b, cp, "OnlineChurn", n, "incremental", len(trace))
		})
		b.Run(fmt.Sprintf("n=%d/mode=batch", n), func(b *testing.B) {
			// Fast-forward the active set to the trace's steady state
			// untimed (the first half is warm-up from an empty system),
			// then time the batch re-solves over the following events.
			warm, measured := trace[:len(trace)/2], trace[len(trace)/2:]
			if len(measured) > 48 {
				measured = measured[:48]
			}
			activeList := make([]int, 0, n)
			pos := make([]int, n)
			for k := range pos {
				pos[k] = -1
			}
			apply := func(ev sim.Event) {
				if ev.Arrive {
					pos[ev.Req] = len(activeList)
					activeList = append(activeList, ev.Req)
				} else {
					k := pos[ev.Req]
					last := len(activeList) - 1
					activeList[k] = activeList[last]
					pos[activeList[k]] = k
					activeList = activeList[:last]
					pos[ev.Req] = -1
				}
			}
			for _, ev := range warm {
				apply(ev)
			}
			base := append([]int(nil), activeList...)
			b.ReportAllocs()
			runtime.GC()
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			cp := benchio.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				activeList = append(activeList[:0], base...)
				for k := range pos {
					pos[k] = -1
				}
				for k, r := range activeList {
					pos[r] = k
				}
				b.StartTimer()
				for _, ev := range measured {
					apply(ev)
					if len(activeList) == 0 {
						continue
					}
					if _, err := coloring.GreedyFirstFit(mc, in, sinr.Bidirectional, powers, activeList); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			recordOnlineBench(b, cp, "OnlineChurn", n, "batch", len(measured))
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on
// the greedy solver at n=2000: obs=off is the nil-collector disabled
// path (every instrument site pays its one branch and nothing else),
// obs=on attaches a live collector. The acceptance criterion is that
// the off variant stays within 2% of a build without instrumentation —
// in practice, within noise of the on variant too, since greedy's cost
// is dominated by the coloring itself.
func BenchmarkObsOverhead(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 2000)
	solver := oblivious.Lookup("greedy")
	for _, observed := range []bool{false, true} {
		var col *obs.Collector
		if observed {
			col = obs.NewCollector()
		}
		b.Run(fmt.Sprintf("n=2000/obs=%t", observed), func(b *testing.B) {
			b.ReportAllocs()
			runtime.GC()
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.Solve(context.Background(), m, in,
					oblivious.WithSeed(1), oblivious.WithObserver(col)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThinToGain measures the Proposition 3 thinning, whose cached
// path replaces the O(n²) re-scan per removal with the incremental
// tracker.
func BenchmarkThinToGain(b *testing.B) {
	for _, n := range []int{100, 500} {
		m := sinr.Default()
		in := benchInstance(b, n)
		powers := power.Powers(m, in, power.Sqrt())
		set := make([]int, in.N())
		for i := range set {
			set[i] = i
		}
		for _, cached := range []bool{false, true} {
			mm := m
			if cached {
				mm = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
			}
			b.Run(fmt.Sprintf("n=%d/cached=%t", n, cached), func(b *testing.B) {
				b.ReportAllocs()
				// On small machines the collector's pacing makes O(100ms)
				// timed regions bimodal; collect first and hold GC off for
				// the loop so cached-vs-uncached ratios are reproducible.
				runtime.GC()
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				cp := benchio.Begin()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := coloring.ThinToGain(mm, in, sinr.Bidirectional, powers, set, 2*m.Beta); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				recordAffectBench(b, cp, "ThinToGain", n, cached)
			})
		}
	}
}

// pipelineRec accumulates BENCH_pipeline.json: the per-stage cost
// profile of the Theorem 2 pipeline (see the rows below), flushed by
// TestMain next to the other trajectories.
var pipelineRec = benchio.NewRecorder("BENCH_pipeline.json")

// pipelineStageRow is one per-stage row of BENCH_pipeline.json: the
// aggregate of one "span/pipeline/<stage>" histogram over an observed
// end-to-end coloring — how many spans the stage ran (one per extracted
// color class; hst-build runs once per sampled tree) and the mean
// nanoseconds per span.
type pipelineStageRow struct {
	Benchmark string  `json:"benchmark"`
	N         int     `json:"n"`
	Stage     string  `json:"stage"`
	Spans     int64   `json:"spans"`
	NsPerSpan float64 `json:"ns_per_span"`
}

// pipelineTotalRow is the end-to-end row of BENCH_pipeline.json: one
// full pipeline solve through the public registry, with the engine the
// auto mode resolved to and the schedule length.
type pipelineTotalRow struct {
	Benchmark string `json:"benchmark"`
	N         int    `json:"n"`
	Engine    string `json:"engine"`
	Colors    int    `json:"peak_slots"`
	benchio.Metrics
}

// pipelineStageNames are the spans runCtx emits, in pipeline order.
var pipelineStageNames = []string{"stage1", "stage2", "stage3", "stage4", "stage5", "hst-build"}

// BenchmarkPipelineStages profiles the pipeline solver end to end at n ∈
// {2000, 10000} with an obs collector attached, then breaks the
// "span/pipeline/*" histograms out into per-stage BENCH_pipeline.json
// rows next to the end-to-end total. This is the benchmark behind the
// per-stage cost table in ARCHITECTURE.md: it shows where a coloring
// spends its time (the stage-2 tree scans and stage-5 thinning at
// scale) and pins the arena/worker-pool savings against regressions.
func BenchmarkPipelineStages(b *testing.B) {
	m := oblivious.DefaultModel()
	for _, n := range []int{2000, 10000} {
		in := scaleInstance(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			col := obs.NewCollector()
			var sched *oblivious.Schedule
			var stats oblivious.Stats
			cp := benchio.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := oblivious.Lookup("pipeline").Solve(context.Background(), m, in,
					oblivious.WithSeed(1), oblivious.WithObserver(col))
				if err != nil {
					b.Fatal(err)
				}
				sched, stats = res.Schedule, res.Stats
			}
			b.StopTimer()
			met := cp.End(b)
			snap := col.Snapshot()
			for _, stage := range pipelineStageNames {
				h, ok := snap.Histograms["span/pipeline/"+stage]
				if !ok || h.Count == 0 {
					continue
				}
				pipelineRec.Record(fmt.Sprintf("PipelineStages/%07d/%s", n, stage),
					pipelineStageRow{Benchmark: "PipelineStages", N: n, Stage: stage,
						Spans: h.Count, NsPerSpan: float64(h.Sum) / float64(h.Count)})
			}
			pipelineRec.Record(fmt.Sprintf("PipelineStages/%07d/total", n),
				pipelineTotalRow{Benchmark: "PipelineStages", N: n, Engine: stats.Engine,
					Colors: sched.NumColors(), Metrics: met})
		})
	}
}
