// Package oblivious_test: the benchmarks live in the external test package
// because internal/experiment now consumes the public solver API, and an
// in-package test importing it would form an import cycle.
//
// One benchmark per experiment table (E1–E15, see DESIGN.md and
// EXPERIMENTS.md): each bench regenerates its table in quick mode, so
// `go test -bench=.` exercises the full evaluation pipeline. Micro
// benchmarks for the core algorithmic building blocks follow.
package oblivious_test

import (
	"math/rand"
	"testing"

	oblivious "repro"
	"repro/internal/coloring"
	"repro/internal/experiment"
	"repro/internal/hst"
	"repro/internal/instance"
	"repro/internal/lp"
	"repro/internal/power"
	"repro/internal/powerctl"
	"repro/internal/sinr"
	"repro/internal/treestar"
)

func benchExperiment(b *testing.B, run experiment.Runner) {
	b.Helper()
	cfg := experiment.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1DirectedLowerBound(b *testing.B) {
	benchExperiment(b, experiment.E1DirectedLowerBound)
}

func BenchmarkE2NestedSingleSlot(b *testing.B) {
	benchExperiment(b, experiment.E2NestedSingleSlot)
}

func BenchmarkE3SqrtPolylog(b *testing.B) {
	benchExperiment(b, experiment.E3SqrtPolylog)
}

func BenchmarkE4LPColoring(b *testing.B) {
	benchExperiment(b, experiment.E4LPColoring)
}

func BenchmarkE5GainScaling(b *testing.B) {
	benchExperiment(b, experiment.E5GainScaling)
}

func BenchmarkE6TreeEmbedding(b *testing.B) {
	benchExperiment(b, experiment.E6TreeEmbedding)
}

func BenchmarkE7StarSelection(b *testing.B) {
	benchExperiment(b, experiment.E7StarSelection)
}

func BenchmarkE8ExponentSweep(b *testing.B) {
	benchExperiment(b, experiment.E8ExponentSweep)
}

func BenchmarkE9DirectedVsBidirectional(b *testing.B) {
	benchExperiment(b, experiment.E9DirectedVsBidirectional)
}

func BenchmarkE10Energy(b *testing.B) {
	benchExperiment(b, experiment.E10Energy)
}

func BenchmarkE11Distributed(b *testing.B) {
	benchExperiment(b, experiment.E11Distributed)
}

func BenchmarkE12AspectRatio(b *testing.B) {
	benchExperiment(b, experiment.E12AspectRatio)
}

func BenchmarkE13Connectivity(b *testing.B) {
	benchExperiment(b, experiment.E13Connectivity)
}

func BenchmarkE14Ablations(b *testing.B) {
	benchExperiment(b, experiment.E14Ablations)
}

func BenchmarkE15MultihopLatency(b *testing.B) {
	benchExperiment(b, experiment.E15MultihopLatency)
}

func BenchmarkE16OnlineArrivals(b *testing.B) {
	benchExperiment(b, experiment.E16OnlineArrivals)
}

func BenchmarkE17GridBaseline(b *testing.B) {
	benchExperiment(b, experiment.E17GridBaseline)
}

func BenchmarkE18ModelSensitivity(b *testing.B) {
	benchExperiment(b, experiment.E18ModelSensitivity)
}

func BenchmarkE19SymmetricAsymmetric(b *testing.B) {
	benchExperiment(b, experiment.E19SymmetricAsymmetric)
}

// --- micro benchmarks of the core building blocks ---

func benchInstance(b *testing.B, n int) *oblivious.Instance {
	b.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(1)), n, 300, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkGreedyColoring128(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 128)
	powers := power.Powers(m, in, power.Sqrt())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPColoring64(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coloring.SqrtLPColoring(m, in, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline64(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := (treestar.Pipeline{}).Run(m, in, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFRTBuild128(b *testing.B) {
	in := benchInstance(b, 64) // 128 nodes
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hst.Build(in.Space, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeasibilityOracle64(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 64)
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := powerctl.Feasible(m, in, sinr.Bidirectional, set, powerctl.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplex50x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nVars, nRows := 100, 50
	p := lp.Problem{C: make([]float64, nVars), A: make([][]float64, nRows), B: make([]float64, nRows)}
	for j := range p.C {
		p.C[j] = 1
	}
	for i := range p.A {
		p.A[i] = make([]float64, nVars)
		for j := range p.A[i] {
			if rng.Float64() < 0.3 {
				p.A[i][j] = rng.Float64()
			}
		}
		p.B[i] = 1 + rng.Float64()*3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSINRCheck128(b *testing.B) {
	m := sinr.Default()
	in := benchInstance(b, 128)
	powers := power.Powers(m, in, power.Sqrt())
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetFeasible(in, sinr.Bidirectional, powers, set)
	}
}
