package oblivious

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/affect/sparse"
	"repro/internal/coloring"
	"repro/internal/distributed"
	"repro/internal/instance"
	"repro/internal/treestar"
)

// dummySchedule backs the stub solvers used to probe the wrapper and the
// batch runner without running a real algorithm.
func dummySchedule(n int) *Schedule {
	s := &Schedule{Colors: make([]int, n), Powers: make([]float64, n)}
	for i := range s.Colors {
		s.Colors[i] = i
		s.Powers[i] = 1
	}
	return s
}

func TestSolversRegistry(t *testing.T) {
	names := Solvers()
	for _, want := range []string{"distributed", "greedy", "lp", "pipeline"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Solvers() = %v, missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Solvers() not sorted: %v", names)
		}
	}
	for _, n := range names {
		if got := Lookup(n).Name(); got != n {
			t.Errorf("Lookup(%q).Name() = %q", n, got)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	s := Lookup("annealing")
	if s == nil {
		t.Fatal("Lookup must never return nil")
	}
	_, err := s.Solve(context.Background(), DefaultModel(), fourLinks(t))
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("err = %v, want ErrUnknownSolver", err)
	}
	if !strings.Contains(err.Error(), "greedy") {
		t.Errorf("unknown-solver error should list registered names, got %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name": func() { Register("", Lookup("greedy")) },       //oblint:ignore exercising the panic path, never registered
		"nil solver": func() { Register("x", nil) },                   //oblint:ignore exercising the panic path, never registered
		"duplicate":  func() { Register("greedy", Lookup("greedy")) }, //oblint:ignore exercising the panic path, never registered
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOptionDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.Variant != Bidirectional {
		t.Errorf("default variant = %v, want Bidirectional", o.Variant)
	}
	if o.Assignment == nil || o.Assignment.Name() != Sqrt().Name() {
		t.Errorf("default assignment = %v, want sqrt", o.Assignment)
	}
	if o.Seed != 1 {
		t.Errorf("default seed = %d, want 1", o.Seed)
	}
	if o.Validate {
		t.Error("validation should default to off")
	}
	if o.Parallelism != 0 {
		t.Errorf("default parallelism = %d, want 0 (GOMAXPROCS)", o.Parallelism)
	}
	if !o.Affectance {
		t.Error("affectance cache should default to on")
	}

	// The options reach the algorithm core exactly as composed.
	var seen Options
	probe := NewSolver("probe", func(_ context.Context, _ Model, _ *Instance, o Options) (*Result, error) {
		seen = o
		return &Result{Schedule: dummySchedule(4)}, nil
	})
	_, err := probe.Solve(context.Background(), DefaultModel(), fourLinks(t),
		WithVariant(Directed), WithAssignment(Linear()), WithSeed(42), WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if seen.Variant != Directed || seen.Assignment.Name() != "linear" || seen.Seed != 42 || seen.Parallelism != 3 {
		t.Errorf("options did not thread through: %+v", seen)
	}
}

func TestNewSolverRejectsNilSchedule(t *testing.T) {
	for name, s := range map[string]Solver{
		"nil result":   NewSolver("bad", func(context.Context, Model, *Instance, Options) (*Result, error) { return nil, nil }),
		"nil schedule": NewSolver("bad", func(context.Context, Model, *Instance, Options) (*Result, error) { return &Result{}, nil }),
	} {
		if _, err := s.Solve(context.Background(), DefaultModel(), fourLinks(t)); err == nil {
			t.Errorf("%s: expected an error, not a panic or success", name)
		}
	}
}

func TestEverySolverValidates(t *testing.T) {
	m := DefaultModel()
	in := fourLinks(t)
	for _, name := range Solvers() {
		res, err := Lookup(name).Solve(context.Background(), m, in, WithSeed(3), WithValidation(true))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Solver != name {
			t.Errorf("%s: Result.Solver = %q", name, res.Solver)
		}
		if res.Schedule == nil || res.Schedule.NumColors() < 1 {
			t.Fatalf("%s: empty schedule", name)
		}
		if err := Validate(m, in, Bidirectional, res.Schedule); err != nil {
			t.Errorf("%s: schedule infeasible: %v", name, err)
		}
		if res.Stats.Colors != res.Schedule.NumColors() {
			t.Errorf("%s: Stats.Colors = %d, schedule has %d", name, res.Stats.Colors, res.Schedule.NumColors())
		}
		if res.Stats.Energy <= 0 {
			t.Errorf("%s: Stats.Energy = %g", name, res.Stats.Energy)
		}
	}
}

func TestSolverStatsUnified(t *testing.T) {
	m := DefaultModel()
	in := fourLinks(t)
	lp, err := Lookup("lp").Solve(context.Background(), m, in, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if lp.Stats.LP == nil || lp.Stats.LP.LPSolves == 0 {
		t.Errorf("lp stats missing: %+v", lp.Stats)
	}
	pipe, err := Lookup("pipeline").Solve(context.Background(), m, in, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Stats.Pipeline == nil || pipe.Stats.Pipeline.ActiveNodes == 0 {
		t.Errorf("pipeline stats missing: %+v", pipe.Stats)
	}
	dist, err := Lookup("distributed").Solve(context.Background(), m, in, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if dist.Stats.Slots == 0 || dist.Stats.Attempts == 0 {
		t.Errorf("distributed stats missing: %+v", dist.Stats)
	}
}

func TestSolverVariantGuards(t *testing.T) {
	m := DefaultModel()
	in := fourLinks(t)
	for _, name := range []string{"lp", "pipeline", "distributed"} {
		if _, err := Lookup(name).Solve(context.Background(), m, in, WithVariant(Directed)); err == nil {
			t.Errorf("%s should reject the directed variant", name)
		}
	}
	for _, name := range []string{"lp", "pipeline"} {
		if _, err := Lookup(name).Solve(context.Background(), m, in, WithAssignment(Linear())); err == nil {
			t.Errorf("%s should reject non-sqrt assignments", name)
		}
	}
	// Greedy supports both variants and arbitrary assignments.
	if _, err := Lookup("greedy").Solve(context.Background(), m, in,
		WithVariant(Directed), WithAssignment(Uniform(1)), WithValidation(true)); err != nil {
		t.Errorf("greedy directed uniform: %v", err)
	}
}

func TestSolveMatchesDeprecatedWrappers(t *testing.T) {
	m := DefaultModel()
	in := fourLinks(t)
	old, oldStats, err := ScheduleLP(m, in, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lookup("lp").Solve(context.Background(), m, in, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if old.NumColors() != res.Schedule.NumColors() || oldStats.LPSolves != res.Stats.LP.LPSolves {
		t.Errorf("wrapper and solver disagree: %d/%d colors, %d/%d solves",
			old.NumColors(), res.Schedule.NumColors(), oldStats.LPSolves, res.Stats.LP.LPSolves)
	}
}

func TestSolveAll(t *testing.T) {
	m := DefaultModel()
	instances := []*Instance{fourLinks(t), fourLinks(t), fourLinks(t), fourLinks(t), fourLinks(t)}
	results, err := SolveAll(context.Background(), m, instances, Lookup("greedy"), WithParallelism(2), WithValidation(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(instances) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil || r.Schedule == nil {
			t.Fatalf("result %d missing", i)
		}
	}
}

// TestSolveAllConcurrent proves the batch runner actually overlaps work: a
// barrier solver blocks every call until `workers` goroutines are inside
// it at the same time, so the batch can only finish if SolveAll runs that
// many instances concurrently.
func TestSolveAllConcurrent(t *testing.T) {
	const workers = 4
	var barrier sync.WaitGroup
	barrier.Add(workers)
	block := NewSolver("barrier", func(ctx context.Context, _ Model, _ *Instance, _ Options) (*Result, error) {
		barrier.Done()
		done := make(chan struct{})
		go func() { barrier.Wait(); close(done) }()
		select {
		case <-done:
			return &Result{Schedule: dummySchedule(1)}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, errors.New("barrier never filled: instances did not run concurrently")
		}
	})
	instances := make([]*Instance, workers)
	for i := range instances {
		instances[i] = fourLinks(t)
	}
	results, err := SolveAll(context.Background(), DefaultModel(), instances, block, WithParallelism(workers))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != workers {
		t.Fatalf("got %d results", len(results))
	}
}

func TestSolveAllCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveAll(ctx, DefaultModel(), []*Instance{fourLinks(t)}, Lookup("greedy"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveAllCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	slow := NewSolver("slow", func(ctx context.Context, _ Model, _ *Instance, _ Options) (*Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	instances := make([]*Instance, 16)
	for i := range instances {
		instances[i] = fourLinks(t)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := SolveAll(ctx, DefaultModel(), instances, slow, WithParallelism(2))
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SolveAll did not return after cancellation")
	}
}

func TestSolveAllErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	var calls sync.Map
	failing := NewSolver("failing", func(_ context.Context, _ Model, _ *Instance, o Options) (*Result, error) {
		calls.Store(o.Seed, true)
		if o.Seed == 2 { // instance index 1 under the default base seed 1
			return nil, boom
		}
		return &Result{Schedule: dummySchedule(1)}, nil
	})
	instances := make([]*Instance, 8)
	for i := range instances {
		instances[i] = fourLinks(t)
	}
	_, err := SolveAll(context.Background(), DefaultModel(), instances, failing, WithParallelism(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "instance 1") {
		t.Errorf("error should name the failing instance: %v", err)
	}
	// The single worker processed instances in order, so nothing after the
	// failing one (seed 2 = index 1) may have been attempted.
	calls.Range(func(k, _ any) bool {
		if seed := k.(int64); seed > 2 {
			t.Errorf("instance with seed %d ran after the failure", seed)
		}
		return true
	})
}

// The sqrt gate is behavioral: a true square root assignment under any
// name passes, a "sqrt"-named imposter does not.
func TestSqrtGuardIsBehavioral(t *testing.T) {
	m := DefaultModel()
	in := fourLinks(t)
	renamed := namedAssignment{name: "my-sqrt", f: func(loss float64) float64 { return math.Sqrt(loss) }}
	if _, err := Lookup("lp").Solve(context.Background(), m, in, WithAssignment(renamed)); err != nil {
		t.Errorf("behaviorally-sqrt assignment rejected: %v", err)
	}
	imposter := namedAssignment{name: "sqrt", f: func(loss float64) float64 { return loss }}
	if _, err := Lookup("lp").Solve(context.Background(), m, in, WithAssignment(imposter)); err == nil {
		t.Error("linear assignment named \"sqrt\" should be rejected")
	}
}

type namedAssignment struct {
	name string
	f    func(float64) float64
}

func (a namedAssignment) Name() string               { return a.name }
func (a namedAssignment) Power(loss float64) float64 { return a.f(loss) }

// Cancellation reaches inside the long-running algorithms, not just the
// Solve entry check: each ctx-aware core aborts at its next loop
// iteration when handed a canceled context.
func TestAlgorithmsHonorCancellationMidRun(t *testing.T) {
	m := DefaultModel()
	in := fourLinks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := coloring.SqrtLPColoringCtx(ctx, m, in, rng, coloring.LPOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("lp coloring: err = %v, want context.Canceled", err)
	}
	if _, _, err := (treestar.Pipeline{}).ColoringWithStats(ctx, m, in, rng); !errors.Is(err, context.Canceled) {
		t.Errorf("pipeline coloring: err = %v, want context.Canceled", err)
	}
	if _, err := distributed.Default().RunContext(ctx, m, in, rng); !errors.Is(err, context.Canceled) {
		t.Errorf("distributed run: err = %v, want context.Canceled", err)
	}
}

func TestParseAssignmentPublic(t *testing.T) {
	for spec, wantName := range map[string]string{
		"uniform":  "uniform",
		"linear":   "linear",
		"sqrt":     "sqrt",
		"exp:0.75": Exponent(0.75).Name(),
	} {
		a, err := ParseAssignment(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if a.Name() != wantName {
			t.Errorf("%s: name = %q, want %q", spec, a.Name(), wantName)
		}
	}
	if a, err := ParseAssignment("exp:2"); err != nil || a.Power(3) != 9 {
		t.Errorf("exp:2 parse = %v, err %v", a, err)
	}
	// Equivalent exponents canonicalize to the named assignments, so
	// "exp:0.5" satisfies the sqrt-only solvers.
	for spec, want := range map[string]string{"exp:0": "uniform", "exp:0.5": "sqrt", "exp:1": "linear"} {
		a, err := ParseAssignment(spec)
		if err != nil || a.Name() != want {
			t.Errorf("%s: name = %v (err %v), want %s", spec, a, err, want)
		}
	}
	for _, bad := range []string{"cubic", "exp:abc", ""} {
		if _, err := ParseAssignment(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

// TestWithAffectanceCacheParity runs every solver with the affectance
// cache on (the default) and off, and checks the cache changes nothing:
// greedy is deterministic and must match color for color; the randomized
// solvers must produce valid schedules in both modes with the same seed.
func TestWithAffectanceCacheParity(t *testing.T) {
	m := DefaultModel()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(8)), 50, 150, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Lookup("greedy").Solve(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Lookup("greedy").Solve(context.Background(), m, in, WithAffectanceCache(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range on.Schedule.Colors {
		if on.Schedule.Colors[i] != off.Schedule.Colors[i] {
			t.Fatalf("greedy: request %d colored %d with cache, %d without",
				i, on.Schedule.Colors[i], off.Schedule.Colors[i])
		}
	}
	for _, name := range Solvers() {
		for _, cached := range []bool{true, false} {
			res, err := Lookup(name).Solve(context.Background(), m, in,
				WithSeed(5), WithAffectanceCache(cached), WithValidation(true))
			if err != nil {
				t.Fatalf("%s cached=%t: %v", name, cached, err)
			}
			if res.Schedule.NumColors() < 1 {
				t.Fatalf("%s cached=%t: empty schedule", name, cached)
			}
		}
	}
}

// TestSolveAllSharedCache solves the same instance many times in one
// batch; the shared store means every worker reuses one set of matrices,
// and the results must match the unbatched solve.
func TestSolveAllSharedCache(t *testing.T) {
	m := DefaultModel()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(21)), 40, 150, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	instances := []*Instance{in, in, in, in, in, in, in, in}
	results, err := SolveAll(context.Background(), m, instances, Lookup("greedy"), WithValidation(true))
	if err != nil {
		t.Fatal(err)
	}
	single, err := Lookup("greedy").Solve(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range results {
		for i := range r.Schedule.Colors {
			if r.Schedule.Colors[i] != single.Schedule.Colors[i] {
				t.Fatalf("batch result %d diverged from single solve at request %d", k, i)
			}
		}
	}
}

// TestAffectanceModeSelection pins the engine-selection matrix of
// attachCache: auto switches to sparse only above the threshold, on a
// coordinate metric, with a positive epsilon; explicit modes override;
// forcing sparse on a matrix metric fails the solve.
func TestAffectanceModeSelection(t *testing.T) {
	m := DefaultModel()
	small, err := instance.UniformRandom(rand.New(rand.NewSource(2)), 30, 150, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	powers := PowersFor(m, small, Sqrt())

	engineType := func(o Options) string {
		t.Helper()
		mm, err := o.attachCache(m, small, Bidirectional, powers)
		if err != nil {
			t.Fatal(err)
		}
		c := mm.CacheFor(small, powers)
		switch {
		case c == nil:
			return "none"
		case c.IntoU(0) != nil:
			return "dense"
		default:
			return "sparse"
		}
	}

	base := DefaultOptions()
	if got := engineType(base); got != "dense" {
		t.Errorf("auto below threshold: engine = %s, want dense", got)
	}
	forced := base
	forced.Mode = AffectSparse
	if got := engineType(forced); got != "sparse" {
		t.Errorf("forced sparse: engine = %s, want sparse", got)
	}
	forced.Epsilon = 0
	if got := engineType(forced); got != "dense" {
		t.Errorf("sparse with ε=0: engine = %s, want dense (bitwise degeneration)", got)
	}
	off := base
	off.Affectance = false
	if got := engineType(off); got != "none" {
		t.Errorf("affectance off: engine = %s, want none", got)
	}

	// Auto above the threshold selects sparse without touching the dense
	// matrices (this would be a multi-GB allocation if it picked dense at
	// a production size; here the threshold boundary is what's pinned).
	big, err := instance.UniformRandom(rand.New(rand.NewSource(3)), sparse.AutoThreshold, 700, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	bigPowers := PowersFor(m, big, Sqrt())
	mm, err := DefaultOptions().attachCache(m, big, Bidirectional, bigPowers)
	if err != nil {
		t.Fatal(err)
	}
	if c := mm.CacheFor(big, bigPowers); c == nil || c.IntoU(0) != nil {
		t.Errorf("auto at threshold: want the sparse engine")
	}

	// Metrics without coordinates cannot be bucketed: auto falls back to
	// dense, forcing sparse errors out.
	line, err := instance.LineChain(8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Supported(line.Space) {
		t.Fatal("line metrics should support the grid")
	}
	dm := make([][]float64, 3)
	for i := range dm {
		dm[i] = make([]float64, 3)
		for j := range dm[i] {
			if i != j {
				dm[i][j] = float64(1 + (i+j)%2)
			}
		}
	}
	matIn, err := NewMatrixInstance(dm, []Request{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	matPowers := PowersFor(m, matIn, Sqrt())
	forcedMat := DefaultOptions()
	forcedMat.Mode = AffectSparse
	if _, err := forcedMat.attachCache(m, matIn, Bidirectional, matPowers); err == nil {
		t.Error("forcing sparse on a matrix metric should fail")
	}
	if _, err := Lookup("greedy").Solve(context.Background(), m, matIn,
		WithAffectanceMode(AffectSparse)); err == nil {
		t.Error("solve with forced sparse on a matrix metric should fail")
	}
	if _, err := Lookup("greedy").Solve(context.Background(), m, matIn, WithValidation(true)); err != nil {
		t.Errorf("auto on a matrix metric should fall back to dense: %v", err)
	}

	// A negative budget fails every solver uniformly, not only the ones
	// whose engine selection reaches the sparse constructor.
	for _, name := range []string{"greedy", "pipeline"} {
		if _, err := Lookup(name).Solve(context.Background(), m, small, WithEpsilon(-1)); err == nil {
			t.Errorf("%s with negative epsilon should fail", name)
		}
	}

	// Every solver core rides the tracker interfaces now: forced sparse
	// succeeds on a coordinate metric and the schedule passes the exact
	// oracle, while a coordinate-free metric still fails loudly.
	for _, name := range []string{"pipeline", "distributed"} {
		res, err := Lookup(name).Solve(context.Background(), m, small,
			WithAffectanceMode(AffectSparse), WithValidation(true))
		if err != nil {
			t.Errorf("%s with forced sparse: %v", name, err)
		} else if res.Stats.Engine != "sparse" {
			t.Errorf("%s with forced sparse reports engine %q", name, res.Stats.Engine)
		}
		if _, err := Lookup(name).Solve(context.Background(), m, matIn,
			WithAffectanceMode(AffectSparse)); err == nil {
			t.Errorf("%s with forced sparse on a matrix metric should fail", name)
		}
	}

	// Mode and parse round-trips.
	for _, mode := range []AffectanceMode{AffectAuto, AffectDense, AffectSparse} {
		got, err := ParseAffectanceMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseAffectanceMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseAffectanceMode("octree"); err == nil {
		t.Error("unknown mode should fail to parse")
	}
}

// TestStatsReportsEngineUsed is the regression test for the silent
// engine-mismatch bug: Stats must report the engine a solve actually ran
// on, not the one requested. Before the fix an auto mode that resolved to
// dense (small instance, coordinate-free metric) was indistinguishable
// from a sparse run.
func TestStatsReportsEngineUsed(t *testing.T) {
	m := DefaultModel()
	small, err := instance.UniformRandom(rand.New(rand.NewSource(9)), 24, 120, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	engine := func(opts ...Option) string {
		t.Helper()
		res, err := Lookup("greedy").Solve(context.Background(), m, small, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Engine
	}
	// Auto below the threshold resolves — and must report — dense.
	if got := engine(); got != "dense" {
		t.Errorf("auto below threshold: Stats.Engine = %q, want dense", got)
	}
	if got := engine(WithAffectanceMode(AffectSparse)); got != "sparse" {
		t.Errorf("forced sparse: Stats.Engine = %q, want sparse", got)
	}
	// Forced sparse with ε = 0 is the documented dense degeneration: the
	// run is bitwise dense and must say so.
	if got := engine(WithAffectanceMode(AffectSparse), WithEpsilon(0)); got != "dense" {
		t.Errorf("sparse with eps=0: Stats.Engine = %q, want dense", got)
	}
	if got := engine(WithAffectanceCache(false)); got != "off" {
		t.Errorf("cache off: Stats.Engine = %q, want off", got)
	}
	// A coordinate-free metric downgrades auto to dense; the downgrade
	// must be visible.
	dm := [][]float64{{0, 2, 5}, {2, 0, 4}, {5, 4, 0}}
	matIn, err := NewMatrixInstance(dm, []Request{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lookup("greedy").Solve(context.Background(), m, matIn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Engine != "dense" {
		t.Errorf("auto on a matrix metric: Stats.Engine = %q, want dense", res.Stats.Engine)
	}
	// The online solver builds its engine regardless of the cache option
	// and reports what it built.
	online, err := Lookup("online").Solve(context.Background(), m, small, WithAffectanceCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if online.Stats.Engine != "dense" {
		t.Errorf("online with cache off: Stats.Engine = %q, want dense", online.Stats.Engine)
	}
	if res := mustSolve(t, "online", m, small, WithAffectanceMode(AffectSparse)); res.Stats.Engine != "sparse" {
		t.Errorf("online forced sparse: Stats.Engine = %q, want sparse", res.Stats.Engine)
	}
}

// mustSolve is a tiny helper for engine-reporting assertions.
func mustSolve(t *testing.T, name string, m Model, in *Instance, opts ...Option) *Result {
	t.Helper()
	res, err := Lookup(name).Solve(context.Background(), m, in, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
