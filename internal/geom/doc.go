// Package geom provides finite metric spaces used by the interference
// scheduling problem: Euclidean point sets, explicit distance matrices,
// tree shortest-path metrics, and star metrics.
//
// All spaces implement the Metric interface over node indices 0..N-1.
// Distances are symmetric and non-negative; Dist(i, i) is 0. The paper
// states its results for arbitrary metrics (Section 1.1), which is why
// everything downstream is written against Metric rather than
// coordinates.
//
// Exported entry points:
//
//   - Metric is the two-method interface (N, Dist) every algorithm
//     consumes.
//   - NewEuclidean, NewLine, NewMatrix build the general-purpose spaces;
//     NewStar and NewTree build the star and tree metrics the Theorem 2
//     pipeline reduces to (packages star, treestar, hst); NewSub
//     restricts a metric to a node subset.
//   - MinDist, MaxDist, AspectRatio compute the aspect ratio Δ that the
//     grid baseline's O(log Δ) factor depends on; ValidateTriangle is the
//     O(n³) test-only sanity check.
package geom
