package geom

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Metric is a finite metric space over nodes 0..N()-1.
type Metric interface {
	// N returns the number of nodes.
	N() int
	// Dist returns the distance between nodes i and j.
	Dist(i, j int) float64
}

// Euclidean is a set of points in d-dimensional Euclidean space.
type Euclidean struct {
	pts [][]float64
	dim int
}

var _ Metric = (*Euclidean)(nil)

// NewEuclidean builds a Euclidean metric from the given points. All points
// must have the same, non-zero dimension.
func NewEuclidean(pts [][]float64) (*Euclidean, error) {
	if len(pts) == 0 {
		return nil, errors.New("geom: empty point set")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, errors.New("geom: zero-dimensional points")
	}
	cp := make([][]float64, len(pts))
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p), dim)
		}
		cp[i] = append([]float64(nil), p...)
	}
	return &Euclidean{pts: cp, dim: dim}, nil
}

// N returns the number of points.
func (e *Euclidean) N() int { return len(e.pts) }

// Dim returns the dimension of the space.
func (e *Euclidean) Dim() int { return e.dim }

// Point returns a copy of the coordinates of node i.
func (e *Euclidean) Point(i int) []float64 {
	return append([]float64(nil), e.pts[i]...)
}

// Dist returns the Euclidean distance between points i and j.
func (e *Euclidean) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	var s float64
	pi, pj := e.pts[i], e.pts[j]
	for k := 0; k < e.dim; k++ {
		d := pi[k] - pj[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// Line is a one-dimensional Euclidean metric given by node coordinates.
type Line struct {
	xs []float64
}

var _ Metric = (*Line)(nil)

// NewLine builds a line metric from the given coordinates.
func NewLine(xs []float64) (*Line, error) {
	if len(xs) == 0 {
		return nil, errors.New("geom: empty line")
	}
	return &Line{xs: append([]float64(nil), xs...)}, nil
}

// N returns the number of nodes.
func (l *Line) N() int { return len(l.xs) }

// Coord returns the coordinate of node i.
func (l *Line) Coord(i int) float64 { return l.xs[i] }

// Dist returns |x_i - x_j|.
func (l *Line) Dist(i, j int) float64 { return math.Abs(l.xs[i] - l.xs[j]) }

// Matrix is an explicit distance-matrix metric.
type Matrix struct {
	d [][]float64
}

var _ Metric = (*Matrix)(nil)

// NewMatrix builds a metric from an explicit symmetric matrix with zero
// diagonal and non-negative entries. It does not verify the triangle
// inequality; use ValidateTriangle for that.
func NewMatrix(d [][]float64) (*Matrix, error) {
	n := len(d)
	if n == 0 {
		return nil, errors.New("geom: empty matrix")
	}
	cp := make([][]float64, n)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("geom: row %d has length %d, want %d", i, len(d[i]), n)
		}
		cp[i] = append([]float64(nil), d[i]...)
	}
	for i := 0; i < n; i++ {
		if cp[i][i] != 0 {
			return nil, fmt.Errorf("geom: non-zero diagonal at %d", i)
		}
		for j := 0; j < n; j++ {
			if cp[i][j] < 0 {
				return nil, fmt.Errorf("geom: negative distance (%d,%d)", i, j)
			}
			if math.Abs(cp[i][j]-cp[j][i]) > 1e-12*(1+math.Abs(cp[i][j])) {
				return nil, fmt.Errorf("geom: asymmetric distance (%d,%d)", i, j)
			}
		}
	}
	return &Matrix{d: cp}, nil
}

// N returns the number of nodes.
func (m *Matrix) N() int { return len(m.d) }

// Dist returns the stored distance between i and j.
func (m *Matrix) Dist(i, j int) float64 { return m.d[i][j] }

// Star is a star metric: n leaf nodes around an implicit center. The
// distance between two distinct leaves is the sum of their radii (their
// distances to the center). The center itself is not a node of the metric;
// use Radius to access leaf-to-center distances.
type Star struct {
	radii []float64
}

var _ Metric = (*Star)(nil)

// NewStar builds a star metric from leaf radii. All radii must be positive.
func NewStar(radii []float64) (*Star, error) {
	if len(radii) == 0 {
		return nil, errors.New("geom: empty star")
	}
	for i, r := range radii {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("geom: invalid radius %g at leaf %d", r, i)
		}
	}
	return &Star{radii: append([]float64(nil), radii...)}, nil
}

// N returns the number of leaves.
func (s *Star) N() int { return len(s.radii) }

// Radius returns the distance from leaf i to the star center.
func (s *Star) Radius(i int) float64 { return s.radii[i] }

// Dist returns radii[i] + radii[j] for distinct leaves, 0 otherwise.
func (s *Star) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	return s.radii[i] + s.radii[j]
}

// Tree is an edge-weighted tree metric. Distances are shortest-path
// distances in the tree, answered by walking to the lowest common ancestor
// of a rooted representation built by Finalize. Queries cost O(height),
// which is logarithmic for the balanced hierarchically separated trees this
// repository produces, and memory stays linear even for trees with many
// Steiner nodes.
type Tree struct {
	n     int
	adj   [][]treeEdge
	built bool
	// Rooted representation (root = node 0).
	parent []int
	pw     []float64 // weight of the edge to the parent
	wdepth []float64 // weighted depth
	idepth []int     // integer depth
}

type treeEdge struct {
	to int
	w  float64
}

var _ Metric = (*Tree)(nil)

// NewTree creates a tree metric with n isolated nodes. Add n-1 edges with
// AddEdge and then call Finalize before using Dist.
func NewTree(n int) (*Tree, error) {
	if n <= 0 {
		return nil, errors.New("geom: tree must have at least one node")
	}
	return &Tree{n: n, adj: make([][]treeEdge, n)}, nil
}

// N returns the number of nodes.
func (t *Tree) N() int { return t.n }

// AddEdge adds an undirected edge of weight w between u and v.
func (t *Tree) AddEdge(u, v int, w float64) error {
	if t.built {
		return errors.New("geom: tree already finalized")
	}
	if u < 0 || u >= t.n || v < 0 || v >= t.n || u == v {
		return fmt.Errorf("geom: invalid edge (%d,%d)", u, v)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("geom: invalid edge weight %g", w)
	}
	t.adj[u] = append(t.adj[u], treeEdge{to: v, w: w})
	t.adj[v] = append(t.adj[v], treeEdge{to: u, w: w})
	return nil
}

// Finalize checks that the edges form a spanning tree and roots it at
// node 0 for distance queries.
func (t *Tree) Finalize() error {
	if t.built {
		return nil
	}
	var edges int
	for _, a := range t.adj {
		edges += len(a)
	}
	if edges != 2*(t.n-1) {
		return fmt.Errorf("geom: tree has %d edges, want %d", edges/2, t.n-1)
	}
	t.parent = make([]int, t.n)
	t.pw = make([]float64, t.n)
	t.wdepth = make([]float64, t.n)
	t.idepth = make([]int, t.n)
	seen := make([]bool, t.n)
	seen[0] = true
	t.parent[0] = -1
	stack := []int{0}
	visited := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[u] {
			if seen[e.to] {
				continue
			}
			seen[e.to] = true
			visited++
			t.parent[e.to] = u
			t.pw[e.to] = e.w
			t.wdepth[e.to] = t.wdepth[u] + e.w
			t.idepth[e.to] = t.idepth[u] + 1
			stack = append(stack, e.to)
		}
	}
	if visited != t.n {
		return errors.New("geom: edges do not form a connected tree")
	}
	t.built = true
	return nil
}

// Dist returns the tree shortest-path distance. Finalize must have been
// called; otherwise Dist panics.
func (t *Tree) Dist(i, j int) float64 {
	if !t.built {
		panic("geom: Tree.Dist before Finalize")
	}
	if i == j {
		return 0
	}
	di, dj := t.wdepth[i], t.wdepth[j]
	for t.idepth[i] > t.idepth[j] {
		i = t.parent[i]
	}
	for t.idepth[j] > t.idepth[i] {
		j = t.parent[j]
	}
	for i != j {
		i = t.parent[i]
		j = t.parent[j]
	}
	return di + dj - 2*t.wdepth[i]
}

// Neighbors returns the neighbors of u and the corresponding edge weights.
func (t *Tree) Neighbors(u int) (nodes []int, weights []float64) {
	for _, e := range t.adj[u] {
		nodes = append(nodes, e.to)
		weights = append(weights, e.w)
	}
	return nodes, weights
}

// Degree returns the number of neighbors of u. With Neighbor it offers
// the allocation-free view of the adjacency that the centroid
// decomposition walks millions of times per solve.
func (t *Tree) Degree(u int) int { return len(t.adj[u]) }

// Neighbor returns the k-th neighbor of u and the edge weight, without
// allocating. k must be in [0, Degree(u)).
func (t *Tree) Neighbor(u, k int) (int, float64) {
	e := t.adj[u][k]
	return e.to, e.w
}

// Sub is a metric restricted to a subset of another metric's nodes. Node i
// of the sub-metric corresponds to nodes[i] of the base metric.
type Sub struct {
	base  Metric
	nodes []int

	// distOnce/distFn memoize DistFunc's flattened evaluator: the pipeline
	// resolves the same Sub once per tree build plus once per embedding,
	// and the flatten is O(n·dim) each time. The memo is concurrency-safe
	// because concurrent tree builds share one Sub.
	distOnce sync.Once
	distFn   func(i, j int) float64
}

var _ Metric = (*Sub)(nil)

// NewSub builds a restriction of base to the given node indices. The
// slice is copied; see NewSubOwned for the zero-copy variant.
func NewSub(base Metric, nodes []int) (*Sub, error) {
	s, err := NewSubOwned(base, nodes)
	if err != nil {
		return nil, err
	}
	s.nodes = append([]int(nil), nodes...)
	return s, nil
}

// NewSubOwned is NewSub taking ownership of the nodes slice instead of
// copying it. The caller must not mutate nodes while the Sub is live;
// the pipeline's arena uses this to restrict a metric once per color
// class without re-copying the active-node list it already owns.
func NewSubOwned(base Metric, nodes []int) (*Sub, error) {
	if len(nodes) == 0 {
		return nil, errors.New("geom: empty sub-metric")
	}
	for _, v := range nodes {
		if v < 0 || v >= base.N() {
			return nil, fmt.Errorf("geom: node %d out of range [0,%d)", v, base.N())
		}
	}
	return &Sub{base: base, nodes: nodes}, nil
}

// N returns the number of nodes in the restriction.
func (s *Sub) N() int { return len(s.nodes) }

// Base returns the index in the base metric of sub-node i.
func (s *Sub) Base(i int) int { return s.nodes[i] }

// Dist returns the base-metric distance between the mapped nodes.
func (s *Sub) Dist(i, j int) float64 { return s.base.Dist(s.nodes[i], s.nodes[j]) }

// DistFunc returns a direct evaluator of m.Dist with the interface
// indirection peeled off: concrete metrics resolve to a bound method
// (a static call instead of a dynamic dispatch per pair), and a Sub view
// resolves its base once instead of re-dispatching on every query. The
// returned function computes exactly m.Dist — same operations in the
// same order, bitwise-equal results — it is only cheaper to call inside
// the O(n²) loops of the HST builds and stretch scans.
func DistFunc(m Metric) func(i, j int) float64 {
	switch t := m.(type) {
	case *Sub:
		// The flattened evaluator is memoized on the Sub: an HST ensemble
		// resolves the same restriction once per tree, and re-flattening
		// O(n·dim) coordinates per resolution was pure waste.
		t.distOnce.Do(func() { t.distFn = subDistFunc(t) })
		return t.distFn
	case *Euclidean:
		return t.Dist
	case *Line:
		return t.Dist
	case *Matrix:
		return t.Dist
	case *Star:
		return t.Dist
	case *Tree:
		return t.Dist
	default:
		return m.Dist
	}
}

// subDistFunc builds the direct evaluator of a Sub view. Coordinate
// bases flatten the selected points into one contiguous array: the
// evaluator then runs the base's exact distance formula (same operations
// on the same float values) without the per-query node translation or
// pointer chases.
func subDistFunc(t *Sub) func(i, j int) float64 {
	switch base := t.base.(type) {
	case *Euclidean:
		dim := base.dim
		flat := make([]float64, len(t.nodes)*dim)
		for i, nd := range t.nodes {
			copy(flat[i*dim:(i+1)*dim], base.pts[nd])
		}
		return func(i, j int) float64 {
			if i == j {
				return 0
			}
			var s float64
			pi, pj := flat[i*dim:(i+1)*dim], flat[j*dim:(j+1)*dim]
			for k := 0; k < dim; k++ {
				d := pi[k] - pj[k]
				s += d * d
			}
			return math.Sqrt(s)
		}
	case *Line:
		xs := make([]float64, len(t.nodes))
		for i, nd := range t.nodes {
			xs[i] = base.xs[nd]
		}
		return func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) }
	}
	inner := DistFunc(t.base)
	nodes := t.nodes
	return func(i, j int) float64 { return inner(nodes[i], nodes[j]) }
}

// MinDist returns the minimum distance over all distinct node pairs.
func MinDist(m Metric) float64 {
	n := m.N()
	dist := DistFunc(m)
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d < best {
				best = d
			}
		}
	}
	return best
}

// MaxDist returns the maximum distance (diameter) over all node pairs.
func MaxDist(m Metric) float64 {
	n := m.N()
	dist := DistFunc(m)
	var best float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d > best {
				best = d
			}
		}
	}
	return best
}

// AspectRatio returns MaxDist / MinDist, the aspect ratio Δ of the metric.
// It returns +Inf if two distinct nodes coincide.
func AspectRatio(m Metric) float64 {
	lo := MinDist(m)
	if lo == 0 {
		return math.Inf(1)
	}
	return MaxDist(m) / lo
}

// ValidateTriangle checks the triangle inequality on all node triples with
// a relative tolerance. It is O(n^3); intended for tests.
func ValidateTriangle(m Metric) error {
	n := m.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dij := m.Dist(i, j)
			for k := 0; k < n; k++ {
				if via := m.Dist(i, k) + m.Dist(k, j); dij > via*(1+1e-9) {
					return fmt.Errorf("geom: triangle inequality violated: d(%d,%d)=%g > d(%d,%d)+d(%d,%d)=%g",
						i, j, dij, i, k, k, j, via)
				}
			}
		}
	}
	return nil
}
