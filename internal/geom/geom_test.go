package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEuclideanValidation(t *testing.T) {
	tests := []struct {
		name    string
		pts     [][]float64
		wantErr bool
	}{
		{name: "empty", pts: nil, wantErr: true},
		{name: "zero dim", pts: [][]float64{{}}, wantErr: true},
		{name: "mismatched dims", pts: [][]float64{{1, 2}, {1}}, wantErr: true},
		{name: "valid 1d", pts: [][]float64{{0}, {1}}, wantErr: false},
		{name: "valid 3d", pts: [][]float64{{0, 0, 0}, {1, 2, 3}}, wantErr: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEuclidean(tc.pts)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewEuclidean(%v) error = %v, wantErr %v", tc.pts, err, tc.wantErr)
			}
		})
	}
}

func TestEuclideanDist(t *testing.T) {
	e, err := NewEuclidean([][]float64{{0, 0}, {3, 4}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Dist(0, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist(0,1) = %g, want 5", got)
	}
	if got := e.Dist(1, 0); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist(1,0) = %g, want 5 (symmetry)", got)
	}
	if got := e.Dist(0, 2); got != 0 {
		t.Errorf("Dist of coincident points = %g, want 0", got)
	}
	if got := e.Dist(1, 1); got != 0 {
		t.Errorf("Dist(i,i) = %g, want 0", got)
	}
}

func TestEuclideanPointIsCopy(t *testing.T) {
	e, err := NewEuclidean([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Point(0)
	p[0] = 99
	if e.Dist(0, 1) != math.Hypot(2, 2) {
		t.Error("mutating the returned point changed the metric")
	}
}

func TestLine(t *testing.T) {
	l, err := NewLine([]float64{-2, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Dist(0, 2); got != 7 {
		t.Errorf("Dist(0,2) = %g, want 7", got)
	}
	if got := l.Coord(1); got != 0 {
		t.Errorf("Coord(1) = %g, want 0", got)
	}
	if _, err := NewLine(nil); err == nil {
		t.Error("NewLine(nil) should fail")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	tests := []struct {
		name    string
		d       [][]float64
		wantErr bool
	}{
		{name: "empty", d: nil, wantErr: true},
		{name: "ragged", d: [][]float64{{0, 1}, {1}}, wantErr: true},
		{name: "nonzero diag", d: [][]float64{{1}}, wantErr: true},
		{name: "negative", d: [][]float64{{0, -1}, {-1, 0}}, wantErr: true},
		{name: "asymmetric", d: [][]float64{{0, 1}, {2, 0}}, wantErr: true},
		{name: "valid", d: [][]float64{{0, 1}, {1, 0}}, wantErr: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewMatrix(tc.d)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewMatrix error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestStar(t *testing.T) {
	s, err := NewStar([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Dist(0, 2); got != 4 {
		t.Errorf("Dist(0,2) = %g, want 4", got)
	}
	if got := s.Dist(1, 1); got != 0 {
		t.Errorf("Dist(1,1) = %g, want 0", got)
	}
	if got := s.Radius(1); got != 2 {
		t.Errorf("Radius(1) = %g, want 2", got)
	}
	if err := ValidateTriangle(s); err != nil {
		t.Errorf("star metric should satisfy the triangle inequality: %v", err)
	}
	if _, err := NewStar([]float64{1, 0}); err == nil {
		t.Error("zero radius should be rejected")
	}
	if _, err := NewStar([]float64{1, math.Inf(1)}); err == nil {
		t.Error("infinite radius should be rejected")
	}
}

func TestTreePathDistances(t *testing.T) {
	// Path 0 -1- 1 -2- 2 -4- 3.
	tr, err := NewTree(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 4}} {
		if err := tr.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{0, 1, 3, 7},
		{1, 0, 2, 6},
		{3, 2, 0, 4},
		{7, 6, 4, 0},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := tr.Dist(i, j); math.Abs(got-want[i][j]) > 1e-12 {
				t.Errorf("Dist(%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}

func TestTreeStarTopology(t *testing.T) {
	// Star with center 0 and leaves 1..4.
	tr, err := NewTree(5)
	if err != nil {
		t.Fatal(err)
	}
	for leaf := 1; leaf < 5; leaf++ {
		if err := tr.AddEdge(0, leaf, float64(leaf)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Dist(1, 4); got != 5 {
		t.Errorf("Dist(1,4) = %g, want 5", got)
	}
	nodes, weights := tr.Neighbors(0)
	if len(nodes) != 4 || len(weights) != 4 {
		t.Errorf("Neighbors(0) returned %d nodes, want 4", len(nodes))
	}
}

func TestTreeErrors(t *testing.T) {
	tr, err := NewTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop should be rejected")
	}
	if err := tr.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge should be rejected")
	}
	if err := tr.AddEdge(0, 1, -1); err == nil {
		t.Error("negative weight should be rejected")
	}
	if err := tr.Finalize(); err == nil {
		t.Error("Finalize with missing edges should fail")
	}
	// Disconnected: 2 edges among {0,1} duplicated.
	tr2, _ := NewTree(3)
	_ = tr2.AddEdge(0, 1, 1)
	_ = tr2.AddEdge(0, 1, 1)
	if err := tr2.Finalize(); err == nil {
		t.Error("Finalize of a multigraph should fail")
	}
	if _, err := NewTree(0); err == nil {
		t.Error("NewTree(0) should fail")
	}
}

func TestTreeAddEdgeAfterFinalize(t *testing.T) {
	tr, _ := NewTree(2)
	_ = tr.AddEdge(0, 1, 1)
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddEdge(0, 1, 1); err == nil {
		t.Error("AddEdge after Finalize should fail")
	}
}

func TestSub(t *testing.T) {
	l, _ := NewLine([]float64{0, 1, 4, 9})
	s, err := NewSub(l, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Fatalf("N = %d, want 2", s.N())
	}
	if got := s.Dist(0, 1); got != 8 {
		t.Errorf("Dist(0,1) = %g, want 8", got)
	}
	if got := s.Base(0); got != 3 {
		t.Errorf("Base(0) = %d, want 3", got)
	}
	if _, err := NewSub(l, []int{7}); err == nil {
		t.Error("out-of-range node should be rejected")
	}
	if _, err := NewSub(l, nil); err == nil {
		t.Error("empty sub-metric should be rejected")
	}
}

func TestMinMaxAspect(t *testing.T) {
	l, _ := NewLine([]float64{0, 1, 10})
	if got := MinDist(l); got != 1 {
		t.Errorf("MinDist = %g, want 1", got)
	}
	if got := MaxDist(l); got != 10 {
		t.Errorf("MaxDist = %g, want 10", got)
	}
	if got := AspectRatio(l); got != 10 {
		t.Errorf("AspectRatio = %g, want 10", got)
	}
	dup, _ := NewLine([]float64{0, 0, 1})
	if got := AspectRatio(dup); !math.IsInf(got, 1) {
		t.Errorf("AspectRatio with coincident nodes = %g, want +Inf", got)
	}
}

func TestValidateTriangleRejects(t *testing.T) {
	// 0-1 and 1-2 are short but 0-2 is long: violates the triangle
	// inequality.
	m, err := NewMatrix([][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTriangle(m); err == nil {
		t.Error("expected a triangle inequality violation")
	}
}

// TestEuclideanTriangleProperty checks the triangle inequality on random
// Euclidean point sets.
func TestEuclideanTriangleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.NormFloat64() * 10, r.NormFloat64() * 10}
		}
		e, err := NewEuclidean(pts)
		if err != nil {
			return false
		}
		return ValidateTriangle(e) == nil
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTreeDistanceMetricProperty checks symmetry and the triangle
// inequality on random trees.
func TestTreeDistanceMetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		tr, err := NewTree(n)
		if err != nil {
			return false
		}
		for v := 1; v < n; v++ {
			p := r.Intn(v)
			if err := tr.AddEdge(p, v, 0.1+r.Float64()*5); err != nil {
				return false
			}
		}
		if err := tr.Finalize(); err != nil {
			return false
		}
		return ValidateTriangle(tr) == nil
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
