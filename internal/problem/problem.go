package problem

import (
	"errors"
	"fmt"

	"repro/internal/geom"
)

// Request is a communication request between two nodes of the metric space.
// In the directed variant U is the sender and V the receiver; in the
// bidirectional variant the two endpoints exchange signals in both
// directions.
type Request struct {
	U int `json:"u"`
	V int `json:"v"`
}

// Instance is a set of communication requests over a metric space.
type Instance struct {
	Space geom.Metric
	Reqs  []Request
}

// New builds an instance, validating that all request endpoints are distinct
// nodes of the space.
func New(space geom.Metric, reqs []Request) (*Instance, error) {
	if space == nil {
		return nil, errors.New("problem: nil metric space")
	}
	if len(reqs) == 0 {
		return nil, errors.New("problem: no requests")
	}
	n := space.N()
	for i, r := range reqs {
		if r.U < 0 || r.U >= n || r.V < 0 || r.V >= n {
			return nil, fmt.Errorf("problem: request %d endpoints (%d,%d) out of range [0,%d)", i, r.U, r.V, n)
		}
		if r.U == r.V {
			return nil, fmt.Errorf("problem: request %d has identical endpoints %d", i, r.U)
		}
		if space.Dist(r.U, r.V) == 0 {
			return nil, fmt.Errorf("problem: request %d endpoints coincide in the metric", i)
		}
	}
	return &Instance{Space: space, Reqs: append([]Request(nil), reqs...)}, nil
}

// N returns the number of requests.
func (in *Instance) N() int { return len(in.Reqs) }

// Length returns the distance between the endpoints of request i.
func (in *Instance) Length(i int) float64 {
	r := in.Reqs[i]
	return in.Space.Dist(r.U, r.V)
}

// Lengths returns the distances of all requests.
func (in *Instance) Lengths() []float64 {
	out := make([]float64, in.N())
	for i := range in.Reqs {
		out[i] = in.Length(i)
	}
	return out
}

// Restrict returns a new instance containing only the requests with the
// given indices (over the same metric space), plus the mapping from new
// request index to original index.
func (in *Instance) Restrict(idx []int) (*Instance, []int, error) {
	if len(idx) == 0 {
		return nil, nil, errors.New("problem: empty restriction")
	}
	reqs := make([]Request, 0, len(idx))
	mapping := make([]int, 0, len(idx))
	for _, i := range idx {
		if i < 0 || i >= in.N() {
			return nil, nil, fmt.Errorf("problem: request index %d out of range", i)
		}
		reqs = append(reqs, in.Reqs[i])
		mapping = append(mapping, i)
	}
	sub, err := New(in.Space, reqs)
	if err != nil {
		return nil, nil, err
	}
	return sub, mapping, nil
}

// Schedule assigns a power level and a color to every request of an
// instance. Colors are 0-based and contiguous in well-formed schedules.
type Schedule struct {
	// Colors[i] is the color (time slot) of request i.
	Colors []int
	// Powers[i] is the transmission power of request i.
	Powers []float64
}

// NewSchedule allocates an empty schedule for n requests with all colors
// set to -1 (unassigned).
func NewSchedule(n int) *Schedule {
	s := &Schedule{
		Colors: make([]int, n),
		Powers: make([]float64, n),
	}
	for i := range s.Colors {
		s.Colors[i] = -1
	}
	return s
}

// NumColors returns the number of distinct colors used, assuming colors are
// 0-based; unassigned requests (color -1) are ignored.
func (s *Schedule) NumColors() int {
	max := -1
	for _, c := range s.Colors {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// Class returns the request indices assigned color c.
func (s *Schedule) Class(c int) []int {
	var out []int
	for i, ci := range s.Colors {
		if ci == c {
			out = append(out, i)
		}
	}
	return out
}

// Classes returns all color classes indexed by color.
func (s *Schedule) Classes() [][]int {
	k := s.NumColors()
	out := make([][]int, k)
	for i, c := range s.Colors {
		if c >= 0 {
			out[c] = append(out[c], i)
		}
	}
	return out
}

// Complete reports whether every request has been assigned a color.
func (s *Schedule) Complete() bool {
	for _, c := range s.Colors {
		if c < 0 {
			return false
		}
	}
	return true
}

// TotalEnergy returns the sum of the powers of all requests. It is the
// energy measure used by the performance/energy tradeoff experiment (E10).
func (s *Schedule) TotalEnergy() float64 {
	var sum float64
	for _, p := range s.Powers {
		sum += p
	}
	return sum
}
