package problem

import (
	"testing"

	"repro/internal/geom"
)

func line(t *testing.T, xs ...float64) geom.Metric {
	t.Helper()
	l, err := geom.NewLine(xs)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	space := line(t, 0, 1, 2, 2)
	tests := []struct {
		name    string
		reqs    []Request
		wantErr bool
	}{
		{name: "no requests", reqs: nil, wantErr: true},
		{name: "out of range", reqs: []Request{{U: 0, V: 9}}, wantErr: true},
		{name: "negative", reqs: []Request{{U: -1, V: 1}}, wantErr: true},
		{name: "identical endpoints", reqs: []Request{{U: 1, V: 1}}, wantErr: true},
		{name: "coincident in metric", reqs: []Request{{U: 2, V: 3}}, wantErr: true},
		{name: "valid", reqs: []Request{{U: 0, V: 1}, {U: 1, V: 2}}, wantErr: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(space, tc.reqs)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
	if _, err := New(nil, []Request{{U: 0, V: 1}}); err == nil {
		t.Error("nil space should be rejected")
	}
}

func TestLengths(t *testing.T) {
	in, err := New(line(t, 0, 2, 10, 13), []Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Length(1); got != 3 {
		t.Errorf("Length(1) = %g, want 3", got)
	}
	ls := in.Lengths()
	if len(ls) != 2 || ls[0] != 2 || ls[1] != 3 {
		t.Errorf("Lengths = %v, want [2 3]", ls)
	}
	if in.N() != 2 {
		t.Errorf("N = %d, want 2", in.N())
	}
}

func TestRequestsAreCopied(t *testing.T) {
	reqs := []Request{{U: 0, V: 1}}
	in, err := New(line(t, 0, 1), reqs)
	if err != nil {
		t.Fatal(err)
	}
	reqs[0].V = 0
	if in.Reqs[0].V != 1 {
		t.Error("instance shares the caller's request slice")
	}
}

func TestRestrict(t *testing.T) {
	in, err := New(line(t, 0, 1, 5, 7, 20, 24), []Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping, err := in.Restrict([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 {
		t.Fatalf("sub.N = %d, want 2", sub.N())
	}
	if sub.Length(0) != 4 || sub.Length(1) != 1 {
		t.Errorf("restricted lengths = %g, %g; want 4, 1", sub.Length(0), sub.Length(1))
	}
	if mapping[0] != 2 || mapping[1] != 0 {
		t.Errorf("mapping = %v, want [2 0]", mapping)
	}
	if _, _, err := in.Restrict(nil); err == nil {
		t.Error("empty restriction should fail")
	}
	if _, _, err := in.Restrict([]int{9}); err == nil {
		t.Error("out-of-range restriction should fail")
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := NewSchedule(4)
	if s.Complete() {
		t.Error("fresh schedule should be incomplete")
	}
	if s.NumColors() != 0 {
		t.Errorf("NumColors of fresh schedule = %d, want 0", s.NumColors())
	}
	s.Colors = []int{0, 1, 0, 2}
	s.Powers = []float64{1, 2, 3, 4}
	if !s.Complete() {
		t.Error("schedule should be complete")
	}
	if got := s.NumColors(); got != 3 {
		t.Errorf("NumColors = %d, want 3", got)
	}
	if got := s.Class(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Class(0) = %v, want [0 2]", got)
	}
	classes := s.Classes()
	if len(classes) != 3 || len(classes[1]) != 1 || classes[1][0] != 1 {
		t.Errorf("Classes = %v", classes)
	}
	if got := s.TotalEnergy(); got != 10 {
		t.Errorf("TotalEnergy = %g, want 10", got)
	}
}
