// Package problem defines the interference scheduling problem instances
// and schedules shared by all algorithms in this repository.
//
// An Instance is a metric space together with a list of communication
// requests, each a pair of node indices — the problem input of Section 1.1
// of the paper. A Schedule assigns every request a power level and a color
// (time slot); the requests of a color class are meant to communicate
// simultaneously under the SINR model (package sinr), and the number of
// colors is the objective the paper's theorems bound.
//
// Exported entry points:
//
//   - New validates and builds an Instance; Instance.Length/Lengths give
//     request lengths, Instance.Restrict the sub-instance over a subset
//     of requests (used by the iterated colorings).
//   - NewSchedule allocates an unassigned schedule; Schedule.Classes,
//     NumColors, Complete and TotalEnergy are the accessors experiments
//     and validators build on.
package problem
