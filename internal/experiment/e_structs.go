package experiment

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/hst"
	"repro/internal/sinr"
	"repro/internal/star"
)

// E6TreeEmbedding reproduces Lemma 6's shape: sampling r = O(log n) FRT
// trees over a random point set yields metrics that dominate the original
// (always) and, for most nodes, stretch all distances by at most a
// logarithmic factor, so the best core covers nearly all nodes.
func E6TreeEmbedding(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Lemma 6: FRT tree ensembles — domination, stretch, core coverage",
		Columns: []string{"n", "trees r", "dominates", "avg stretch", "bound", "avg good frac", "best core"},
		Notes: []string{
			"expected shape: dominates = all; avg stretch = O(log n); good fraction ≥ 0.9ish; best core ≈ n",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	sizes := cfg.sizes([]int{32, 64, 128, 256}, []int{32})
	for _, n := range sizes {
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000}
		}
		base, err := geom.NewEuclidean(pts)
		if err != nil {
			return nil, err
		}
		r := int(math.Ceil(math.Log2(float64(n)))) + 2
		en, err := hst.BuildEnsemble(base, r, 0, rng)
		if err != nil {
			return nil, err
		}
		dominated := 0
		var stretches []float64
		for _, tree := range en.Trees {
			if tree.Dominates() {
				dominated++
			}
			for v := 0; v < n; v++ {
				stretches = append(stretches, tree.Stretch(v))
			}
		}
		var goodSum float64
		for v := 0; v < n; v++ {
			goodSum += en.GoodTreeFraction(v)
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		_, core := en.BestCoreTree(all)
		domCell := Itoa(dominated) + "/" + Itoa(r)
		t.AddRow(Itoa(n), Itoa(r), domCell, Ftoa(Mean(stretches), 1),
			Ftoa(en.StretchBound, 1), Ftoa(goodSum/float64(n), 2),
			Itoa(len(core))+"/"+Itoa(n))
	}
	return t, nil
}

// E7StarSelection reproduces Lemma 5's shape: on β'-feasible random stars,
// the constructive selection keeps the nodes β-feasible under the square
// root assignment while dropping a fraction that scales like (β/β')^{2/3}.
func E7StarSelection(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E7",
		Title:   "Lemma 5: star selection under the sqrt assignment",
		Columns: []string{"n", "β'/β", "dropped frac", "predicted", "markov", "interf", "crowd", "repair", "feasible"},
		Notes: []string{
			"predicted = min(0.9, ((2^α+1)·β/β')^{2/3}): the Lemma 5 drop rate including the β''=(2^α+1)β constant of Section 4.4",
			"expected shape: dropped fraction tracks the prediction and shrinks as β'/β grows",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	sizes := cfg.sizes([]int{128, 256}, []int{64})
	trials := cfg.trials(3)
	for _, n := range sizes {
		for _, ratio := range []float64{8, 64, 512} {
			var dropped []float64
			stats := &star.SelectStats{}
			feasible := true
			for trial := 0; trial < trials; trial++ {
				st, err := star.Random(rng, m, n, 1000, 0.5, 50)
				if err != nil {
					return nil, err
				}
				betaPrime := st.OptimalGain(m) * 0.9
				if !(betaPrime > 0) || math.IsInf(betaPrime, 1) {
					continue
				}
				beta := betaPrime / ratio
				kept, s, err := star.Select(m, st, betaPrime, beta)
				if err != nil {
					return nil, err
				}
				if !st.Feasible(m, beta, st.SqrtPowers(), kept) {
					feasible = false
				}
				dropped = append(dropped, float64(n-len(kept))/float64(n))
				stats.DroppedMarkov += s.DroppedMarkov
				stats.DroppedInterference += s.DroppedInterference
				stats.DroppedCrowding += s.DroppedCrowding
				stats.DroppedRepair += s.DroppedRepair
			}
			feas := "yes"
			if !feasible {
				feas = "NO"
			}
			pred := math.Pow((math.Pow(2, m.Alpha)+1)/ratio, 2.0/3.0)
			if pred > 0.9 {
				pred = 0.9
			}
			t.AddRow(Itoa(n), Ftoa(ratio, 0), Ftoa(Mean(dropped), 3),
				Ftoa(pred, 3),
				Itoa(stats.DroppedMarkov), Itoa(stats.DroppedInterference),
				Itoa(stats.DroppedCrowding), Itoa(stats.DroppedRepair), feas)
		}
	}
	return t, nil
}
