package experiment

import (
	"context"
	"math"
	"math/rand"

	oblivious "repro"
	"repro/internal/coloring"
	"repro/internal/power"
	"repro/internal/sinr"
)

// E3SqrtPolylog reproduces the shape of Theorem 2: the number of colors the
// square root assignment needs (greedy, LP algorithm, and the constructive
// Theorem 2 pipeline) stays within a small polylogarithmic factor of the
// optimal-power baseline on random and clustered workloads.
func E3SqrtPolylog(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 2: sqrt-assignment colorings vs optimal-power baseline (bidirectional)",
		Columns: []string{"workload", "n", "sqrt greedy", "sqrt LP", "pipeline", "opt greedy", "ratio", "log2^2(n)"},
		Notes: []string{
			"ratio = sqrt greedy / opt greedy; expected shape: ratio grows at most polylogarithmically (compare the log2^2 column)",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	sizes := cfg.sizes([]int{16, 32, 64, 128}, []int{16, 32})
	for _, kind := range []string{"uniform", "clustered"} {
		for _, n := range sizes {
			in, err := randomWorkload(rng, kind, n)
			if err != nil {
				return nil, err
			}
			// All three sqrt-assignment algorithms come from the public
			// solver registry; greedy is deterministic, lp and pipeline
			// draw their seeds from the shared experiment stream.
			ctx := context.Background()
			g, err := oblivious.Lookup("greedy").Solve(ctx, m, in)
			if err != nil {
				return nil, err
			}
			lpRes, err := oblivious.Lookup("lp").Solve(ctx, m, in, oblivious.WithSeed(rng.Int63()))
			if err != nil {
				return nil, err
			}
			pipeRes, err := oblivious.Lookup("pipeline").Solve(ctx, m, in, oblivious.WithSeed(rng.Int63()))
			if err != nil {
				return nil, err
			}
			opt, err := greedyOptimalColors(m, in, sinr.Bidirectional)
			if err != nil {
				return nil, err
			}
			ratio := float64(g.Stats.Colors) / float64(opt)
			lg := math.Log2(float64(n))
			t.AddRow(kind, Itoa(n), Itoa(g.Stats.Colors), Itoa(lpRes.Stats.Colors),
				Itoa(pipeRes.Stats.Colors), Itoa(opt), Ftoa(ratio, 2), Ftoa(lg*lg, 1))
		}
	}
	return t, nil
}

// E4LPColoring reproduces Theorem 15's algorithmic claim: the LP-based
// coloring is competitive with greedy first-fit under the same square root
// assignment, and its machinery (distance classes, LP solves, rounding)
// terminates with valid schedules.
func E4LPColoring(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 15: LP-based coloring vs greedy first-fit under sqrt powers",
		Columns: []string{"workload", "n", "greedy", "LP", "LP solves", "forced", "valid"},
		Notes: []string{
			"expected shape: LP colors within a small constant of greedy; forced singleton rounds rare",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	sizes := cfg.sizes([]int{16, 32, 64, 128, 256}, []int{16, 32})
	for _, kind := range []string{"uniform", "clustered"} {
		for _, n := range sizes {
			in, err := randomWorkload(rng, kind, n)
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			g, err := oblivious.Lookup("greedy").Solve(ctx, m, in)
			if err != nil {
				return nil, err
			}
			res, err := oblivious.Lookup("lp").Solve(ctx, m, in, oblivious.WithSeed(rng.Int63()))
			if err != nil {
				return nil, err
			}
			valid := "yes"
			if err := m.CheckSchedule(in, sinr.Bidirectional, res.Schedule); err != nil {
				valid = "NO"
			}
			t.AddRow(kind, Itoa(n), Itoa(g.Stats.Colors), Itoa(res.Stats.Colors),
				Itoa(res.Stats.LP.LPSolves), Itoa(res.Stats.LP.Forced), valid)
		}
	}
	return t, nil
}

// E5GainScaling reproduces Propositions 3 and 4: scaling the gain from β to
// β' retains at least a β/8β' fraction of a feasible set (thinning), and
// recoloring the whole set at the stronger gain needs O(β'/β·log n) colors.
func E5GainScaling(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E5",
		Title:   "Propositions 3/4: gain scaling by thinning (bidirectional, sqrt powers)",
		Columns: []string{"β'/β", "set size", "retained", "fraction", "bound β/8β'", "colors@β'", "(β'/β)·log2(n)"},
		Notes: []string{
			"expected shape: fraction ≥ β/8β' with room to spare; colors@β' ≲ (β'/β)·log2 n",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	n := 96
	if cfg.Quick {
		n = 32
	}
	in, err := randomWorkload(rng, "uniform", n)
	if err != nil {
		return nil, err
	}
	powers := power.Powers(m, in, power.Sqrt())
	base := coloring.MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
	for _, ratio := range []float64{2, 4, 8, 16} {
		betaPrime := m.Beta * ratio
		sub, err := coloring.ThinToGain(m, in, sinr.Bidirectional, powers, base, betaPrime)
		if err != nil {
			return nil, err
		}
		classes, err := coloring.ColorWithGain(m, in, sinr.Bidirectional, powers, base, betaPrime)
		if err != nil {
			return nil, err
		}
		frac := float64(len(sub)) / float64(len(base))
		t.AddRow(Ftoa(ratio, 0), Itoa(len(base)), Itoa(len(sub)), Ftoa(frac, 3),
			Ftoa(m.Beta/(8*betaPrime), 4), Itoa(len(classes)),
			Ftoa(ratio*math.Log2(float64(len(base))), 1))
	}
	return t, nil
}
