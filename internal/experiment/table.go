package experiment

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the paper claim being reproduced.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data cells.
	Rows [][]string
	// Notes are free-form footnotes (expected shape, caveats).
	Notes []string
}

// AddRow appends a data row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row with %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned ASCII form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for j, c := range t.Columns {
		widths[j] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for j, cell := range row {
			if w := utf8.RuneCountInString(cell); w > widths[j] {
				widths[j] = w
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for j, cell := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[j]-utf8.RuneCountInString(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	var total int
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Itoa formats an int cell.
func Itoa(v int) string { return strconv.Itoa(v) }

// Ftoa formats a float cell with the given number of decimals.
func Ftoa(v float64, prec int) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsNaN(v) {
		return "nan"
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// Etoa formats a float cell in scientific notation.
func Etoa(v float64) string {
	return strconv.FormatFloat(v, 'e', 2, 64)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Config controls experiment sizes and reproducibility.
type Config struct {
	// Seed drives all randomness; equal seeds give identical tables.
	Seed int64
	// Quick shrinks the workloads for benchmarks and CI smoke runs.
	Quick bool
}

// sizes returns full when Quick is unset, quick otherwise.
func (c Config) sizes(full, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// trials returns the number of repetitions per configuration.
func (c Config) trials(full int) int {
	if c.Quick {
		return 1
	}
	return full
}

// Runner is the signature every experiment implements.
type Runner func(Config) (*Table, error)

// All returns the experiment registry in order E1..E19.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{ID: "E1", Run: E1DirectedLowerBound},
		{ID: "E2", Run: E2NestedSingleSlot},
		{ID: "E3", Run: E3SqrtPolylog},
		{ID: "E4", Run: E4LPColoring},
		{ID: "E5", Run: E5GainScaling},
		{ID: "E6", Run: E6TreeEmbedding},
		{ID: "E7", Run: E7StarSelection},
		{ID: "E8", Run: E8ExponentSweep},
		{ID: "E9", Run: E9DirectedVsBidirectional},
		{ID: "E10", Run: E10Energy},
		{ID: "E11", Run: E11Distributed},
		{ID: "E12", Run: E12AspectRatio},
		{ID: "E13", Run: E13Connectivity},
		{ID: "E14", Run: E14Ablations},
		{ID: "E15", Run: E15MultihopLatency},
		{ID: "E16", Run: E16OnlineArrivals},
		{ID: "E17", Run: E17GridBaseline},
		{ID: "E18", Run: E18ModelSensitivity},
		{ID: "E19", Run: E19SymmetricAsymmetric},
	}
}
