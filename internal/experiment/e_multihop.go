package experiment

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/multihop"
	"repro/internal/power"
	"repro/internal/sinr"
)

// E15MultihopLatency reproduces the cross-layer comparison of the related
// work (Chafekar et al., Section 1.3): route random end-to-end flows over
// a grid network, schedule the hops under each oblivious assignment, and
// measure frame length and end-to-end latency. The square root assignment
// should match or beat uniform/linear on both.
func E15MultihopLatency(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E15",
		Title:   "Cross-layer latency (Section 1.3 context): multi-hop flows over a grid",
		Columns: []string{"grid", "flows", "hops", "assignment", "frame", "avg latency", "max latency"},
		Notes: []string{
			"latency in slots under the periodic frame of the coloring",
			"expected shape: on grids the hop lengths are near-uniform, so all assignments land close together (the assignment separation needs length diversity — see E12); the point here is that sqrt never degrades and the cross-layer stack validates",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 15))
	grids := cfg.sizes([]int{6, 8, 10}, []int{5})
	for _, k := range grids {
		pts := make([][]float64, 0, k*k)
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				// Slight jitter keeps the instance generic while preserving
				// 4-connectivity at range 1.25.
				pts = append(pts, []float64{
					float64(x) + 0.1*rng.Float64(),
					float64(y) + 0.1*rng.Float64(),
				})
			}
		}
		space, err := geom.NewEuclidean(pts)
		if err != nil {
			return nil, err
		}
		nw, err := multihop.NewNetwork(space, 1.35)
		if err != nil {
			return nil, err
		}
		flowCount := k
		flows, err := multihop.RandomFlows(rng, k*k, flowCount)
		if err != nil {
			return nil, err
		}
		_, routed, err := nw.Route(flows)
		if err != nil {
			return nil, err
		}
		var hops int
		for _, rf := range routed {
			hops += len(rf.HopRequests)
		}
		for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
			in, s, lat, err := nw.ScheduleFlows(m, flows, a, nil)
			if err != nil {
				return nil, err
			}
			if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
				return nil, err
			}
			var sum, max int
			for _, l := range lat {
				sum += l
				if l > max {
					max = l
				}
			}
			t.AddRow(Itoa(k)+"x"+Itoa(k), Itoa(flowCount), Itoa(hops), a.Name(),
				Itoa(s.NumColors()), Ftoa(float64(sum)/float64(len(lat)), 1), Itoa(max))
		}
	}
	return t, nil
}
