package experiment

import (
	"repro/internal/coloring"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/sinr"
)

// E18ModelSensitivity validates the paper's footnote 1 ("our analysis
// holds for any constant α ≥ 1") and the β-robustness remark of
// Section 1.1 ("our results are robust against changes of the interference
// by constant factors"): across a grid of path-loss exponents and gains,
// the square root assignment keeps its qualitative advantage on the nested
// chain — a linear single-slot capacity and the fewest colors.
func E18ModelSensitivity(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Model sensitivity: the sqrt advantage across α and β (nested chain)",
		Columns: []string{"α", "β", "slot uniform", "slot linear", "slot sqrt", "colors τ=0", "colors τ=0.5", "colors τ=1"},
		Notes: []string{
			"single-slot capacities (greedy) and full colorings on the nested chain",
			"expected shape: for every (α, β) the sqrt column dominates the slot capacities and τ=0.5 minimizes the colors",
		},
	}
	n := 48
	if cfg.Quick {
		n = 16
	}
	in, err := instance.NestedExponential(n, 2)
	if err != nil {
		return nil, err
	}
	type gridPoint struct{ alpha, beta float64 }
	grid := []gridPoint{
		{alpha: 1.5, beta: 1},
		{alpha: 2, beta: 1},
		{alpha: 3, beta: 1},
		{alpha: 4, beta: 1},
		{alpha: 5, beta: 1},
		{alpha: 3, beta: 0.5},
		{alpha: 3, beta: 2},
	}
	if cfg.Quick {
		grid = grid[:3]
	}
	for _, g := range grid {
		m := sinr.Model{Alpha: g.alpha, Beta: g.beta}
		cells := []string{Ftoa(g.alpha, 1), Ftoa(g.beta, 1)}
		for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
			powers := power.Powers(m, in, a)
			set := coloring.MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
			cells = append(cells, Itoa(len(set)))
		}
		for _, tau := range []float64{0, 0.5, 1} {
			powers := power.Powers(m, in, power.Exponent(tau))
			s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Itoa(s.NumColors()))
		}
		t.AddRow(cells...)
	}
	return t, nil
}
