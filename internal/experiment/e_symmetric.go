package experiment

import (
	"math/rand"

	"repro/internal/coloring"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// DoubleDirected turns a bidirectional instance into the directed instance
// that schedules each direction of every pair separately: request i becomes
// directed requests 2i (u→v) and 2i+1 (v→u). Oblivious power assignments
// are symmetric by construction (both directions have the same loss), so a
// coloring of the doubled instance is exactly a "symmetric powers,
// asymmetric colorings" solution — the open comparison of Section 6.
func DoubleDirected(in *problem.Instance) (*problem.Instance, error) {
	reqs := make([]problem.Request, 0, 2*in.N())
	for _, r := range in.Reqs {
		reqs = append(reqs, problem.Request{U: r.U, V: r.V}, problem.Request{U: r.V, V: r.U})
	}
	return problem.New(in.Space, reqs)
}

// E19SymmetricAsymmetric probes the open question at the end of Section 6:
// how do oblivious (hence symmetric) power assignments with symmetric
// colorings compare against symmetric powers with asymmetric colorings?
// For each workload we schedule (a) the bidirectional instance (symmetric
// coloring: one slot serves both directions) and (b) the doubled directed
// instance (each direction gets its own slot). Serving both directions via
// (a) needs 2·colors(a) slots of half-duplex airtime; the paper's remark
// that the bidirectional model is simulated by the directed one with twice
// the colors predicts colors(b) ≤ 2·colors(a).
func E19SymmetricAsymmetric(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E19",
		Title:   "Section 6 open question: symmetric colorings (bidirectional) vs asymmetric colorings (doubled directed)",
		Columns: []string{"assignment", "workload", "n", "bidir colors", "2×bidir", "doubled directed", "asym/sym"},
		Notes: []string{
			"doubled directed = both directions of every pair scheduled separately under the same (symmetric) oblivious powers",
			"expected shape: doubled-directed ≤ 2×bidirectional (the §6 simulation bound), often strictly below — asymmetric colorings help",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 19))
	sizes := cfg.sizes([]int{32, 64, 128}, []int{16})
	for _, a := range []power.Assignment{power.Sqrt(), power.Linear()} {
		for _, kind := range []string{"uniform", "clustered"} {
			for _, n := range sizes {
				in, err := randomWorkload(rng, kind, n)
				if err != nil {
					return nil, err
				}
				powers := power.Powers(m, in, a)
				bidir, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
				if err != nil {
					return nil, err
				}
				doubled, err := DoubleDirected(in)
				if err != nil {
					return nil, err
				}
				dPowers := power.Powers(m, doubled, a)
				dir, err := coloring.GreedyFirstFit(m, doubled, sinr.Directed, dPowers, nil)
				if err != nil {
					return nil, err
				}
				if err := m.CheckSchedule(doubled, sinr.Directed, dir); err != nil {
					return nil, err
				}
				t.AddRow(a.Name(), kind, Itoa(n),
					Itoa(bidir.NumColors()), Itoa(2*bidir.NumColors()), Itoa(dir.NumColors()),
					Ftoa(float64(dir.NumColors())/float64(2*bidir.NumColors()), 2))
			}
		}
	}
	return t, nil
}
