package experiment

import (
	"math/rand"

	"repro/internal/coloring"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// E8ExponentSweep sweeps the oblivious exponent τ in p = ℓ^τ and reports
// bidirectional greedy colors: the square root (τ = 0.5) is the sweet spot
// on nested workloads, reproducing the paper's motivation for √ℓ over the
// uniform (τ = 0) and linear (τ = 1) assignments.
func E8ExponentSweep(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E8",
		Title:   "Square root sweet spot: colors of p = ℓ^τ (bidirectional greedy)",
		Columns: []string{"workload", "n", "τ=0", "τ=0.25", "τ=0.5", "τ=0.75", "τ=1", "τ=1.25"},
		Notes: []string{
			"expected shape: the τ=0.5 column minimizes colors on nested workloads; extremes degrade",
		},
	}
	taus := []float64{0, 0.25, 0.5, 0.75, 1, 1.25}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	n := 64
	if cfg.Quick {
		n = 24
	}
	workloads := []struct {
		kind string
		in   func() (*problem.Instance, error)
	}{
		{kind: "nested", in: func() (*problem.Instance, error) { return instance.NestedExponential(n, 2) }},
		{kind: "uniform", in: func() (*problem.Instance, error) { return randomWorkload(rng, "uniform", n) }},
		{kind: "clustered", in: func() (*problem.Instance, error) { return randomWorkload(rng, "clustered", n) }},
	}
	for _, w := range workloads {
		in, err := w.in()
		if err != nil {
			return nil, err
		}
		cells := []string{w.kind, Itoa(n)}
		for _, tau := range taus {
			powers := power.Powers(m, in, power.Exponent(tau))
			s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Itoa(s.NumColors()))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// E9DirectedVsBidirectional reproduces the Section 6 observation: the
// bidirectional model can be simulated by the directed one with at most
// twice the colors, so directed color counts stay within a factor ~2 of the
// bidirectional counts under the same assignment (and are never cheaper
// than half).
func E9DirectedVsBidirectional(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E9",
		Title:   "Section 6: directed vs bidirectional colors under the same assignment",
		Columns: []string{"assignment", "n", "directed", "bidirectional", "ratio"},
		Notes: []string{
			"expected shape: bidirectional ≥ directed-like cost but within a small constant; ratio ≈ 0.5..2",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	sizes := cfg.sizes([]int{32, 64, 128}, []int{16})
	for _, a := range []power.Assignment{power.Sqrt(), power.Linear()} {
		for _, n := range sizes {
			in, err := randomWorkload(rng, "uniform", n)
			if err != nil {
				return nil, err
			}
			powers := power.Powers(m, in, a)
			d, err := coloring.GreedyFirstFit(m, in, sinr.Directed, powers, nil)
			if err != nil {
				return nil, err
			}
			b, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
			if err != nil {
				return nil, err
			}
			ratio := float64(d.NumColors()) / float64(b.NumColors())
			t.AddRow(a.Name(), Itoa(n), Itoa(d.NumColors()), Itoa(b.NumColors()), Ftoa(ratio, 2))
		}
	}
	return t, nil
}

// E10Energy reproduces the Section 6 energy discussion: compared to the
// energy-efficient linear assignment, the square root assignment spends
// more transmission energy (especially on short links) to buy schedule
// length; the table reports the colors/energy tradeoff.
func E10Energy(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E10",
		Title:   "Section 6: performance vs energy — sqrt vs linear assignment (bidirectional)",
		Columns: []string{"workload", "n", "colors sqrt", "colors linear", "energy sqrt", "energy linear", "energy ratio"},
		Notes: []string{
			"energy is the sum of transmission powers, with each assignment scaled so its weakest request is exactly at the noise floor of a unit-noise model (making totals comparable)",
			"expected shape: sqrt needs no more colors but strictly more energy on spread-out workloads",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	sizes := cfg.sizes([]int{32, 64, 128}, []int{16})
	for _, kind := range []string{"uniform", "nested"} {
		seen := make(map[int]bool)
		for _, n := range sizes {
			var in *problem.Instance
			var err error
			if kind == "nested" {
				// The nested chain overflows float64 beyond ~64 pairs.
				in, err = instance.NestedExponential(min(n, 64), 2)
			} else {
				in, err = randomWorkload(rng, kind, n)
			}
			if err != nil {
				return nil, err
			}
			if seen[in.N()] {
				continue
			}
			seen[in.N()] = true
			res := make(map[string]struct {
				colors int
				energy float64
			})
			for _, a := range []power.Assignment{power.Sqrt(), power.Linear()} {
				powers := power.Powers(m, in, a)
				s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
				if err != nil {
					return nil, err
				}
				// Normalize: scale so the weakest received signal is 1
				// (i.e. exactly serving a unit noise floor), making the
				// energy totals of different assignments comparable.
				minSignal := powers[0] / m.RequestLoss(in, 0)
				for i := 1; i < in.N(); i++ {
					if sg := powers[i] / m.RequestLoss(in, i); sg < minSignal {
						minSignal = sg
					}
				}
				res[a.Name()] = struct {
					colors int
					energy float64
				}{colors: s.NumColors(), energy: power.TotalEnergy(power.Scale(powers, 1/minSignal), nil)}
			}
			t.AddRow(kind, Itoa(in.N()),
				Itoa(res["sqrt"].colors), Itoa(res["linear"].colors),
				Etoa(res["sqrt"].energy), Etoa(res["linear"].energy),
				Ftoa(res["sqrt"].energy/res["linear"].energy, 2))
		}
	}
	return t, nil
}
