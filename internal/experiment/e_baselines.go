package experiment

import (
	"context"
	"math/rand"

	oblivious "repro"
	"repro/internal/coloring"
	"repro/internal/gridsched"
	"repro/internal/power"
	"repro/internal/sinr"
)

// E17GridBaseline compares the SINR-native schedulers against the folklore
// graph-based baseline: length classes plus grid spatial reuse (the kind of
// scheduling the paper's introduction criticizes graph models for). The
// conflict-clique lower bound certifies how close each algorithm is to the
// optimum for the square root assignment.
func E17GridBaseline(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E17",
		Title:   "SINR-native scheduling vs graph-style grid TDMA (bidirectional, sqrt powers)",
		Columns: []string{"workload", "n", "clique LB", "greedy", "LP", "grid TDMA", "grid/greedy"},
		Notes: []string{
			"clique LB: a certified lower bound for ANY schedule under sqrt powers (pairwise-infeasible requests)",
			"expected shape: grid TDMA pays a class/reuse overhead factor over the SINR-native algorithms, which sit near the LB",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	sizes := cfg.sizes([]int{32, 64, 128, 256}, []int{16, 32})
	for _, kind := range []string{"uniform", "clustered"} {
		for _, n := range sizes {
			in, err := randomWorkload(rng, kind, n)
			if err != nil {
				return nil, err
			}
			powers := power.Powers(m, in, power.Sqrt())
			lb := coloring.CliqueLowerBound(m, in, sinr.Bidirectional, powers)
			ctx := context.Background()
			g, err := oblivious.Lookup("greedy").Solve(ctx, m, in)
			if err != nil {
				return nil, err
			}
			lpRes, err := oblivious.Lookup("lp").Solve(ctx, m, in, oblivious.WithSeed(rng.Int63()))
			if err != nil {
				return nil, err
			}
			grid, err := gridsched.Schedule(m, in, gridsched.Options{})
			if err != nil {
				return nil, err
			}
			t.AddRow(kind, Itoa(n), Itoa(lb), Itoa(g.Stats.Colors), Itoa(lpRes.Stats.Colors),
				Itoa(grid.NumColors()),
				Ftoa(float64(grid.NumColors())/float64(g.Stats.Colors), 1))
		}
	}
	return t, nil
}
