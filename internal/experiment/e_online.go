package experiment

import (
	"math/rand"

	"repro/internal/coloring"
	"repro/internal/power"
	"repro/internal/sinr"
)

// E16OnlineArrivals measures the cost of scheduling requests in online
// arrival order (first-fit as they appear, as a MAC layer must) versus the
// offline longest-first order used everywhere else, under the square root
// assignment. The gap is the price of not knowing the future — relevant to
// the practical deployment story of oblivious assignments.
func E16OnlineArrivals(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E16",
		Title:   "Online arrival order vs offline longest-first (bidirectional, sqrt powers)",
		Columns: []string{"workload", "n", "offline", "online avg", "online max", "ratio"},
		Notes: []string{
			"online = first-fit over a uniformly random arrival permutation (averaged over trials)",
			"expected shape: a small constant gap; first-fit is robust to arrival order on these workloads",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 16))
	sizes := cfg.sizes([]int{32, 64, 128, 256}, []int{16, 32})
	trials := cfg.trials(5)
	for _, kind := range []string{"uniform", "clustered"} {
		for _, n := range sizes {
			in, err := randomWorkload(rng, kind, n)
			if err != nil {
				return nil, err
			}
			powers := power.Powers(m, in, power.Sqrt())
			off, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
			if err != nil {
				return nil, err
			}
			var sum, max int
			for trial := 0; trial < trials; trial++ {
				order := rng.Perm(in.N())
				on, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, order)
				if err != nil {
					return nil, err
				}
				if err := m.CheckSchedule(in, sinr.Bidirectional, on); err != nil {
					return nil, err
				}
				c := on.NumColors()
				sum += c
				if c > max {
					max = c
				}
			}
			avg := float64(sum) / float64(trials)
			t.AddRow(kind, Itoa(n), Itoa(off.NumColors()), Ftoa(avg, 1), Itoa(max),
				Ftoa(avg/float64(off.NumColors()), 2))
		}
	}
	return t, nil
}
