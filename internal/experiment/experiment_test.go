package experiment

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EX — demo", "a    bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("1", "2")
}

func TestFormatters(t *testing.T) {
	if Itoa(42) != "42" {
		t.Error("Itoa")
	}
	if Ftoa(1.25, 1) != "1.2" && Ftoa(1.25, 1) != "1.3" {
		t.Errorf("Ftoa = %q", Ftoa(1.25, 1))
	}
	if Ftoa(math.Inf(1), 2) != "inf" {
		t.Error("Ftoa inf")
	}
	if Ftoa(math.NaN(), 2) != "nan" {
		t.Error("Ftoa nan")
	}
	if !strings.Contains(Etoa(12345), "e+04") {
		t.Errorf("Etoa = %q", Etoa(12345))
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean([1 2 3])")
	}
}

func TestConfigHelpers(t *testing.T) {
	full := []int{1, 2, 3}
	quick := []int{1}
	if got := (Config{}).sizes(full, quick); len(got) != 3 {
		t.Error("full sizes")
	}
	if got := (Config{Quick: true}).sizes(full, quick); len(got) != 1 {
		t.Error("quick sizes")
	}
	if (Config{Quick: true}).trials(5) != 1 || (Config{}).trials(5) != 5 {
		t.Error("trials")
	}
}

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and sanity-checks the tables. This is the repository's end-to-end smoke
// test of the evaluation harness.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row width %d, want %d", len(row), len(tab.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestE2Shape asserts the headline separation of the intro instance: the
// sqrt column strictly dominates uniform and linear on the largest quick
// size.
func TestE2Shape(t *testing.T) {
	tab, err := E2NestedSingleSlot(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	uniform, _ := strconv.Atoi(last[1])
	linear, _ := strconv.Atoi(last[2])
	sqrt, _ := strconv.Atoi(last[3])
	if sqrt <= uniform || sqrt <= linear {
		t.Errorf("sqrt %d should dominate uniform %d and linear %d", sqrt, uniform, linear)
	}
}

// TestE8Shape asserts that τ=0.5 is the best column for the nested row.
func TestE8Shape(t *testing.T) {
	tab, err := E8ExponentSweep(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0] // nested
	if row[0] != "nested" {
		t.Fatalf("first row is %q", row[0])
	}
	sqrtCol := 4 // workload, n, τ=0, τ=0.25, τ=0.5
	best, _ := strconv.Atoi(row[sqrtCol])
	for c := 2; c < len(row); c++ {
		v, _ := strconv.Atoi(row[c])
		if v < best {
			t.Errorf("column %s = %d beats τ=0.5 = %d", tab.Columns[c], v, best)
		}
	}
}

func TestDoubleDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, err := randomWorkload(rng, "uniform", 6)
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := DoubleDirected(in)
	if err != nil {
		t.Fatal(err)
	}
	if doubled.N() != 2*in.N() {
		t.Fatalf("doubled N = %d, want %d", doubled.N(), 2*in.N())
	}
	for i := 0; i < in.N(); i++ {
		fwd := doubled.Reqs[2*i]
		rev := doubled.Reqs[2*i+1]
		if fwd.U != in.Reqs[i].U || fwd.V != in.Reqs[i].V {
			t.Errorf("forward request %d wrong", i)
		}
		if rev.U != in.Reqs[i].V || rev.V != in.Reqs[i].U {
			t.Errorf("reverse request %d wrong", i)
		}
		if doubled.Length(2*i) != doubled.Length(2*i+1) {
			t.Errorf("direction lengths differ for pair %d", i)
		}
	}
}
