// Package experiment implements the evaluation harness of the
// reproduction: one experiment per quantitative claim of the paper
// (E1–E19), each producing an ASCII table that cmd/experiments prints and
// EXPERIMENTS.md records. bench_test.go at the repository root exposes
// one benchmark per experiment.
//
// The experiments cover the paper's storyline end to end: the Theorem 1
// lower bounds for uniform/linear powers (E1, E2), the square root
// assignment's polylogarithmic behavior and the Theorem 15 LP coloring
// (E3, E4), gain scaling (E5), the tree/star pipeline stages (E6, E7),
// sweeps and baselines (E8–E14, E17–E19), the distributed protocol (E11)
// and the multihop extension (E15), plus online arrivals (E16).
//
// Exported entry points: each experiment is a Runner(Config) returning a
// Table; All lists the registry in order for the CLI, and Config carries
// the seed and the Quick flag the tests and benchmarks use.
package experiment
