package experiment

import (
	"context"
	"math"
	"math/rand"

	oblivious "repro"
	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/hst"
	"repro/internal/power"
	"repro/internal/sinr"
	"repro/internal/topology"
	"repro/internal/treestar"
)

// E11Distributed addresses the open question of Section 6: a fully
// distributed decay protocol under the square root assignment is compared
// against the centralized greedy coloring. The "price of distribution" is
// the ratio of contention slots to centralized colors.
func E11Distributed(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E11",
		Title:   "Section 6 open question: distributed decay protocol vs centralized coloring (sqrt powers)",
		Columns: []string{"workload", "n", "central colors", "dist slots", "price", "attempts/req", "valid"},
		Notes: []string{
			"price = distributed slots / centralized colors; expected shape: a logarithmic-in-n factor, not a polynomial one",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	sizes := cfg.sizes([]int{32, 64, 128, 256}, []int{16, 32})
	trials := cfg.trials(3)
	for _, kind := range []string{"uniform", "clustered"} {
		for _, n := range sizes {
			var (
				colorSum, slotSum, attempts float64
				valid                       = "yes"
			)
			for trial := 0; trial < trials; trial++ {
				in, err := randomWorkload(rng, kind, n)
				if err != nil {
					return nil, err
				}
				ctx := context.Background()
				g, err := oblivious.Lookup("greedy").Solve(ctx, m, in)
				if err != nil {
					return nil, err
				}
				res, err := oblivious.Lookup("distributed").Solve(ctx, m, in, oblivious.WithSeed(rng.Int63()))
				if err != nil {
					return nil, err
				}
				if err := m.CheckSchedule(in, sinr.Bidirectional, res.Schedule); err != nil {
					valid = "NO"
				}
				colorSum += float64(g.Stats.Colors)
				slotSum += float64(res.Stats.Slots)
				attempts += float64(res.Stats.Attempts) / float64(n)
			}
			k := float64(trials)
			t.AddRow(kind, Itoa(n), Ftoa(colorSum/k, 1), Ftoa(slotSum/k, 1),
				Ftoa(slotSum/math.Max(colorSum, 1), 1), Ftoa(attempts/k, 1), valid)
		}
	}
	return t, nil
}

// E12AspectRatio reproduces the related-work observation (Section 1.3 and
// [5]) that the linear assignment's performance degrades with the aspect
// ratio Γ of the instance while the square root assignment does not: on
// geometric chains with growing length ratios, colors under τ=1 track
// log Γ whereas τ=0.5 stays flat.
func E12AspectRatio(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E12",
		Title:   "Aspect-ratio dependence: linear vs sqrt on geometric chains (bidirectional)",
		Columns: []string{"ratio", "n", "log2 Γ", "uniform", "linear", "sqrt"},
		Notes: []string{
			"Γ is the instance aspect ratio; expected shape: the linear and uniform columns grow with log Γ, sqrt stays near-constant",
		},
	}
	n := 48
	if cfg.Quick {
		n = 16
	}
	for _, ratio := range []float64{1.2, 1.5, 2, 3, 4} {
		in, err := topology.ExponentialChain(n, ratio)
		if err != nil {
			return nil, err
		}
		aspect := geom.AspectRatio(in.Space)
		cells := []string{Ftoa(ratio, 1), Itoa(n), Ftoa(math.Log2(aspect), 1)}
		for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
			powers := power.Powers(m, in, a)
			s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Itoa(s.NumColors()))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// E13Connectivity reproduces the strong-connectivity workload that
// motivated the field (Moscibroda–Wattenhofer, Section 1.3): schedule the
// MST edges of random point sets. The degree of the tree lower-bounds any
// schedule; the square root assignment stays within a small factor of it.
func E13Connectivity(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E13",
		Title:   "Strong connectivity (Section 1.3): scheduling MST edges of random point sets",
		Columns: []string{"points", "edges", "degree LB", "uniform", "linear", "sqrt", "sqrt LP"},
		Notes: []string{
			"degree LB: requests sharing a node can never share a slot; expected shape: sqrt within a small factor of the LB and not degrading with n",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	sizes := cfg.sizes([]int{32, 64, 128, 256}, []int{16, 32})
	for _, n := range sizes {
		in, err := topology.ConnectivityInstance(rng, n, 1000)
		if err != nil {
			return nil, err
		}
		deg := topology.MaxDegree(in.Space, in.Reqs)
		cells := []string{Itoa(n), Itoa(in.N()), Itoa(deg)}
		for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
			powers := power.Powers(m, in, a)
			s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
			if err != nil {
				return nil, err
			}
			if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
				return nil, err
			}
			cells = append(cells, Itoa(s.NumColors()))
		}
		lpS, _, err := coloring.SqrtLPColoring(m, in, rng)
		if err != nil {
			return nil, err
		}
		if err := m.CheckSchedule(in, sinr.Bidirectional, lpS); err != nil {
			return nil, err
		}
		cells = append(cells, Itoa(lpS.NumColors()))
		t.AddRow(cells...)
	}
	return t, nil
}

// E14Ablations quantifies the design choices DESIGN.md calls out: the LP
// maximality pass, the rounding divisor κ, the thinning victim heuristic,
// the pipeline's star-selection mode, and the number of FRT trees.
func E14Ablations(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E14",
		Title:   "Ablations: LP maximality, rounding κ, thinning heuristic, pipeline mode, FRT count",
		Columns: []string{"ablation", "variant", "metric", "value"},
		Notes: []string{
			"single clustered workload per group (seeded); lower is better for colors, higher for retained/kept",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	n := 96
	if cfg.Quick {
		n = 32
	}
	in, err := randomWorkload(rng, "clustered", n)
	if err != nil {
		return nil, err
	}

	// A1: LP maximality pass on/off; A2: rounding divisor κ.
	for _, v := range []struct {
		name string
		opts coloring.LPOptions
	}{
		{name: "default (κ=2, maximality on)", opts: coloring.LPOptions{}},
		{name: "maximality off", opts: coloring.LPOptions{DisableMaximality: true}},
		{name: "κ=1", opts: coloring.LPOptions{Kappa: 1}},
		{name: "κ=8", opts: coloring.LPOptions{Kappa: 8}},
	} {
		s, _, err := coloring.SqrtLPColoringOpts(m, in, rand.New(rand.NewSource(cfg.Seed)), v.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow("LP coloring", v.name, "colors", Itoa(s.NumColors()))
	}

	// A3: thinning victim heuristic at β'/β = 8.
	powers := power.Powers(m, in, power.Sqrt())
	base := coloring.MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
	for _, strat := range []coloring.ThinStrategy{
		coloring.ThinWorstOffender, coloring.ThinWorstMargin, coloring.ThinRandom,
	} {
		sub, err := coloring.ThinToGainStrategy(m, in, sinr.Bidirectional, powers, base,
			8*m.Beta, strat, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		t.AddRow("thinning β'/β=8", strat.String(), "retained frac",
			Ftoa(float64(len(sub))/float64(len(base)), 3))
	}

	// A4: pipeline star-selection mode.
	for _, v := range []struct {
		name string
		p    treestar.Pipeline
	}{
		{name: "light stars (default)", p: treestar.Pipeline{}},
		{name: "faithful Lemma 5 stars", p: treestar.Pipeline{Faithful: true}},
	} {
		class, _, err := v.p.Run(m, in, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		t.AddRow("pipeline", v.name, "first-class size", Itoa(len(class)))
	}

	// A5: number of FRT trees vs best-core coverage.
	sub, err := geom.NewSub(in.Space, allEndpointNodes(in.N()))
	if err != nil {
		return nil, err
	}
	logN := int(math.Ceil(math.Log2(float64(sub.N()))))
	for _, r := range []int{1, logN, 2 * logN} {
		if r < 1 {
			r = 1
		}
		en, err := hst.BuildEnsemble(sub, r, 0, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		all := make([]int, sub.N())
		for i := range all {
			all[i] = i
		}
		_, core := en.BestCoreTree(all)
		t.AddRow("FRT ensemble", "r="+Itoa(r), "best core frac",
			Ftoa(float64(len(core))/float64(sub.N()), 2))
	}
	return t, nil
}

// allEndpointNodes returns node ids 0..2n-1 (the generators place request
// endpoints at consecutive indices).
func allEndpointNodes(n int) []int {
	out := make([]int, 2*n)
	for i := range out {
		out[i] = i
	}
	return out
}
