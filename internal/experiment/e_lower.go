package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/coloring"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/powerctl"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// greedyOptimalColors colors the instance by first-fit where class
// feasibility is decided by the optimal power-control oracle: an upper
// bound on the optimal schedule length that serves as the non-oblivious
// baseline of Theorem 1's comparison.
func greedyOptimalColors(m sinr.Model, in *problem.Instance, v sinr.Variant) (int, error) {
	order := coloring.LengthOrder(in)
	var classes [][]int
	for _, j := range order {
		placed := false
		for c := range classes {
			cand := append(append([]int(nil), classes[c]...), j)
			res, err := powerctl.Feasible(m, in, v, cand, powerctl.Options{})
			if err != nil {
				return 0, err
			}
			if res.Feasible {
				classes[c] = cand
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{j})
		}
	}
	return len(classes), nil
}

// E1DirectedLowerBound reproduces Theorem 1: on the adversarial family
// built against an oblivious assignment f, scheduling with f needs a
// number of colors growing linearly in n, while the optimal power
// assignment stays at O(1) colors. Bounded assignments (uniform) use the
// nested exponential family, the standard Ω(n) instance for them.
func E1DirectedLowerBound(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:    "E1",
		Title: "Theorem 1: directed scheduling with an oblivious assignment vs optimal powers",
		Columns: []string{
			"assignment", "family", "n", "colors(f)", "maxSlot(f)", "colors(opt)",
		},
		Notes: []string{
			"expected shape: colors(f) grows ~linearly in n; colors(opt) stays O(1)",
			"the sqrt adversarial family grows doubly exponentially and exhausts float64 around n≈6 (coordinates ~1e60); rows stop there",
		},
	}
	type fam struct {
		a      power.Assignment
		family string
	}
	fams := []fam{
		{a: power.Uniform(1), family: "nested"},
		{a: power.Linear(), family: "adversarial"},
		{a: power.Sqrt(), family: "adversarial"},
		{a: power.Exponent(2), family: "adversarial"},
	}
	sizes := cfg.sizes([]int{4, 8, 16, 32, 48}, []int{4, 8})
	for _, f := range fams {
		seenN := make(map[int]bool)
		for _, n := range sizes {
			var in *problem.Instance
			switch f.family {
			case "nested":
				inst, err := instance.NestedExponential(n, 2)
				if err != nil {
					return nil, err
				}
				in = inst
			default:
				adv, err := instance.AdversarialDirected(m, f.a, n, 1e60)
				if err != nil {
					return nil, err
				}
				in = adv.Instance
			}
			if seenN[in.N()] {
				continue // construction capped below the requested n
			}
			seenN[in.N()] = true
			powers := power.Powers(m, in, f.a)
			s, err := coloring.GreedyFirstFit(m, in, sinr.Directed, powers, nil)
			if err != nil {
				return nil, err
			}
			maxSlot := len(coloring.MaxFeasibleSubsetGreedy(m, in, sinr.Directed, powers, nil))
			opt, err := greedyOptimalColors(m, in, sinr.Directed)
			if err != nil {
				return nil, err
			}
			t.AddRow(f.a.Name(), f.family, Itoa(in.N()), Itoa(s.NumColors()), Itoa(maxSlot), Itoa(opt))
		}
	}
	return t, nil
}

// E2NestedSingleSlot reproduces the intuition of Section 1.2 on the nested
// instance u_i = -2^i, v_i = 2^i (bidirectional): uniform and linear powers
// schedule only O(1) requests simultaneously while the square root
// assignment schedules a constant fraction.
func E2NestedSingleSlot(cfg Config) (*Table, error) {
	m := sinr.Default()
	t := &Table{
		ID:      "E2",
		Title:   "Section 1.2: max simultaneous nested requests (bidirectional, single slot)",
		Columns: []string{"n", "uniform", "linear", "sqrt", "sqrt LP", "sqrt fraction"},
		Notes: []string{
			"sqrt LP: the one-shot LP capacity maximizer (algorithm A) under sqrt powers",
			"expected shape: uniform/linear columns stay O(1); the sqrt columns grow linearly in n",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	sizes := cfg.sizes([]int{8, 16, 32, 64, 128, 256}, []int{8, 32})
	for _, n := range sizes {
		in, err := instance.NestedExponential(n, 2)
		if err != nil {
			return nil, err
		}
		counts := make(map[string]int)
		for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
			powers := power.Powers(m, in, a)
			set := coloring.MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
			if !m.SetFeasible(in, sinr.Bidirectional, powers, set) {
				return nil, fmt.Errorf("experiment: infeasible greedy subset for %s", a.Name())
			}
			counts[a.Name()] = len(set)
		}
		lpSet, err := coloring.MaxFeasibleSubsetLP(m, in, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(Itoa(n),
			Itoa(counts["uniform"]), Itoa(counts["linear"]), Itoa(counts["sqrt"]),
			Itoa(len(lpSet)),
			Ftoa(float64(counts["sqrt"])/float64(n), 2))
	}
	return t, nil
}

// randomWorkload draws one of the two standard bidirectional workloads.
func randomWorkload(rng *rand.Rand, kind string, n int) (*problem.Instance, error) {
	switch kind {
	case "uniform":
		return instance.UniformRandom(rng, n, 300, 1, 8)
	case "clustered":
		return instance.Clustered(rng, n, 1+n/16, 20, 300, 1)
	default:
		return nil, fmt.Errorf("experiment: unknown workload %q", kind)
	}
}
