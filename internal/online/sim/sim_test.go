package sim

import (
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func testInstance(t testing.TB, seed int64, n int) *problem.Instance {
	t.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(seed)), n, 100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// wellFormed verifies the trace contract every generator must honor: a
// request arrives only while absent, departs only while present, and
// event times never decrease.
func wellFormed(t *testing.T, name string, trace Trace, n int) {
	t.Helper()
	active := make([]bool, n)
	last := 0.0
	for k, ev := range trace {
		if ev.Req < 0 || ev.Req >= n {
			t.Fatalf("%s event %d: request %d out of range", name, k, ev.Req)
		}
		if ev.T < last {
			t.Fatalf("%s event %d: time went backwards (%g after %g)", name, k, ev.T, last)
		}
		last = ev.T
		if ev.Arrive == active[ev.Req] {
			t.Fatalf("%s event %d: request %d arrive=%t while active=%t", name, k, ev.Req, ev.Arrive, active[ev.Req])
		}
		active[ev.Req] = ev.Arrive
	}
}

func TestGeneratorsWellFormed(t *testing.T) {
	n := 50
	rng := rand.New(rand.NewSource(1))
	poisson := Poisson(rng, n, 10, 2, 400)
	if len(poisson) != 400 {
		t.Fatalf("Poisson produced %d events, want 400", len(poisson))
	}
	wellFormed(t, "poisson", poisson, n)

	bursty := Bursty(rand.New(rand.NewSource(2)), n, 1, 8, 3, 400)
	if len(bursty) != 400 {
		t.Fatalf("Bursty produced %d events, want 400", len(bursty))
	}
	wellFormed(t, "bursty", bursty, n)

	in := testInstance(t, 3, n)
	replay := Replay(in)
	if len(replay) != 3*n {
		t.Fatalf("Replay produced %d events, want %d", len(replay), 3*n)
	}
	wellFormed(t, "replay", replay, n)
	// Replay must end with every request active.
	active := make([]bool, n)
	for _, ev := range replay {
		active[ev.Req] = ev.Arrive
	}
	for i, a := range active {
		if !a {
			t.Fatalf("Replay left request %d inactive", i)
		}
	}
}

func TestGeneratorsRejectBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if tr := Poisson(rng, 0, 1, 1, 10); tr != nil {
		t.Error("Poisson with n=0 must return nil")
	}
	if tr := Poisson(rng, 5, -1, 1, 10); tr != nil {
		t.Error("Poisson with negative rate must return nil")
	}
	if tr := Bursty(rng, 5, 1, 0, 1, 10); tr != nil {
		t.Error("Bursty with zero burst size must return nil")
	}
}

// TestRunSeries replays every generator against every admission × repair
// combination; the engine must stay feasible after the whole trace and
// the time series must line up with the event count.
func TestRunSeries(t *testing.T) {
	in := testInstance(t, 5, 40)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	traces := map[string]Trace{
		"poisson": Poisson(rand.New(rand.NewSource(7)), in.N(), 12, 2, 300),
		"bursty":  Bursty(rand.New(rand.NewSource(8)), in.N(), 1.5, 6, 2, 300),
		"replay":  Replay(in),
	}
	for name, trace := range traces {
		for _, adm := range online.Admissions() {
			for _, rep := range online.Repairs() {
				// The observer turns per-event timing on, so the CostNs
				// series is populated (see TestRunTimingGated for the
				// unobserved path).
				e, err := online.New(m, in, sinr.Bidirectional, powers,
					online.WithAdmission(adm), online.WithRepair(rep),
					online.WithObserver(obs.NewCollector()))
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(e, trace)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, adm, rep, err)
				}
				if res.Events != len(trace) || len(res.Slots) != len(trace) || len(res.CostNs) != len(trace) {
					t.Fatalf("%s/%s/%s: series lengths %d/%d/%d for %d events",
						name, adm, rep, res.Events, len(res.Slots), len(res.CostNs), len(trace))
				}
				if res.Arrivals+res.Departures != res.Events {
					t.Fatalf("%s/%s/%s: %d arrivals + %d departures != %d events",
						name, adm, rep, res.Arrivals, res.Departures, res.Events)
				}
				if res.PeakSlots <= 0 || res.PeakSlots < e.NumSlots() {
					t.Fatalf("%s/%s/%s: peak %d below final %d", name, adm, rep, res.PeakSlots, e.NumSlots())
				}
				if res.MeanCostNs() < 0 || res.MaxCostNs() < 0 {
					t.Fatalf("%s/%s/%s: negative costs", name, adm, rep)
				}
				if !e.Feasible() {
					t.Fatalf("%s/%s/%s: infeasible after replay", name, adm, rep)
				}
				for s := 0; s < e.NumSlots(); s++ {
					if members := e.Slot(s); len(members) > 0 && !m.SetFeasible(in, sinr.Bidirectional, powers, members) {
						t.Fatalf("%s/%s/%s: slot %d infeasible per the oracle", name, adm, rep, s)
					}
				}
			}
		}
	}
}

// TestRunTimingGated pins the timing gate: an engine without a
// collector replays clock-free (empty CostNs), one with a collector
// times every event.
func TestRunTimingGated(t *testing.T) {
	in := testInstance(t, 11, 20)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	trace := Poisson(rand.New(rand.NewSource(13)), in.N(), 8, 2, 100)

	e, err := online.New(m, in, sinr.Bidirectional, powers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostNs) != 0 {
		t.Fatalf("unobserved run recorded %d costs, want none", len(res.CostNs))
	}
	if res.Events != len(trace) || len(res.Slots) != len(trace) {
		t.Fatalf("unobserved run series %d/%d for %d events", res.Events, len(res.Slots), len(trace))
	}

	eo, err := online.New(m, in, sinr.Bidirectional, powers,
		online.WithObserver(obs.NewCollector()))
	if err != nil {
		t.Fatal(err)
	}
	reso, err := Run(eo, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(reso.CostNs) != len(trace) {
		t.Fatalf("observed run recorded %d costs, want %d", len(reso.CostNs), len(trace))
	}
}

// TestRunEventStreamAgreement replays traces with a ring sink attached
// and reconciles the typed event stream against the engine's own
// counters: one arrive event per accepted arrival, one depart per
// departure, one repair event per counted repair, and matching
// evict/admit pairs per migration — all in strictly increasing
// sequence order.
func TestRunEventStreamAgreement(t *testing.T) {
	in := testInstance(t, 21, 40)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	traces := map[string]Trace{
		"poisson": Poisson(rand.New(rand.NewSource(31)), in.N(), 12, 2, 300),
		"replay":  Replay(in),
	}
	for name, trace := range traces {
		for _, rep := range online.Repairs() {
			e, err := online.New(m, in, sinr.Bidirectional, powers,
				online.WithAdmission(online.BestFit), online.WithRepair(rep))
			if err != nil {
				t.Fatal(err)
			}
			ring := obs.NewRing(16 * len(trace))
			e.Events(ring)
			if _, err := Run(e, trace); err != nil {
				t.Fatalf("%s/%s: %v", name, rep, err)
			}
			evs := ring.Events()
			if ring.Total() != len(evs) {
				t.Fatalf("%s/%s: ring evicted events (%d emitted, %d held) — grow the test ring",
					name, rep, ring.Total(), len(evs))
			}
			byType := make(map[obs.EventType]int)
			var lastSeq uint64
			for k, ev := range evs {
				if ev.Seq <= lastSeq {
					t.Fatalf("%s/%s: event %d seq %d after %d", name, rep, k, ev.Seq, lastSeq)
				}
				lastSeq = ev.Seq
				byType[ev.Type]++
			}
			st := e.Stats()
			checks := []struct {
				typ  obs.EventType
				want int
			}{
				{obs.EventArrive, st.Arrivals},
				{obs.EventDepart, st.Departures},
				{obs.EventRepair, st.Repairs},
				{obs.EventEvict, st.Moves},
				{obs.EventAdmit, st.Moves},
			}
			for _, c := range checks {
				if byType[c.typ] != c.want {
					t.Errorf("%s/%s: %d %s events, stats say %d",
						name, rep, byType[c.typ], c.typ, c.want)
				}
			}
		}
	}
}

// TestRunMalformedTrace surfaces the engine error and the partial series.
func TestRunMalformedTrace(t *testing.T) {
	in := testInstance(t, 9, 10)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	e, err := online.New(m, in, sinr.Bidirectional, powers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, Trace{{Arrive: true, Req: 1}, {Arrive: true, Req: 1}})
	if err == nil {
		t.Fatal("double arrive must surface the engine error")
	}
	if res == nil || res.Events != 1 {
		t.Fatalf("partial series should hold 1 event, got %+v", res)
	}
	if _, err := Run(nil, Trace{}); err == nil {
		t.Fatal("nil engine must fail")
	}
}
