package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/online"
	"repro/internal/problem"
)

// Event is one churn event: at time T, request Req arrives or departs.
// Times are in abstract trace units; Run replays events back to back.
type Event struct {
	T      float64
	Arrive bool
	Req    int
}

// Trace is an event sequence. Generators guarantee well-formedness: a
// request arrives only while absent and departs only while present.
type Trace []Event

// depHeap is a min-heap of scheduled departures.
type depHeap []Event

func (h depHeap) Len() int            { return len(h) }
func (h depHeap) Less(i, j int) bool  { return h[i].T < h[j].T }
func (h depHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *depHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *depHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// pool tracks which requests are inactive and hands out uniform random
// picks in O(1) by swap-removal.
type pool struct {
	ids []int
	pos []int // pos[i] = index in ids, -1 if absent from the pool
}

func newPool(n int) *pool {
	p := &pool{ids: make([]int, n), pos: make([]int, n)}
	for i := range p.ids {
		p.ids[i] = i
		p.pos[i] = i
	}
	return p
}

func (p *pool) take(rng *rand.Rand) int {
	k := rng.Intn(len(p.ids))
	i := p.ids[k]
	last := len(p.ids) - 1
	p.ids[k] = p.ids[last]
	p.pos[p.ids[k]] = k
	p.ids = p.ids[:last]
	p.pos[i] = -1
	return i
}

func (p *pool) put(i int) {
	p.pos[i] = len(p.ids)
	p.ids = append(p.ids, i)
}

// Poisson generates a trace of the given length over n requests: arrivals
// form a Poisson process of rate lambda (picking a uniform random inactive
// request; arrivals finding all requests active are dropped), and every
// active request departs after an exponential holding time of the given
// mean. Steady-state load is therefore ≈ lambda·meanHold active requests,
// capped at n.
func Poisson(rng *rand.Rand, n int, lambda, meanHold float64, events int) Trace {
	if n <= 0 || events <= 0 || !(lambda > 0) || !(meanHold > 0) {
		return nil
	}
	tr := make(Trace, 0, events)
	inactive := newPool(n)
	var deps depHeap
	t := 0.0
	nextArr := rng.ExpFloat64() / lambda
	for len(tr) < events {
		if len(deps) > 0 && deps[0].T <= nextArr {
			ev := heap.Pop(&deps).(Event)
			t = ev.T
			tr = append(tr, ev)
			inactive.put(ev.Req)
			continue
		}
		t = nextArr
		nextArr = t + rng.ExpFloat64()/lambda
		if len(inactive.ids) == 0 {
			continue // dropped arrival: the system is full
		}
		i := inactive.take(rng)
		tr = append(tr, Event{T: t, Arrive: true, Req: i})
		heap.Push(&deps, Event{T: t + rng.ExpFloat64()*meanHold, Arrive: false, Req: i})
	}
	return tr
}

// Bursty generates a trace where arrivals come in bursts: at Poisson
// epochs of rate burstRate, up to burstSize inactive requests arrive back
// to back; each departs after an exponential holding time of the given
// mean. The bursts stress admission (many placements against a cold
// schedule) and the synchronized expiries stress repair.
func Bursty(rng *rand.Rand, n int, burstRate float64, burstSize int, meanHold float64, events int) Trace {
	if n <= 0 || events <= 0 || !(burstRate > 0) || burstSize <= 0 || !(meanHold > 0) {
		return nil
	}
	tr := make(Trace, 0, events)
	inactive := newPool(n)
	var deps depHeap
	t := 0.0
	nextBurst := rng.ExpFloat64() / burstRate
	for len(tr) < events {
		if len(deps) > 0 && deps[0].T <= nextBurst {
			ev := heap.Pop(&deps).(Event)
			t = ev.T
			tr = append(tr, ev)
			inactive.put(ev.Req)
			continue
		}
		t = nextBurst
		nextBurst = t + rng.ExpFloat64()/burstRate
		hold := rng.ExpFloat64() * meanHold
		for b := 0; b < burstSize && len(inactive.ids) > 0 && len(tr) < events; b++ {
			i := inactive.take(rng)
			tr = append(tr, Event{T: t, Arrive: true, Req: i})
			heap.Push(&deps, Event{T: t + hold + rng.ExpFloat64()*meanHold/4, Arrive: false, Req: i})
		}
	}
	return tr
}

// Replay builds the deterministic adversarial pattern for the instance:
// all requests arrive in increasing length order (the reverse of the
// batch greedy's longest-first scan, maximizing misplacements), then the
// even-positioned half departs and re-arrives, then the odd half — ending
// with every request active. The re-add cycles fragment the slots and
// force the repair strategies to earn their keep.
func Replay(in *problem.Instance) Trace {
	n := in.N()
	asc := make([]int, n)
	for i := range asc {
		asc[i] = i
	}
	sort.SliceStable(asc, func(a, b int) bool { return in.Length(asc[a]) < in.Length(asc[b]) })
	tr := make(Trace, 0, 3*n)
	t := 0.0
	emit := func(arrive bool, req int) {
		tr = append(tr, Event{T: t, Arrive: arrive, Req: req})
		t++
	}
	for _, i := range asc {
		emit(true, i)
	}
	for phase := 0; phase < 2; phase++ {
		var half []int
		for k := phase; k < n; k += 2 {
			half = append(half, asc[k])
		}
		for _, i := range half {
			emit(false, i)
		}
		for _, i := range half {
			emit(true, i)
		}
	}
	return tr
}

// Result is the outcome of replaying a trace: per-event time series plus
// the engine's lifetime counters.
type Result struct {
	// Events is the number of events applied.
	Events int
	// Arrivals and Departures split the event count.
	Arrivals, Departures int
	// Slots[k] is the slot count right after event k.
	Slots []int
	// CostNs[k] is the wall-clock latency of event k in nanoseconds.
	// Empty when the engine carries no observability collector: timing
	// costs two clock reads per event, so Run only pays for it when
	// someone — a collector — is there to consume the latency series.
	CostNs []int64
	// PeakSlots is the maximum of Slots.
	PeakSlots int
	// Stats are the engine's counters after the replay.
	Stats online.Stats
}

// MeanCostNs returns the mean per-event latency.
func (r *Result) MeanCostNs() float64 {
	if len(r.CostNs) == 0 {
		return 0
	}
	var sum int64
	for _, c := range r.CostNs {
		sum += c
	}
	return float64(sum) / float64(len(r.CostNs))
}

// MaxCostNs returns the worst per-event latency.
func (r *Result) MaxCostNs() int64 {
	var max int64
	for _, c := range r.CostNs {
		if c > max {
			max = c
		}
	}
	return max
}

// Run replays the trace against the engine. Per-event timing is gated
// on the engine's collector: only when one is attached (and hence the
// latency series has a consumer) does Run pay the two time.Now calls
// per event — an unobserved replay skips the clock entirely and leaves
// CostNs empty. It stops at the first engine error (a malformed
// trace); the partial series up to the failing event are returned
// alongside the error.
func Run(e *online.Engine, trace Trace) (*Result, error) {
	return RunContext(context.Background(), e, trace)
}

// RunContext is Run with cancellation: the context is polled before
// every event, and a mid-trace cancellation stops the replay cleanly —
// the engine is left in the consistent state after the last applied
// event (every slot still SetFeasible, ready to be checkpointed) and
// the partial series are returned alongside ctx.Err(). The
// fault-injection harness uses this as its crash model.
func RunContext(ctx context.Context, e *online.Engine, trace Trace) (*Result, error) {
	if e == nil {
		return nil, errors.New("sim: nil engine")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	timed := e.Observer().Enabled()
	r := &Result{
		Slots: make([]int, 0, len(trace)),
	}
	if timed {
		r.CostNs = make([]int64, 0, len(trace))
	}
	for k, ev := range trace {
		if err := ctx.Err(); err != nil {
			r.Stats = e.Stats()
			return r, err
		}
		var start time.Time
		if timed {
			start = time.Now()
		}
		var err error
		if ev.Arrive {
			_, err = e.Arrive(ev.Req)
		} else {
			err = e.Depart(ev.Req)
		}
		if err != nil {
			return r, fmt.Errorf("sim: event %d: %w", k, err)
		}
		if ev.Arrive {
			r.Arrivals++
		} else {
			r.Departures++
		}
		r.Events++
		if timed {
			r.CostNs = append(r.CostNs, time.Since(start).Nanoseconds())
		}
		s := e.NumSlots()
		r.Slots = append(r.Slots, s)
		if s > r.PeakSlots {
			r.PeakSlots = s
		}
	}
	r.Stats = e.Stats()
	return r, nil
}
