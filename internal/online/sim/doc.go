// Package sim generates request-churn traces and replays them against an
// online.Engine, recording per-event latency and slot-count time series.
//
// A trace is a sequence of arrive/depart events over the requests of one
// instance. Three generators cover the workload regimes of the churn
// experiments: Poisson (memoryless arrivals with exponential holding
// times, the M/M/∞ steady state), Bursty (batched arrivals at Poisson
// burst epochs, the flash-crowd regime), and Replay (a deterministic
// adversarial pattern that arrives requests shortest-first — the worst
// order for greedy packing — and churns alternating halves to maximize
// fragmentation).
//
// Run applies a trace event by event, timing each Engine call; the
// Result's Slots and CostNs series are what the churn experiments and the
// oblsched -trace mode report, and BenchmarkOnlineChurn uses the same
// replay loop to compare incremental per-event cost against re-running
// the batch greedy solver per event.
package sim
