// Checkpoint/Restore: crash recovery for the online engine. A
// checkpoint serializes the engine's logical state — the slot
// membership lists (in insertion order, empty interior slots included),
// the policy configuration, the drain flag, and the lifetime counters —
// but none of the derived structures: trackers, accumulators, and the
// affectance engine are rebuilt on restore and the result is
// re-verified slot by slot, so a corrupted or stale checkpoint fails
// loudly (ErrBadCheckpoint) instead of resurrecting an infeasible
// schedule. Restore(Checkpoint()) round-trips bitwise: the restored
// engine's Snapshot and a second Checkpoint equal the originals.
package online

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// CheckpointVersion is the format version written by Checkpoint and the
// only one Restore accepts.
const CheckpointVersion = 1

// Checkpoint is the serializable state of an Engine. The slot members
// are stored in tracker insertion order so the restored trackers
// reproduce the same internal order (and hence the same Snapshot and
// power-fit minima) as the checkpointed engine.
type Checkpoint struct {
	// Version is the checkpoint format version (CheckpointVersion).
	Version int `json:"version"`
	// N is the instance size the checkpoint was taken against; Restore
	// rejects a checkpoint whose N differs from its instance.
	N int `json:"n"`
	// Variant names the SINR constraint variant ("directed" or
	// "bidirectional").
	Variant string `json:"variant"`
	// Admission and Repair name the policies by their CLI names.
	Admission string `json:"admission"`
	Repair    string `json:"repair"`
	// Threshold is the ThresholdRepair compaction fraction.
	Threshold float64 `json:"threshold"`
	// Draining records whether the engine was draining.
	Draining bool `json:"draining,omitempty"`
	// Slots holds each slot's members in insertion order. Empty slots
	// are kept (as empty lists) so slot indices — live colors under
	// LazyRepair — survive the round trip.
	Slots [][]int `json:"slots"`
	// Stats carries the lifetime counters for continuity across the
	// restart.
	Stats Stats `json:"stats"`
}

// Checkpoint captures the engine's current state. The engine is not
// mutated; with a collector attached the "engine/checkpoints" counter
// is incremented.
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Version:   CheckpointVersion,
		N:         e.in.N(),
		Variant:   e.v.String(),
		Admission: e.admission.String(),
		Repair:    e.repair.String(),
		Threshold: e.threshold,
		Draining:  e.draining,
		Slots:     make([][]int, len(e.slots)),
		Stats:     e.stats,
	}
	for s, sl := range e.slots {
		cp.Slots[s] = sl.tr.Members()
	}
	if e.col.Enabled() {
		e.col.Counter("engine/checkpoints").Inc()
	}
	return cp
}

// WriteCheckpoint serializes the checkpoint as indented JSON.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint. Format
// errors wrap ErrBadCheckpoint; semantic validation happens in Restore,
// which knows the instance.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadCheckpoint, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// Restore rebuilds an engine from a checkpoint: it re-creates the slot
// trackers, re-inserts every member in checkpoint order, re-verifies
// that every slot passes SetFeasible, and restores the policy
// configuration and lifetime counters. Options are applied on top of
// the checkpointed configuration (an explicit WithObserver or
// WithDeadline composes; overriding the admission or repair policy is
// allowed and takes effect from the next event). Every validation
// failure — size mismatch, unknown policy or variant names, duplicate
// or out-of-range members, an infeasible slot — wraps ErrBadCheckpoint.
// With a collector attached the "engine/restores" counter is
// incremented on success.
func Restore(m sinr.Model, in *problem.Instance, powers []float64, cp *Checkpoint, opts ...Option) (*Engine, error) {
	if cp == nil {
		return nil, fmt.Errorf("%w: nil checkpoint", ErrBadCheckpoint)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadCheckpoint, cp.Version, CheckpointVersion)
	}
	if in != nil && cp.N != in.N() {
		return nil, fmt.Errorf("%w: checkpoint for %d requests, instance has %d", ErrBadCheckpoint, cp.N, in.N())
	}
	var v sinr.Variant
	switch cp.Variant {
	case sinr.Directed.String():
		v = sinr.Directed
	case sinr.Bidirectional.String():
		v = sinr.Bidirectional
	default:
		return nil, fmt.Errorf("%w: unknown variant %q", ErrBadCheckpoint, cp.Variant)
	}
	adm, err := ParseAdmission(cp.Admission)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	rep, err := ParseRepair(cp.Repair)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	base := []Option{WithAdmission(adm), WithRepair(rep), WithThreshold(cp.Threshold)}
	e, err := New(m, in, v, powers, append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	for s, members := range cp.Slots {
		tr := e.newTracker()
		if tr == nil {
			return nil, fmt.Errorf("restore slot %d: %w", s, ErrTrackerUnavailable)
		}
		e.slots = append(e.slots, &slot{tr: tr, minLen: math.Inf(1)})
		for _, i := range members {
			if i < 0 || i >= e.in.N() {
				return nil, fmt.Errorf("%w: slot %d member %d out of range [0,%d)", ErrBadCheckpoint, s, i, e.in.N())
			}
			if e.slotOf[i] >= 0 {
				return nil, fmt.Errorf("%w: request %d appears in slots %d and %d", ErrBadCheckpoint, i, e.slotOf[i], s)
			}
			e.place(i, s)
			e.active++
		}
	}
	// Feasibility is re-proved from scratch through the fresh trackers:
	// a checkpoint edited by hand, taken against different powers, or
	// truncated mid-write must not come back as a running engine.
	for s, sl := range e.slots {
		if sl.tr.Len() > 0 && !sl.tr.SetFeasible() {
			return nil, fmt.Errorf("%w: slot %d infeasible after restore", ErrBadCheckpoint, s)
		}
	}
	// Counter continuity: overwrite last, so the rebuild's own probe and
	// row-op accounting does not leak into the restored lifetime stats
	// and Checkpoint(Restore(cp)) round-trips bitwise.
	e.stats = cp.Stats
	if len(e.slots) > e.stats.PeakSlots {
		e.stats.PeakSlots = len(e.slots)
	}
	e.draining = cp.Draining
	if e.col.Enabled() {
		e.col.Counter("engine/restores").Inc()
		e.gSlots.Set(float64(len(e.slots)))
		e.gActive.Set(float64(e.active))
	}
	return e, nil
}
