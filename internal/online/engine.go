package online

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/affect"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// Engine maintains a feasible multi-slot schedule for a fixed instance
// under a stream of Arrive/Depart events, without ever recomputing from
// scratch. Each slot is an affect.Tracker over the instance's precomputed
// affectance matrices, so an arrival costs one O(|slot|) feasibility probe
// per examined slot and a departure one O(|slot|) accumulator update —
// versus the O(n²·colors) of re-running a batch solver per event.
//
// Every mutation preserves the invariant that each slot passes its
// tracker's SetFeasible: admission only places a request where CanAdd
// holds, and repair migrations are departures followed by admissions.
//
// An Engine is not safe for concurrent use.
type Engine struct {
	m      sinr.Model
	v      sinr.Variant
	in     *problem.Instance
	powers []float64
	cache  sinr.Cache
	// provider is non-nil when the model carried a sparse affectance
	// engine: slots then run on its conservative trackers instead of the
	// dense row-backed ones, so the engine never needs the n×n matrices.
	provider sinr.TrackerProvider
	lens     []float64 // request lengths, for the power-fit order

	slots  []*slot
	free   []sinr.SetTracker // recycled trackers (Reset, not reallocated)
	slotOf []int             // slotOf[i] = slot of request i, -1 if absent
	active int

	admission Admission
	repair    Repair
	threshold float64 // empty-slot fraction that triggers ThresholdRepair

	// Overload/failure handling (see degrade.go). deadline > 0 turns on
	// the per-event clock; evStart is the running event's start time.
	// repairDebt counts compactions deferred under latency pressure,
	// saturating at repairBudget. draining rejects arrivals.
	deadline      time.Duration
	evStart       time.Time
	repairBudget  int
	repairDebt    int
	retryAttempts int
	retryBackoff  time.Duration
	draining      bool

	stats Stats

	// col is the live observability channel: per-event latency
	// histograms, counters mirroring Stats, slot/active gauges, and the
	// typed event stream. Nil (the default) keeps every event on the
	// original zero-instrumentation path — the handles below are then
	// nil too, and all recording calls reduce to one predictable branch.
	col       *obs.Collector
	cArrive   *obs.Counter
	cDepart   *obs.Counter
	cMove     *obs.Counter
	cRepack   *obs.Counter
	cRepair   *obs.Counter
	cShed     *obs.Counter
	cDeferred *obs.Counter
	cRetry    *obs.Counter
	hArrive   *obs.Histogram
	hDepart   *obs.Histogram
	gSlots    *obs.Gauge
	gActive   *obs.Gauge
}

// slot is one color class: its tracker plus the minimum member length,
// which the power-fit admission uses to preserve the longest-first
// discipline per slot (math.Inf(1) when empty).
type slot struct {
	tr     sinr.SetTracker
	minLen float64
}

// Stats counts the engine's lifetime work. RowOps is the cost proxy the
// churn experiments report: every tracker probe or update adds the size of
// the slot it touched (plus one), so it measures exactly the row
// operations an equivalent batch re-solve would redo in full.
type Stats struct {
	// Arrivals and Departures count the accepted events.
	Arrivals, Departures int
	// PeakSlots is the largest slot count ever reached.
	PeakSlots int
	// Moves counts requests migrated between slots by repair.
	Moves int
	// Repacks counts slots dissolved by migrating their members away.
	Repacks int
	// Repairs counts repair invocations that changed the schedule.
	Repairs int
	// Shed counts admissions whose best-fit scan was degraded to
	// first-fit because the event exceeded the WithDeadline budget.
	Shed int
	// DeferredRepairs counts compaction passes postponed under latency
	// pressure (bounded by WithRepairBudget; see degrade.go).
	DeferredRepairs int
	// Retries counts transient tracker-provider failures that were
	// retried under the WithRetry budget.
	Retries int
	// RowOps is the total tracker row operations (see type comment).
	RowOps int64
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithAdmission selects the admission policy (default FirstFit).
func WithAdmission(a Admission) Option { return func(e *Engine) { e.admission = a } }

// WithRepair selects the repair strategy (default LazyRepair).
func WithRepair(r Repair) Option { return func(e *Engine) { e.repair = r } }

// WithThreshold sets the empty-slot fraction at which ThresholdRepair
// compacts (default 0.25). Values outside (0, 1] are rejected by New.
func WithThreshold(frac float64) Option { return func(e *Engine) { e.threshold = frac } }

// WithObserver attaches an observability collector: every event then
// feeds the "engine/arrive_ns"/"engine/depart_ns" latency histograms,
// the counters mirroring Stats ("engine/arrivals", "engine/departures",
// "engine/moves", "engine/repacks", "engine/repairs"), and the
// "engine/slots"/"engine/active" gauges; sinks attached to the
// collector additionally receive the typed event stream. A nil
// collector (the default) keeps the engine on the uninstrumented path.
func WithObserver(c *obs.Collector) Option { return func(e *Engine) { e.setObserver(c) } }

// New builds an engine for the given model, instance, variant and powers.
// If the model carries an affectance cache covering (instance, powers) for
// the variant it is reused — SolveAll batch stores thread through here —
// otherwise the matrices are built once, which is the only super-linear
// cost of the engine's lifetime.
func New(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, opts ...Option) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if in == nil {
		return nil, errors.New("online: nil instance")
	}
	n := in.N()
	if len(powers) != n {
		return nil, fmt.Errorf("online: %d powers for %d requests", len(powers), n)
	}
	if v != sinr.Directed && v != sinr.Bidirectional {
		return nil, fmt.Errorf("online: unknown variant %d", int(v))
	}
	e := &Engine{
		m:            m,
		v:            v,
		in:           in,
		powers:       append([]float64(nil), powers...),
		lens:         in.Lengths(),
		slotOf:       make([]int, n),
		threshold:    0.25,
		repairBudget: 8,
	}
	for i := range e.slotOf {
		e.slotOf[i] = -1
	}
	for _, opt := range opts {
		if opt != nil {
			opt(e)
		}
	}
	switch e.admission {
	case FirstFit, BestFit, PowerFit:
	default:
		return nil, fmt.Errorf("online: unknown admission policy %d", int(e.admission))
	}
	switch e.repair {
	case LazyRepair, ThresholdRepair, EagerRepair:
	default:
		return nil, fmt.Errorf("online: unknown repair strategy %d", int(e.repair))
	}
	if !(e.threshold > 0 && e.threshold <= 1) {
		return nil, fmt.Errorf("online: compaction threshold must be in (0,1], got %g", e.threshold)
	}
	if e.deadline < 0 {
		return nil, fmt.Errorf("online: deadline must be ≥ 0, got %v", e.deadline)
	}
	if e.retryAttempts < 0 || e.retryBackoff < 0 {
		return nil, fmt.Errorf("online: retry budget must be ≥ 0, got (%d, %v)", e.retryAttempts, e.retryBackoff)
	}
	if e.repairBudget < 1 {
		return nil, fmt.Errorf("online: repair budget must be ≥ 1, got %d", e.repairBudget)
	}
	e.cache = m.CacheFor(in, e.powers)
	if tp, ok := e.cache.(sinr.TrackerProvider); ok {
		if tr := tp.NewSetTracker(m, v); tr != nil {
			e.provider = tp
			e.free = append(e.free, tr) // the probe tracker is the first slot's
		}
	}
	if e.provider == nil && (e.cache == nil || !cacheHasVariant(e.cache, v)) {
		e.cache = affect.New(m, v, in, e.powers)
	}
	return e, nil
}

// cacheHasVariant reports whether the cache carries the matrices the
// tracker needs for the variant (a covering cache of the other variant
// must not be reused).
func cacheHasVariant(c sinr.Cache, v sinr.Variant) bool {
	if v == sinr.Directed {
		return c.DirectedInto(0) != nil
	}
	return c.IntoU(0) != nil
}

// --- accessors ---

// Len returns the number of currently active requests.
func (e *Engine) Len() int { return e.active }

// N returns the instance size: request ids are in [0, N).
func (e *Engine) N() int { return e.in.N() }

// NumSlots returns the current slot count, the online schedule length.
// Under LazyRepair interior slots may momentarily be empty; they still
// count, because the slot indices are live colors.
func (e *Engine) NumSlots() int { return len(e.slots) }

// SlotOf returns the slot of request i, or -1 if it is not active.
func (e *Engine) SlotOf(i int) int { return e.slotOf[i] }

// Slot returns the members of slot s in insertion order (a copy).
func (e *Engine) Slot(s int) []int { return e.slots[s].tr.Members() }

// Stats returns a snapshot of the lifetime counters. With a collector
// attached the same counts stream live through the observer (see
// WithObserver); the snapshot keeps working either way, and the churn
// tests pin the two views to agree after every trace.
func (e *Engine) Stats() Stats { return e.stats }

// Observer returns the attached collector, or nil. sim.Run consults it
// to decide whether per-event timing is worth collecting.
func (e *Engine) Observer() *obs.Collector { return e.col }

// Events attaches a sink to the engine's typed event stream
// (Arrive/Depart/Admit/Evict/Compact/Repair with slot, margin and
// latency), creating a collector on the fly when none was configured
// with WithObserver — the hook the daemon and TUI roadmap items attach
// through.
func (e *Engine) Events(s obs.Sink) {
	if e.col == nil {
		e.setObserver(obs.NewCollector())
	}
	e.col.Attach(s)
}

// setObserver installs the collector and resolves the metric handles
// once, so the per-event path never pays a registry lookup. A nil
// collector yields nil handles, whose record calls are no-ops.
func (e *Engine) setObserver(c *obs.Collector) {
	e.col = c
	e.cArrive = c.Counter("engine/arrivals")
	e.cDepart = c.Counter("engine/departures")
	e.cMove = c.Counter("engine/moves")
	e.cRepack = c.Counter("engine/repacks")
	e.cRepair = c.Counter("engine/repairs")
	e.cShed = c.Counter("engine/shed")
	e.cDeferred = c.Counter("engine/deferred_repairs")
	e.cRetry = c.Counter("engine/retries")
	e.hArrive = c.Histogram("engine/arrive_ns")
	e.hDepart = c.Histogram("engine/depart_ns")
	e.gSlots = c.Gauge("engine/slots")
	e.gActive = c.Gauge("engine/active")
}

// Feasible re-checks every slot's full SINR constraint set through the
// trackers in O(active) total. It holds after every event by construction;
// the churn tests call it after each simulated event.
func (e *Engine) Feasible() bool {
	for _, sl := range e.slots {
		if !sl.tr.SetFeasible() {
			return false
		}
	}
	return true
}

// Snapshot returns the current assignment as a Schedule: active requests
// get their slot as color — renumbered densely, skipping any momentarily
// empty interior slots, so a complete snapshot passes CheckSchedule —
// inactive requests stay at color -1.
func (e *Engine) Snapshot() *problem.Schedule {
	s := problem.NewSchedule(e.in.N())
	copy(s.Powers, e.powers)
	color := 0
	for _, sl := range e.slots {
		if sl.tr.Len() == 0 {
			continue
		}
		for k := 0; k < sl.tr.Len(); k++ {
			s.Colors[sl.tr.At(k)] = color
		}
		color++
	}
	return s
}

// --- events ---

// Arrive admits request i into a slot chosen by the admission policy,
// opening a new slot when no existing one can take it, and returns the
// slot index. Rejections are typed and mutate nothing: ErrUnknownRequest
// (out of range), ErrDuplicateArrive (already active), ErrDraining
// (BeginDrain), ErrTrackerUnavailable (provider failure past the retry
// budget), and ErrUnschedulable (infeasible even alone).
func (e *Engine) Arrive(i int) (int, error) {
	var start time.Time
	if e.deadline > 0 || e.col.Enabled() {
		start = time.Now()
		e.evStart = start
	}
	if i < 0 || i >= e.in.N() {
		return -1, fmt.Errorf("Arrive(%d): %w: out of range [0,%d)", i, ErrUnknownRequest, e.in.N())
	}
	if e.draining {
		return -1, fmt.Errorf("Arrive(%d): %w", i, ErrDraining)
	}
	if e.slotOf[i] >= 0 {
		return -1, fmt.Errorf("Arrive(%d): %w: already in slot %d", i, ErrDuplicateArrive, e.slotOf[i])
	}
	s := e.admit(i)
	if s < 0 {
		tr := e.newTracker()
		if tr == nil {
			return -1, fmt.Errorf("Arrive(%d): %w", i, ErrTrackerUnavailable)
		}
		s = len(e.slots)
		sl := &slot{tr: tr, minLen: math.Inf(1)}
		if !e.canAdd(sl, i) {
			sl.tr.Reset()
			e.free = append(e.free, sl.tr)
			return -1, fmt.Errorf("%w: request %d", ErrUnschedulable, i)
		}
		e.slots = append(e.slots, sl)
	}
	e.place(i, s)
	e.active++
	e.stats.Arrivals++
	e.cArrive.Inc()
	if len(e.slots) > e.stats.PeakSlots {
		e.stats.PeakSlots = len(e.slots)
	}
	if e.col.Enabled() {
		lat := time.Since(start).Nanoseconds()
		e.hArrive.Observe(lat)
		e.gSlots.Set(float64(len(e.slots)))
		e.gActive.Set(float64(e.active))
		if e.col.Tracing() {
			e.col.Emit(obs.Event{
				Type: obs.EventArrive, Req: i, Slot: s,
				Margin: e.slots[s].tr.Margin(i), LatencyNs: lat,
			})
		}
	}
	return s, nil
}

// Depart removes request i from its slot and runs the repair strategy.
// With tracing on, the repair events a departure triggers precede its
// own Depart event: events are emitted when their work completes, and
// the departure completes only after repair. Rejections are typed and
// mutate nothing: ErrUnknownRequest covers both an out-of-range id and
// a request that is not currently active. Departures are always served,
// draining or not.
func (e *Engine) Depart(i int) error {
	var start time.Time
	if e.deadline > 0 || e.col.Enabled() {
		start = time.Now()
		e.evStart = start
	}
	if i < 0 || i >= e.in.N() {
		return fmt.Errorf("Depart(%d): %w: out of range [0,%d)", i, ErrUnknownRequest, e.in.N())
	}
	s := e.slotOf[i]
	if s < 0 {
		return fmt.Errorf("Depart(%d): %w: not active", i, ErrUnknownRequest)
	}
	var mg float64
	if e.col.Tracing() {
		mg = e.slots[s].tr.Margin(i)
	}
	e.unplace(i, s)
	e.active--
	e.stats.Departures++
	e.cDepart.Inc()
	e.runRepair()
	if e.col.Enabled() {
		lat := time.Since(start).Nanoseconds()
		e.hDepart.Observe(lat)
		e.gSlots.Set(float64(len(e.slots)))
		e.gActive.Set(float64(e.active))
		if e.col.Tracing() {
			e.col.Emit(obs.Event{
				Type: obs.EventDepart, Req: i, Slot: s,
				Margin: mg, LatencyNs: lat,
			})
		}
	}
	return nil
}

// admit picks the slot for request i under the admission policy, or -1
// when no existing slot can take it.
func (e *Engine) admit(i int) int {
	switch e.admission {
	case FirstFit:
		for s, sl := range e.slots {
			if e.canAdd(sl, i) {
				return s
			}
		}
	case BestFit:
		best, bestMargin := -1, math.Inf(1)
		for s, sl := range e.slots {
			// Deadline pressure degrades the scan to first-fit (rung 1 of
			// the degradation ladder, degrade.go): keep the best slot found
			// so far, or fall through to the first feasible remaining one.
			// The clock is polled every 8 slots so the disabled path and
			// the common under-budget path stay branch-cheap.
			if e.deadline > 0 && s&7 == 7 && e.overBudget() {
				e.shed()
				if best >= 0 {
					return best
				}
				for t := s; t < len(e.slots); t++ {
					if e.canAdd(e.slots[t], i) {
						return t
					}
				}
				return -1
			}
			// Margin first: a slot that is infeasible for the candidate or
			// no tighter than the current best needs no member scan.
			mg := e.addMargin(sl, i)
			if mg < -sinr.Tol || mg >= bestMargin {
				continue
			}
			if e.canAdd(sl, i) {
				best, bestMargin = s, mg
			}
		}
		return best
	case PowerFit:
		// First pass: only slots whose members are all at least as long as
		// the arrival, so lengths within a slot stay non-increasing over
		// time like the batch greedy's longest-first scan.
		for s, sl := range e.slots {
			if sl.minLen >= e.lens[i] && e.canAdd(sl, i) {
				return s
			}
		}
		for s, sl := range e.slots {
			if sl.minLen < e.lens[i] && e.canAdd(sl, i) {
				return s
			}
		}
	}
	return -1
}

// --- repair ---

// runRepair applies the configured strategy after a departure. Any
// change to the schedule — a trailing trim, an empty-slot deletion, or a
// migration — counts as one repair, uniformly across strategies. Under
// deadline pressure a due compaction is deferred instead (rung 2 of the
// degradation ladder): the debt saturates at the repair budget, and the
// next departure that is still under budget — or that finds the budget
// exhausted — pays the whole debt with one compaction pass.
func (e *Engine) runRepair() {
	changed := e.trimTail()
	wantCompact := false
	switch e.repair {
	case LazyRepair:
		// Trailing trim only.
	case ThresholdRepair:
		if empty := e.emptySlots(); empty > 0 && float64(empty) >= e.threshold*float64(len(e.slots)) {
			wantCompact = true
		}
	case EagerRepair:
		wantCompact = true
	}
	if !wantCompact && e.repairDebt > 0 && e.repair != LazyRepair {
		// A deferred pass is owed from an earlier over-budget departure.
		wantCompact = true
	}
	if wantCompact {
		if e.deadline > 0 && e.repairDebt < e.repairBudget && e.overBudget() {
			e.repairDebt++
			e.stats.DeferredRepairs++
			e.cDeferred.Inc()
		} else {
			changed = e.compact() || changed
			e.repairDebt = 0
		}
	}
	if changed {
		e.stats.Repairs++
		e.cRepair.Inc()
		if e.col.Tracing() {
			e.col.Emit(obs.Event{Type: obs.EventRepair, Req: -1, Slot: len(e.slots)})
		}
	}
}

// trimTail pops empty slots off the end of the schedule — always safe and
// O(1) per trimmed slot, so every strategy does it.
func (e *Engine) trimTail() bool {
	trimmed := false
	for len(e.slots) > 0 && e.slots[len(e.slots)-1].tr.Len() == 0 {
		e.recycle(e.slots[len(e.slots)-1])
		e.slots = e.slots[:len(e.slots)-1]
		trimmed = true
	}
	return trimmed
}

func (e *Engine) emptySlots() int {
	empty := 0
	for _, sl := range e.slots {
		if sl.tr.Len() == 0 {
			empty++
		}
	}
	return empty
}

// compact shrinks the schedule in two phases: delete every empty slot,
// then repeatedly try to dissolve the smallest remaining slot by migrating
// its members into others. Each migration is a Remove feasibility-checked
// by CanAdd at the target, so the engine invariant survives even a partial
// dissolve (the moved members simply stay moved). It reports whether the
// schedule changed.
func (e *Engine) compact() bool {
	changed := false
	w := 0
	for _, sl := range e.slots {
		if sl.tr.Len() == 0 {
			e.recycle(sl)
			changed = true
			continue
		}
		e.slots[w] = sl
		w++
	}
	if w != len(e.slots) {
		e.slots = e.slots[:w]
		e.renumber()
	}
	for len(e.slots) > 1 {
		k, size := -1, math.MaxInt
		for s, sl := range e.slots {
			if l := sl.tr.Len(); l < size {
				k, size = s, l
			}
		}
		moved, dissolved := e.tryDissolve(k)
		changed = changed || moved
		if !dissolved {
			break
		}
		e.stats.Repacks++
		e.cRepack.Inc()
	}
	if changed && e.col.Tracing() {
		e.col.Emit(obs.Event{Type: obs.EventCompact, Req: -1, Slot: len(e.slots)})
	}
	return changed
}

// tryDissolve migrates the members of slot k into other slots (first
// feasible target). It reports whether anything moved and whether the slot
// emptied out and was deleted.
func (e *Engine) tryDissolve(k int) (moved, dissolved bool) {
	members := e.slots[k].tr.Members()
	for _, i := range members {
		target := -1
		for s, sl := range e.slots {
			if s != k && e.canAdd(sl, i) {
				target = s
				break
			}
		}
		if target < 0 {
			continue
		}
		if e.col.Tracing() {
			e.col.Emit(obs.Event{
				Type: obs.EventEvict, Req: i, Slot: k,
				Margin: e.slots[k].tr.Margin(i),
			})
		}
		e.unplace(i, k)
		e.place(i, target)
		e.stats.Moves++
		e.cMove.Inc()
		moved = true
		if e.col.Tracing() {
			e.col.Emit(obs.Event{
				Type: obs.EventAdmit, Req: i, Slot: target,
				Margin: e.slots[target].tr.Margin(i),
			})
		}
	}
	if e.slots[k].tr.Len() > 0 {
		return moved, false
	}
	e.recycle(e.slots[k])
	e.slots = append(e.slots[:k], e.slots[k+1:]...)
	e.renumber()
	return moved, true
}

// renumber rebuilds slotOf after slot indices shifted — O(active).
func (e *Engine) renumber() {
	for s, sl := range e.slots {
		for k := 0; k < sl.tr.Len(); k++ {
			e.slotOf[sl.tr.At(k)] = s
		}
	}
}

// --- tracker plumbing (with RowOps accounting) ---

// newTracker returns an empty slot tracker: a pooled one (Reset by
// recycle on the way in) when available, else a fresh one from the
// provider or the dense constructor. A provider that transiently fails
// (returns nil) is retried with exponential backoff up to the WithRetry
// budget — rung 3 of the degradation ladder — and nil is returned only
// once the budget is exhausted; Arrive translates that into
// ErrTrackerUnavailable without mutating any state.
func (e *Engine) newTracker() sinr.SetTracker {
	if n := len(e.free); n > 0 {
		tr := e.free[n-1]
		e.free = e.free[:n-1]
		return tr
	}
	if e.provider == nil {
		return affect.NewTracker(e.m, e.v, e.cache)
	}
	tr := e.provider.NewSetTracker(e.m, e.v)
	backoff := e.retryBackoff
	for attempt := 0; tr == nil && attempt < e.retryAttempts; attempt++ {
		e.stats.Retries++
		e.cRetry.Inc()
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		tr = e.provider.NewSetTracker(e.m, e.v)
	}
	return tr
}

func (e *Engine) recycle(sl *slot) {
	sl.tr.Reset()
	e.free = append(e.free, sl.tr)
}

//oblint:hotpath
func (e *Engine) canAdd(sl *slot, i int) bool {
	e.stats.RowOps += int64(sl.tr.Len()) + 1
	return sl.tr.CanAdd(i)
}

//oblint:hotpath
func (e *Engine) addMargin(sl *slot, i int) float64 {
	e.stats.RowOps += int64(sl.tr.Len()) + 1
	return sl.tr.AddMargin(i)
}

// place inserts request i into slot s (which must have passed canAdd).
// Slot trackers are live classes: they are Reset by recycle on the way
// into the free pool, never here.
//
//oblint:fresh slot trackers are Reset by recycle when pooled
//oblint:hotpath
func (e *Engine) place(i, s int) {
	sl := e.slots[s]
	e.stats.RowOps += int64(sl.tr.Len()) + 1
	sl.tr.Add(i)
	e.slotOf[i] = s
	if e.lens[i] < sl.minLen {
		sl.minLen = e.lens[i]
	}
}

// unplace removes request i from slot s, maintaining the slot's minimum
// member length for the power-fit scan.
//
//oblint:hotpath
func (e *Engine) unplace(i, s int) {
	sl := e.slots[s]
	e.stats.RowOps += int64(sl.tr.Len()) + 1
	sl.tr.Remove(i)
	e.slotOf[i] = -1
	if sl.tr.Len() == 0 {
		sl.minLen = math.Inf(1)
	} else if e.lens[i] == sl.minLen {
		sl.minLen = math.Inf(1)
		for k := 0; k < sl.tr.Len(); k++ {
			if l := e.lens[sl.tr.At(k)]; l < sl.minLen {
				sl.minLen = l
			}
		}
	}
}
