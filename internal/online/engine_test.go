package online

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/affect"
	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func randomInstance(t testing.TB, seed int64, n int) *problem.Instance {
	t.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(seed)), n, 100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func newEngine(t testing.TB, m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, opts ...Option) *Engine {
	t.Helper()
	e, err := New(m, in, v, powers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkSlots verifies every slot against the *uncached* oracle — the
// ground truth the whole affect layer is cross-checked against.
func checkSlots(t *testing.T, e *Engine, m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64) {
	t.Helper()
	if !e.Feasible() {
		t.Fatal("engine reports an infeasible slot")
	}
	for s := 0; s < e.NumSlots(); s++ {
		members := e.Slot(s)
		if len(members) == 0 {
			continue
		}
		if !m.SetFeasible(in, v, powers, members) {
			t.Fatalf("slot %d infeasible per the uncached oracle: %v", s, members)
		}
	}
}

// TestFirstFitMatchesGreedy pins the drain-and-replay oracle: replaying
// arrivals in the batch greedy's longest-first order through a first-fit
// engine must reproduce GreedyFirstFit's coloring exactly — and must do so
// again after a full drain, through the recycled trackers.
func TestFirstFitMatchesGreedy(t *testing.T) {
	in := randomInstance(t, 3, 80)
	m := sinr.Default()
	for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
		powers := power.Powers(m, in, power.Sqrt())
		want, err := coloring.GreedyFirstFit(m, in, v, powers, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(t, m, in, v, powers)
		order := coloring.LengthOrder(in)
		for round := 0; round < 2; round++ {
			for _, i := range order {
				if _, err := e.Arrive(i); err != nil {
					t.Fatal(err)
				}
			}
			got := e.Snapshot()
			if got.NumColors() != want.NumColors() {
				t.Fatalf("%s round %d: engine %d colors, batch greedy %d", v, round, got.NumColors(), want.NumColors())
			}
			for i := range got.Colors {
				if got.Colors[i] != want.Colors[i] {
					t.Fatalf("%s round %d: request %d in slot %d, batch greedy color %d", v, round, i, got.Colors[i], want.Colors[i])
				}
			}
			if err := m.CheckSchedule(in, v, got); err != nil {
				t.Fatalf("%s round %d: %v", v, round, err)
			}
			// Drain completely and replay: tracker recycling must leave no
			// residue in the accumulators.
			for _, i := range order {
				if err := e.Depart(i); err != nil {
					t.Fatal(err)
				}
			}
			if e.Len() != 0 || e.NumSlots() != 0 {
				t.Fatalf("%s round %d: drain left %d active in %d slots", v, round, e.Len(), e.NumSlots())
			}
		}
	}
}

// TestChurnAllPolicies is the tentpole invariant: for every admission ×
// repair combination, after every event of a randomized churn sequence,
// every slot is feasible — checked through the trackers after each event
// and against the uncached oracle periodically and at the end.
func TestChurnAllPolicies(t *testing.T) {
	in := randomInstance(t, 7, 60)
	m := sinr.Default()
	for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
		powers := power.Powers(m, in, power.Sqrt())
		for _, adm := range Admissions() {
			for _, rep := range Repairs() {
				rng := rand.New(rand.NewSource(11))
				e := newEngine(t, m, in, v, powers, WithAdmission(adm), WithRepair(rep))
				for step := 0; step < 600; step++ {
					i := rng.Intn(in.N())
					if e.SlotOf(i) >= 0 {
						if err := e.Depart(i); err != nil {
							t.Fatalf("%s/%s/%s step %d: %v", v, adm, rep, step, err)
						}
					} else {
						if _, err := e.Arrive(i); err != nil {
							t.Fatalf("%s/%s/%s step %d: %v", v, adm, rep, step, err)
						}
					}
					if !e.Feasible() {
						t.Fatalf("%s/%s/%s step %d: infeasible slot", v, adm, rep, step)
					}
					if step%97 == 0 {
						checkSlots(t, e, m, in, v, powers)
					}
				}
				checkSlots(t, e, m, in, v, powers)
				// Fill up to a complete schedule and validate end to end.
				for i := 0; i < in.N(); i++ {
					if e.SlotOf(i) < 0 {
						if _, err := e.Arrive(i); err != nil {
							t.Fatalf("%s/%s/%s fill: %v", v, adm, rep, err)
						}
					}
				}
				if err := m.CheckSchedule(in, v, e.Snapshot()); err != nil {
					t.Fatalf("%s/%s/%s final schedule: %v", v, adm, rep, err)
				}
				st := e.Stats()
				if st.PeakSlots < e.NumSlots() || st.Arrivals == 0 || st.Departures == 0 || st.RowOps == 0 {
					t.Fatalf("%s/%s/%s: implausible stats %+v", v, adm, rep, st)
				}
			}
		}
	}
}

// TestZeroDistanceChurn drives the engine over an instance with
// shared-node request pairs (mutual affectance +Inf): the pairs must land
// in different slots and survive remove/re-add churn.
func TestZeroDistanceChurn(t *testing.T) {
	l, err := geom.NewLine([]float64{0, 1, 1, 2, 50, 51, 51, 52})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}})
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	for _, adm := range Admissions() {
		e := newEngine(t, m, in, sinr.Bidirectional, powers, WithAdmission(adm), WithRepair(EagerRepair))
		for i := 0; i < in.N(); i++ {
			if _, err := e.Arrive(i); err != nil {
				t.Fatal(err)
			}
		}
		if e.SlotOf(0) == e.SlotOf(1) || e.SlotOf(2) == e.SlotOf(3) {
			t.Fatalf("%s: zero-distance pair shares a slot", adm)
		}
		rng := rand.New(rand.NewSource(5))
		for step := 0; step < 200; step++ {
			i := rng.Intn(in.N())
			if e.SlotOf(i) >= 0 {
				if err := e.Depart(i); err != nil {
					t.Fatal(err)
				}
			} else if _, err := e.Arrive(i); err != nil {
				t.Fatal(err)
			}
			checkSlots(t, e, m, in, sinr.Bidirectional, powers)
		}
	}
}

// TestRepairShrinks pins that the repair strategies actually win slots
// back: after departing most requests, eager repair ends with no more
// slots than lazy, and the eager engine has performed re-packs.
func TestRepairShrinks(t *testing.T) {
	in := randomInstance(t, 13, 100)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	slotsAfter := map[Repair]int{}
	for _, rep := range Repairs() {
		e := newEngine(t, m, in, sinr.Bidirectional, powers, WithRepair(rep))
		for i := 0; i < in.N(); i++ {
			if _, err := e.Arrive(i); err != nil {
				t.Fatal(err)
			}
		}
		peak := e.NumSlots()
		rng := rand.New(rand.NewSource(17))
		for _, i := range rng.Perm(in.N())[:90] {
			if err := e.Depart(i); err != nil {
				t.Fatal(err)
			}
		}
		slotsAfter[rep] = e.NumSlots()
		if e.NumSlots() > peak {
			t.Fatalf("%s: repair grew the schedule (%d > peak %d)", rep, e.NumSlots(), peak)
		}
		if rep == EagerRepair {
			if st := e.Stats(); st.Repairs == 0 || st.Repacks+st.Moves == 0 {
				t.Fatalf("eager repair never repaired: %+v", st)
			}
			// With 10 requests left, eager compaction must have dissolved
			// the emptied slots down to at most the active count.
			if e.NumSlots() > e.Len() {
				t.Fatalf("eager: %d slots for %d active requests", e.NumSlots(), e.Len())
			}
		}
	}
	if slotsAfter[EagerRepair] > slotsAfter[LazyRepair] {
		t.Fatalf("eager (%d slots) ended longer than lazy (%d)", slotsAfter[EagerRepair], slotsAfter[LazyRepair])
	}
}

// TestRepairCountsTrailingTrim pins that a departure emptying the last
// slot counts as one repair under every strategy — eager's compact pass
// finding nothing further must not swallow the trim.
func TestRepairCountsTrailingTrim(t *testing.T) {
	l, err := geom.NewLine([]float64{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// The two requests share coordinate 1, so they can never share a slot.
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	for _, rep := range Repairs() {
		e := newEngine(t, m, in, sinr.Bidirectional, powers, WithRepair(rep))
		for i := 0; i < 2; i++ {
			if _, err := e.Arrive(i); err != nil {
				t.Fatal(err)
			}
		}
		if e.NumSlots() != 2 {
			t.Fatalf("%s: zero-distance pair should occupy 2 slots, got %d", rep, e.NumSlots())
		}
		if err := e.Depart(1); err != nil {
			t.Fatal(err)
		}
		if e.NumSlots() != 1 {
			t.Fatalf("%s: trailing empty slot not trimmed", rep)
		}
		if got := e.Stats().Repairs; got != 1 {
			t.Fatalf("%s: trailing trim counted as %d repairs, want 1", rep, got)
		}
	}
}

// TestEngineErrors covers the argument contract.
func TestEngineErrors(t *testing.T) {
	in := randomInstance(t, 19, 10)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	if _, err := New(m, in, sinr.Bidirectional, powers[:5]); err == nil {
		t.Error("short powers must fail")
	}
	if _, err := New(m, nil, sinr.Bidirectional, powers); err == nil {
		t.Error("nil instance must fail")
	}
	if _, err := New(m, in, sinr.Variant(9), powers); err == nil {
		t.Error("unknown variant must fail")
	}
	if _, err := New(m, in, sinr.Bidirectional, powers, WithAdmission(Admission(42))); err == nil {
		t.Error("unknown admission must fail")
	}
	if _, err := New(m, in, sinr.Bidirectional, powers, WithRepair(Repair(42))); err == nil {
		t.Error("unknown repair must fail")
	}
	if _, err := New(m, in, sinr.Bidirectional, powers, WithThreshold(0)); err == nil {
		t.Error("zero threshold must fail")
	}
	e := newEngine(t, m, in, sinr.Bidirectional, powers)
	if _, err := e.Arrive(-1); err == nil {
		t.Error("out-of-range arrive must fail")
	}
	if err := e.Depart(3); err == nil {
		t.Error("departing an inactive request must fail")
	}
	if _, err := e.Arrive(3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Arrive(3); err == nil {
		t.Error("double arrive must fail")
	}
}

// TestMisuseNoMutation pins the no-mutation-on-rejection contract for
// every misuse path: the call returns its typed sentinel and leaves the
// lifetime counters, the assignment, the slot structure, and the
// observability stream (metric counters and emitted events) exactly as
// they were.
func TestMisuseNoMutation(t *testing.T) {
	in := randomInstance(t, 29, 12)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	col := obs.NewCollector()
	sink := obs.NewRing(256)
	e := newEngine(t, m, in, sinr.Bidirectional, powers, WithObserver(col))
	e.Events(sink)
	for i := 0; i < 6; i++ {
		if _, err := e.Arrive(i); err != nil {
			t.Fatal(err)
		}
	}

	type state struct {
		assign   []int
		stats    Stats
		counters map[string]int64
		events   int
		slots    int
		active   int
	}
	capture := func() state {
		assign := make([]int, in.N())
		for i := range assign {
			assign[i] = e.SlotOf(i)
		}
		return state{assign, e.Stats(), col.Snapshot().Counters, sink.Total(), e.NumSlots(), e.Len()}
	}

	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"duplicate arrive", func() error { _, err := e.Arrive(3); return err }, ErrDuplicateArrive},
		{"arrive below range", func() error { _, err := e.Arrive(-1); return err }, ErrUnknownRequest},
		{"arrive above range", func() error { _, err := e.Arrive(in.N()); return err }, ErrUnknownRequest},
		{"depart inactive", func() error { return e.Depart(7) }, ErrUnknownRequest},
		{"depart below range", func() error { return e.Depart(-2) }, ErrUnknownRequest},
		{"depart above range", func() error { return e.Depart(99) }, ErrUnknownRequest},
		{"arrive while draining", func() error {
			e.BeginDrain()
			defer e.EndDrain()
			_, err := e.Arrive(8)
			return err
		}, ErrDraining},
	}
	for _, tc := range cases {
		before := capture()
		err := tc.call()
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: got error %v, want %v", tc.name, err, tc.want)
		}
		after := capture()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("%s: rejection mutated state:\n before %+v\n after  %+v", tc.name, before, after)
		}
	}

	// The engine must still be fully usable after the gauntlet.
	if _, err := e.Arrive(8); err != nil {
		t.Fatalf("arrive after misuse gauntlet: %v", err)
	}
	checkSlots(t, e, m, in, sinr.Bidirectional, powers)
}

// TestCacheReuse pins that an engine built from a model that already
// carries a covering cache of the right variant reuses it, and that a
// wrong-variant cache is replaced rather than panicking the trackers.
func TestCacheReuse(t *testing.T) {
	in := randomInstance(t, 23, 20)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	// Wrong variant attached: engine must build its own and still work.
	md := m.WithCache(affect.New(m, sinr.Directed, in, powers))
	e := newEngine(t, md, in, sinr.Bidirectional, powers)
	for i := 0; i < in.N(); i++ {
		if _, err := e.Arrive(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, e.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
