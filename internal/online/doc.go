// Package online is the dynamic scheduling engine: it maintains a
// feasible multi-slot SINR schedule under a stream of request arrivals
// and departures, paying O(active) row operations per event instead of
// the O(n²·colors) of re-running a batch solver.
//
// The paper's algorithms (Fanghänel, Kesselheim, Räcke, Vöcking,
// PODC 2009) are batch: all requests are known up front and colored once.
// A deployed MAC layer sees the opposite regime — continuous churn — and
// this package closes that gap on top of the incremental machinery of
// package affect: the Engine keeps one affect.Tracker per slot (color),
// so admission probes, departures, and repair migrations are all
// incremental accumulator updates against the precomputed affectance
// matrices.
//
// Three admission policies decide where an arrival lands (FirstFit,
// BestFit, PowerFit — the last preserving the longest-first discipline of
// the paper's square-root assignment per slot), and three repair
// strategies decide how hard the engine works to shrink the schedule when
// departures empty slots out (LazyRepair, ThresholdRepair, EagerRepair).
// Every combination maintains the invariant that each slot passes its
// tracker's SetFeasible after every event.
//
// The subpackage sim generates churn traces (Poisson, bursty, adversarial
// replay) and replays them against an Engine, producing per-event latency
// and slot-count time series. The public registry exposes the engine as
// the "online" solver with WithAdmission / WithRepair options.
package online
