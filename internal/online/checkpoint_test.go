package online

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// churn drives a deterministic arrive/depart mix so checkpoints are
// taken from a state with occupied, emptied, and repaired slots.
func churn(t *testing.T, e *Engine, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < steps; step++ {
		i := rng.Intn(e.N())
		if e.SlotOf(i) >= 0 {
			if err := e.Depart(i); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		} else if _, err := e.Arrive(i); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestCheckpointRoundTrip pins the recovery contract: serialize, parse
// back, restore, and the restored engine is bitwise the old one — same
// Snapshot, same Stats, same second Checkpoint — and both engines then
// evolve identically under further identical churn.
func TestCheckpointRoundTrip(t *testing.T) {
	in := randomInstance(t, 31, 40)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	for _, rep := range Repairs() {
		e := newEngine(t, m, in, sinr.Directed, powers,
			WithAdmission(BestFit), WithRepair(rep))
		churn(t, e, 41, 300)
		cp := e.Checkpoint()

		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, cp); err != nil {
			t.Fatal(err)
		}
		parsed, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parsed, cp) {
			t.Fatalf("%s: checkpoint did not survive serialization:\n%+v\n%+v", rep, parsed, cp)
		}

		r, err := Restore(m, in, powers, parsed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Snapshot(), e.Snapshot()) {
			t.Fatalf("%s: restored snapshot differs", rep)
		}
		if r.Stats() != e.Stats() {
			t.Fatalf("%s: restored stats %+v, want %+v", rep, r.Stats(), e.Stats())
		}
		if !reflect.DeepEqual(r.Checkpoint(), cp) {
			t.Fatalf("%s: Checkpoint(Restore(cp)) != cp", rep)
		}
		checkSlots(t, r, m, in, sinr.Directed, powers)

		// Same future: identical churn must keep the engines identical.
		churn(t, e, 43, 200)
		churn(t, r, 43, 200)
		if !reflect.DeepEqual(r.Snapshot(), e.Snapshot()) || r.Stats() != e.Stats() {
			t.Fatalf("%s: engines diverged after restore", rep)
		}
	}
}

// TestCheckpointDraining pins that the drain flag survives the round
// trip: a restored draining engine keeps rejecting arrivals.
func TestCheckpointDraining(t *testing.T) {
	in := randomInstance(t, 37, 10)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	e := newEngine(t, m, in, sinr.Bidirectional, powers)
	if _, err := e.Arrive(0); err != nil {
		t.Fatal(err)
	}
	e.BeginDrain()
	r, err := Restore(m, in, powers, e.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Draining() {
		t.Fatal("drain flag lost in round trip")
	}
	if _, err := r.Arrive(1); !errors.Is(err, ErrDraining) {
		t.Fatalf("restored draining engine admitted an arrival: %v", err)
	}
	if err := r.Depart(0); err != nil {
		t.Fatalf("restored draining engine refused a departure: %v", err)
	}
}

// TestRestoreRejectsBadCheckpoints walks the validation ladder: every
// corruption fails with ErrBadCheckpoint and a message naming the
// problem, instead of resurrecting a broken engine.
func TestRestoreRejectsBadCheckpoints(t *testing.T) {
	in := randomInstance(t, 43, 8)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	e := newEngine(t, m, in, sinr.Bidirectional, powers)
	for i := 0; i < 4; i++ {
		if _, err := e.Arrive(i); err != nil {
			t.Fatal(err)
		}
	}
	good := e.Checkpoint()

	cases := []struct {
		name    string
		corrupt func(cp *Checkpoint)
		msg     string
	}{
		{"version", func(cp *Checkpoint) { cp.Version = 99 }, "version"},
		{"size", func(cp *Checkpoint) { cp.N = 7 }, "requests"},
		{"variant", func(cp *Checkpoint) { cp.Variant = "diagonal" }, "variant"},
		{"admission", func(cp *Checkpoint) { cp.Admission = "psychic" }, "admission"},
		{"repair", func(cp *Checkpoint) { cp.Repair = "duct-tape" }, "repair"},
		{"member range", func(cp *Checkpoint) { cp.Slots[0][0] = 99 }, "out of range"},
		{"duplicate member", func(cp *Checkpoint) {
			cp.Slots = append(cp.Slots, []int{cp.Slots[0][0]})
		}, "appears in slots"},
	}
	for _, tc := range cases {
		cp := *good
		cp.Slots = make([][]int, len(good.Slots))
		for s := range good.Slots {
			cp.Slots[s] = append([]int(nil), good.Slots[s]...)
		}
		tc.corrupt(&cp)
		_, err := Restore(m, in, powers, &cp)
		if !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("%s: got %v, want ErrBadCheckpoint", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Fatalf("%s: error %q does not name the problem (%q)", tc.name, err, tc.msg)
		}
	}

	if _, err := Restore(m, in, powers, nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("nil checkpoint: got %v", err)
	}
	if _, err := ReadCheckpoint(strings.NewReader("{not json")); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("garbage input: got %v", err)
	}
}

// TestRestoreRejectsInfeasibleSlot pins the feasibility re-proof with a
// deterministic impossibility: a zero-distance request pair (shared
// node, mutual affectance +Inf) can never share a slot, so a checkpoint
// claiming they do must be refused.
func TestRestoreRejectsInfeasibleSlot(t *testing.T) {
	l, err := geom.NewLine([]float64{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	e := newEngine(t, m, in, sinr.Bidirectional, powers)
	for i := 0; i < 2; i++ {
		if _, err := e.Arrive(i); err != nil {
			t.Fatal(err)
		}
	}
	cp := e.Checkpoint()
	cp.Slots = [][]int{{0, 1}}
	_, err = Restore(m, in, powers, cp)
	if !errors.Is(err, ErrBadCheckpoint) || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("infeasible checkpoint slot: got %v, want ErrBadCheckpoint naming infeasibility", err)
	}
}

// TestRestoreOptionOverride pins option composition: explicit options
// are applied on top of the checkpointed configuration and take effect
// from the next event.
func TestRestoreOptionOverride(t *testing.T) {
	in := randomInstance(t, 47, 20)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	e := newEngine(t, m, in, sinr.Directed, powers, WithRepair(LazyRepair))
	churn(t, e, 53, 100)
	r, err := Restore(m, in, powers, e.Checkpoint(), WithRepair(EagerRepair))
	if err != nil {
		t.Fatal(err)
	}
	if r.repair != EagerRepair {
		t.Fatalf("override ignored: repair = %v", r.repair)
	}
	churn(t, r, 59, 100)
	checkSlots(t, r, m, in, sinr.Directed, powers)
}
