// Overload degradation: per-event admission deadlines, admission-policy
// shedding, repair deferral, and tracker-provider retry. The ladder is
// strictly ordered — the engine gives up optimization work before it
// gives up correctness, and it never gives up the invariant that every
// slot stays SetFeasible:
//
//  1. shed admission quality: a best-fit scan that exceeds the deadline
//     degrades to first-fit for the remaining slots (take what fits,
//     stop optimizing) — counted in Stats.Shed / "engine/shed";
//  2. defer repair: a threshold/eager compaction due while the event is
//     over budget is postponed — up to WithRepairBudget deferrals — and
//     paid down by the next departure that finishes under budget;
//     counted in Stats.DeferredRepairs / "engine/deferred_repairs";
//  3. retry acquisition: a tracker provider that transiently fails is
//     retried with exponential backoff (WithRetry) — counted in
//     Stats.Retries / "engine/retries" — and only after the budget is
//     exhausted does Arrive reject with ErrTrackerUnavailable, leaving
//     state untouched.
//
// All of it is opt-in: with no deadline and no retry configured the
// event path is byte-for-byte the pre-hardening one plus a single
// predictable branch (pinned by BenchmarkOnlineChurn's <2% gate).
package online

import "time"

// WithDeadline sets the per-event admission deadline: an Arrive or
// Depart that runs longer than d starts shedding optimization work (see
// the package ladder above). Zero (the default) disables the deadline
// and its clock reads entirely. Negative values are rejected by New.
func WithDeadline(d time.Duration) Option { return func(e *Engine) { e.deadline = d } }

// WithRetry bounds the retry-with-backoff loop around transient tracker
// provider failures: up to attempts extra NewSetTracker calls, sleeping
// backoff before the first retry and doubling it each time. The default
// (0, 0) fails fast on the first nil tracker. Negative values are
// rejected by New.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(e *Engine) {
		e.retryAttempts = attempts
		e.retryBackoff = backoff
	}
}

// WithRepairBudget bounds how many consecutive compaction passes may be
// deferred under latency pressure before one runs regardless (default
// 8). The bound keeps the deferred work from growing without limit: an
// overloaded engine compacts at least every budget+1 departures that
// want it. Values < 1 are rejected by New.
func WithRepairBudget(n int) Option { return func(e *Engine) { e.repairBudget = n } }

// BeginDrain puts the engine in draining mode: every subsequent Arrive
// is rejected with ErrDraining while departures (and their repairs)
// proceed, so the active set only shrinks. Draining is how the daemon
// shuts a session down gracefully; it is recorded in checkpoints.
func (e *Engine) BeginDrain() { e.draining = true }

// EndDrain leaves draining mode; arrivals are admitted again.
func (e *Engine) EndDrain() { e.draining = false }

// Draining reports whether the engine is in draining mode.
func (e *Engine) Draining() bool { return e.draining }

// overBudget reports whether the current event has exceeded the
// configured deadline. Only called on paths already gated on
// e.deadline > 0, where evStart is always set.
func (e *Engine) overBudget() bool {
	return time.Since(e.evStart) > e.deadline
}

// shed records one admission-quality degradation.
func (e *Engine) shed() {
	e.stats.Shed++
	e.cShed.Inc()
}
