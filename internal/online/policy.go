package online

import "fmt"

// Admission selects the slot an arriving request is placed into. All
// policies only ever place a request where the slot's full SINR
// constraints keep holding (Tracker.CanAdd); they differ in which of the
// feasible slots they prefer, which drives fragmentation and therefore the
// schedule length under churn.
type Admission int

const (
	// FirstFit scans the slots in index order and takes the first feasible
	// one — the online counterpart of the batch greedy coloring: replaying
	// arrivals in longest-first order reproduces GreedyFirstFit exactly.
	FirstFit Admission = iota
	// BestFit takes the feasible slot where the request lands with the
	// least SINR headroom (the smallest admission margin), packing slots
	// tightly and keeping loose slots open for hard requests.
	BestFit
	// PowerFit prefers feasible slots whose members are all at least as
	// long as the arrival — the longest-first discipline of the paper's
	// square-root assignment, maintained per slot under online arrivals —
	// and falls back to first-fit among the remaining feasible slots.
	PowerFit
)

// String returns the CLI name of the policy.
func (a Admission) String() string {
	switch a {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case PowerFit:
		return "power-fit"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// Admissions returns all admission policies, in CLI-name order.
func Admissions() []Admission { return []Admission{BestFit, FirstFit, PowerFit} }

// ParseAdmission resolves the textual policy names used by the CLIs and
// the solver options. The empty string means the default (first-fit).
func ParseAdmission(s string) (Admission, error) {
	switch s {
	case "", "first-fit":
		return FirstFit, nil
	case "best-fit":
		return BestFit, nil
	case "power-fit":
		return PowerFit, nil
	default:
		return 0, fmt.Errorf("online: unknown admission policy %q (want first-fit, best-fit, or power-fit)", s)
	}
}

// Repair selects what the engine does after a departure to win back slots
// that churn has emptied out or fragmented.
type Repair int

const (
	// LazyRepair does the minimum: trailing empty slots are trimmed (their
	// trackers recycled), interior empty slots stay and are refilled by
	// later arrivals. No request ever migrates.
	LazyRepair Repair = iota
	// ThresholdRepair compacts — deletes empty slots and tries to dissolve
	// the smallest remaining ones by migrating their members — but only
	// once at least a quarter of the slots are empty, amortizing the
	// migration work over many departures.
	ThresholdRepair
	// EagerRepair compacts after every departure, keeping the schedule as
	// short as migrations can make it at the cost of the highest per-event
	// work.
	EagerRepair
)

// String returns the CLI name of the strategy.
func (r Repair) String() string {
	switch r {
	case LazyRepair:
		return "lazy"
	case ThresholdRepair:
		return "threshold"
	case EagerRepair:
		return "eager"
	default:
		return fmt.Sprintf("Repair(%d)", int(r))
	}
}

// Repairs returns all repair strategies, in CLI-name order.
func Repairs() []Repair { return []Repair{EagerRepair, LazyRepair, ThresholdRepair} }

// ParseRepair resolves the textual strategy names used by the CLIs and the
// solver options. The empty string means the default (lazy).
func ParseRepair(s string) (Repair, error) {
	switch s {
	case "", "lazy":
		return LazyRepair, nil
	case "threshold":
		return ThresholdRepair, nil
	case "eager":
		return EagerRepair, nil
	default:
		return 0, fmt.Errorf("online: unknown repair strategy %q (want lazy, threshold, or eager)", s)
	}
}
