package online

import "errors"

// The engine's failure model is a closed taxonomy of sentinel errors:
// every rejection an Engine method can produce wraps exactly one of
// these, so callers — the daemon roadmap item, the fault-injection
// harness, the CLI — can dispatch with errors.Is instead of matching
// message strings. Rejections never mutate engine state: Stats, the
// slot assignment, and the event stream are exactly as they were
// before the rejected call (pinned by TestMisusePathsNoMutation).
var (
	// ErrUnschedulable is wrapped by Arrive when a request cannot hold
	// its SINR constraint even alone in an empty slot (positive noise
	// with insufficient power).
	ErrUnschedulable = errors.New("online: request infeasible even in an empty slot")

	// ErrDuplicateArrive is wrapped by Arrive when the request is
	// already active. The existing placement is untouched.
	ErrDuplicateArrive = errors.New("online: request already active")

	// ErrUnknownRequest is wrapped by Arrive and Depart when the request
	// id is outside [0, n), and by Depart when the request is not
	// currently active.
	ErrUnknownRequest = errors.New("online: unknown request")

	// ErrDraining is wrapped by Arrive while the engine is draining
	// (BeginDrain): a draining engine only sheds load, it never admits.
	ErrDraining = errors.New("online: engine is draining")

	// ErrTrackerUnavailable is wrapped by Arrive (and Restore) when the
	// tracker provider failed to produce a slot tracker even after the
	// configured retry budget (WithRetry). The arrival is rejected with
	// no state change; a later retry of the same Arrive may succeed once
	// the provider recovers.
	ErrTrackerUnavailable = errors.New("online: slot tracker unavailable")

	// ErrBadCheckpoint is wrapped by Restore for every way a checkpoint
	// can fail to reconstruct: size mismatch, out-of-range or duplicate
	// members, unknown policy names, or a slot that fails its SINR
	// feasibility re-verification.
	ErrBadCheckpoint = errors.New("online: invalid checkpoint")
)
