// Package multihop adds the routing layer on top of interference
// scheduling, mirroring the cross-layer latency problem of Chafekar et
// al. that the paper discusses in its related work (Section 1.3): given
// end-to-end flows between node pairs, route each flow along a multi-hop
// path, schedule every hop as a (bidirectional) communication request,
// and measure the end-to-end latency of the flows under the periodic
// frame induced by the coloring.
//
// Exported entry points:
//
//   - NewNetwork builds the link graph of nodes within communication
//     range; Network.Route routes flows along shortest paths and returns
//     the hop instance; Network.ScheduleFlows routes and colors in one
//     call.
//   - Latency replays a schedule as a periodic TDMA frame and reports
//     per-flow end-to-end latency.
//   - RandomFlows samples flow workloads for the latency experiment.
package multihop
