package multihop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// gridNetwork builds a k×k unit grid with range slightly above 1 (4-connectivity).
func gridNetwork(t *testing.T, k int) *Network {
	t.Helper()
	pts := make([][]float64, 0, k*k)
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			pts = append(pts, []float64{float64(x), float64(y)})
		}
	}
	e, err := geom.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(e, 1.01)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, 1); err == nil {
		t.Error("nil space should fail")
	}
	l, _ := geom.NewLine([]float64{0, 10})
	if _, err := NewNetwork(l, 0); err == nil {
		t.Error("zero range should fail")
	}
	if _, err := NewNetwork(l, 1); err == nil {
		t.Error("disconnected graph should fail")
	}
	if _, err := NewNetwork(l, 20); err != nil {
		t.Errorf("connected graph rejected: %v", err)
	}
}

func TestDegreeOnGrid(t *testing.T) {
	nw := gridNetwork(t, 3)
	// Center of a 3x3 grid (index 4) has 4 neighbors; corner (0) has 2.
	if got := nw.Degree(4); got != 4 {
		t.Errorf("center degree = %d, want 4", got)
	}
	if got := nw.Degree(0); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
}

func TestShortestPathOnGrid(t *testing.T) {
	nw := gridNetwork(t, 4)
	// From corner 0 (0,0) to corner 15 (3,3): 6 hops.
	path, err := nw.ShortestPath(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 7 {
		t.Errorf("path length = %d nodes, want 7", len(path))
	}
	if path[0] != 0 || path[len(path)-1] != 15 {
		t.Errorf("path endpoints = %d..%d", path[0], path[len(path)-1])
	}
	// Trivial path.
	self, err := nw.ShortestPath(3, 3)
	if err != nil || len(self) != 1 {
		t.Errorf("self path = %v, %v", self, err)
	}
	if _, err := nw.ShortestPath(-1, 2); err == nil {
		t.Error("out-of-range endpoints should fail")
	}
}

func TestRouteBookkeeping(t *testing.T) {
	nw := gridNetwork(t, 4)
	flows := []Flow{{Src: 0, Dst: 15}, {Src: 3, Dst: 12}}
	in, routed, err := nw.Route(flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != 2 {
		t.Fatalf("routed flows = %d", len(routed))
	}
	total := 0
	for _, rf := range routed {
		if len(rf.HopRequests) != len(rf.Path)-1 {
			t.Errorf("hops %d != path edges %d", len(rf.HopRequests), len(rf.Path)-1)
		}
		for h, req := range rf.HopRequests {
			r := in.Reqs[req]
			if r.U != rf.Path[h] || r.V != rf.Path[h+1] {
				t.Errorf("hop %d request (%d,%d) does not match path (%d,%d)",
					h, r.U, r.V, rf.Path[h], rf.Path[h+1])
			}
		}
		total += len(rf.HopRequests)
	}
	if in.N() != total {
		t.Errorf("instance has %d requests, want %d", in.N(), total)
	}
	if _, _, err := nw.Route(nil); err == nil {
		t.Error("no flows should fail")
	}
	if _, _, err := nw.Route([]Flow{{Src: 1, Dst: 1}}); err == nil {
		t.Error("self flow should fail")
	}
}

func TestLatencyHandComputed(t *testing.T) {
	// 3 hops with colors 0, 1, 0 in a frame of 2:
	// hop0 departs slot 0 (t=1), hop1 at slot 1 (t=2), hop2 waits for the
	// next color-0 slot (slot 2, t=3).
	s := &problem.Schedule{Colors: []int{0, 1, 0}, Powers: []float64{1, 1, 1}}
	flows := []RoutedFlow{{HopRequests: []int{0, 1, 2}}}
	lat, err := Latency(s, flows)
	if err != nil {
		t.Fatal(err)
	}
	if lat[0] != 3 {
		t.Errorf("latency = %d, want 3", lat[0])
	}
	// Worst case alignment: colors 1, 0 in frame 2: hop0 at slot 1 (t=2),
	// hop1 at slot 2 (t=3).
	s2 := &problem.Schedule{Colors: []int{1, 0}, Powers: []float64{1, 1}}
	lat2, err := Latency(s2, []RoutedFlow{{HopRequests: []int{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if lat2[0] != 3 {
		t.Errorf("latency = %d, want 3", lat2[0])
	}
}

func TestLatencyValidation(t *testing.T) {
	s := problem.NewSchedule(1)
	if _, err := Latency(s, nil); err == nil {
		t.Error("empty schedule should fail")
	}
	s.Colors[0] = 0
	s.Powers[0] = 1
	if _, err := Latency(s, []RoutedFlow{{HopRequests: []int{5}}}); err == nil {
		t.Error("out-of-range hop should fail")
	}
}

func TestScheduleFlowsEndToEnd(t *testing.T) {
	m := sinr.Default()
	nw := gridNetwork(t, 5)
	rng := rand.New(rand.NewSource(1))
	flows, err := RandomFlows(rng, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	in, s, lat, err := nw.ScheduleFlows(m, flows, power.Sqrt(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Fatalf("invalid hop schedule: %v", err)
	}
	if len(lat) != len(flows) {
		t.Fatalf("latencies = %d, want %d", len(lat), len(flows))
	}
	for fi, l := range lat {
		if l < 1 {
			t.Errorf("flow %d latency %d < 1", fi, l)
		}
	}
}

func TestRandomFlowsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomFlows(rng, 1, 3); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := RandomFlows(rng, 5, 0); err == nil {
		t.Error("k=0 should fail")
	}
	flows, err := RandomFlows(rng, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Error("self flow generated")
		}
	}
}

// TestLatencyLowerBoundProperty: the end-to-end latency is at least the hop
// count and at most hops times the frame length.
func TestLatencyLowerBoundProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 4 + r.Intn(3)
		pts := make([][]float64, 0, k*k)
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				pts = append(pts, []float64{float64(x), float64(y)})
			}
		}
		e, err := geom.NewEuclidean(pts)
		if err != nil {
			return false
		}
		nw, err := NewNetwork(e, 1.01)
		if err != nil {
			return false
		}
		flows, err := RandomFlows(r, k*k, 3+r.Intn(4))
		if err != nil {
			return false
		}
		in, routed, err := nw.Route(flows)
		if err != nil {
			return false
		}
		_ = in
		_, s, lat, err := nw.ScheduleFlows(m, flows, power.Sqrt(), nil)
		if err != nil {
			return false
		}
		frame := s.NumColors()
		for fi, rf := range routed {
			hops := len(rf.HopRequests)
			if lat[fi] < hops || lat[fi] > hops*frame+frame {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
