package multihop

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// Network is a wireless multi-hop network: a metric over node positions
// plus a communication graph of usable links (node pairs within range).
type Network struct {
	Space geom.Metric
	// Range is the maximum usable link length.
	Range float64
	// adj[u] lists the neighbors of u.
	adj [][]int
}

// NewNetwork builds the unit-disk-style communication graph with the given
// range and verifies connectivity.
func NewNetwork(space geom.Metric, linkRange float64) (*Network, error) {
	if space == nil {
		return nil, errors.New("multihop: nil space")
	}
	if !(linkRange > 0) {
		return nil, fmt.Errorf("multihop: range must be positive, got %g", linkRange)
	}
	n := space.N()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := space.Dist(u, v)
			if d > 0 && d <= linkRange {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
	}
	nw := &Network{Space: space, Range: linkRange, adj: adj}
	if !nw.connected() {
		return nil, errors.New("multihop: communication graph is disconnected at this range")
	}
	return nw, nil
}

func (nw *Network) connected() bool {
	n := nw.Space.N()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range nw.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// Degree returns the number of usable links at node u.
func (nw *Network) Degree(u int) int { return len(nw.adj[u]) }

// ShortestPath returns the minimum-total-distance path from src to dst in
// the communication graph (Dijkstra over link lengths).
func (nw *Network) ShortestPath(src, dst int) ([]int, error) {
	n := nw.Space.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("multihop: endpoints (%d,%d) out of range", src, dst)
	}
	if src == dst {
		return []int{src}, nil
	}
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for v := range dist {
		dist[v] = math.Inf(1)
		prev[v] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return nil, fmt.Errorf("multihop: no path from %d to %d", src, dst)
		}
		if u == dst {
			break
		}
		done[u] = true
		for _, v := range nw.adj[u] {
			if nd := dist[u] + nw.Space.Dist(u, v); nd < dist[v] {
				dist[v] = nd
				prev[v] = u
			}
		}
	}
	var path []int
	for v := dst; v >= 0; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil, fmt.Errorf("multihop: no path from %d to %d", src, dst)
	}
	return path, nil
}

// Flow is an end-to-end demand between two nodes.
type Flow struct {
	Src, Dst int
}

// RoutedFlow carries a flow's path and the indices of its hop requests in
// the flattened instance.
type RoutedFlow struct {
	Flow Flow
	// Path is the node sequence from Src to Dst.
	Path []int
	// HopRequests[i] is the request index of the path's i-th hop.
	HopRequests []int
}

// Route routes every flow along its shortest path and returns the combined
// hop instance plus the per-flow hop bookkeeping. Hops of different flows
// over the same link become separate requests (each packet needs its own
// transmission).
func (nw *Network) Route(flows []Flow) (*problem.Instance, []RoutedFlow, error) {
	if len(flows) == 0 {
		return nil, nil, errors.New("multihop: no flows")
	}
	var reqs []problem.Request
	routed := make([]RoutedFlow, 0, len(flows))
	for _, f := range flows {
		if f.Src == f.Dst {
			return nil, nil, fmt.Errorf("multihop: flow with identical endpoints %d", f.Src)
		}
		path, err := nw.ShortestPath(f.Src, f.Dst)
		if err != nil {
			return nil, nil, err
		}
		rf := RoutedFlow{Flow: f, Path: path}
		for h := 1; h < len(path); h++ {
			rf.HopRequests = append(rf.HopRequests, len(reqs))
			reqs = append(reqs, problem.Request{U: path[h-1], V: path[h]})
		}
		routed = append(routed, rf)
	}
	in, err := problem.New(nw.Space, reqs)
	if err != nil {
		return nil, nil, err
	}
	return in, routed, nil
}

// Latency simulates the flows over the periodic frame induced by the
// schedule: the frame has NumColors slots repeating forever; a packet
// waiting at hop i departs at the earliest time that is congruent to the
// hop's color and not before it arrived. It returns the end-to-end latency
// (in slots) per flow.
func Latency(s *problem.Schedule, flows []RoutedFlow) ([]int, error) {
	frame := s.NumColors()
	if frame == 0 {
		return nil, errors.New("multihop: empty schedule")
	}
	out := make([]int, len(flows))
	for fi, f := range flows {
		t := 0 // packet ready at slot 0
		for _, req := range f.HopRequests {
			if req < 0 || req >= len(s.Colors) {
				return nil, fmt.Errorf("multihop: hop request %d out of schedule range", req)
			}
			c := s.Colors[req]
			wait := (c - t%frame + frame) % frame
			t += wait + 1 // transmit during slot t+wait
		}
		out[fi] = t
	}
	return out, nil
}

// ScheduleFlows routes the flows, colors the hop requests greedily under
// the given oblivious assignment (bidirectional constraints), and returns
// the instance, schedule, and per-flow latencies.
func (nw *Network) ScheduleFlows(m sinr.Model, flows []Flow, a power.Assignment, order []int) (*problem.Instance, *problem.Schedule, []int, error) {
	in, routed, err := nw.Route(flows)
	if err != nil {
		return nil, nil, nil, err
	}
	powers := power.Powers(m, in, a)
	s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, order)
	if err != nil {
		return nil, nil, nil, err
	}
	lat, err := Latency(s, routed)
	if err != nil {
		return nil, nil, nil, err
	}
	return in, s, lat, nil
}

// RandomFlows draws k flows with distinct random endpoints.
func RandomFlows(rng *rand.Rand, n, k int) ([]Flow, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("multihop: need n ≥ 2 and k ≥ 1, got %d, %d", n, k)
	}
	flows := make([]Flow, 0, k)
	for len(flows) < k {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			flows = append(flows, Flow{Src: s, Dst: d})
		}
	}
	return flows, nil
}
