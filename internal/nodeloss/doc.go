// Package nodeloss implements the node-loss scheduling problem of
// Section 3.2: a set of nodes in a metric space, each carrying a loss
// parameter ℓ_i, where a set U is β-feasible for powers p if for every
// i ∈ U:
//
//	p_i/ℓ_i > β · Σ_{j∈U, j≠i} p_j/ℓ(i,j)
//
// The paper uses this simplified problem to analyse the bidirectional
// interference scheduling problem: splitting each request pair into its
// two endpoint nodes (with the pair's loss as both nodes' loss parameter)
// relates the two problems with a constant-factor gain translation.
//
// Exported entry points:
//
//   - New builds an Instance directly; FromPairs performs the Section 3.2
//     split of a pair instance into active nodes plus the pair↔node
//     mapping.
//   - PairGainToNodeGain translates the bidirectional gain β into the
//     node-loss gain the split preserves; PairsWithBothEndpoints maps a
//     surviving node set back to the requests with both endpoints alive.
package nodeloss
