package nodeloss

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// Instance is a node-loss scheduling instance: active nodes of a metric
// space, each with a loss parameter.
type Instance struct {
	// Space is the underlying metric over node ids.
	Space geom.Metric
	// Nodes are the active node ids (indices into Space).
	Nodes []int
	// Loss[i] is the loss parameter ℓ of active node i (parallel to Nodes).
	Loss []float64
}

// New validates and builds an instance.
func New(space geom.Metric, nodes []int, loss []float64) (*Instance, error) {
	if space == nil {
		return nil, errors.New("nodeloss: nil space")
	}
	if len(nodes) == 0 || len(nodes) != len(loss) {
		return nil, fmt.Errorf("nodeloss: %d nodes, %d losses", len(nodes), len(loss))
	}
	for k, v := range nodes {
		if v < 0 || v >= space.N() {
			return nil, fmt.Errorf("nodeloss: node %d out of range", v)
		}
		if !(loss[k] > 0) || math.IsInf(loss[k], 0) || math.IsNaN(loss[k]) {
			return nil, fmt.Errorf("nodeloss: invalid loss %g at node %d", loss[k], k)
		}
	}
	return &Instance{
		Space: space,
		Nodes: append([]int(nil), nodes...),
		Loss:  append([]float64(nil), loss...),
	}, nil
}

// N returns the number of active nodes.
func (nl *Instance) N() int { return len(nl.Nodes) }

// Dist returns the metric distance between active nodes i and j.
func (nl *Instance) Dist(i, j int) float64 { return nl.Space.Dist(nl.Nodes[i], nl.Nodes[j]) }

// SqrtPowers returns the square root power assignment p̄_i = √ℓ_i.
func (nl *Instance) SqrtPowers() []float64 {
	out := make([]float64, nl.N())
	for i, l := range nl.Loss {
		out[i] = math.Sqrt(l)
	}
	return out
}

// PairMapping relates a pair instance and its node-loss split.
type PairMapping struct {
	// NodeOfEndpoint[2i] and [2i+1] are the active-node indices of request
	// i's endpoints U and V.
	NodeOfEndpoint []int
	// PairOfNode[k] is the request index whose endpoint active node k is.
	PairOfNode []int
}

// FromPairs splits a bidirectional pair instance into the corresponding
// node-loss instance (Section 3.2): every request endpoint becomes an
// active node whose loss parameter is the loss of its own request. Requests
// must not share endpoint nodes (coincident nodes would make the node-loss
// interference infinite).
func FromPairs(m sinr.Model, in *problem.Instance) (*Instance, *PairMapping, error) {
	return FromPairsScratch(m, in, nil)
}

// Scratch holds the reusable backing buffers of FromPairsScratch. The
// zero value is ready to use; a scratch reused across calls amortizes
// every allocation of the split (the pipeline reuses one per coloring,
// across all extracted color classes).
type Scratch struct {
	nodes  []int
	loss   []float64
	endp   []int
	pairOf []int
	// seen[w] == epoch marks base node w as used by the current call; the
	// epoch bump replaces an O(n) clear (and the map of the original
	// implementation) per call.
	seen    []int64
	epoch   int64
	inst    Instance
	mapping PairMapping
}

// FromPairsScratch is FromPairs drawing every buffer from sc instead of
// the heap (a nil sc allocates fresh, exactly like FromPairs). The
// returned Instance and PairMapping alias sc's buffers: they are valid
// until the next FromPairsScratch call with the same scratch, and the
// caller must not retain them past it.
func FromPairsScratch(m sinr.Model, in *problem.Instance, sc *Scratch) (*Instance, *PairMapping, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	nn := 2 * in.N()
	if cap(sc.nodes) < nn {
		sc.nodes = make([]int, 0, nn)
		sc.loss = make([]float64, 0, nn)
		sc.endp = make([]int, nn)
		sc.pairOf = make([]int, 0, nn)
	}
	nodes, loss, pairOf := sc.nodes[:0], sc.loss[:0], sc.pairOf[:0]
	endp := sc.endp[:nn]
	if len(sc.seen) < in.Space.N() {
		sc.seen = make([]int64, in.Space.N())
		sc.epoch = 0
	}
	sc.epoch++
	for i, r := range in.Reqs {
		l := m.RequestLoss(in, i)
		for e, w := range [2]int{r.U, r.V} {
			if w < 0 || w >= in.Space.N() {
				return nil, nil, fmt.Errorf("nodeloss: node %d out of range", w)
			}
			if sc.seen[w] == sc.epoch {
				return nil, nil, fmt.Errorf("nodeloss: node %d used by more than one request", w)
			}
			sc.seen[w] = sc.epoch
			endp[2*i+e] = len(nodes)
			pairOf = append(pairOf, i)
			nodes = append(nodes, w)
			loss = append(loss, l)
		}
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("nodeloss: %d nodes, %d losses", 0, 0)
	}
	for k, l := range loss {
		if !(l > 0) || math.IsInf(l, 0) || math.IsNaN(l) {
			return nil, nil, fmt.Errorf("nodeloss: invalid loss %g at node %d", l, k)
		}
	}
	sc.nodes, sc.loss, sc.pairOf = nodes, loss, pairOf
	sc.inst = Instance{Space: in.Space, Nodes: nodes, Loss: loss}
	sc.mapping = PairMapping{NodeOfEndpoint: endp, PairOfNode: pairOf}
	return &sc.inst, &sc.mapping, nil
}

// PairGainToNodeGain converts a gain for the bidirectional pair problem to
// the gain guaranteed for the node-loss split: a set of pairs feasible with
// gain β yields a node set that is β/(2+β)-feasible (Section 3.2).
func PairGainToNodeGain(beta float64) float64 { return beta / (2 + beta) }

// Interference returns Σ_{j∈set, j≠i} p_j/ℓ(i,j) at active node i.
func (nl *Instance) Interference(m sinr.Model, powers []float64, set []int, i int) float64 {
	var sum float64
	for _, j := range set {
		if j == i {
			continue
		}
		d := nl.Dist(i, j)
		sum += powers[j] / m.Loss(d)
	}
	return sum
}

// Margin returns the normalized slack of node i's constraint within set at
// gain beta: (signal - beta·interference)/signal.
func (nl *Instance) Margin(m sinr.Model, beta float64, powers []float64, set []int, i int) float64 {
	signal := powers[i] / nl.Loss[i]
	if signal == 0 {
		return math.Inf(-1)
	}
	return (signal - beta*(nl.Interference(m, powers, set, i)+m.Noise)) / signal
}

const tol = 1e-9

// Feasible reports whether set is beta-feasible for the given powers.
func (nl *Instance) Feasible(m sinr.Model, beta float64, powers []float64, set []int) bool {
	for _, i := range set {
		if nl.Margin(m, beta, powers, set, i) < -tol {
			return false
		}
	}
	return true
}

// PairsWithBothEndpoints returns the request indices of the pair instance
// whose two endpoint nodes both appear in the node subset (given as
// active-node indices).
func PairsWithBothEndpoints(mapping *PairMapping, nodes []int) []int {
	in := make(map[int]bool, len(nodes))
	for _, k := range nodes {
		in[k] = true
	}
	n := len(mapping.NodeOfEndpoint) / 2
	var out []int
	for i := 0; i < n; i++ {
		if in[mapping.NodeOfEndpoint[2*i]] && in[mapping.NodeOfEndpoint[2*i+1]] {
			out = append(out, i)
		}
	}
	return out
}

// ThinToGain greedily removes nodes until set is beta-feasible under the
// given powers, dropping in each round the node that exerts the largest
// total normalized interference on the others. It mirrors
// coloring.ThinToGain for the node-loss problem.
func (nl *Instance) ThinToGain(m sinr.Model, beta float64, powers []float64, set []int) []int {
	cur := append([]int(nil), set...)
	for len(cur) > 0 {
		if nl.Feasible(m, beta, powers, cur) {
			return cur
		}
		worst, worstScore := 0, math.Inf(-1)
		for a, j := range cur {
			var score float64
			for _, i := range cur {
				if i == j {
					continue
				}
				score += powers[j] / m.Loss(nl.Dist(i, j)) * nl.Loss[i] / powers[i]
			}
			if score > worstScore {
				worstScore = score
				worst = a
			}
		}
		cur = append(cur[:worst], cur[worst+1:]...)
	}
	return cur
}
