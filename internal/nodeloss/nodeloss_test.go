package nodeloss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func TestNewValidation(t *testing.T) {
	l, _ := geom.NewLine([]float64{0, 1, 2})
	if _, err := New(nil, []int{0}, []float64{1}); err == nil {
		t.Error("nil space should fail")
	}
	if _, err := New(l, nil, nil); err == nil {
		t.Error("empty nodes should fail")
	}
	if _, err := New(l, []int{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := New(l, []int{9}, []float64{1}); err == nil {
		t.Error("out-of-range node should fail")
	}
	if _, err := New(l, []int{0}, []float64{0}); err == nil {
		t.Error("zero loss should fail")
	}
	nl, err := New(l, []int{0, 2}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if nl.N() != 2 || nl.Dist(0, 1) != 2 {
		t.Errorf("N=%d Dist=%g", nl.N(), nl.Dist(0, 1))
	}
}

func TestSqrtPowers(t *testing.T) {
	l, _ := geom.NewLine([]float64{0, 1})
	nl, err := New(l, []int{0, 1}, []float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	p := nl.SqrtPowers()
	if p[0] != 2 || p[1] != 3 {
		t.Errorf("sqrt powers = %v, want [2 3]", p)
	}
}

func TestFromPairsMapping(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(3, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	nl, mapping, err := FromPairs(m, in)
	if err != nil {
		t.Fatal(err)
	}
	if nl.N() != 6 {
		t.Fatalf("active nodes = %d, want 6", nl.N())
	}
	for i := 0; i < in.N(); i++ {
		ku := mapping.NodeOfEndpoint[2*i]
		kv := mapping.NodeOfEndpoint[2*i+1]
		if mapping.PairOfNode[ku] != i || mapping.PairOfNode[kv] != i {
			t.Errorf("pair %d mapping inconsistent", i)
		}
		want := m.RequestLoss(in, i)
		if nl.Loss[ku] != want || nl.Loss[kv] != want {
			t.Errorf("pair %d loss parameters %g,%g want %g", i, nl.Loss[ku], nl.Loss[kv], want)
		}
	}
}

func TestFromPairsRejectsSharedEndpoints(t *testing.T) {
	l, _ := geom.NewLine([]float64{0, 1, 2})
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FromPairs(sinr.Default(), in); err == nil {
		t.Error("shared endpoint should be rejected")
	}
}

func TestPairGainToNodeGain(t *testing.T) {
	if got := PairGainToNodeGain(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("PairGainToNodeGain(1) = %g, want 1/3", got)
	}
	if got := PairGainToNodeGain(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PairGainToNodeGain(2) = %g, want 1/2", got)
	}
}

func TestInterferenceAndMargin(t *testing.T) {
	m := sinr.Model{Alpha: 2, Beta: 1}
	l, _ := geom.NewLine([]float64{0, 1, 3})
	nl, err := New(l, []int{0, 1, 2}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1, 1, 1}
	set := []int{0, 1, 2}
	// At node 0: from node 1 at distance 1 → 1; from node 2 at distance 3
	// → 1/9.
	want := 1 + 1.0/9
	if got := nl.Interference(m, p, set, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("interference = %g, want %g", got, want)
	}
	// Margin: signal 1, beta 1 → (1 - 10/9)/1 < 0.
	if mg := nl.Margin(m, 1, p, set, 0); mg >= 0 {
		t.Errorf("margin = %g, want negative", mg)
	}
	if nl.Feasible(m, 1, p, set) {
		t.Error("set should be infeasible at gain 1")
	}
	if !nl.Feasible(m, 0.1, p, set) {
		t.Error("set should be feasible at gain 0.1")
	}
}

// TestPairFeasibleImpliesNodeFeasible verifies the Section 3.2 relation:
// a set of pairs feasible with gain β yields a node split that is
// β/(2+β)-feasible under the same powers (each node inheriting its pair's
// power).
func TestPairFeasibleImpliesNodeFeasible(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 3+r.Intn(10), 300, 1, 5)
		if err != nil {
			return false
		}
		powers := power.Powers(m, in, power.Sqrt())
		// Build a feasible pair set greedily.
		var set []int
		for i := 0; i < in.N(); i++ {
			cand := append(append([]int(nil), set...), i)
			if m.SetFeasible(in, sinr.Bidirectional, powers, cand) {
				set = cand
			}
		}
		if len(set) < 2 {
			return true
		}
		nl, mapping, err := FromPairs(m, in)
		if err != nil {
			return false
		}
		nodePowers := make([]float64, nl.N())
		var nodes []int
		for _, i := range set {
			for e := 0; e < 2; e++ {
				k := mapping.NodeOfEndpoint[2*i+e]
				nodePowers[k] = powers[i]
				nodes = append(nodes, k)
			}
		}
		return nl.Feasible(m, PairGainToNodeGain(m.Beta), nodePowers, nodes)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPairsWithBothEndpoints(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(3, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, mapping, err := FromPairs(m, in)
	if err != nil {
		t.Fatal(err)
	}
	// Keep both endpoints of pair 0, one endpoint of pair 1, none of 2.
	nodes := []int{
		mapping.NodeOfEndpoint[0], mapping.NodeOfEndpoint[1],
		mapping.NodeOfEndpoint[2],
	}
	got := PairsWithBothEndpoints(mapping, nodes)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("pairs = %v, want [0]", got)
	}
}

func TestThinToGainNodeLoss(t *testing.T) {
	m := sinr.Default()
	l, _ := geom.NewLine([]float64{0, 1, 1.5, 10, 30, 100})
	nl, err := New(l, []int{0, 1, 2, 3, 4, 5}, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := nl.SqrtPowers()
	all := []int{0, 1, 2, 3, 4, 5}
	got := nl.ThinToGain(m, 1, p, all)
	if len(got) == 0 {
		t.Fatal("thinning removed everything")
	}
	if !nl.Feasible(m, 1, p, got) {
		t.Error("thinned set infeasible")
	}
}
