package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/online"
)

// Options configures a Drive replay.
type Options struct {
	// AbortAt stops the replay just before event AbortAt — the crash
	// model. The engine is left in the consistent post-event state of
	// event AbortAt-1, ready to be checkpointed. Negative means never.
	AbortAt int
	// FeasibleEvery checks the engine's full feasibility invariant
	// every k applied events (and always after the last). 0 means every
	// event — the harness default; raise it for long traces.
	FeasibleEvery int
}

// Result reports what a Drive replay did.
type Result struct {
	// Applied counts events the engine accepted.
	Applied int
	// Rejected counts events the engine rejected with the expected
	// sentinel (and, as verified, without mutating any state).
	Rejected int
	// TrackerUnavailable counts arrivals that failed with
	// online.ErrTrackerUnavailable — legal under injected provider
	// faults that outlast the retry budget, and verified mutation-free.
	TrackerUnavailable int
	// Aborted reports a planned AbortAt stop or a context cancellation.
	Aborted bool
	// Stats is the engine's counters after the replay.
	Stats online.Stats
}

// Drive replays a hostile trace against the engine, enforcing after
// every event that the engine did exactly what the failure model
// promises:
//
//   - an event the misuse automaton expects to succeed must succeed —
//     or, for arrivals only, fail with online.ErrTrackerUnavailable
//     when injected provider faults outlast the retry budget;
//   - an event expected to be rejected must fail with exactly the
//     stamped sentinel (errors.Is), and must not change Stats, the slot
//     count, the active count, or the request's slot assignment;
//   - every slot must pass SetFeasible (checked every
//     Options.FeasibleEvery events and after the last).
//
// Expectations are derived dynamically from the engine's actual
// outcomes rather than read from TraceEvent.Want: a tracker-starved
// arrival leaves its request inactive, which legally turns the
// request's later departure into an ErrUnknownRequest rejection. When
// no resource faults fire, the dynamic expectations coincide with the
// static Classify stamps. A drain toggled mid-replay (BeginDrain) is
// honored: arrivals are then expected to fail with ErrDraining.
//
// The first violation aborts the replay with a descriptive error; a
// context cancellation or a reached AbortAt returns the partial Result
// with Aborted set and no error — the crash model leaves the engine
// consistent and checkpointable.
func Drive(ctx context.Context, eng *online.Engine, ft FaultTrace, o Options) (*Result, error) {
	if eng == nil {
		return nil, errors.New("faultinject: nil engine")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	every := o.FeasibleEvery
	if every <= 0 {
		every = 1
	}
	n := eng.N()
	active := make([]bool, n)
	for i := 0; i < n && ctx.Err() == nil; i++ {
		active[i] = eng.SlotOf(i) >= 0
	}
	res := &Result{}
	defer func() { res.Stats = eng.Stats() }()
	for k := range ft {
		if ctx.Err() != nil || k == o.AbortAt {
			res.Aborted = true
			return res, nil
		}
		ev := ft[k]
		// Dynamic expectation from the live model.
		var want error
		switch {
		case ev.Req < 0 || ev.Req >= n:
			want = online.ErrUnknownRequest
		case ev.Arrive && active[ev.Req]:
			want = online.ErrDuplicateArrive
		case !ev.Arrive && !active[ev.Req]:
			want = online.ErrUnknownRequest
		case ev.Arrive && eng.Draining():
			want = online.ErrDraining
		}
		before := eng.Stats()
		slotsBefore, activeBefore := eng.NumSlots(), eng.Len()
		assignBefore := -1
		if ev.Req >= 0 && ev.Req < n {
			assignBefore = eng.SlotOf(ev.Req)
		}
		var err error
		if ev.Arrive {
			_, err = eng.Arrive(ev.Req)
		} else {
			err = eng.Depart(ev.Req)
		}
		switch {
		case want != nil:
			if !errors.Is(err, want) {
				return res, fmt.Errorf("faultinject: event %d (%+v): got error %v, want %v", k, ev.Event, err, want)
			}
			if err := unchanged(eng, before, slotsBefore, activeBefore, ev.Req, assignBefore); err != nil {
				return res, fmt.Errorf("faultinject: event %d (%+v): rejection mutated state: %w", k, ev.Event, err)
			}
			res.Rejected++
		case err == nil:
			active[ev.Req] = ev.Arrive
			res.Applied++
		case ev.Arrive && errors.Is(err, online.ErrTrackerUnavailable):
			if err := unchanged(eng, statsLessProbeWork(before, eng.Stats()), slotsBefore, activeBefore, ev.Req, assignBefore); err != nil {
				return res, fmt.Errorf("faultinject: event %d (%+v): tracker failure mutated state: %w", k, ev.Event, err)
			}
			res.TrackerUnavailable++
		default:
			return res, fmt.Errorf("faultinject: event %d (%+v): unexpected error %v", k, ev.Event, err)
		}
		if (k+1)%every == 0 || k == len(ft)-1 {
			if !eng.Feasible() {
				return res, fmt.Errorf("faultinject: event %d (%+v): engine infeasible", k, ev.Event)
			}
		}
	}
	return res, nil
}

// statsLessProbeWork carries the counters a tracker-starved arrival
// legitimately advances — the retry count and the RowOps of the
// read-only admission probes that ran before the new-slot attempt
// failed — from after into before, so unchanged compares everything
// else bitwise.
func statsLessProbeWork(before, after online.Stats) online.Stats {
	before.Retries = after.Retries
	before.RowOps = after.RowOps
	return before
}

// unchanged verifies the no-mutation-on-rejection contract: the
// lifetime counters, the slot count, the active count, and the rejected
// request's assignment are all exactly as before the call.
func unchanged(eng *online.Engine, before online.Stats, slots, activeN, req, assign int) error {
	if got := eng.Stats(); got != before {
		return fmt.Errorf("stats changed: %+v -> %+v", before, got)
	}
	if got := eng.NumSlots(); got != slots {
		return fmt.Errorf("slot count changed: %d -> %d", slots, got)
	}
	if got := eng.Len(); got != activeN {
		return fmt.Errorf("active count changed: %d -> %d", activeN, got)
	}
	if req >= 0 && req < eng.N() {
		if got := eng.SlotOf(req); got != assign {
			return fmt.Errorf("request %d moved: slot %d -> %d", req, assign, got)
		}
	}
	return nil
}

// CountingSink is an obs.Sink that counts events per type and verifies
// the collector's strictly-increasing sequence contract. Safe for
// concurrent use: the race chaos tests read counts while the engine
// emits.
type CountingSink struct {
	mu      sync.Mutex
	counts  map[obs.EventType]int
	lastSeq uint64
	seen    bool
	seqErr  error
}

// NewCountingSink returns an empty counting sink.
func NewCountingSink() *CountingSink {
	return &CountingSink{counts: make(map[obs.EventType]int)}
}

// Emit implements obs.Sink.
func (s *CountingSink) Emit(ev obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[ev.Type]++
	if s.seen && ev.Seq <= s.lastSeq && s.seqErr == nil {
		s.seqErr = fmt.Errorf("faultinject: event seq went %d -> %d", s.lastSeq, ev.Seq)
	}
	s.lastSeq = ev.Seq
	s.seen = true
}

// Count returns the number of events of the given type seen so far.
func (s *CountingSink) Count(t obs.EventType) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[t]
}

// SeqError returns the first sequence-ordering violation, or nil.
func (s *CountingSink) SeqError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seqErr
}

// Reconcile checks the typed event stream against the engine's
// counters: accepted arrivals, departures, repair passes, and repair
// migrations (one evict plus one admit each) must agree exactly. It
// assumes the sink was attached before the engine processed its first
// event and the engine's stats started from zero (not restored from a
// checkpoint).
func (s *CountingSink) Reconcile(st online.Stats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.seqErr; err != nil {
		return err
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"arrive", s.counts[obs.EventArrive], st.Arrivals},
		{"depart", s.counts[obs.EventDepart], st.Departures},
		{"repair", s.counts[obs.EventRepair], st.Repairs},
		{"evict", s.counts[obs.EventEvict], st.Moves},
		{"admit", s.counts[obs.EventAdmit], st.Moves},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("faultinject: event stream disagrees with stats: %s events %d, stats %d", c.name, c.got, c.want)
		}
	}
	return nil
}
