package faultinject_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/online"
)

// TestRaceChurnObservers drives seeded Arrive/Depart churn through a
// fault-wrapped cache while concurrent observers hammer the live event
// stream — a Ring sink attached via Engine.Events, the CountingSink,
// and Collector.Snapshot — across all admission × repair combinations.
// The engine's mutators are single-goroutine by contract; the point of
// this test under -race is the one-writer/many-reader concurrency of
// the obs layer the daemon roadmap leans on: sinks and snapshots must
// be safe to read while the engine emits.
func TestRaceChurnObservers(t *testing.T) {
	steps := 400
	if testing.Short() {
		steps = 120
	}
	combo := 0
	for _, adm := range online.Admissions() {
		for _, rep := range online.Repairs() {
			combo++
			seed := int64(1000*combo + 7)
			t.Run(adm.String()+"/"+rep.String(), func(t *testing.T) {
				h := newHarness(t, seed, 40,
					faultinject.Config{LatencyProb: 0.01, Latency: 20 * time.Microsecond},
					online.WithAdmission(adm), online.WithRepair(rep))
				ring := obs.NewRing(64)
				h.eng.Events(ring)

				done := make(chan struct{})
				var wg sync.WaitGroup
				readers := []func(){
					func() { _ = h.eng.Observer().Snapshot() },
					func() { _ = ring.Events(); _ = ring.Total() },
					func() { _ = h.sink.Count(obs.EventArrive); _ = h.sink.SeqError() },
				}
				for _, read := range readers {
					wg.Add(1)
					go func(read func()) {
						defer wg.Done()
						for {
							select {
							case <-done:
								return
							default:
								read()
							}
						}
					}(read)
				}
				defer wg.Wait()
				defer close(done)

				rng := rand.New(rand.NewSource(seed))
				for step := 0; step < steps; step++ {
					i := rng.Intn(h.in.N())
					if h.eng.SlotOf(i) >= 0 {
						if err := h.eng.Depart(i); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					} else if _, err := h.eng.Arrive(i); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
				if ring.Total() == 0 {
					t.Fatal("ring sink saw no events")
				}
				h.verify(t)
			})
		}
	}
}
