package faultinject_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/affect"
	"repro/internal/faultinject"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/online/sim"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// chaosSeeds returns the sweep width: OBLIVIOUS_CHAOS_SEEDS when set
// (CI raises it), 20 by default, fewer under -short.
func chaosSeeds(t *testing.T) int {
	if s := os.Getenv("OBLIVIOUS_CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad OBLIVIOUS_CHAOS_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 5
	}
	return 20
}

// harness bundles one chaos run's moving parts.
type harness struct {
	in     *problem.Instance
	m      sinr.Model
	powers []float64
	inj    *faultinject.Injector
	eng    *online.Engine
	sink   *faultinject.CountingSink
}

// newHarness builds an engine over a fault-wrapped cache. The injector
// is armed before returning; engine construction runs clean.
func newHarness(t *testing.T, seed int64, n int, cfg faultinject.Config, opts ...online.Option) *harness {
	t.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(seed)), n, 100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	inj := faultinject.NewInjector(seed, cfg)
	wc := faultinject.WrapCache(affect.New(m, sinr.Directed, in, powers), inj)
	if wc == nil {
		t.Fatal("WrapCache returned nil for a dense directed cache")
	}
	col := obs.NewCollector()
	sink := faultinject.NewCountingSink()
	col.Attach(sink)
	eng, err := online.New(m.WithCache(wc), in, sinr.Directed, powers,
		append([]online.Option{online.WithObserver(col)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	return &harness{in: in, m: m, powers: powers, inj: inj, eng: eng, sink: sink}
}

// verify re-checks the engine against the uncached oracle and
// reconciles the event stream with the counters.
func (h *harness) verify(t *testing.T) {
	t.Helper()
	if !h.eng.Feasible() {
		t.Fatal("engine reports an infeasible slot")
	}
	for s := 0; s < h.eng.NumSlots(); s++ {
		if members := h.eng.Slot(s); len(members) > 0 &&
			!h.m.SetFeasible(h.in, sinr.Directed, h.powers, members) {
			t.Fatalf("slot %d infeasible per the uncached oracle: %v", s, members)
		}
	}
	if err := h.sink.Reconcile(h.eng.Stats()); err != nil {
		t.Fatal(err)
	}
}

func TestParseKinds(t *testing.T) {
	all, err := faultinject.ParseKinds("all")
	if err != nil || len(all) != len(faultinject.Kinds()) {
		t.Fatalf("ParseKinds(all) = %v, %v", all, err)
	}
	got, err := faultinject.ParseKinds("latency, burst,cancel")
	if err != nil || len(got) != 3 {
		t.Fatalf("ParseKinds(list) = %v, %v", got, err)
	}
	if _, err := faultinject.ParseKinds("latency,nosuch"); err == nil {
		t.Fatal("ParseKinds accepted an unknown kind")
	}
	if _, err := faultinject.ParseKinds(""); err == nil {
		t.Fatal("ParseKinds accepted an empty list")
	}
}

func TestMutateDeterministic(t *testing.T) {
	base := sim.Poisson(rand.New(rand.NewSource(7)), 40, 3, 4, 300)
	kinds := []faultinject.Kind{faultinject.KindDuplicate, faultinject.KindUnknown, faultinject.KindBurst}
	a := faultinject.Mutate(rand.New(rand.NewSource(11)), 40, append(sim.Trace(nil), base...), kinds, 0.1)
	b := faultinject.Mutate(rand.New(rand.NewSource(11)), 40, append(sim.Trace(nil), base...), kinds, 0.1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Mutate is not deterministic for a fixed seed")
	}
	if len(a) <= len(base) {
		t.Fatalf("Mutate injected nothing: %d events from %d", len(a), len(base))
	}
	rejected := 0
	for _, ev := range a {
		if ev.Want != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("Mutate produced no expected rejections at rate 0.1")
	}
}

func TestClassifyAutomaton(t *testing.T) {
	ft := faultinject.FaultTrace{
		{Event: sim.Event{Arrive: true, Req: 0}},
		{Event: sim.Event{Arrive: true, Req: 0}},  // duplicate
		{Event: sim.Event{Arrive: false, Req: 1}}, // inactive
		{Event: sim.Event{Arrive: false, Req: 5}}, // out of range
		{Event: sim.Event{Arrive: true, Req: -1}}, // negative
		{Event: sim.Event{Arrive: false, Req: 0}},
	}
	if got := faultinject.Classify(3, ft); got != 4 {
		t.Fatalf("Classify counted %d rejections, want 4", got)
	}
	want := []error{nil, online.ErrDuplicateArrive, online.ErrUnknownRequest,
		online.ErrUnknownRequest, online.ErrUnknownRequest, nil}
	for k, ev := range ft {
		if ev.Want != want[k] {
			t.Fatalf("event %d: Want = %v, want %v", k, ev.Want, want[k])
		}
	}
}

// configFor returns the injector config and engine options exercising
// one fault kind.
func configFor(k faultinject.Kind) (faultinject.Config, []online.Option) {
	switch k {
	case faultinject.KindTrackerError:
		return faultinject.Config{TrackerFailProb: 0.6, TrackerFailRun: 2},
			[]online.Option{online.WithRetry(4, 0)}
	case faultinject.KindLatency:
		return faultinject.Config{LatencyProb: 0.05, Latency: 200 * time.Microsecond},
			[]online.Option{online.WithDeadline(50 * time.Microsecond),
				online.WithAdmission(online.BestFit), online.WithRepair(online.ThresholdRepair)}
	default:
		return faultinject.Config{}, nil
	}
}

// TestChaosSweep is the acceptance sweep: every fault kind (plus all of
// them together) across chaosSeeds seeds, with the full invariant —
// slots feasible after every event, rejections mutation-free, event
// stream reconciling with stats — enforced by Drive and verify.
func TestChaosSweep(t *testing.T) {
	seeds := chaosSeeds(t)
	kinds := append(faultinject.Kinds(), faultinject.Kind(-1)) // -1 = all combined
	for _, kind := range kinds {
		name := "all"
		if kind >= 0 {
			name = kind.String()
		}
		t.Run(name, func(t *testing.T) {
			var fails, spikes int
			for s := 0; s < seeds; s++ {
				seed := int64(1000*s + 17)
				inj := runChaos(t, seed, kind)
				fails += inj.TrackerFails()
				spikes += inj.Latencies()
			}
			// Injection counts are asserted over the whole sweep: the
			// engine's tracker pool legitimately absorbs provider calls
			// on quiet seeds.
			if kind == faultinject.KindTrackerError && fails == 0 {
				t.Fatal("tracker kind injected no failures across the sweep")
			}
			if kind == faultinject.KindLatency && spikes == 0 {
				t.Fatal("latency kind injected no spikes across the sweep")
			}
		})
	}
}

func runChaos(t *testing.T, seed int64, kind faultinject.Kind) *faultinject.Injector {
	t.Helper()
	var cfg faultinject.Config
	var opts []online.Option
	var mutKinds []faultinject.Kind
	if kind >= 0 {
		cfg, opts = configFor(kind)
		mutKinds = []faultinject.Kind{kind}
	} else {
		cfg = faultinject.Config{TrackerFailProb: 0.1, TrackerFailRun: 2,
			LatencyProb: 0.02, Latency: 100 * time.Microsecond}
		opts = []online.Option{online.WithRetry(4, 0), online.WithDeadline(100 * time.Microsecond),
			online.WithAdmission(online.BestFit), online.WithRepair(online.ThresholdRepair)}
		mutKinds = faultinject.Kinds()
	}
	const n = 48
	h := newHarness(t, seed, n, cfg, opts...)
	rng := rand.New(rand.NewSource(seed + 1))
	base := sim.Poisson(rng, n, 4, 3, 400)
	ft := faultinject.Mutate(rng, n, base, mutKinds, 0.08)

	abortAt := -1
	if kind == faultinject.KindCancel || kind < 0 {
		abortAt = len(ft) / 2
	}
	res, err := faultinject.Drive(context.Background(), h.eng, ft, faultinject.Options{AbortAt: abortAt})
	if err != nil {
		t.Fatalf("seed %d kind %v: %v", seed, kind, err)
	}
	h.verify(t)

	if abortAt >= 0 {
		if !res.Aborted {
			t.Fatalf("seed %d: replay did not abort at %d", seed, abortAt)
		}
		// Crash model: checkpoint the survivor, restore, and demand a
		// bitwise round trip before replaying the rest of the trace.
		h.inj.Disarm()
		cp := h.eng.Checkpoint()
		restored, err := online.Restore(h.m.WithCache(affect.New(h.m, sinr.Directed, h.in, h.powers)),
			h.in, h.powers, cp, opts...)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if !reflect.DeepEqual(h.eng.Snapshot(), restored.Snapshot()) {
			t.Fatalf("seed %d: snapshot mismatch after restore", seed)
		}
		if !reflect.DeepEqual(cp, restored.Checkpoint()) {
			t.Fatalf("seed %d: checkpoint did not round-trip bitwise", seed)
		}
		if !restored.Feasible() {
			t.Fatalf("seed %d: restored engine infeasible", seed)
		}
		if _, err := faultinject.Drive(context.Background(), restored, ft[abortAt:], faultinject.Options{AbortAt: -1}); err != nil {
			t.Fatalf("seed %d: post-restore replay: %v", seed, err)
		}
		if !restored.Feasible() {
			t.Fatalf("seed %d: restored engine infeasible after replay", seed)
		}
	}
	return h.inj
}

// TestDriveCancellation pins the mid-operation cancellation model: a
// cancelled context stops the replay between events, the engine stays
// consistent, and the partial result is returned without error.
func TestDriveCancellation(t *testing.T) {
	h := newHarness(t, 5, 32, faultinject.Config{})
	base := sim.Poisson(rand.New(rand.NewSource(6)), 32, 4, 3, 200)
	ft := faultinject.Lift(base)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := faultinject.Drive(ctx, h.eng, ft, faultinject.Options{AbortAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.Applied != 0 {
		t.Fatalf("cancelled drive: %+v", res)
	}
	h.verify(t)
}

// TestTrackerStarvationFailsFast pins the no-retry default: an engine
// with no retry budget over an always-failing provider rejects the
// first slot-opening arrival with ErrTrackerUnavailable and stays
// consistent.
func TestTrackerStarvationFailsFast(t *testing.T) {
	h := newHarness(t, 9, 16, faultinject.Config{TrackerFailProb: 1, TrackerFailRun: 1})
	// The construction probe pooled one tracker, so the first arrival
	// succeeds; keep arriving until the pool is dry and a fresh tracker
	// is needed.
	sawUnavailable := false
	for i := 0; i < 16; i++ {
		_, err := h.eng.Arrive(i)
		if err != nil {
			if !errors.Is(err, online.ErrTrackerUnavailable) {
				t.Fatalf("Arrive(%d): %v", i, err)
			}
			sawUnavailable = true
		}
	}
	if !sawUnavailable {
		t.Skip("instance fit in the pooled tracker's slot; no fresh tracker needed")
	}
	h.verify(t)
}
