package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind names one fault family the harness can inject. Kinds compose:
// a sweep typically runs each kind in isolation first, then all of
// them together.
type Kind int

const (
	// KindTrackerError makes the wrapped tracker provider transiently
	// fail (NewSetTracker returns nil) in bursts, exercising the
	// engine's bounded retry-with-backoff and the ErrTrackerUnavailable
	// rejection path past it.
	KindTrackerError Kind = iota
	// KindLatency injects latency spikes into tracker operations,
	// exercising deadline-driven admission shedding and repair deferral.
	KindLatency
	// KindDuplicate inserts arrivals of already-active requests; the
	// engine must reject each with ErrDuplicateArrive and mutate nothing.
	KindDuplicate
	// KindUnknown inserts departures of inactive requests and events
	// with out-of-range ids; the engine must reject each with
	// ErrUnknownRequest and mutate nothing.
	KindUnknown
	// KindReorder swaps adjacent event pairs, turning well-formed
	// sequences into depart-before-arrive patterns.
	KindReorder
	// KindBurst inserts floods of back-to-back arrivals (some of which
	// collide with active requests), stressing admission against a full
	// system.
	KindBurst
	// KindCancel aborts the replay at a random mid-trace event — the
	// crash model — after which the harness checkpoints the survivor
	// and verifies the restore.
	KindCancel

	numKinds = int(iota)
)

var kindNames = [numKinds]string{
	KindTrackerError: "tracker",
	KindLatency:      "latency",
	KindDuplicate:    "duplicate",
	KindUnknown:      "unknown",
	KindReorder:      "reorder",
	KindBurst:        "burst",
	KindCancel:       "cancel",
}

// String names the kind as the CLI spells it.
func (k Kind) String() string {
	if int(k) >= 0 && int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns every fault kind, in CLI-name order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].String() < out[b].String() })
	return out
}

// ParseKinds parses the CLI syntax: "all", or a comma-separated list of
// kind names ("latency,burst,cancel").
func ParseKinds(s string) ([]Kind, error) {
	if s == "all" {
		return Kinds(), nil
	}
	var out []Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for i := 0; i < numKinds; i++ {
			if kindNames[i] == name {
				out = append(out, Kind(i))
				found = true
				break
			}
		}
		if !found {
			names := make([]string, numKinds)
			copy(names[:], kindNames[:])
			sort.Strings(names)
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (want all, or a comma list of %s)",
				name, strings.Join(names, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault kind list")
	}
	return out, nil
}

// Config tunes the injector's provider- and tracker-level faults. The
// zero value injects nothing; Plan derives a per-kind configuration.
type Config struct {
	// TrackerFailProb is the probability that a NewSetTracker call
	// starts a failure burst of TrackerFailRun consecutive nil returns.
	TrackerFailProb float64
	// TrackerFailRun is the burst length (≥ 1 when TrackerFailProb > 0).
	TrackerFailRun int
	// LatencyProb is the per-tracker-operation probability of a spike.
	LatencyProb float64
	// Latency is the spike duration.
	Latency time.Duration
}

// Injector is the shared fault source of one chaos run: the cache and
// tracker wrappers consult it on every operation. It is armed
// explicitly so engine construction (which probes the provider) runs
// clean and faults start only once the harness is watching. The
// injector is safe for concurrent use — concurrent chaos tests hammer
// trackers from the drive goroutine while observers read — and fully
// deterministic for a fixed seed and call order.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cfg      Config
	armed    bool
	failLeft int // remaining nil returns in the current burst

	// Counters of injected faults, for reporting and test assertions.
	trackerFails int
	latencies    int
}

// NewInjector builds a deterministic injector from a seed and config.
func NewInjector(seed int64, cfg Config) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Arm starts injecting; Disarm stops. A disarmed injector passes every
// operation through untouched.
func (inj *Injector) Arm() { inj.mu.Lock(); inj.armed = true; inj.mu.Unlock() }

// Disarm stops injecting.
func (inj *Injector) Disarm() { inj.mu.Lock(); inj.armed = false; inj.mu.Unlock() }

// TrackerFails returns the number of NewSetTracker failures injected.
func (inj *Injector) TrackerFails() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.trackerFails
}

// Latencies returns the number of latency spikes injected.
func (inj *Injector) Latencies() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.latencies
}

// failTracker reports whether the next NewSetTracker call should fail,
// advancing the burst state.
func (inj *Injector) failTracker() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.armed || inj.cfg.TrackerFailProb <= 0 {
		return false
	}
	if inj.failLeft == 0 && inj.rng.Float64() < inj.cfg.TrackerFailProb {
		inj.failLeft = inj.cfg.TrackerFailRun
		if inj.failLeft < 1 {
			inj.failLeft = 1
		}
	}
	if inj.failLeft > 0 {
		inj.failLeft--
		inj.trackerFails++
		return true
	}
	return false
}

// maybeLatency sleeps for the configured spike with the configured
// probability. The spike is a real sleep, not a busy loop: that is what
// a page fault, a GC assist, or a noisy neighbor looks like to the
// engine's per-event clock.
func (inj *Injector) maybeLatency() {
	inj.mu.Lock()
	if !inj.armed || inj.cfg.LatencyProb <= 0 || inj.rng.Float64() >= inj.cfg.LatencyProb {
		inj.mu.Unlock()
		return
	}
	inj.latencies++
	d := inj.cfg.Latency
	inj.mu.Unlock()
	time.Sleep(d)
}
