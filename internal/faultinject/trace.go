package faultinject

import (
	"math/rand"

	"repro/internal/online"
	"repro/internal/online/sim"
)

// TraceEvent is one event of a hostile trace: a sim.Event plus the
// injection marker and the sentinel error the engine is expected to
// reject it with (nil for events that must succeed, assuming no
// resource faults — see Drive for how transient tracker failures shift
// the expectation at replay time).
type TraceEvent struct {
	sim.Event
	// Injected marks events inserted or displaced by Mutate, for
	// reporting; the classification below does not depend on it.
	Injected bool
	// Want is the sentinel stamped by Classify: nil, or one of
	// online.ErrDuplicateArrive / online.ErrUnknownRequest.
	Want error
}

// FaultTrace is a classified hostile event sequence.
type FaultTrace []TraceEvent

// Lift converts a well-formed trace into a FaultTrace with every event
// expected to succeed.
func Lift(tr sim.Trace) FaultTrace {
	out := make(FaultTrace, len(tr))
	for k, ev := range tr {
		out[k] = TraceEvent{Event: ev}
	}
	return out
}

// Events strips the fault annotations back to a plain sim.Trace.
func (ft FaultTrace) Events() sim.Trace {
	out := make(sim.Trace, len(ft))
	for k := range ft {
		out[k] = ft[k].Event
	}
	return out
}

// Mutate rewrites a well-formed trace into a hostile one. For each
// enabled kind it injects faults at the given per-event rate:
//
//   - KindDuplicate inserts an arrival of a currently-active request;
//   - KindUnknown inserts a departure of an inactive request, or an
//     event with an out-of-range id (n, n+1, or -1);
//   - KindReorder swaps an event with its successor, turning
//     arrive/depart pairs into depart-before-arrive patterns;
//   - KindBurst inserts a flood of 4–11 back-to-back arrivals of random
//     ids, some colliding with active requests.
//
// Other kinds (tracker, latency, cancel) are replay-time faults and do
// not change the trace. The result is classified before returning, so
// every event carries the sentinel the engine must produce for it.
// Mutation is deterministic for a fixed rng state and mutates base in
// place when reordering.
func Mutate(rng *rand.Rand, n int, base sim.Trace, kinds []Kind, rate float64) FaultTrace {
	enabled := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		enabled[k] = true
	}
	active := make([]bool, n)
	var activeIDs []int
	apply := func(ev sim.Event) {
		if ev.Req < 0 || ev.Req >= n {
			return
		}
		if ev.Arrive && !active[ev.Req] {
			active[ev.Req] = true
			activeIDs = append(activeIDs, ev.Req)
		} else if !ev.Arrive && active[ev.Req] {
			active[ev.Req] = false
			for k, id := range activeIDs {
				if id == ev.Req {
					activeIDs[k] = activeIDs[len(activeIDs)-1]
					activeIDs = activeIDs[:len(activeIDs)-1]
					break
				}
			}
		}
	}
	out := make(FaultTrace, 0, len(base)+len(base)/4)
	emit := func(arrive bool, req int, t float64) {
		ev := sim.Event{T: t, Arrive: arrive, Req: req}
		out = append(out, TraceEvent{Event: ev, Injected: true})
		apply(ev)
	}
	for k := 0; k < len(base); k++ {
		if enabled[KindReorder] && k+1 < len(base) && rng.Float64() < rate {
			base[k], base[k+1] = base[k+1], base[k]
		}
		ev := base[k]
		if enabled[KindDuplicate] && len(activeIDs) > 0 && rng.Float64() < rate {
			emit(true, activeIDs[rng.Intn(len(activeIDs))], ev.T)
		}
		if enabled[KindUnknown] && rng.Float64() < rate {
			switch rng.Intn(3) {
			case 0:
				emit(false, n+rng.Intn(2), ev.T) // out of range
			case 1:
				emit(true, -1, ev.T) // negative id
			default:
				if len(activeIDs) < n { // a departure of an inactive request
					i := rng.Intn(n)
					for active[i] {
						i = (i + 1) % n
					}
					emit(false, i, ev.T)
				}
			}
		}
		if enabled[KindBurst] && rng.Float64() < rate/4 {
			flood := 4 + rng.Intn(8)
			for b := 0; b < flood; b++ {
				emit(true, rng.Intn(n), ev.T)
			}
		}
		out = append(out, TraceEvent{Event: ev})
		apply(ev)
	}
	Classify(n, out)
	return out
}

// Classify stamps every event with the sentinel error the engine must
// produce for it, by replaying the trace through the misuse automaton:
// an out-of-range id is ErrUnknownRequest; an arrival of an active
// request is ErrDuplicateArrive; a departure of an inactive request is
// ErrUnknownRequest; everything else must succeed (Want = nil) and
// advances the active set. It returns the number of events expected to
// be rejected.
func Classify(n int, ft FaultTrace) int {
	active := make([]bool, n)
	rejected := 0
	for k := range ft {
		ev := &ft[k]
		switch {
		case ev.Req < 0 || ev.Req >= n:
			ev.Want = online.ErrUnknownRequest
		case ev.Arrive && active[ev.Req]:
			ev.Want = online.ErrDuplicateArrive
		case !ev.Arrive && !active[ev.Req]:
			ev.Want = online.ErrUnknownRequest
		default:
			ev.Want = nil
			active[ev.Req] = ev.Arrive
		}
		if ev.Want != nil {
			rejected++
		}
	}
	return rejected
}
