package faultinject

import (
	"repro/internal/affect"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// Cache wraps an inner sinr.Cache as a fault-injecting
// sinr.TrackerProvider. Row accessors pass through untouched — the
// faults live in the tracker machinery, where the online engine spends
// its time:
//
//   - NewSetTracker consults the injector and transiently returns nil
//     (a failure burst), exercising the engine's retry-with-backoff and
//     the ErrTrackerUnavailable path past it;
//   - the trackers it does hand out are wrapped so that every hot
//     operation (CanAdd, AddMargin, Add, Remove, Margin, SetFeasible)
//     may take a latency spike, exercising deadline shedding and repair
//     deferral.
//
// When the inner cache is itself a TrackerProvider (the sparse engine),
// its trackers are wrapped; otherwise dense affect.Trackers are built
// over the inner cache — provided it carries the variant's matrices
// (affect.NewTracker panics on a variant-less cache, so WrapCache
// refuses those with nil instead).
type Cache struct {
	inner sinr.Cache
	inj   *Injector
}

// WrapCache wraps the cache with the injector's faults. The inner cache
// must either implement sinr.TrackerProvider or carry at least one
// variant's matrices; otherwise there is no tracker machinery to
// attack and WrapCache returns nil.
func WrapCache(inner sinr.Cache, inj *Injector) *Cache {
	if inner == nil || inj == nil {
		return nil
	}
	if _, ok := inner.(sinr.TrackerProvider); !ok {
		if inner.DirectedInto(0) == nil && inner.IntoU(0) == nil {
			return nil
		}
	}
	return &Cache{inner: inner, inj: inj}
}

// Covers delegates to the inner cache.
func (c *Cache) Covers(in *problem.Instance, alpha float64, powers []float64) bool {
	return c.inner.Covers(in, alpha, powers)
}

// DirectedInto delegates to the inner cache.
func (c *Cache) DirectedInto(i int) []float64 { return c.inner.DirectedInto(i) }

// DirectedFrom delegates to the inner cache.
func (c *Cache) DirectedFrom(j int) []float64 { return c.inner.DirectedFrom(j) }

// IntoU delegates to the inner cache.
func (c *Cache) IntoU(i int) []float64 { return c.inner.IntoU(i) }

// IntoV delegates to the inner cache.
func (c *Cache) IntoV(i int) []float64 { return c.inner.IntoV(i) }

// FromU delegates to the inner cache.
func (c *Cache) FromU(j int) []float64 { return c.inner.FromU(j) }

// FromV delegates to the inner cache.
func (c *Cache) FromV(j int) []float64 { return c.inner.FromV(j) }

// Signals delegates to the inner cache.
func (c *Cache) Signals() []float64 { return c.inner.Signals() }

// Losses delegates to the inner cache.
func (c *Cache) Losses() []float64 { return c.inner.Losses() }

// NewSetTracker implements sinr.TrackerProvider: it consults the
// injector first (an armed injector may fail the call, modelling a
// transient allocation or backend failure), then builds the real
// tracker — through the inner provider when there is one, or as a dense
// affect.Tracker over the inner cache — and wraps it with the
// injector's latency faults. It returns nil on an injected failure, on
// an inner-provider refusal, or when the inner cache lacks the
// variant's matrices.
func (c *Cache) NewSetTracker(m sinr.Model, v sinr.Variant) sinr.SetTracker {
	if c.inj.failTracker() {
		return nil
	}
	var tr sinr.SetTracker
	if tp, ok := c.inner.(sinr.TrackerProvider); ok {
		tr = tp.NewSetTracker(m, v)
	} else if hasVariant(c.inner, v) {
		tr = affect.NewTracker(m, v, c.inner)
	}
	if tr == nil {
		return nil
	}
	return &Tracker{inner: tr, inj: c.inj}
}

// hasVariant reports whether the cache carries the matrices the dense
// tracker needs for the variant (affect.NewTracker panics otherwise).
func hasVariant(c sinr.Cache, v sinr.Variant) bool {
	if v == sinr.Directed {
		return c.DirectedInto(0) != nil
	}
	return c.IntoU(0) != nil
}

// Tracker wraps a sinr.SetTracker with the injector's latency faults:
// every operation on the engine's per-event critical path may take a
// spike. Pure bookkeeping accessors (Len, At, Contains, Members) and
// Reset pass through untouched — the engine calls them outside the
// margin arithmetic the deadline ladder guards.
type Tracker struct {
	inner sinr.SetTracker
	inj   *Injector
}

// Len delegates to the wrapped tracker.
func (t *Tracker) Len() int { return t.inner.Len() }

// At delegates to the wrapped tracker.
func (t *Tracker) At(k int) int { return t.inner.At(k) }

// Contains delegates to the wrapped tracker.
func (t *Tracker) Contains(i int) bool { return t.inner.Contains(i) }

// Members delegates to the wrapped tracker.
func (t *Tracker) Members() []int { return t.inner.Members() }

// Reset delegates to the wrapped tracker.
func (t *Tracker) Reset() { t.inner.Reset() }

// Add delegates to the wrapped tracker, possibly after a latency spike.
func (t *Tracker) Add(i int) { t.inj.maybeLatency(); t.inner.Add(i) }

// Remove delegates to the wrapped tracker, possibly after a latency
// spike.
func (t *Tracker) Remove(i int) { t.inj.maybeLatency(); t.inner.Remove(i) }

// Margin delegates to the wrapped tracker, possibly after a latency
// spike.
func (t *Tracker) Margin(i int) float64 { t.inj.maybeLatency(); return t.inner.Margin(i) }

// AddMargin delegates to the wrapped tracker, possibly after a latency
// spike.
func (t *Tracker) AddMargin(i int) float64 { t.inj.maybeLatency(); return t.inner.AddMargin(i) }

// CanAdd delegates to the wrapped tracker, possibly after a latency
// spike.
func (t *Tracker) CanAdd(i int) bool { t.inj.maybeLatency(); return t.inner.CanAdd(i) }

// SetFeasible delegates to the wrapped tracker, possibly after a
// latency spike.
func (t *Tracker) SetFeasible() bool { t.inj.maybeLatency(); return t.inner.SetFeasible() }

// WorstMargin delegates to the wrapped tracker.
func (t *Tracker) WorstMargin() (float64, int) { return t.inner.WorstMargin() }
