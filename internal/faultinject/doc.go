// Package faultinject is the seeded, deterministic chaos harness of the
// online scheduling engine. It attacks the engine from every side the
// daemon roadmap item will expose it on, and verifies after every blow
// that the core invariant — every slot passes sinr.SetTracker.SetFeasible,
// and the typed event stream reconciles with the engine's Stats — still
// holds:
//
//   - WrapCache wraps any sinr.Cache as a fault-injecting
//     sinr.TrackerProvider: transient NewSetTracker failures (exercising
//     the engine's WithRetry backoff ladder) and per-operation latency
//     spikes on the returned trackers (exercising WithDeadline shedding
//     and repair deferral);
//   - Mutate rewrites a well-formed sim.Trace into a hostile one —
//     duplicate arrivals, departures of unknown or out-of-range
//     requests, reordered event pairs, burst floods — and Classify
//     stamps every event with the exact sentinel error the engine must
//     reject it with (nil for events that must succeed);
//   - Drive replays a classified trace, enforcing the expected outcome
//     of every event, the no-mutation-on-rejection contract, and the
//     per-event feasibility invariant; an AbortAt index models a crash
//     mid-trace, after which the caller checkpoints and restores.
//
// Everything is driven by a caller-provided seed: the same seed, trace
// and configuration reproduce the same faults in the same order, so a
// CI failure replays locally with one number.
package faultinject
