// Package par provides the bounded worker pool the solvers fan work out
// on. Every parallel loop in the repository routes through ForEach so
// concurrency is capped at GOMAXPROCS — never one goroutine per item —
// and so results are written into index-addressed slots, which keeps
// schedules bitwise-reproducible: the partitioning of items across
// workers can never reorder a floating-point accumulation that happens
// inside a single item.
package par
