package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the goroutine count a fan-out over n independent items
// should use: min(n, GOMAXPROCS), never below 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs f(i) for every i in [0, n), fanning the calls out across
// at most GOMAXPROCS goroutines. Items are claimed dynamically from an
// atomic counter, so the assignment of items to workers is not
// deterministic — f must therefore communicate only through
// index-addressed slots (results[i] = ...), never by appending to a
// shared slice or accumulating into shared floats. Under that contract
// the outcome is bitwise-independent of GOMAXPROCS.
//
// With one worker (n == 1 or GOMAXPROCS == 1) f runs inline on the
// calling goroutine, so single-threaded runs pay no scheduling cost.
// ForEach returns after every f has returned.
func ForEach(n int, f func(i int)) {
	w := Workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
