package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]atomic.Int32, n)
		ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, got)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	limit := int32(runtime.GOMAXPROCS(0))
	var cur, peak atomic.Int32
	ForEach(256, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent calls, limit %d", p, limit)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	max := runtime.GOMAXPROCS(0)
	if w := Workers(10 * max); w != max {
		t.Fatalf("Workers(%d) = %d, want GOMAXPROCS=%d", 10*max, w, max)
	}
}
