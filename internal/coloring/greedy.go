package coloring

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// LengthOrder returns the request indices sorted by decreasing length
// (ties broken by index). Scheduling long requests first is the standard
// greedy order for SINR scheduling.
func LengthOrder(in *problem.Instance) []int {
	idx := make([]int, in.N())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return in.Length(idx[a]) > in.Length(idx[b])
	})
	return idx
}

// engineFor resolves the model's covering affectance cache for the
// variant into the form the algorithms consume: a tracker provider (the
// sparse engine, whose row accessors return nil) or a row cache (the
// dense engine). Probing the provider costs one tracker build (O(n)
// backing arrays), so that first tracker is returned for the caller to
// use rather than re-allocate. At most provider or cache is non-nil;
// both nil means the direct computation is the only oracle.
func engineFor(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64) (sinr.TrackerProvider, sinr.SetTracker, sinr.Cache) {
	c := m.CacheFor(in, powers)
	if c == nil {
		return nil, nil, nil
	}
	if tp, ok := c.(sinr.TrackerProvider); ok {
		if tr := tp.NewSetTracker(m, v); tr != nil {
			return tp, tr, nil
		}
		return nil, nil, nil
	}
	// A dense cache built for the other variant has nil rows for this
	// one; streaming them would fault, so fall back to the direct path.
	if n := len(c.Signals()); n > 0 {
		if v == sinr.Directed && c.DirectedInto(0) == nil {
			return nil, nil, nil
		}
		if v == sinr.Bidirectional && c.IntoU(0) == nil {
			return nil, nil, nil
		}
	}
	return nil, nil, c
}

// classState caches, for one color class, the interference received at the
// relevant nodes of each member, so that first-fit insertions cost O(|class|)
// instead of O(|class|^2).
type classState struct {
	members []int
	// interf[k] is the interference currently received by members[k]: for
	// the directed variant only entry 0 (at the receiver) is used; for the
	// bidirectional variant entry 0 is at U and entry 1 at V.
	interf [][2]float64
}

// contribution returns the interference request j adds at the constraint
// node(s) of request i: for Directed, the single value at i's receiver;
// for Bidirectional, the values at i's two endpoints.
//
//oblint:hotpath
func contribution(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, j, i int) [2]float64 {
	switch v {
	case sinr.Directed:
		//oblint:ignore direct-oracle fallback; cached engines bypass contribution entirely
		return [2]float64{powers[j] / m.Loss(in.Space.Dist(in.Reqs[j].U, in.Reqs[i].V)), 0}
	case sinr.Bidirectional:
		return [2]float64{
			powers[j] / m.MinLossToNode(in, j, in.Reqs[i].U),
			powers[j] / m.MinLossToNode(in, j, in.Reqs[i].V),
		}
	default:
		panic(fmt.Sprintf("coloring: unknown variant %d", int(v)))
	}
}

// fits reports whether request j can join the class without violating any
// SINR constraint (the candidate's and the members'), and returns the
// interference j would receive and the contributions j would add. With a
// covering affectance cache (cache may be nil) the per-pair contributions
// become row lookups; both paths compute bitwise-identical values.
//
//oblint:hotpath
func (cs *classState) fits(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, cache sinr.Cache, j int) (own [2]float64, adds [][2]float64, ok bool) {
	if cache != nil {
		return cs.fitsCached(m, v, cache, j)
	}
	signalJ := powers[j] / m.RequestLoss(in, j)
	for _, i := range cs.members {
		c := contribution(m, in, v, powers, i, j)
		own[0] += c[0]
		own[1] += c[1]
	}
	if signalJ < m.Beta*(own[0]+m.Noise) || (v == sinr.Bidirectional && signalJ < m.Beta*(own[1]+m.Noise)) {
		return own, nil, false
	}
	adds = make([][2]float64, len(cs.members))
	for k, i := range cs.members {
		c := contribution(m, in, v, powers, j, i)
		adds[k] = c
		signalI := powers[i] / m.RequestLoss(in, i)
		if signalI < m.Beta*(cs.interf[k][0]+c[0]+m.Noise) {
			return own, nil, false
		}
		if v == sinr.Bidirectional && signalI < m.Beta*(cs.interf[k][1]+c[1]+m.Noise) {
			return own, nil, false
		}
	}
	return own, adds, true
}

// fitsCached is fits against the affectance matrices: the candidate's
// incoming interference streams through the Into rows of j and its
// contributions to the members through the From rows of j, so the loop
// touches two contiguous rows instead of recomputing distances and losses.
//
//oblint:hotpath
func (cs *classState) fitsCached(m sinr.Model, v sinr.Variant, cache sinr.Cache, j int) (own [2]float64, adds [][2]float64, ok bool) {
	signals := cache.Signals()
	signalJ := signals[j]
	switch v {
	case sinr.Directed:
		into := cache.DirectedInto(j)
		for _, i := range cs.members {
			own[0] += into[i]
		}
		if signalJ < m.Beta*(own[0]+m.Noise) {
			return own, nil, false
		}
		from := cache.DirectedFrom(j)
		adds = make([][2]float64, len(cs.members))
		for k, i := range cs.members {
			adds[k] = [2]float64{from[i], 0}
			if signals[i] < m.Beta*(cs.interf[k][0]+from[i]+m.Noise) {
				return own, nil, false
			}
		}
	case sinr.Bidirectional:
		intoU, intoV := cache.IntoU(j), cache.IntoV(j)
		for _, i := range cs.members {
			own[0] += intoU[i]
			own[1] += intoV[i]
		}
		if signalJ < m.Beta*(own[0]+m.Noise) || signalJ < m.Beta*(own[1]+m.Noise) {
			return own, nil, false
		}
		fromU, fromV := cache.FromU(j), cache.FromV(j)
		adds = make([][2]float64, len(cs.members))
		for k, i := range cs.members {
			adds[k] = [2]float64{fromU[i], fromV[i]}
			if signals[i] < m.Beta*(cs.interf[k][0]+fromU[i]+m.Noise) {
				return own, nil, false
			}
			if signals[i] < m.Beta*(cs.interf[k][1]+fromV[i]+m.Noise) {
				return own, nil, false
			}
		}
	default:
		panic(fmt.Sprintf("coloring: unknown variant %d", int(v)))
	}
	return own, adds, true
}

// add inserts request j with the precomputed interference values.
//
//oblint:hotpath
func (cs *classState) add(j int, own [2]float64, adds [][2]float64) {
	for k := range cs.members {
		cs.interf[k][0] += adds[k][0]
		cs.interf[k][1] += adds[k][1]
	}
	cs.members = append(cs.members, j)
	cs.interf = append(cs.interf, own)
}

// ErrUnschedulable is returned when a request cannot be scheduled even
// alone, which only happens with positive noise and insufficient power.
var ErrUnschedulable = errors.New("coloring: request infeasible even in its own color")

// GreedyFirstFit colors the requests in the given order (LengthOrder if nil)
// by assigning each to the first color class it fits into, opening a new
// class when none fits. The powers slice is fixed and copied into the
// schedule.
func GreedyFirstFit(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, order []int) (*problem.Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(powers) != in.N() {
		return nil, fmt.Errorf("coloring: %d powers for %d requests", len(powers), in.N())
	}
	if order == nil {
		order = LengthOrder(in)
	}
	tp, probe, cache := engineFor(m, in, v, powers)
	if tp != nil {
		return greedyTracked(m, in, v, powers, order, tp, probe)
	}
	s := problem.NewSchedule(in.N())
	copy(s.Powers, powers)
	var classes []*classState
	for _, j := range order {
		if powers[j]/m.RequestLoss(in, j) < m.Beta*m.Noise {
			return nil, fmt.Errorf("%w: request %d", ErrUnschedulable, j)
		}
		placed := false
		for c, cs := range classes {
			own, adds, ok := cs.fits(m, in, v, powers, cache, j)
			if ok {
				cs.add(j, own, adds)
				s.Colors[j] = c
				placed = true
				break
			}
		}
		if !placed {
			cs := &classState{}
			own, adds, ok := cs.fits(m, in, v, powers, cache, j)
			if !ok {
				return nil, fmt.Errorf("%w: request %d", ErrUnschedulable, j)
			}
			cs.add(j, own, adds)
			classes = append(classes, cs)
			s.Colors[j] = len(classes) - 1
		}
	}
	return s, nil
}

// greedyTracked is greedy first-fit over the trackers of a sparse-style
// affectance engine: each color class is a sinr.SetTracker, admission is
// CanAdd, so the loop never streams a dense row. Margins are conservative
// — the schedule may use more colors than the exact dense greedy — but
// every class the trackers accept is provably feasible under the exact
// constraints.
func greedyTracked(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, order []int, tp sinr.TrackerProvider, probe sinr.SetTracker) (*problem.Schedule, error) {
	s := problem.NewSchedule(in.N())
	copy(s.Powers, powers)
	var classes []sinr.SetTracker
	newTracker := func() sinr.SetTracker {
		if tr := probe; tr != nil {
			probe = nil
			return tr
		}
		return tp.NewSetTracker(m, v)
	}
	for _, j := range order {
		if powers[j]/m.RequestLoss(in, j) < m.Beta*m.Noise {
			return nil, fmt.Errorf("%w: request %d", ErrUnschedulable, j)
		}
		placed := false
		for c, tr := range classes {
			if tr.CanAdd(j) {
				tr.Add(j) //oblint:fresh extending a live class the tracker already holds
				s.Colors[j] = c
				placed = true
				break
			}
		}
		if !placed {
			tr := newTracker() //oblint:fresh engineFor's probe or a brand-new provider tracker
			if !tr.CanAdd(j) {
				return nil, fmt.Errorf("%w: request %d", ErrUnschedulable, j)
			}
			tr.Add(j)
			classes = append(classes, tr)
			s.Colors[j] = len(classes) - 1
		}
	}
	return s, nil
}

// MaxFeasibleSubsetGreedy builds a single color class greedily: it scans the
// requests in the given order (LengthOrder if nil) and keeps every request
// that still fits. The result is a maximal (not maximum) feasible set, used
// as a constructive lower-bound proxy for the per-slot capacity.
func MaxFeasibleSubsetGreedy(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, order []int) []int {
	if order == nil {
		order = LengthOrder(in)
	}
	tp, probe, cache := engineFor(m, in, v, powers)
	var members []int
	if tp != nil {
		tr := probe //oblint:fresh the probe is freshly built by engineFor
		for _, j := range order {
			if tr.CanAdd(j) {
				tr.Add(j)
			}
		}
		members = tr.Members()
	} else {
		cs := &classState{}
		for _, j := range order {
			if own, adds, ok := cs.fits(m, in, v, powers, cache, j); ok {
				cs.add(j, own, adds)
			}
		}
		members = cs.members
	}
	out := append([]int(nil), members...)
	sort.Ints(out)
	return out
}
