package coloring

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/affect"
	"repro/internal/lp"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// LPOptions tunes the LP-based coloring for ablation studies. The zero
// value reproduces the defaults.
type LPOptions struct {
	// DisableMaximality skips the greedy augmentation pass that fills each
	// class to maximality after the LP rounding (ablation A1).
	DisableMaximality bool
	// Kappa overrides the rounding divisor (default 2): candidate j is
	// kept with probability x_j/Kappa.
	Kappa float64
	// NoCache disables the affectance cache the coloring otherwise builds
	// (or reuses, if the model already carries a covering one) for its
	// interference queries.
	NoCache bool
}

// LPStats reports diagnostics from one run of the LP-based coloring.
type LPStats struct {
	// Rounds is the number of outer (color) iterations.
	Rounds int
	// LPSolves is the total number of LPs solved.
	LPSolves int
	// LPValue accumulates the fractional optima encountered.
	LPValue float64
	// Forced counts rounds in which the selection was empty and the longest
	// remaining request was scheduled alone to guarantee progress.
	Forced int
}

// SqrtLPColoring implements the coloring algorithm of Theorem 15 for the
// bidirectional problem under the square root power assignment: a greedy
// outer loop that repeatedly extracts one color class with algorithm A
// (distance classes + packing LP + randomized rounding), giving an
// O(log n)-approximation of the optimal number of colors for p̄.
func SqrtLPColoring(m sinr.Model, in *problem.Instance, rng *rand.Rand) (*problem.Schedule, *LPStats, error) {
	return SqrtLPColoringOpts(m, in, rng, LPOptions{})
}

// SqrtLPColoringOpts is SqrtLPColoring with explicit tuning options.
func SqrtLPColoringOpts(m sinr.Model, in *problem.Instance, rng *rand.Rand, opts LPOptions) (*problem.Schedule, *LPStats, error) {
	return SqrtLPColoringCtx(context.Background(), m, in, rng, opts)
}

// SqrtLPColoringCtx is SqrtLPColoringOpts with cooperative cancellation:
// the context is checked before every outer color round, so a canceled
// ctx aborts a long coloring between LP solves.
func SqrtLPColoringCtx(ctx context.Context, m sinr.Model, in *problem.Instance, rng *rand.Rand, opts LPOptions) (*problem.Schedule, *LPStats, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if rng == nil {
		return nil, nil, errors.New("coloring: nil rng")
	}
	powers := power.Powers(m, in, power.Sqrt())
	if !opts.NoCache && m.CacheFor(in, powers) == nil {
		m = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
	}
	s := problem.NewSchedule(in.N())
	copy(s.Powers, powers)

	remaining := make([]int, in.N())
	for i := range remaining {
		remaining[i] = i
	}
	stats := &LPStats{}
	for color := 0; len(remaining) > 0; color++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		class, err := algorithmA(m, in, powers, remaining, rng, stats, opts)
		if err != nil {
			return nil, nil, err
		}
		if len(class) == 0 {
			// Guarantee progress: a single request is always feasible alone
			// (zero noise), so schedule the longest remaining one.
			longest := remaining[0]
			for _, j := range remaining {
				if in.Length(j) > in.Length(longest) {
					longest = j
				}
			}
			class = []int{longest}
			stats.Forced++
		}
		for _, j := range class {
			s.Colors[j] = color
		}
		inClass := make(map[int]bool, len(class))
		for _, j := range class {
			inClass[j] = true
		}
		next := remaining[:0]
		for _, j := range remaining {
			if !inClass[j] {
				next = append(next, j)
			}
		}
		remaining = next
		stats.Rounds++
	}
	return s, stats, nil
}

// MaxFeasibleSubsetLP runs a single invocation of algorithm A over the
// whole instance under the square root assignment: an LP-guided one-shot
// capacity maximizer for one time slot (the building block Theorem 15
// iterates). The result is feasible at the full gain β.
func MaxFeasibleSubsetLP(m sinr.Model, in *problem.Instance, rng *rand.Rand) ([]int, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("coloring: nil rng")
	}
	powers := power.Powers(m, in, power.Sqrt())
	if m.CacheFor(in, powers) == nil {
		m = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
	}
	all := make([]int, in.N())
	for i := range all {
		all[i] = i
	}
	stats := &LPStats{}
	return algorithmA(m, in, powers, all, rng, stats, LPOptions{})
}

// algorithmA extracts one color class from the remaining requests: it
// partitions them into distance classes C_i (lengths within [4^i, 4^{i+1})),
// processes classes from short to long, selects a subset of each class by a
// packing LP plus randomized rounding while honouring the interference
// budget left by previously selected classes, and finally thins the union
// back to the full gain β (Proposition 3, covering the constant-factor
// slack of Lemma 19 and the within-class length spread).
func algorithmA(m sinr.Model, in *problem.Instance, powers []float64, remaining []int, rng *rand.Rand, stats *LPStats, opts LPOptions) ([]int, error) {
	tp, probe, cache := engineFor(m, in, sinr.Bidirectional, powers)
	ib, _ := tp.(interferenceBounder)
	classes := distanceClasses(in, remaining)
	var selected []int
	for _, class := range classes {
		cand := candidatesWithinBudget(m, in, powers, ib, selected, class)
		if len(cand) == 0 {
			continue
		}
		picked, err := selectByLP(m, in, powers, cache, ib, selected, cand, rng, stats, opts)
		if err != nil {
			return nil, err
		}
		selected = append(selected, picked...)
	}
	if len(selected) == 0 {
		return nil, nil
	}
	// Restore the exact gain β for the final class.
	final, err := ThinToGain(m, in, sinr.Bidirectional, powers, selected, m.Beta)
	if err != nil {
		return nil, err
	}
	if opts.DisableMaximality {
		return final, nil
	}
	// Maximality pass: the LP budgets are conservative (they reserve a
	// gain-β/2 allowance per distance class), so requests rejected by the
	// rounding may still fit at the exact gain β. Greedily add them,
	// longest first; this only grows the class and preserves feasibility.
	inFinal := make(map[int]bool, len(final))
	for _, j := range final {
		inFinal[j] = true
	}
	rest := make([]int, 0, len(remaining))
	for _, j := range remaining {
		if !inFinal[j] {
			rest = append(rest, j)
		}
	}
	sort.Slice(rest, func(a, b int) bool { return in.Length(rest[a]) > in.Length(rest[b]) })
	if tp != nil {
		// Sparse path: the class lives in a conservative tracker (the
		// probe engineFor already built). The final set is exactly
		// feasible; augmentation only admits requests whose conservative
		// margins hold, which implies exact feasibility of the grown
		// class.
		tr := probe //oblint:fresh the probe is freshly built by engineFor
		for _, j := range final {
			tr.Add(j)
		}
		for _, j := range rest {
			if tr.CanAdd(j) {
				tr.Add(j)
			}
		}
		return tr.Members(), nil
	}
	cs := &classState{}
	for _, j := range final {
		own, adds, ok := cs.fits(m, in, sinr.Bidirectional, powers, cache, j)
		if !ok {
			// Cannot happen for a feasible set, but stay safe.
			continue
		}
		cs.add(j, own, adds)
	}
	for _, j := range rest {
		if own, adds, ok := cs.fits(m, in, sinr.Bidirectional, powers, cache, j); ok {
			cs.add(j, own, adds)
		}
	}
	return cs.members, nil
}

// distanceClasses partitions the requests by length into geometric classes
// with ratio 4 (the paper's classes C_i), ordered from short to long.
func distanceClasses(in *problem.Instance, set []int) [][]int {
	if len(set) == 0 {
		return nil
	}
	minLen := math.Inf(1)
	for _, j := range set {
		if l := in.Length(j); l < minLen {
			minLen = l
		}
	}
	grouped := make(map[int][]int)
	var keys []int
	for _, j := range set {
		c := int(math.Floor(math.Log(in.Length(j)/minLen) / math.Log(4)))
		if _, seen := grouped[c]; !seen {
			keys = append(keys, c)
		}
		grouped[c] = append(grouped[c], j)
	}
	sort.Ints(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, grouped[k])
	}
	return out
}

// budget returns the per-endpoint interference budget of request j: half of
// the gain-β/2 allowance, i.e. 1/(β·√ℓ_j). One half is granted to
// previously selected (shorter) classes, the other to the LP of j's own
// class.
func budget(m sinr.Model, in *problem.Instance, j int) float64 {
	return 1 / (m.Beta * math.Sqrt(m.RequestLoss(in, j)))
}

// interferenceBounder is the set-query face of the sparse engine: a
// conservative upper bound on the interference a set adds at a request's
// endpoints. Budget checks run on it where the dense path would walk a
// row — over-estimates only tighten the budgets, never break them.
type interferenceBounder interface {
	InterferenceBound(set []int, i int) (u, v float64)
}

// candidatesWithinBudget keeps the requests of class whose endpoints
// currently receive at most their budget of interference from the already
// selected shorter requests (the set C'_i of the paper). With a sparse
// engine (ib non-nil) the interference is its conservative bound.
func candidatesWithinBudget(m sinr.Model, in *problem.Instance, powers []float64, ib interferenceBounder, selected, class []int) []int {
	var out []int
	for _, j := range class {
		b := budget(m, in, j)
		var iu, iv float64
		if ib != nil {
			iu, iv = ib.InterferenceBound(selected, j)
		} else {
			iu = m.RequestInterferenceU(in, powers, selected, j)
			iv = m.RequestInterferenceV(in, powers, selected, j)
		}
		if iu <= b && iv <= b {
			out = append(out, j)
		}
	}
	return out
}

// conflictFree keeps a maximal subset of cand in which no two requests
// have endpoints at distance zero from each other (e.g. tree edges sharing
// a node): such requests can never be simultaneous, and their infinite
// mutual interference must not reach the LP matrix. With a cache, a
// zero-loss neighbor shows up as a non-finite affectance entry (powers are
// positive for the square root assignment, so p/0 = +Inf).
func conflictFree(m sinr.Model, in *problem.Instance, cache sinr.Cache, ib interferenceBounder, cand []int) []int {
	pb, _ := ib.(pairBounder)
	var out []int
	for _, j := range cand {
		ok := true
		if cache != nil {
			rowU, rowV := cache.IntoU(j), cache.IntoV(j)
			for _, k := range out {
				if math.IsInf(rowU[k], 1) || math.IsInf(rowV[k], 1) || math.IsNaN(rowU[k]) || math.IsNaN(rowV[k]) {
					ok = false
					break
				}
			}
		} else if pb != nil {
			// Sparse engine: a zero-loss pair shares a grid cell, so its
			// non-finite affectance is stored exactly and surfaces here.
			for _, k := range out {
				bu, bv := pb.PairBound(j, k)
				if math.IsInf(bu, 1) || math.IsInf(bv, 1) || math.IsNaN(bu) || math.IsNaN(bv) {
					ok = false
					break
				}
			}
		} else {
			for _, k := range out {
				if m.MinLossToNode(in, k, in.Reqs[j].U) == 0 || m.MinLossToNode(in, k, in.Reqs[j].V) == 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, j)
		}
	}
	return out
}

// selectByLP chooses a subset of cand that respects the interference budget
// at every candidate endpoint, by solving the packing LP of Lemma 16 and
// rounding, followed by an alteration step that repairs any violated budget
// by dropping offenders.
func selectByLP(m sinr.Model, in *problem.Instance, powers []float64, cache sinr.Cache, ib interferenceBounder, selected, cand []int, rng *rand.Rand, stats *LPStats, opts LPOptions) ([]int, error) {
	cand = conflictFree(m, in, cache, ib, cand)
	if len(cand) == 0 {
		return nil, nil
	}
	if len(cand) == 1 {
		return cand, nil
	}
	pos := make(map[int]int, len(cand))
	for a, j := range cand {
		pos[j] = a
	}
	// One constraint per candidate endpoint w: the interference from the
	// other candidates (weighted by x) must stay within 2^α times the
	// budget — Claim 17's relaxation, which any gain-β feasible subset
	// satisfies, so the LP optimum dominates s*_i. The matrix entries are
	// exactly the affectance values, so with a cache the assembly is two
	// row copies per candidate.
	relax := math.Pow(2, m.Alpha)
	var rows [][]float64
	var rhs []float64
	for _, j := range cand {
		for side := 0; side < 2; side++ {
			var affRow []float64
			if cache != nil {
				if side == 0 {
					affRow = cache.IntoU(j)
				} else {
					affRow = cache.IntoV(j)
				}
			}
			row := make([]float64, len(cand))
			for _, j2 := range cand {
				if j2 == j {
					continue
				}
				if affRow != nil {
					row[pos[j2]] = affRow[j2]
				} else {
					w := in.Reqs[j].U
					if side == 1 {
						w = in.Reqs[j].V
					}
					row[pos[j2]] = powers[j2] / m.MinLossToNode(in, j2, w)
				}
			}
			rows = append(rows, row)
			rhs = append(rhs, relax*budget(m, in, j))
		}
	}
	obj := make([]float64, len(cand))
	for i := range obj {
		obj[i] = 1
	}
	sol, err := lp.Solve(lp.Problem{C: obj, A: rows, B: rhs}, 0)
	if err != nil {
		return nil, fmt.Errorf("coloring: class LP: %w", err)
	}
	stats.LPSolves++
	stats.LPValue += sol.Value

	// Randomized rounding: keep candidate j with probability x_j / kappa.
	// kappa trades selection size against repair work; 2 works well in
	// practice and the alteration below enforces correctness regardless.
	kappa := opts.Kappa
	if kappa <= 0 {
		kappa = 2
	}
	var picked []int
	for a, j := range cand {
		if rng.Float64() < sol.X[a]/kappa {
			picked = append(picked, j)
		}
	}
	if len(picked) == 0 && sol.Value > 0 {
		// Fall back on the largest fractional value to keep making progress.
		best := 0
		for a := range cand {
			if sol.X[a] > sol.X[best] {
				best = a
			}
		}
		picked = []int{cand[best]}
	}
	return repairBudget(m, in, powers, cache, ib, selected, picked), nil
}

// repairBudget drops requests from picked until, at every endpoint of every
// picked request, the interference from selected ∪ picked is within the
// endpoint's budget (counting the full budget for the combined set, since
// candidates already pre-passed the half granted to selected). The victim
// of each round is the picked request exerting the largest total
// interference on the other picked endpoints. With a sparse engine the
// interference and the offender scores are its conservative bounds, which
// can only drop more — the surviving set still meets the exact budgets.
func repairBudget(m sinr.Model, in *problem.Instance, powers []float64, cache sinr.Cache, ib interferenceBounder, selected, picked []int) []int {
	pb, _ := ib.(pairBounder)
	for len(picked) > 0 {
		all := append(append([]int(nil), selected...), picked...)
		violated := false
		for _, j := range picked {
			b := 2 * budget(m, in, j) // full gain-β/2 allowance
			var iu, iv float64
			if ib != nil {
				iu, iv = ib.InterferenceBound(all, j)
			} else {
				iu = m.RequestInterferenceU(in, powers, all, j)
				iv = m.RequestInterferenceV(in, powers, all, j)
			}
			if iu > b || iv > b {
				violated = true
				break
			}
		}
		if !violated {
			return picked
		}
		worst, worstScore := 0, math.Inf(-1)
		for a, j := range picked {
			var score float64
			var fromU, fromV []float64
			if cache != nil {
				fromU, fromV = cache.FromU(j), cache.FromV(j)
			}
			for _, i := range picked {
				if i == j {
					continue
				}
				var cu, cv float64
				switch {
				case fromU != nil:
					cu, cv = fromU[i], fromV[i]
				case pb != nil:
					cu, cv = pb.PairBound(i, j)
				default:
					cu = powers[j] / m.MinLossToNode(in, j, in.Reqs[i].U)
					cv = powers[j] / m.MinLossToNode(in, j, in.Reqs[i].V)
				}
				score += (cu + cv) * math.Sqrt(m.RequestLoss(in, i))
			}
			if score > worstScore {
				worstScore = score
				worst = a
			}
		}
		picked = append(picked[:worst], picked[worst+1:]...)
	}
	return picked
}
