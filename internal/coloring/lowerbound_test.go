package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/sinr"
)

func TestConflictGraphSymmetric(t *testing.T) {
	m := sinr.Default()
	in, err := instance.Clustered(rand.New(rand.NewSource(1)), 20, 2, 10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	adj := ConflictGraph(m, in, sinr.Bidirectional, powers)
	for i := range adj {
		if adj[i][i] {
			t.Errorf("self conflict at %d", i)
		}
		for j := range adj {
			if adj[i][j] != adj[j][i] {
				t.Errorf("asymmetric conflict (%d,%d)", i, j)
			}
		}
	}
}

func TestCliqueLowerBoundSeparatedPairs(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(8, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Uniform(1))
	if got := CliqueLowerBound(m, in, sinr.Bidirectional, powers); got != 1 {
		t.Errorf("separated pairs LB = %d, want 1", got)
	}
}

func TestCliqueLowerBoundNestedUniform(t *testing.T) {
	// Nested requests under uniform powers are pairwise infeasible, so the
	// clique LB must be n.
	m := sinr.Default()
	in, err := instance.NestedExponential(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Uniform(1))
	if got := CliqueLowerBound(m, in, sinr.Bidirectional, powers); got != 10 {
		t.Errorf("nested uniform LB = %d, want 10", got)
	}
}

// TestCliqueLowerBoundValidProperty: the LB never exceeds the colors of any
// schedule produced under the same powers.
func TestCliqueLowerBoundValidProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 6+r.Intn(24), 120, 1, 8)
		if err != nil {
			return false
		}
		tau := r.Float64() * 1.2
		powers := power.Powers(m, in, power.Exponent(tau))
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			lb := CliqueLowerBound(m, in, v, powers)
			s, err := GreedyFirstFit(m, in, v, powers, nil)
			if err != nil {
				return false
			}
			if lb > s.NumColors() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(101))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
