package coloring

import (
	"sort"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// ConflictGraph returns the pairwise-conflict adjacency for the given
// powers: requests i and j conflict when the two of them alone violate the
// SINR constraints, so no color class of any valid schedule (under these
// powers) can contain both.
func ConflictGraph(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64) [][]bool {
	n := in.N()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !m.SetFeasible(in, v, powers, []int{i, j}) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	return adj
}

// CliqueLowerBound returns a lower bound on the number of colors any
// schedule under the given powers needs: the size of a greedily grown
// clique in the pairwise-conflict graph (every member pair is mutually
// infeasible, so all members need distinct colors). The greedy seeds from
// every vertex in degree order and keeps the best clique found.
func CliqueLowerBound(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64) int {
	n := in.N()
	if n == 0 {
		return 0
	}
	adj := ConflictGraph(m, in, v, powers)
	deg := make([]int, n)
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				deg[i]++
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })

	best := 1
	for _, seed := range order {
		if deg[seed]+1 <= best {
			break // degree-sorted: no later seed can beat the incumbent
		}
		clique := []int{seed}
		for _, cand := range order {
			if cand == seed {
				continue
			}
			ok := true
			for _, c := range clique {
				if !adj[cand][c] {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, cand)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}
