package coloring

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/sinr"
)

func TestThinStrategyString(t *testing.T) {
	for _, tc := range []struct {
		s    ThinStrategy
		want string
	}{
		{s: ThinWorstOffender, want: "worst-offender"},
		{s: ThinWorstMargin, want: "worst-margin"},
		{s: ThinRandom, want: "random"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if !strings.Contains(ThinStrategy(42).String(), "42") {
		t.Error("unknown strategy should include its number")
	}
}

// TestThinStrategiesPostcondition: every victim heuristic produces a subset
// that meets the stronger gain.
func TestThinStrategiesPostcondition(t *testing.T) {
	m := sinr.Default()
	in, err := instance.Clustered(rand.New(rand.NewSource(6)), 30, 3, 12, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	base := MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
	if len(base) < 4 {
		t.Skip("degenerate base set")
	}
	betaPrime := 6 * m.Beta
	strict := m.WithBeta(betaPrime)
	for _, strat := range []ThinStrategy{ThinWorstOffender, ThinWorstMargin, ThinRandom} {
		sub, err := ThinToGainStrategy(m, in, sinr.Bidirectional, powers, base, betaPrime,
			strat, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(sub) == 0 {
			t.Errorf("%v: empty subset", strat)
		}
		if !strict.SetFeasible(in, sinr.Bidirectional, powers, sub) {
			t.Errorf("%v: subset violates the stronger gain", strat)
		}
	}
}

func TestThinRandomNeedsRNG(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	if _, err := ThinToGainStrategy(m, in, sinr.Bidirectional, powers, []int{0, 1}, 2, ThinRandom, nil); err == nil {
		t.Error("ThinRandom without rng should fail")
	}
}

// TestWorstOffenderNoWorseThanRandom: on a contended workload the default
// heuristic should retain at least as many requests as random removal
// (averaged over seeds).
func TestWorstOffenderNoWorseThanRandom(t *testing.T) {
	m := sinr.Default()
	in, err := instance.Clustered(rand.New(rand.NewSource(8)), 48, 3, 15, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	base := MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
	if len(base) < 6 {
		t.Skip("degenerate base set")
	}
	betaPrime := 8 * m.Beta
	offender, err := ThinToGain(m, in, sinr.Bidirectional, powers, base, betaPrime)
	if err != nil {
		t.Fatal(err)
	}
	var randomTotal int
	const trials = 5
	for s := int64(0); s < trials; s++ {
		sub, err := ThinToGainStrategy(m, in, sinr.Bidirectional, powers, base, betaPrime,
			ThinRandom, rand.New(rand.NewSource(s)))
		if err != nil {
			t.Fatal(err)
		}
		randomTotal += len(sub)
	}
	if float64(len(offender)) < float64(randomTotal)/trials-1 {
		t.Errorf("worst-offender retained %d, random average %.1f",
			len(offender), float64(randomTotal)/trials)
	}
}

// TestThinToGainCtxCanceled: a canceled context aborts the thinning at
// the next removal round with the context's error.
func TestThinToGainCtxCanceled(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(31)), 24, 80, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ThinToGainCtx(ctx, m, in, sinr.Bidirectional, powers, set, m.Beta, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
