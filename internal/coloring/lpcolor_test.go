package coloring

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func TestConflictFree(t *testing.T) {
	m := sinr.Default()
	// Three requests: 0 and 1 share node coordinate x=1 (requests (0,1)
	// and (2,3) with coords 1 and 1), request 2 far away.
	l, err := geom.NewLine([]float64{0, 1, 1, 2, 100, 101})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	got := conflictFree(m, in, nil, nil, []int{0, 1, 2})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("conflictFree = %v, want [0 2]", got)
	}
	// Order matters: starting from 1 keeps 1 and drops 0.
	got = conflictFree(m, in, nil, nil, []int{1, 0, 2})
	if len(got) != 2 || got[0] != 1 {
		t.Errorf("conflictFree = %v, want [1 2]", got)
	}
	if got := conflictFree(m, in, nil, nil, nil); got != nil {
		t.Errorf("conflictFree(nil) = %v", got)
	}
}

func TestLPOptionsKappa(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(3)), 30, 200, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, kappa := range []float64{1, 4, 16} {
		s, _, err := SqrtLPColoringOpts(m, in, rand.New(rand.NewSource(1)), LPOptions{Kappa: kappa})
		if err != nil {
			t.Fatalf("kappa=%g: %v", kappa, err)
		}
		if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
			t.Errorf("kappa=%g: invalid schedule: %v", kappa, err)
		}
	}
}

func TestLPOptionsDisableMaximality(t *testing.T) {
	m := sinr.Default()
	in, err := instance.Clustered(rand.New(rand.NewSource(5)), 40, 4, 15, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	on, _, err := SqrtLPColoringOpts(m, in, rand.New(rand.NewSource(1)), LPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := SqrtLPColoringOpts(m, in, rand.New(rand.NewSource(1)), LPOptions{DisableMaximality: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, off); err != nil {
		t.Errorf("maximality-off schedule invalid: %v", err)
	}
	if off.NumColors() < on.NumColors() {
		t.Errorf("maximality off (%d colors) beat maximality on (%d colors)",
			off.NumColors(), on.NumColors())
	}
}

func TestRepairBudgetEnforcesBudgets(t *testing.T) {
	m := sinr.Default()
	// Densely packed equal pairs: the full set blows every budget, repair
	// must shrink it to one that fits.
	in, err := instance.LineChain(12, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	all := make([]int, in.N())
	for i := range all {
		all[i] = i
	}
	picked := repairBudget(m, in, powers, nil, nil, nil, all)
	if len(picked) == 0 {
		t.Fatal("repair removed everything")
	}
	for _, j := range picked {
		b := 2 * budget(m, in, j)
		iu := m.BidirectionalInterference(in, powers, picked, in.Reqs[j].U, j)
		iv := m.BidirectionalInterference(in, powers, picked, in.Reqs[j].V, j)
		if iu > b || iv > b {
			t.Errorf("request %d exceeds its budget after repair", j)
		}
	}
}

func TestCandidatesWithinBudgetExcludesOverloaded(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	// With the middle request already selected, its direct neighbors sit at
	// distance 0.5 and receive interference 1/0.5^α = 8, far above their
	// budget of 1/(β·√ℓ) = 1.
	got := candidatesWithinBudget(m, in, powers, nil, []int{1}, []int{0, 2})
	if len(got) != 0 {
		t.Errorf("neighbors of a selected request at gap 0.5 should be over budget, got %v", got)
	}
	// Far-away requests stay eligible.
	far, err := instance.LineChain(2, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	farPowers := power.Powers(m, far, power.Sqrt())
	got = candidatesWithinBudget(m, far, farPowers, nil, []int{0}, []int{1})
	if len(got) != 1 {
		t.Errorf("distant request should stay within budget, got %v", got)
	}
}

func TestMaxFeasibleSubsetLP(t *testing.T) {
	m := sinr.Default()
	in, err := instance.NestedExponential(24, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := MaxFeasibleSubsetLP(m, in, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("empty LP subset")
	}
	powers := power.Powers(m, in, power.Sqrt())
	if !m.SetFeasible(in, sinr.Bidirectional, powers, set) {
		t.Error("LP subset infeasible at full gain")
	}
	// On the nested chain the LP subset should capture a constant fraction
	// like the greedy one (paper intro claim).
	if len(set) < 24/5 {
		t.Errorf("LP subset %d below a constant fraction of 24", len(set))
	}
	if _, err := MaxFeasibleSubsetLP(m, in, nil); err == nil {
		t.Error("nil rng should fail")
	}
}
