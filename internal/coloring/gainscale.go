package coloring

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// ThinStrategy selects the victim heuristic of the thinning loop; the
// variants exist for the ablation experiment (E14).
type ThinStrategy int

const (
	// ThinWorstOffender removes the request exerting the largest total
	// normalized interference on the rest (the default).
	ThinWorstOffender ThinStrategy = iota + 1
	// ThinWorstMargin removes the request whose own constraint is most
	// violated.
	ThinWorstMargin
	// ThinRandom removes a uniformly random request.
	ThinRandom
)

// String names the strategy for experiment output.
func (s ThinStrategy) String() string {
	switch s {
	case ThinWorstOffender:
		return "worst-offender"
	case ThinWorstMargin:
		return "worst-margin"
	case ThinRandom:
		return "random"
	default:
		return fmt.Sprintf("ThinStrategy(%d)", int(s))
	}
}

// ThinToGain constructively realizes Proposition 3: given a set of requests
// and powers (typically feasible with gain m.Beta), it returns a subset that
// satisfies the SINR constraints with the more restrictive gain betaPrime ≥
// m.Beta. The paper proves a subset of size ≥ (β/8β')·|S| exists; this
// implementation removes, while any constraint is violated at gain
// betaPrime, the request that exerts the largest total normalized
// interference on the rest — a greedy that meets the constant-fraction
// bound on all workloads exercised by the tests and experiments (E5).
//
// The returned subset preserves the input order of the surviving requests.
func ThinToGain(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64) ([]int, error) {
	return ThinToGainStrategy(m, in, v, powers, set, betaPrime, ThinWorstOffender, nil)
}

// ThinToGainStrategy is ThinToGain with an explicit victim heuristic; rng
// is required only by ThinRandom.
func ThinToGainStrategy(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64, strat ThinStrategy, rng *rand.Rand) ([]int, error) {
	if betaPrime < m.Beta {
		return nil, fmt.Errorf("coloring: betaPrime %g below model gain %g", betaPrime, m.Beta)
	}
	if strat == ThinRandom && rng == nil {
		return nil, errors.New("coloring: ThinRandom needs an rng")
	}
	strict := m.WithBeta(betaPrime)
	cur := append([]int(nil), set...)
	for len(cur) > 0 {
		if strict.SetFeasible(in, v, powers, cur) {
			return cur, nil
		}
		var victim int
		switch strat {
		case ThinWorstMargin:
			worst, worstMargin := 0, math.Inf(1)
			for a, j := range cur {
				if mg := strict.Margin(in, v, powers, cur, j); mg < worstMargin {
					worstMargin = mg
					worst = a
				}
			}
			victim = worst
		case ThinRandom:
			victim = rng.Intn(len(cur))
		default:
			// Score each request by the total interference it causes to
			// the others, normalized by each victim's signal strength.
			worst, worstScore := -1, math.Inf(-1)
			for a, j := range cur {
				var score float64
				for _, i := range cur {
					if i == j {
						continue
					}
					c := contribution(m, in, v, powers, j, i)
					signal := powers[i] / m.RequestLoss(in, i)
					tot := c[0]
					if v == sinr.Bidirectional && c[1] > c[0] {
						tot = c[1]
					}
					score += tot / signal
				}
				if score > worstScore {
					worstScore = score
					worst = a
				}
			}
			victim = worst
		}
		cur = append(cur[:victim], cur[victim+1:]...)
	}
	return nil, errors.New("coloring: thinning removed every request")
}

// ColorWithGain constructively realizes Proposition 4: starting from a set
// that is feasible with gain m.Beta under the given powers, it produces a
// coloring in which every class satisfies the stronger gain betaPrime. The
// paper shows O(β'/β · log|S|) colors suffice; the greedy repeatedly peels
// off a ThinToGain subset.
func ColorWithGain(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64) ([][]int, error) {
	remaining := append([]int(nil), set...)
	var classes [][]int
	for len(remaining) > 0 {
		class, err := ThinToGain(m, in, v, powers, remaining, betaPrime)
		if err != nil {
			return nil, err
		}
		if len(class) == 0 {
			return nil, errors.New("coloring: empty class from thinning")
		}
		classes = append(classes, class)
		inClass := make(map[int]bool, len(class))
		for _, i := range class {
			inClass[i] = true
		}
		next := remaining[:0]
		for _, i := range remaining {
			if !inClass[i] {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return classes, nil
}
