package coloring

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/affect"
	"repro/internal/par"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// ThinStrategy selects the victim heuristic of the thinning loop; the
// variants exist for the ablation experiment (E14).
type ThinStrategy int

const (
	// ThinWorstOffender removes the request exerting the largest total
	// normalized interference on the rest (the default).
	ThinWorstOffender ThinStrategy = iota + 1
	// ThinWorstMargin removes the request whose own constraint is most
	// violated.
	ThinWorstMargin
	// ThinRandom removes a uniformly random request.
	ThinRandom
)

// String names the strategy for experiment output.
func (s ThinStrategy) String() string {
	switch s {
	case ThinWorstOffender:
		return "worst-offender"
	case ThinWorstMargin:
		return "worst-margin"
	case ThinRandom:
		return "random"
	default:
		return fmt.Sprintf("ThinStrategy(%d)", int(s))
	}
}

// ThinToGain constructively realizes Proposition 3: given a set of requests
// and powers (typically feasible with gain m.Beta), it returns a subset that
// satisfies the SINR constraints with the more restrictive gain betaPrime ≥
// m.Beta. The paper proves a subset of size ≥ (β/8β')·|S| exists; this
// implementation removes, while any constraint is violated at gain
// betaPrime, the request that exerts the largest total normalized
// interference on the rest — a greedy that meets the constant-fraction
// bound on all workloads exercised by the tests and experiments (E5).
//
// The returned subset preserves the input order of the surviving requests.
func ThinToGain(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64) ([]int, error) {
	return ThinToGainCtx(context.Background(), m, in, v, powers, set, betaPrime, nil)
}

// ThinToGainCtx is ThinToGain polling ctx once per removal round — a
// canceled context aborts a long thinning mid-set instead of after it —
// and drawing its score buffers from sc when non-nil (see ThinScratch).
func ThinToGainCtx(ctx context.Context, m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64, sc *ThinScratch) ([]int, error) {
	return ThinToGainStrategyCtx(ctx, m, in, v, powers, set, betaPrime, ThinWorstOffender, nil, sc)
}

// ThinToGainStrategy is ThinToGain with an explicit victim heuristic; rng
// is required only by ThinRandom.
//
// With a covering affectance cache attached to the model, the loop runs on
// an incremental interference tracker: feasibility probes and offender
// scores are updated in O(|set|) per removal instead of re-scanned in
// O(|set|²), making the whole thinning O(|set|²) instead of O(|set|³).
// Without a cache the direct computation below remains the oracle.
func ThinToGainStrategy(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64, strat ThinStrategy, rng *rand.Rand) ([]int, error) {
	return ThinToGainStrategyCtx(context.Background(), m, in, v, powers, set, betaPrime, strat, rng, nil)
}

// ThinScratch holds the reusable buffers of the tracked thinning loop.
// The zero value is ready; one scratch reused across calls (the pipeline
// keeps one per coloring) amortizes the O(n) score allocations. A
// scratch must not be shared by concurrent thinning calls.
type ThinScratch struct {
	score []float64
	inv   []float64
}

// buffers returns the score and inverse-signal slices, reallocating only
// on growth. Entries are not cleared: the initial score scan writes
// every member's entry before any read.
func (sc *ThinScratch) buffers(n, members int) (score, inv []float64) {
	if cap(sc.score) < n {
		sc.score = make([]float64, n)
	}
	if cap(sc.inv) < members {
		sc.inv = make([]float64, members)
	}
	return sc.score[:n], sc.inv[:members]
}

// ThinToGainStrategyCtx is ThinToGainStrategy with cancellation (ctx is
// polled once per removal round) and optional buffer reuse through sc.
func ThinToGainStrategyCtx(ctx context.Context, m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64, strat ThinStrategy, rng *rand.Rand, sc *ThinScratch) ([]int, error) {
	if betaPrime < m.Beta {
		return nil, fmt.Errorf("coloring: betaPrime %g below model gain %g", betaPrime, m.Beta)
	}
	if strat == ThinRandom && rng == nil {
		return nil, errors.New("coloring: ThinRandom needs an rng")
	}
	strict := m.WithBeta(betaPrime)
	if tp, probe, c := engineFor(strict, in, v, powers); tp != nil {
		if pb, ok := tp.(pairBounder); ok {
			return thinTrackedSparse(ctx, v, probe, pb, set, strat, rng, sc)
		}
	} else if c != nil {
		return thinTracked(ctx, strict, v, c, set, strat, rng, sc)
	}
	cur := append([]int(nil), set...)
	for len(cur) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if strict.SetFeasible(in, v, powers, cur) {
			return cur, nil
		}
		var victim int
		switch strat {
		case ThinWorstMargin:
			worst, worstMargin := 0, math.Inf(1)
			for a, j := range cur {
				if mg := strict.Margin(in, v, powers, cur, j); mg < worstMargin {
					worstMargin = mg
					worst = a
				}
			}
			victim = worst
		case ThinRandom:
			victim = rng.Intn(len(cur))
		default:
			// Score each request by the total interference it causes to
			// the others, normalized by each victim's signal strength.
			worst, worstScore := -1, math.Inf(-1)
			for a, j := range cur {
				var score float64
				for _, i := range cur {
					if i == j {
						continue
					}
					c := contribution(m, in, v, powers, j, i)
					signal := powers[i] / m.RequestLoss(in, i)
					tot := c[0]
					if v == sinr.Bidirectional && c[1] > c[0] {
						tot = c[1]
					}
					score += tot / signal
				}
				if score > worstScore {
					worstScore = score
					worst = a
				}
			}
			victim = worst
		}
		cur = append(cur[:victim], cur[victim+1:]...)
	}
	return nil, errors.New("coloring: thinning removed every request")
}

// thinTracked is the cached thinning loop: the set lives in an affect
// tracker whose accumulators answer feasibility in O(|set|), and the
// worst-offender scores are maintained incrementally — on removing victim
// w, score[j] only loses j's contribution at w. Victim selection scans the
// members in input order with the same strict comparisons as the direct
// loop, so the two paths pick the same victims except on floating-point
// near-ties at the drift scale (~1e-15 relative).
func thinTracked(ctx context.Context, strict sinr.Model, v sinr.Variant, c sinr.Cache, set []int, strat ThinStrategy, rng *rand.Rand, sc *ThinScratch) ([]int, error) {
	// tot(j→i) is the worst-endpoint interference j adds at i, the score
	// numerator of the direct loop.
	tot := func(i, j int) float64 {
		switch v {
		case sinr.Directed:
			return c.DirectedInto(i)[j]
		default:
			t := c.IntoU(i)[j]
			if tv := c.IntoV(i)[j]; tv > t {
				t = tv
			}
			return t
		}
	}
	return thinWithTracker(ctx, affect.NewTracker(strict, v, c), c.Signals(), tot, set, strat, rng, sc)
}

// pairBounder is the optional per-pair query of the sparse engine: a
// conservative upper bound on the affectance j adds at i's constraint
// node(s), exact for near pairs.
type pairBounder interface {
	PairBound(i, j int) (float64, float64)
}

// thinTrackedSparse is the thinning loop over a sparse engine: margins
// and feasibility come from the conservative tracker, the worst-offender
// scores from the per-pair bounds. The surviving subset is feasible at
// the strict gain under the exact constraints (conservative margins only
// over-thin, never under-thin).
func thinTrackedSparse(ctx context.Context, v sinr.Variant, tr sinr.SetTracker, pb pairBounder, set []int, strat ThinStrategy, rng *rand.Rand, sc *ThinScratch) ([]int, error) {
	tot := func(i, j int) float64 {
		b1, b2 := pb.PairBound(i, j)
		if v == sinr.Bidirectional && b2 > b1 {
			return b2
		}
		return b1
	}
	// The sparse engine implements sinr.Cache for exactly this metadata.
	signals := pb.(sinr.Cache).Signals()
	return thinWithTracker(ctx, tr, signals, tot, set, strat, rng, sc)
}

// thinWithTracker is the victim-selection loop shared by the dense and
// sparse tracked paths: the set lives in the tracker, whose accumulators
// answer feasibility in O(|set|), and the worst-offender scores are
// maintained incrementally through tot.
// Both callers hand in a tracker they just built, so the initial Add
// sweep needs no Reset.
//
//oblint:fresh callers pass a freshly constructed tracker
//oblint:hotpath
func thinWithTracker(ctx context.Context, tr sinr.SetTracker, signals []float64, tot func(i, j int) float64, set []int, strat ThinStrategy, rng *rand.Rand, sc *ThinScratch) ([]int, error) {
	for _, j := range set {
		tr.Add(j)
	}
	var score []float64
	if strat != ThinWorstMargin && strat != ThinRandom {
		if sc == nil {
			sc = &ThinScratch{}
		}
		var inv []float64
		score, inv = sc.buffers(len(signals), tr.Len())
		initThinScores(tr, signals, tot, score, inv)
	}

	for tr.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if tr.SetFeasible() {
			return tr.Members(), nil
		}
		var victim int
		switch strat {
		case ThinWorstMargin:
			_, victim = tr.WorstMargin()
		case ThinRandom:
			victim = tr.At(rng.Intn(tr.Len()))
		default:
			worst, worstScore := -1, math.Inf(-1)
			for k := 0; k < tr.Len(); k++ {
				if j := tr.At(k); score[j] > worstScore {
					worstScore = score[j]
					worst = j
				}
			}
			victim = worst
		}
		if victim < 0 {
			// Every candidate score/margin compared false (possible only
			// with pathological non-finite inputs); make progress anyway.
			victim = tr.At(0)
		}
		var redo []int
		if score != nil {
			// Subtracting a non-finite term (zero-distance pair → +Inf
			// affectance) would leave NaN; recompute those from scratch
			// against the post-removal set below.
			inv := 1 / signals[victim]
			for k := 0; k < tr.Len(); k++ {
				j := tr.At(k)
				if j == victim {
					continue
				}
				if d := tot(victim, j) * inv; isFinite(d) && isFinite(score[j]) {
					score[j] -= d
				} else {
					redo = append(redo, j) //oblint:ignore cold path, hit only on non-finite scores
				}
			}
			score[victim] = 0
		}
		tr.Remove(victim)
		for _, j := range redo {
			score[j] = 0
			for k := 0; k < tr.Len(); k++ {
				if i := tr.At(k); i != j {
					score[j] += tot(i, j) / signals[i]
				}
			}
		}
	}
	return nil, errors.New("coloring: thinning removed every request")
}

// thinParallelThreshold is the member count above which the O(|set|²)
// initial score scan fans out; below it the goroutine overhead exceeds
// the scan.
const thinParallelThreshold = 256

// initThinScores fills score[j] = Σ_{i≠j} tot(i,j)/signals[i] for every
// tracked member j. Each member's sum is computed independently, inner
// loop in member order, so the result is bitwise-identical whether the
// members are scanned sequentially or fanned out across the worker pool
// — removal order, and hence the schedule, cannot depend on GOMAXPROCS.
//
//oblint:hotpath
func initThinScores(tr sinr.SetTracker, signals []float64, tot func(i, j int) float64, score, inv []float64) {
	members := tr.Len()
	for k := 0; k < members; k++ {
		inv[k] = 1 / signals[tr.At(k)]
	}
	sumAt := func(l int) {
		j := tr.At(l)
		var s float64
		for k := 0; k < members; k++ {
			if i := tr.At(k); i != j {
				s += tot(i, j) * inv[k]
			}
		}
		score[j] = s
	}
	if members >= thinParallelThreshold {
		par.ForEach(members, sumAt)
		return
	}
	for l := 0; l < members; l++ {
		sumAt(l)
	}
}

// isFinite reports whether f is neither ±Inf nor NaN.
func isFinite(f float64) bool {
	return !math.IsInf(f, 0) && !math.IsNaN(f)
}

// ColorWithGain constructively realizes Proposition 4: starting from a set
// that is feasible with gain m.Beta under the given powers, it produces a
// coloring in which every class satisfies the stronger gain betaPrime. The
// paper shows O(β'/β · log|S|) colors suffice; the greedy repeatedly peels
// off a ThinToGain subset.
func ColorWithGain(m sinr.Model, in *problem.Instance, v sinr.Variant, powers []float64, set []int, betaPrime float64) ([][]int, error) {
	remaining := append([]int(nil), set...)
	var classes [][]int
	for len(remaining) > 0 {
		class, err := ThinToGain(m, in, v, powers, remaining, betaPrime)
		if err != nil {
			return nil, err
		}
		if len(class) == 0 {
			return nil, errors.New("coloring: empty class from thinning")
		}
		classes = append(classes, class)
		inClass := make(map[int]bool, len(class))
		for _, i := range class {
			inClass[i] = true
		}
		next := remaining[:0]
		for _, i := range remaining {
			if !inClass[i] {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return classes, nil
}
