package coloring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func randomInstance(t *testing.T, seed int64, n int) *problem.Instance {
	t.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(seed)), n, 200, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestLengthOrder(t *testing.T) {
	in, err := instance.LineChain(3, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Equal lengths: stable order by index.
	got := LengthOrder(in)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("LengthOrder = %v, want [0 1 2]", got)
	}
	nested, err := instance.NestedExponential(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got = LengthOrder(nested)
	if got[0] != 3 || got[3] != 0 {
		t.Errorf("LengthOrder of nested = %v, want longest (3) first", got)
	}
}

func TestGreedyFirstFitValid(t *testing.T) {
	m := sinr.Default()
	for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
		for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
			in := randomInstance(t, 42, 40)
			powers := power.Powers(m, in, a)
			s, err := GreedyFirstFit(m, in, v, powers, nil)
			if err != nil {
				t.Fatalf("%v/%s: %v", v, a.Name(), err)
			}
			if !s.Complete() {
				t.Fatalf("%v/%s: incomplete schedule", v, a.Name())
			}
			if err := m.CheckSchedule(in, v, s); err != nil {
				t.Errorf("%v/%s: invalid schedule: %v", v, a.Name(), err)
			}
			if s.NumColors() < 1 || s.NumColors() > in.N() {
				t.Errorf("%v/%s: colors = %d", v, a.Name(), s.NumColors())
			}
		}
	}
}

func TestGreedyFirstFitSeparatedPairsOneColor(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(10, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Uniform(1))
	s, err := GreedyFirstFit(m, in, sinr.Directed, powers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColors() != 1 {
		t.Errorf("widely separated equal pairs need %d colors, want 1", s.NumColors())
	}
}

func TestGreedyFirstFitPowersMismatch(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 1, 5)
	if _, err := GreedyFirstFit(m, in, sinr.Directed, []float64{1}, nil); err == nil {
		t.Error("mismatched powers should fail")
	}
}

func TestGreedyFirstFitNoiseUnschedulable(t *testing.T) {
	m := sinr.Model{Alpha: 3, Beta: 1, Noise: 100}
	in := randomInstance(t, 1, 5)
	powers := power.Powers(m, in, power.Uniform(1e-6))
	if _, err := GreedyFirstFit(m, in, sinr.Directed, powers, nil); err == nil {
		t.Error("powers below the noise floor should be unschedulable")
	}
}

func TestMaxFeasibleSubsetGreedy(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(10, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Uniform(1))
	got := MaxFeasibleSubsetGreedy(m, in, sinr.Directed, powers, nil)
	if len(got) != 10 {
		t.Errorf("separated pairs subset = %d, want all 10", len(got))
	}
	if !m.SetFeasible(in, sinr.Directed, powers, got) {
		t.Error("greedy subset must be feasible")
	}
}

// TestNestedSingleSlot reproduces the paper's intro intuition on the nested
// instance: uniform and linear powers schedule only O(1) requests
// simultaneously, the square root assignment a constant fraction.
func TestNestedSingleSlot(t *testing.T) {
	m := sinr.Default()
	in, err := instance.NestedExponential(24, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[string]int)
	for _, a := range []power.Assignment{power.Uniform(1), power.Linear(), power.Sqrt()} {
		powers := power.Powers(m, in, a)
		set := MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
		if !m.SetFeasible(in, sinr.Bidirectional, powers, set) {
			t.Fatalf("%s: infeasible greedy subset", a.Name())
		}
		sizes[a.Name()] = len(set)
	}
	if sizes["sqrt"] < 3*sizes["uniform"] || sizes["sqrt"] < 3*sizes["linear"] {
		t.Errorf("sqrt should dominate on nested instances: %v", sizes)
	}
	if sizes["sqrt"] < 24/4 {
		t.Errorf("sqrt subset %d below a constant fraction of 24", sizes["sqrt"])
	}
}

func TestThinToGainPostcondition(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 7, 30)
	powers := power.Powers(m, in, power.Sqrt())
	set := MaxFeasibleSubsetGreedy(m, in, sinr.Bidirectional, powers, nil)
	if len(set) < 3 {
		t.Skip("degenerate instance")
	}
	betaPrime := 4 * m.Beta
	sub, err := ThinToGain(m, in, sinr.Bidirectional, powers, set, betaPrime)
	if err != nil {
		t.Fatal(err)
	}
	strict := m.WithBeta(betaPrime)
	if !strict.SetFeasible(in, sinr.Bidirectional, powers, sub) {
		t.Error("thinned set does not satisfy the stronger gain")
	}
	if len(sub) == 0 {
		t.Error("thinned set empty")
	}
	// Proposition 3 predicts a β/8β' fraction; the greedy should do at
	// least that well here.
	if frac := float64(len(sub)) / float64(len(set)); frac < m.Beta/(8*betaPrime) {
		t.Errorf("retained fraction %g below β/8β' = %g", frac, m.Beta/(8*betaPrime))
	}
}

func TestThinToGainRejectsWeakerGain(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 7, 10)
	powers := power.Powers(m, in, power.Sqrt())
	if _, err := ThinToGain(m, in, sinr.Bidirectional, powers, []int{0, 1}, m.Beta/2); err == nil {
		t.Error("betaPrime below beta should fail")
	}
}

func TestColorWithGainCoversAll(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 9, 25)
	powers := power.Powers(m, in, power.Sqrt())
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	betaPrime := 2 * m.Beta
	classes, err := ColorWithGain(m, in, sinr.Bidirectional, powers, set, betaPrime)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	strict := m.WithBeta(betaPrime)
	for _, class := range classes {
		if !strict.SetFeasible(in, sinr.Bidirectional, powers, class) {
			t.Error("class violates the stronger gain")
		}
		for _, i := range class {
			if seen[i] {
				t.Errorf("request %d colored twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != in.N() {
		t.Errorf("colored %d of %d requests", len(seen), in.N())
	}
}

func TestSqrtLPColoringValid(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 11, 40)
	s, stats, err := SqrtLPColoring(m, in, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Errorf("invalid LP schedule: %v", err)
	}
	if stats.Rounds != s.NumColors() {
		t.Errorf("rounds %d != colors %d", stats.Rounds, s.NumColors())
	}
}

func TestSqrtLPColoringNilRNG(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 11, 5)
	if _, _, err := SqrtLPColoring(m, in, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// TestLPColoringCompetitiveWithGreedy: the LP coloring should not be much
// worse than the greedy first-fit under the same power assignment.
func TestLPColoringCompetitiveWithGreedy(t *testing.T) {
	m := sinr.Default()
	in := randomInstance(t, 13, 60)
	powers := power.Powers(m, in, power.Sqrt())
	g, err := GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := SqrtLPColoring(m, in, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColors() > 3*g.NumColors()+2 {
		t.Errorf("LP colors %d vs greedy %d: unexpectedly bad", s.NumColors(), g.NumColors())
	}
}

func TestDistanceClasses(t *testing.T) {
	in, err := instance.NestedExponential(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	classes := distanceClasses(in, set)
	// Lengths are 4, 8, ..., 1024: ratios of 2, so classes hold at most 2
	// consecutive lengths and are ordered short to long.
	total := 0
	lastMax := 0.0
	for _, c := range classes {
		if len(c) == 0 || len(c) > 2 {
			t.Errorf("class size %d, want 1..2", len(c))
		}
		for _, j := range c {
			if in.Length(j) < lastMax {
				t.Error("classes not sorted by length")
			}
			if in.Length(j) > lastMax {
				lastMax = in.Length(j)
			}
		}
		total += len(c)
	}
	if total != in.N() {
		t.Errorf("classes cover %d of %d requests", total, in.N())
	}
	if distanceClasses(in, nil) != nil {
		t.Error("empty set should produce no classes")
	}
}

// TestGreedyValidityProperty: greedy schedules on random instances always
// validate, for both variants and a spread of assignments.
func TestGreedyValidityProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 4+r.Intn(20), 150, 1, 6)
		if err != nil {
			return false
		}
		tau := r.Float64() * 1.2
		powers := power.Powers(m, in, power.Exponent(tau))
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			s, err := GreedyFirstFit(m, in, v, powers, nil)
			if err != nil {
				return false
			}
			if err := m.CheckSchedule(in, v, s); err != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestLPColoringValidityProperty: LP coloring always yields valid
// bidirectional schedules.
func TestLPColoringValidityProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 4+r.Intn(12), 120, 1, 6)
		if err != nil {
			return false
		}
		s, _, err := SqrtLPColoring(m, in, r)
		if err != nil {
			return false
		}
		return s.Complete() && m.CheckSchedule(in, sinr.Bidirectional, s) == nil
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(33))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBudget(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Loss = 8 for length 2 at α=3; budget = 1/(β·√8).
	want := 1 / math.Sqrt(8)
	if got := budget(m, in, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("budget = %g, want %g", got, want)
	}
}
