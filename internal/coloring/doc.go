// Package coloring implements the scheduling (coloring) algorithms of the
// paper: greedy first-fit coloring under a fixed power assignment, the
// constructive gain-scaling of Propositions 3 and 4, and the randomized
// LP-based O(log n)-approximation for the square root assignment
// (Theorem 15).
//
// Exported entry points:
//
//   - GreedyFirstFit colors requests (longest first by default, see
//     LengthOrder) into the first class they fit; MaxFeasibleSubsetGreedy
//     extracts a single maximal class. Both consult the affectance cache
//     attached to the model (package affect) and match the uncached
//     computation bit for bit.
//   - ThinToGain / ThinToGainStrategy realize Proposition 3: thin a
//     β-feasible set to a stronger gain β′. With a covering cache the
//     loop runs on the incremental tracker in O(|set|²) total instead of
//     O(|set|³). ColorWithGain iterates it into Proposition 4's coloring.
//   - SqrtLPColoring (+Opts/+Ctx variants) is the Theorem 15 coloring for
//     the bidirectional problem under square root powers: distance
//     classes, a packing LP per class (package lp), randomized rounding,
//     repair, and a maximality pass. MaxFeasibleSubsetLP exposes one
//     round (algorithm A) as a single-slot capacity maximizer.
//   - ConflictGraph and CliqueLowerBound (lowerbound.go) build the
//     pairwise-conflict graph and its greedy clique bound — the
//     certificate experiments compare schedule lengths against.
package coloring
