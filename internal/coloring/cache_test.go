package coloring

import (
	"math/rand"
	"testing"

	"repro/internal/affect"
	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// TestGreedyCachedMatchesUncached pins that attaching the affectance cache
// leaves the greedy coloring bit-for-bit unchanged: the cached fit test
// reads the same values the direct computation produces, in the same
// order, for every variant and power assignment.
func TestGreedyCachedMatchesUncached(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(9)), 80, 200, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []power.Assignment{power.Uniform(1), power.Sqrt(), power.Linear()} {
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			powers := power.Powers(m, in, a)
			plain, err := GreedyFirstFit(m, in, v, powers, nil)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := GreedyFirstFit(m.WithCache(affect.New(m, v, in, powers)), in, v, powers, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range plain.Colors {
				if plain.Colors[i] != cached.Colors[i] {
					t.Fatalf("%s %s: request %d colored %d cached vs %d uncached",
						a.Name(), v, i, cached.Colors[i], plain.Colors[i])
				}
			}
		}
	}
}

// TestThinToGainCachedPostconditions runs the tracker-based thinning and
// checks it delivers the same guarantees as the direct loop: the surviving
// subset is feasible at the strict gain, preserves input order, and is
// produced for every victim strategy.
func TestThinToGainCachedPostconditions(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(17)), 60, 150, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	const betaPrime = 4
	for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
		cached := m.WithCache(affect.New(m, v, in, powers))
		for _, strat := range []ThinStrategy{ThinWorstOffender, ThinWorstMargin, ThinRandom} {
			got, err := ThinToGainStrategy(cached, in, v, powers, set, betaPrime, strat, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatalf("%s %s: %v", v, strat, err)
			}
			if len(got) == 0 {
				t.Fatalf("%s %s: empty result", v, strat)
			}
			if !m.WithBeta(betaPrime).SetFeasible(in, v, powers, got) {
				t.Errorf("%s %s: result infeasible at betaPrime", v, strat)
			}
			for k := 1; k < len(got); k++ {
				if got[k-1] >= got[k] {
					t.Fatalf("%s %s: input order not preserved: %v", v, strat, got)
				}
			}
			plain, err := ThinToGainStrategy(m, in, v, powers, set, betaPrime, strat, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			// The two paths may differ on exact floating-point ties, but on
			// this generic instance they should retain sets of the same size.
			if len(got) != len(plain) {
				t.Errorf("%s %s: cached kept %d, uncached %d", v, strat, len(got), len(plain))
			}
		}
	}
}

// TestThinToGainCachedZeroDistance runs the tracker-based thinning on an
// instance with shared-endpoint requests (MST-style edges), where the
// affectance matrices contain +Inf entries. The cached path must neither
// panic nor keep an infeasible set.
func TestThinToGainCachedZeroDistance(t *testing.T) {
	// A chain 0-1-2-...-7 as requests over consecutive nodes: every
	// adjacent pair of requests shares a node.
	coords := make([]float64, 9)
	reqs := make([]problem.Request, 8)
	for i := range coords {
		coords[i] = float64(i)
	}
	for i := range reqs {
		reqs[i] = problem.Request{U: i, V: i + 1}
	}
	l, err := geom.NewLine(coords)
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	set := make([]int, in.N())
	for i := range set {
		set[i] = i
	}
	cached := m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
	for _, strat := range []ThinStrategy{ThinWorstOffender, ThinWorstMargin, ThinRandom} {
		got, err := ThinToGainStrategy(cached, in, sinr.Bidirectional, powers, set, m.Beta, strat, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: empty result", strat)
		}
		if !m.SetFeasible(in, sinr.Bidirectional, powers, got) {
			t.Errorf("%s: cached thinning kept an infeasible set %v", strat, got)
		}
	}
}
