package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and no-ops on a nil receiver, so a handle
// resolved from a nil collector costs one branch per call.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 level — a build size, a slot count, a memory
// footprint. Safe for concurrent use; no-op on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: bucket k
// holds observations whose value has bit length k, i.e. v in
// [2^(k-1), 2^k), with bucket 0 holding v ≤ 0. 64 doublings cover the
// full int64 range, so nanosecond latencies from 1 ns to ~292 years
// land in distinct buckets with at most 2× relative error.
const histBuckets = 65

// Histogram is a fixed-bucket log₂-scale distribution. Observe is
// integer-only — one bits.Len64, three atomic adds, no floats and no
// allocation — so it is safe to call on paths that feed latency
// percentiles. Quantiles are extracted from the bucket counts at read
// time. All methods are safe for concurrent use and no-ops (or zero)
// on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket: the bit length of v, with every
// non-positive value in bucket 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket idx: 0 for
// bucket 0, 2^idx−1 for 1 ≤ idx < 64, and MaxInt64 for the last bucket.
func BucketUpper(idx int) int64 {
	switch {
	case idx <= 0:
		return 0
	case idx >= 64:
		return math.MaxInt64
	default:
		return 1<<uint(idx) - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile of the recorded
// distribution: the inclusive upper bound of the first bucket whose
// cumulative count reaches rank ⌈q·n⌉. q is clamped to [0, 1]; an
// empty (or nil) histogram returns 0. The bound is within a factor 2
// of the true quantile by the log₂ bucket layout.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// Bucket returns the count of bucket idx (testing and snapshots).
func (h *Histogram) Bucket(idx int) int64 {
	if h == nil || idx < 0 || idx >= histBuckets {
		return 0
	}
	return h.buckets[idx].Load()
}

// BucketCount is one non-empty histogram bucket in a snapshot: the
// inclusive upper bound of the value range and the observation count.
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serializable summary of a histogram:
// population, sum, the three operational percentiles, and the
// non-empty buckets.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	P50     int64         `json:"p50"`
	P90     int64         `json:"p90"`
	P99     int64         `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// SnapshotHistogram summarizes the histogram. Concurrent Observes may
// land between the count and bucket reads; the snapshot is a consistent
// enough view for reporting, not a linearizable cut.
func (h *Histogram) SnapshotHistogram() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if h == nil {
		return s
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketUpper(i), Count: n})
		}
	}
	return s
}
