package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the collector's metric snapshot as JSON — the live
// counterpart of oblsched -metrics. A nil collector serves an empty
// snapshot, never an error: scrapers should not distinguish "nothing
// recorded yet" from "recording off".
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// WriteJSON only fails when the ResponseWriter does; there is
		// nothing useful to report to a peer that is already gone.
		_ = c.WriteJSON(w)
	})
}

// Mux returns a ServeMux exposing the collector at /metrics alongside
// the runtime profiling endpoints at /debug/pprof/ — what oblsched
// -http serves while a long solve runs, so hot spots are inspectable
// live instead of only from post-mortem -cpuprofile files.
func (c *Collector) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", c.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
