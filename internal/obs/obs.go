package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Collector is the root of the observability layer: a named registry of
// counters, gauges, and histograms, plus the attachment point for event
// sinks. The zero value is NOT ready for use — construct with
// NewCollector — but a nil *Collector is a valid, fully disabled
// collector: every method is a no-op (or returns a nil, no-op handle),
// so instrumented code passes collectors around without nil checks and
// the disabled path stays branch-predictable.
//
// Metric lookups take a read lock; hot paths resolve their handles once
// and hold them. A Collector is safe for concurrent use, so one
// instance can aggregate a whole SolveAll batch across its workers.
type Collector struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// sinkMu serializes event emission, so sinks observe a totally
	// ordered stream and need no locking of their own.
	sinkMu sync.Mutex
	sinks  []Sink
	seq    uint64
	nsinks atomic.Int32
}

// NewCollector returns an empty enabled collector.
func NewCollector() *Collector {
	return &Collector{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the collector records anything at all — it is
// simply a nil check, the single branch the disabled path pays.
func (c *Collector) Enabled() bool { return c != nil }

// Tracing reports whether at least one event sink is attached. Event
// construction can be skipped entirely when it returns false; the
// obsguard analyzer requires this guard around Emit calls inside
// //oblint:hotpath kernels.
func (c *Collector) Tracing() bool { return c != nil && c.nsinks.Load() > 0 }

// Counter returns the named counter, creating it on first use. A nil
// collector returns a nil (no-op) handle.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	m := c.counters[name]
	c.mu.RUnlock()
	if m != nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m = c.counters[name]; m == nil {
		m = &Counter{}
		c.counters[name] = m
	}
	return m
}

// Gauge returns the named gauge, creating it on first use. A nil
// collector returns a nil (no-op) handle.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	m := c.gauges[name]
	c.mu.RUnlock()
	if m != nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m = c.gauges[name]; m == nil {
		m = &Gauge{}
		c.gauges[name] = m
	}
	return m
}

// Histogram returns the named histogram, creating it on first use. A
// nil collector returns a nil (no-op) handle.
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	m := c.hists[name]
	c.mu.RUnlock()
	if m != nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m = c.hists[name]; m == nil {
		m = &Histogram{}
		c.hists[name] = m
	}
	return m
}

// Attach adds an event sink. Sinks receive events in emission order,
// serialized under the collector's emit lock, so they need no internal
// locking. Attaching to a nil collector is a no-op.
func (c *Collector) Attach(s Sink) {
	if c == nil || s == nil {
		return
	}
	c.sinkMu.Lock()
	c.sinks = append(c.sinks, s)
	c.sinkMu.Unlock()
	c.nsinks.Add(1)
}

// Emit stamps the event with the next sequence number and fans it out
// to every attached sink. Non-finite margins (an unconstrained slot has
// margin +Inf) are cleared to zero so every sink can JSON-encode the
// event. With no sinks attached — or on a nil collector — Emit returns
// after one branch; callers on hot paths should still guard with
// Tracing to skip building the Event at all.
func (c *Collector) Emit(ev Event) {
	if c == nil || c.nsinks.Load() == 0 {
		return
	}
	ev.sanitize()
	c.sinkMu.Lock()
	c.seq++
	ev.Seq = c.seq
	for _, s := range c.sinks {
		s.Emit(ev)
	}
	c.sinkMu.Unlock()
}

// Snapshot is a point-in-time copy of every registered metric, shaped
// for JSON. Map keys marshal sorted, so the encoding is deterministic
// for a deterministic set of metric names.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies out the current value of every metric. A nil
// collector yields an empty snapshot.
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.counters) > 0 {
		s.Counters = make(map[string]int64, len(c.counters))
		for name, m := range c.counters {
			s.Counters[name] = m.Value()
		}
	}
	if len(c.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(c.gauges))
		for name, m := range c.gauges {
			s.Gauges[name] = m.Value()
		}
	}
	if len(c.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(c.hists))
		for name, m := range c.hists {
			s.Histograms[name] = m.SnapshotHistogram()
		}
	}
	return s
}

// MetricNames returns the sorted names of every registered metric, each
// prefixed with its kind ("counter ", "gauge ", "histogram ").
func (c *Collector) MetricNames() []string {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.counters)+len(c.gauges)+len(c.hists))
	for name := range c.counters {
		names = append(names, "counter "+name)
	}
	for name := range c.gauges {
		names = append(names, "gauge "+name)
	}
	for name := range c.hists {
		names = append(names, "histogram "+name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON followed by a newline
// — the format of oblsched -metrics and of the /metrics HTTP endpoint.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot())
}
