// Package obs is the project's dependency-free observability layer: a
// metrics registry (counters, float gauges, fixed-bucket log-scale
// latency histograms), lightweight nesting spans for per-phase wall
// time, and a typed engine event stream delivered to pluggable sinks
// (JSON-lines writers, an in-memory ring for tests, an expvar-style
// HTTP handler).
//
// Everything hangs off a *Collector, and every entry point is nil-safe:
// a nil collector (and the nil metric handles it returns) turns every
// record call into a single predictable branch, so instrumented hot
// paths cost nothing when observation is off. Code guards event
// emission explicitly with Enabled/Tracing — the obsguard analyzer
// (internal/lint) enforces this inside //oblint:hotpath kernels.
package obs
