package obs

import (
	"context"
	"time"
)

type collectorKey struct{}
type spanKey struct{}

// WithCollector returns a context carrying the collector, the handoff
// point between option plumbing (solver.go's WithObserver) and
// instrumented code (obs.Start in the pipeline stages). A nil collector
// is carried as-is and disables every span started under the context.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// FromContext returns the collector carried by the context, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}

// Span measures one phase of work: Start it, do the work, End it. The
// elapsed wall time lands in the histogram "span/<name>", so repeated
// phases (one per pipeline class, one per HST tree) aggregate into a
// latency distribution per phase name. A nil span (from a nil or
// absent collector) is inert; End is idempotent.
//
// The obsguard analyzer (internal/lint) checks that every acquired span
// is Ended on all return paths — defer the End, or call it on every
// branch that leaves the function.
type Span struct {
	parent *Span
	h      *Histogram
	start  time.Time
	ended  bool
}

// StartSpan opens a span on the collector directly — the non-context
// entry point for code that is handed a collector rather than a ctx
// (hst's per-tree builds). Returns nil on a nil collector.
func (c *Collector) StartSpan(name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{h: c.Histogram("span/" + name), start: time.Now()}
}

// Start opens a span named name under the context's collector and
// returns a context carrying the new span, so nested Starts form a
// parent chain. With no collector in the context it returns the
// context unchanged and a nil (inert) span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	c := FromContext(ctx)
	if c == nil {
		return ctx, nil
	}
	sp := c.StartSpan(name)
	sp.parent, _ = ctx.Value(spanKey{}).(*Span)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// CurrentSpan returns the innermost span opened under the context, or
// nil — the hook a child phase uses to find its parent.
func CurrentSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Parent returns the span this one nests under, or nil.
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// End records the span's elapsed wall time. Safe on a nil span and
// idempotent: only the first End observes.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.h.Observe(time.Since(s.start).Nanoseconds())
}
