package obs_test

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestHistogramBuckets pins the log₂ bucket layout: bucket k holds the
// values of bit length k, bucket 0 everything non-positive, and
// BucketUpper the inclusive upper bounds the quantiles are quoted at.
func TestHistogramBuckets(t *testing.T) {
	h := &obs.Histogram{}
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, tc := range cases {
		h.Observe(tc.v)
		if got := h.Bucket(tc.bucket); got < 1 {
			t.Errorf("Observe(%d): bucket %d empty", tc.v, tc.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	var total int64
	for i := 0; i < 65; i++ {
		total += h.Bucket(i)
	}
	if total != int64(len(cases)) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(cases))
	}

	uppers := map[int]int64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 63: math.MaxInt64, 64: math.MaxInt64}
	for idx, want := range uppers {
		if got := obs.BucketUpper(idx); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", idx, got, want)
		}
	}
}

// TestHistogramQuantiles feeds the values 1..100 and checks the
// quantile bounds against the layout: rank 50 lands in bucket [32,63]
// and rank 99 in bucket [64,127], each an upper bound within a factor
// 2 of the true quantile.
func TestHistogramQuantiles(t *testing.T) {
	h := &obs.Histogram{}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.50); got != 63 {
		t.Errorf("p50 = %d, want 63 (bucket bound covering rank 50)", got)
	}
	if got := h.Quantile(0.99); got != 127 {
		t.Errorf("p99 = %d, want 127 (bucket bound covering rank 99)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %d, want 1 (first non-empty bucket)", got)
	}
	if got := h.Quantile(1); got != 127 {
		t.Errorf("q1 = %d, want 127 (last non-empty bucket)", got)
	}
	if got, want := h.Mean(), 50.5; got != want {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	s := h.SnapshotHistogram()
	if s.Count != 100 || s.Sum != 5050 || s.P50 != 63 || s.P99 != 127 {
		t.Errorf("snapshot = %+v", s)
	}
	var fromBuckets int64
	for _, b := range s.Buckets {
		fromBuckets += b.Count
	}
	if fromBuckets != 100 {
		t.Errorf("snapshot buckets sum to %d, want 100", fromBuckets)
	}
}

// TestNilSafety drives the whole disabled path: every method of a nil
// collector, nil handle, and nil span must be a no-op, so instrumented
// code never nil-checks.
func TestNilSafety(t *testing.T) {
	var c *obs.Collector
	if c.Enabled() || c.Tracing() {
		t.Error("nil collector reports enabled")
	}
	c.Counter("x").Inc()
	c.Counter("x").Add(5)
	c.Gauge("y").Set(3)
	c.Histogram("z").Observe(7)
	if c.Counter("x").Value() != 0 || c.Gauge("y").Value() != 0 || c.Histogram("z").Count() != 0 {
		t.Error("nil handles recorded values")
	}
	if c.Histogram("z").Quantile(0.5) != 0 || c.Histogram("z").Mean() != 0 {
		t.Error("nil histogram reads non-zero")
	}
	c.Attach(obs.NewRing(1))
	c.Emit(obs.Event{Type: obs.EventArrive})
	if s := c.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil collector snapshot not empty: %+v", s)
	}
	if names := c.MetricNames(); names != nil {
		t.Errorf("nil collector has metric names %v", names)
	}
	sp := c.StartSpan("phase")
	if sp != nil {
		t.Error("nil collector returned a live span")
	}
	sp.End()
	sp.End()
	if sp.Parent() != nil {
		t.Error("nil span has a parent")
	}
}

// TestCollectorRegistry checks handle identity (same name, same metric),
// the kind-prefixed sorted name listing, and concurrent increments
// through independently resolved handles.
func TestCollectorRegistry(t *testing.T) {
	c := obs.NewCollector()
	if c.Counter("a") != c.Counter("a") {
		t.Error("same-name counters are distinct")
	}
	c.Gauge("g").Set(2.5)
	c.Histogram("h").Observe(3)
	want := []string{"counter a", "gauge g", "histogram h"}
	got := c.MetricNames()
	if len(got) != len(want) {
		t.Fatalf("MetricNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MetricNames = %v, want %v", got, want)
		}
	}

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Counter("a").Inc()
				c.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Counter("a").Value(); got != workers*per {
		t.Errorf("concurrent counter = %d, want %d", got, workers*per)
	}
	if got := c.Histogram("h").Count(); got != workers*per+1 {
		t.Errorf("concurrent histogram count = %d, want %d", got, workers*per+1)
	}
}

// TestEmitSeq checks the event stream contract: Tracing flips on with
// the first sink, Seq is assigned in emission order and strictly
// increases, and concurrent emitters never produce duplicate or
// out-of-order sequence numbers.
func TestEmitSeq(t *testing.T) {
	c := obs.NewCollector()
	if c.Tracing() {
		t.Error("Tracing true with no sink")
	}
	ring := obs.NewRing(10000)
	c.Attach(ring)
	if !c.Tracing() {
		t.Error("Tracing false after Attach")
	}

	const workers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Emit(obs.Event{Type: obs.EventArrive, Req: w, Slot: i})
			}
		}(w)
	}
	wg.Wait()
	evs := ring.Events()
	if len(evs) != workers*per {
		t.Fatalf("ring holds %d events, want %d", len(evs), workers*per)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

// TestRingEviction fills a small ring past capacity: Events keeps the
// most recent events oldest-first and Total counts everything emitted.
func TestRingEviction(t *testing.T) {
	r := obs.NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(obs.Event{Req: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for k, ev := range evs {
		if ev.Req != 6+k {
			t.Errorf("event %d is req %d, want %d", k, ev.Req, 6+k)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if small := obs.NewRing(0); small == nil {
		t.Error("NewRing(0) returned nil")
	}
}

// TestJSONLSink round-trips events through the JSONL encoding and pins
// the sticky-error contract: after the first failure the sink drops
// events and Flush surfaces the error.
func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	s := obs.NewJSONLSink(&sb)
	in := []obs.Event{
		{Seq: 1, Type: obs.EventArrive, Req: 3, Slot: 0, Margin: 1.5, LatencyNs: 42},
		{Seq: 2, Type: obs.EventDepart, Req: 3, Slot: 0},
	}
	for _, ev := range in {
		s.Emit(ev)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != len(in) {
		t.Errorf("Events = %d, want %d", s.Events(), len(in))
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(in) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(in))
	}
	for k, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v", k, err)
		}
		if ev != in[k] {
			t.Errorf("line %d round-tripped to %+v, want %+v", k, ev, in[k])
		}
	}

	bad := obs.NewJSONLSink(&strings.Builder{})
	bad.Emit(obs.Event{Type: obs.EventType(99)})
	bad.Emit(obs.Event{Type: obs.EventArrive})
	if bad.Events() != 0 {
		t.Errorf("events after encode failure = %d, want 0", bad.Events())
	}
	if err := bad.Flush(); err == nil {
		t.Error("Flush after encode failure returned nil")
	}
}

// TestEventSanitize checks that non-finite margins (a request alone in
// its slot has margin +Inf) are cleared at emission so every sink can
// JSON-encode the stream.
func TestEventSanitize(t *testing.T) {
	c := obs.NewCollector()
	ring := obs.NewRing(4)
	c.Attach(ring)
	c.Emit(obs.Event{Type: obs.EventArrive, Margin: math.Inf(1)})
	c.Emit(obs.Event{Type: obs.EventArrive, Margin: math.NaN()})
	c.Emit(obs.Event{Type: obs.EventArrive, Margin: 2.5})
	for k, ev := range ring.Events() {
		if k < 2 && ev.Margin != 0 {
			t.Errorf("event %d margin = %g, want 0", k, ev.Margin)
		}
		if k == 2 && ev.Margin != 2.5 {
			t.Errorf("finite margin rewritten to %g", ev.Margin)
		}
	}
}

// TestEventTypeJSON pins the wire names and the unknown-type errors in
// both directions.
func TestEventTypeJSON(t *testing.T) {
	names := map[obs.EventType]string{
		obs.EventArrive:  "arrive",
		obs.EventDepart:  "depart",
		obs.EventAdmit:   "admit",
		obs.EventEvict:   "evict",
		obs.EventCompact: "compact",
		obs.EventRepair:  "repair",
	}
	for typ, name := range names {
		data, err := json.Marshal(typ)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(data) != `"`+name+`"` {
			t.Errorf("%v marshals to %s", typ, data)
		}
		var back obs.EventType
		if err := json.Unmarshal(data, &back); err != nil || back != typ {
			t.Errorf("%s round-trips to %v (%v)", name, back, err)
		}
	}
	if _, err := json.Marshal(obs.EventType(99)); err == nil {
		t.Error("unknown EventType marshals")
	}
	var back obs.EventType
	if err := json.Unmarshal([]byte(`"teleport"`), &back); err == nil {
		t.Error("unknown event name unmarshals")
	}
}

// TestSpanNesting checks the context chain: nested Starts link
// parents, CurrentSpan sees the innermost, End is idempotent, and each
// End lands exactly one observation in span/<name>.
func TestSpanNesting(t *testing.T) {
	c := obs.NewCollector()
	ctx := obs.WithCollector(t.Context(), c)
	if got := obs.FromContext(ctx); got != c {
		t.Fatal("FromContext lost the collector")
	}
	if obs.CurrentSpan(ctx) != nil {
		t.Error("fresh context has a span")
	}

	ctx1, outer := obs.Start(ctx, "outer")
	ctx2, inner := obs.Start(ctx1, "inner")
	if inner.Parent() != outer {
		t.Error("inner span not linked to outer")
	}
	if outer.Parent() != nil {
		t.Error("outer span has a parent")
	}
	if obs.CurrentSpan(ctx2) != inner || obs.CurrentSpan(ctx1) != outer {
		t.Error("CurrentSpan does not track nesting")
	}
	inner.End()
	inner.End()
	outer.End()
	if got := c.Histogram("span/inner").Count(); got != 1 {
		t.Errorf("span/inner count = %d, want 1 (End must be idempotent)", got)
	}
	if got := c.Histogram("span/outer").Count(); got != 1 {
		t.Errorf("span/outer count = %d, want 1", got)
	}

	// Without a collector, Start returns the context unchanged and an
	// inert span.
	plain := t.Context()
	same, sp := obs.Start(plain, "ghost")
	if same != plain || sp != nil {
		t.Error("Start without a collector is not inert")
	}
}

// TestHTTPHandler smoke-tests the live endpoints: /metrics serves the
// JSON snapshot and the pprof index answers.
func TestHTTPHandler(t *testing.T) {
	c := obs.NewCollector()
	c.Counter("engine/arrivals").Add(7)
	c.Gauge("engine/slots").Set(3)
	srv := httptest.NewServer(c.Mux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics content type %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics body does not parse: %v", err)
	}
	if snap.Counters["engine/arrivals"] != 7 || snap.Gauges["engine/slots"] != 3 {
		t.Errorf("/metrics snapshot = %+v", snap)
	}

	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Errorf("/debug/pprof/ status %d", pp.StatusCode)
	}
}
