package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// EventType classifies an engine event.
type EventType uint8

const (
	// EventArrive is an external request arrival accepted into a slot.
	EventArrive EventType = iota
	// EventDepart is an external request departure.
	EventDepart
	// EventAdmit is a request placed into a slot by repair migration.
	EventAdmit
	// EventEvict is a request removed from its slot by repair migration.
	EventEvict
	// EventCompact is a compaction pass that changed the schedule.
	EventCompact
	// EventRepair is a repair invocation that changed the schedule.
	EventRepair

	numEventTypes = iota
)

var eventTypeNames = [numEventTypes]string{
	EventArrive:  "arrive",
	EventDepart:  "depart",
	EventAdmit:   "admit",
	EventEvict:   "evict",
	EventCompact: "compact",
	EventRepair:  "repair",
}

// String names the event type as it appears on the wire.
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// MarshalJSON encodes the type as its string name.
func (t EventType) MarshalJSON() ([]byte, error) {
	if int(t) >= len(eventTypeNames) {
		return nil, fmt.Errorf("obs: cannot marshal unknown EventType(%d)", int(t))
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a string name back into the type.
func (t *EventType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range eventTypeNames {
		if name == s {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event type %q", s)
}

// Event is one typed engine event. Seq is assigned by the collector at
// emission and strictly increases over the stream, so sinks (and their
// readers) can verify ordering and detect gaps. Req and Slot are -1
// when the event concerns no single request or slot (a compaction, a
// repair pass). Margin is the O(1) tracker margin of the affected
// request at the event — 0 when unrecorded or unbounded — and
// LatencyNs is the wall-clock cost of the engine call that produced
// the event (0 when timing is off).
type Event struct {
	Seq       uint64    `json:"seq"`
	Type      EventType `json:"type"`
	Req       int       `json:"req"`
	Slot      int       `json:"slot"`
	Margin    float64   `json:"margin,omitempty"`
	LatencyNs int64     `json:"latency_ns,omitempty"`
}

// sanitize clears values JSON cannot carry: a request alone in a slot
// has margin +Inf, which encoding/json rejects.
func (ev *Event) sanitize() {
	if math.IsInf(ev.Margin, 0) || math.IsNaN(ev.Margin) {
		ev.Margin = 0
	}
}

// Sink consumes emitted events. The collector serializes Emit calls
// under its own lock, so implementations need no internal locking for
// the emission path itself (the Ring locks anyway, because its read
// side races with emission).
type Sink interface {
	Emit(Event)
}

// JSONLSink writes events as JSON lines to a buffered writer. Encoding
// errors are sticky: the first one is kept and returned by Flush, and
// subsequent events are dropped — an event stream with a hole in the
// middle is worse than a truncated one with a loud error.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

// NewJSONLSink wraps w in a buffered JSON-lines event writer. Call
// Flush before closing the underlying writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit encodes one event as a JSON line.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(ev); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Events returns the number of events written so far.
func (s *JSONLSink) Events() int { return s.n }

// Flush drains the buffer and returns the first error the sink hit —
// encoding or writing.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Ring is a fixed-capacity in-memory event buffer keeping the most
// recent events — the test and TUI sink. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// NewRing returns a ring holding the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit appends the event, evicting the oldest when full.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the buffered events oldest-first (a copy).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever emitted into the ring,
// including those already evicted.
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
