package instance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// UniformRandom places n requests in the square [0, side]^2: each sender is
// uniform in the square and its receiver is at a uniform-random direction
// and distance in [minLen, maxLen]. Endpoints are nodes 2i (sender) and
// 2i+1 (receiver).
func UniformRandom(rng *rand.Rand, n int, side, minLen, maxLen float64) (*problem.Instance, error) {
	if n <= 0 {
		return nil, errors.New("instance: n must be positive")
	}
	if !(0 < minLen && minLen <= maxLen && maxLen <= side) {
		return nil, fmt.Errorf("instance: need 0 < minLen ≤ maxLen ≤ side, got %g, %g, %g", minLen, maxLen, side)
	}
	pts := make([][]float64, 0, 2*n)
	reqs := make([]problem.Request, 0, n)
	for i := 0; i < n; i++ {
		sx := rng.Float64() * side
		sy := rng.Float64() * side
		d := minLen + rng.Float64()*(maxLen-minLen)
		theta := rng.Float64() * 2 * math.Pi
		rx := sx + d*math.Cos(theta)
		ry := sy + d*math.Sin(theta)
		pts = append(pts, []float64{sx, sy}, []float64{rx, ry})
		reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
	}
	space, err := geom.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	return problem.New(space, reqs)
}

// Clustered places requests inside k clusters of the given radius whose
// centers are uniform in [0, side]^2. Each request picks a cluster
// uniformly; both endpoints are uniform in the cluster disk, re-sampled
// until they are at least minLen apart (giving dense local contention, the
// hard regime for scheduling).
func Clustered(rng *rand.Rand, n, k int, radius, side, minLen float64) (*problem.Instance, error) {
	if n <= 0 || k <= 0 {
		return nil, errors.New("instance: n and k must be positive")
	}
	if !(0 < minLen && minLen < 2*radius && radius <= side) {
		return nil, fmt.Errorf("instance: need 0 < minLen < 2·radius ≤ 2·side, got %g, %g, %g", minLen, radius, side)
	}
	centers := make([][2]float64, k)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * side, rng.Float64() * side}
	}
	inDisk := func(c [2]float64) []float64 {
		for {
			x := (rng.Float64()*2 - 1) * radius
			y := (rng.Float64()*2 - 1) * radius
			if x*x+y*y <= radius*radius {
				return []float64{c[0] + x, c[1] + y}
			}
		}
	}
	pts := make([][]float64, 0, 2*n)
	reqs := make([]problem.Request, 0, n)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		var a, b []float64
		for tries := 0; ; tries++ {
			a, b = inDisk(c), inDisk(c)
			dx, dy := a[0]-b[0], a[1]-b[1]
			if math.Hypot(dx, dy) >= minLen {
				break
			}
			if tries > 1000 {
				return nil, errors.New("instance: could not place request with the requested separation")
			}
		}
		pts = append(pts, a, b)
		reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
	}
	space, err := geom.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	return problem.New(space, reqs)
}

// NestedExponential builds the intuition instance from Section 1.2: n
// bidirectional requests on the line with u_i = -base^i and v_i = +base^i
// (base 2 in the paper). Under uniform or linear powers only O(1) of these
// nested requests can be scheduled simultaneously, while the square root
// assignment schedules a constant fraction.
func NestedExponential(n int, base float64) (*problem.Instance, error) {
	if n <= 0 {
		return nil, errors.New("instance: n must be positive")
	}
	if !(base > 1) {
		return nil, fmt.Errorf("instance: base must be > 1, got %g", base)
	}
	if float64(n)*math.Log(base) > 650 {
		return nil, fmt.Errorf("instance: base^n overflows float64 (n=%d, base=%g)", n, base)
	}
	xs := make([]float64, 0, 2*n)
	reqs := make([]problem.Request, 0, n)
	for i := 1; i <= n; i++ {
		r := math.Pow(base, float64(i))
		xs = append(xs, -r, r)
		reqs = append(reqs, problem.Request{U: 2 * (i - 1), V: 2*(i-1) + 1})
	}
	line, err := geom.NewLine(xs)
	if err != nil {
		return nil, err
	}
	return problem.New(line, reqs)
}

// LineChain builds n equal requests of length length placed along a line
// with gap between consecutive pairs: u_i = i·(length+gap),
// v_i = u_i + length.
func LineChain(n int, length, gap float64) (*problem.Instance, error) {
	if n <= 0 {
		return nil, errors.New("instance: n must be positive")
	}
	if !(length > 0) || !(gap > 0) {
		return nil, fmt.Errorf("instance: length and gap must be positive, got %g, %g", length, gap)
	}
	xs := make([]float64, 0, 2*n)
	reqs := make([]problem.Request, 0, n)
	for i := 0; i < n; i++ {
		u := float64(i) * (length + gap)
		xs = append(xs, u, u+length)
		reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
	}
	line, err := geom.NewLine(xs)
	if err != nil {
		return nil, err
	}
	return problem.New(line, reqs)
}

// Adversarial is the outcome of the Theorem 1 lower-bound construction.
type Adversarial struct {
	// Instance is the constructed directed instance (pairs left to right).
	Instance *problem.Instance
	// Built is the number of pairs actually constructed; it can be smaller
	// than requested when the recursion exhausts the float64 range (the
	// construction grows doubly exponentially for sublinear power
	// functions) or when no admissible x_i exists for a bounded f.
	Built int
	// X and Y are the pair lengths x_i and gaps y_i of the construction.
	X, Y []float64
}

// AdversarialDirected runs the recursive construction from the proof of
// Theorem 1 against the oblivious assignment f: pairs (u_i, v_i) on the
// line with gaps y_i = 2(x_{i-1} + y_{i-1}) and lengths x_i ≥ y_i chosen so
// that f(ℓ(x_i)) ≥ y_i^α · max_{j<i} f(ℓ(x_j))/x_j^α. Scheduling this
// instance with powers f needs Ω(n) colors, while an optimal power
// assignment needs only O(1).
//
// xmax caps the coordinate range (the search gives up beyond it). The
// construction requires f to be asymptotically unbounded; for bounded f
// (e.g. uniform) it stops at Built = 1 and the caller should use the
// NestedExponential family instead, which is the standard Ω(n) family for
// uniform powers.
func AdversarialDirected(m sinr.Model, f power.Assignment, n int, xmax float64) (*Adversarial, error) {
	if n <= 0 {
		return nil, errors.New("instance: n must be positive")
	}
	if !(xmax > 1) {
		return nil, fmt.Errorf("instance: xmax must be > 1, got %g", xmax)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// fDist evaluates the power of a pair of length x, guarding overflow.
	fDist := func(x float64) float64 {
		l := m.Loss(x)
		if math.IsInf(l, 0) {
			return math.Inf(1)
		}
		return f.Power(l)
	}

	xs := []float64{1}
	ys := []float64{1}
	// maxRatio = max_j f(x_j)/x_j^α over built pairs.
	maxRatio := fDist(1) / m.Loss(1)
	for i := 1; i < n; i++ {
		y := 2 * (xs[i-1] + ys[i-1])
		if y > xmax {
			break
		}
		thr := math.Pow(y, m.Alpha) * maxRatio
		if math.IsInf(thr, 0) {
			break
		}
		// Doubling search for the smallest power-of-two multiple of y with
		// f(ℓ(x)) ≥ thr.
		x := y
		found := false
		for x <= xmax {
			if p := fDist(x); p >= thr && !math.IsInf(p, 0) {
				found = true
				break
			}
			x *= 2
		}
		if !found {
			break
		}
		xs = append(xs, x)
		ys = append(ys, y)
		if r := fDist(x) / m.Loss(x); r > maxRatio {
			maxRatio = r
		}
	}

	built := len(xs)
	coords := make([]float64, 0, 2*built)
	pos := 0.0
	reqs := make([]problem.Request, 0, built)
	for i := 0; i < built; i++ {
		if i > 0 {
			pos += ys[i]
		}
		coords = append(coords, pos, pos+xs[i])
		pos += xs[i]
		reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
	}
	line, err := geom.NewLine(coords)
	if err != nil {
		return nil, err
	}
	inst, err := problem.New(line, reqs)
	if err != nil {
		return nil, err
	}
	return &Adversarial{Instance: inst, Built: built, X: xs, Y: ys}, nil
}

// Perturb returns a copy of a Euclidean instance with every coordinate
// jittered uniformly by at most eps (useful for robustness tests).
func Perturb(rng *rand.Rand, in *problem.Instance, eps float64) (*problem.Instance, error) {
	e, ok := in.Space.(*geom.Euclidean)
	if !ok {
		return nil, errors.New("instance: Perturb requires a Euclidean instance")
	}
	pts := make([][]float64, e.N())
	for i := range pts {
		p := e.Point(i)
		for k := range p {
			p[k] += (rng.Float64()*2 - 1) * eps
		}
		pts[i] = p
	}
	space, err := geom.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	return problem.New(space, in.Reqs)
}
