package instance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/sinr"
)

func TestUniformRandomShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, err := UniformRandom(rng, 20, 100, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 20 {
		t.Fatalf("N = %d, want 20", in.N())
	}
	for i := 0; i < in.N(); i++ {
		l := in.Length(i)
		if l < 1-1e-9 || l > 5+1e-9 {
			t.Errorf("request %d length %g outside [1,5]", i, l)
		}
		if in.Reqs[i].U != 2*i || in.Reqs[i].V != 2*i+1 {
			t.Errorf("request %d endpoints %v", i, in.Reqs[i])
		}
	}
}

func TestUniformRandomValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := UniformRandom(rng, 0, 100, 1, 5); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := UniformRandom(rng, 5, 100, 5, 1); err == nil {
		t.Error("minLen > maxLen should fail")
	}
	if _, err := UniformRandom(rng, 5, 2, 1, 5); err == nil {
		t.Error("maxLen > side should fail")
	}
}

func TestClusteredShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in, err := Clustered(rng, 30, 3, 10, 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 30 {
		t.Fatalf("N = %d, want 30", in.N())
	}
	for i := 0; i < in.N(); i++ {
		if l := in.Length(i); l < 0.5-1e-9 || l > 20+1e-9 {
			t.Errorf("request %d length %g outside [0.5, 2·radius]", i, l)
		}
	}
}

func TestClusteredValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Clustered(rng, 0, 3, 10, 100, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Clustered(rng, 5, 0, 10, 100, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Clustered(rng, 5, 2, 1, 100, 5); err == nil {
		t.Error("minLen ≥ 2·radius should fail")
	}
}

func TestNestedExponential(t *testing.T) {
	in, err := NestedExponential(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 5 {
		t.Fatalf("N = %d, want 5", in.N())
	}
	line, ok := in.Space.(*geom.Line)
	if !ok {
		t.Fatal("nested instance should be on a line")
	}
	// Pair i (1-based) spans [-2^i, 2^i].
	for i := 1; i <= 5; i++ {
		r := math.Pow(2, float64(i))
		u := line.Coord(in.Reqs[i-1].U)
		v := line.Coord(in.Reqs[i-1].V)
		if u != -r || v != r {
			t.Errorf("pair %d spans [%g, %g], want [-%g, %g]", i, u, v, r, r)
		}
	}
	if _, err := NestedExponential(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NestedExponential(5, 1); err == nil {
		t.Error("base 1 should fail")
	}
	if _, err := NestedExponential(2000, 2); err == nil {
		t.Error("overflowing base^n should fail")
	}
}

func TestLineChain(t *testing.T) {
	in, err := LineChain(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := in.Length(i); got != 2 {
			t.Errorf("length %d = %g, want 2", i, got)
		}
	}
	line := in.Space.(*geom.Line)
	// Gap between v_0 (x=2) and u_1 (x=7) is 5.
	if got := line.Coord(in.Reqs[1].U) - line.Coord(in.Reqs[0].V); got != 5 {
		t.Errorf("gap = %g, want 5", got)
	}
	if _, err := LineChain(0, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := LineChain(3, 0, 1); err == nil {
		t.Error("zero length should fail")
	}
}

// TestAdversarialInvariants checks the recursion invariants from the proof
// of Theorem 1: y_i = 2(x_{i-1}+y_{i-1}), x_i ≥ y_i, and
// f(ℓ(x_i)) ≥ y_i^α · f(ℓ(x_j))/x_j^α for all j < i.
func TestAdversarialInvariants(t *testing.T) {
	m := sinr.Default()
	for _, f := range []power.Assignment{power.Linear(), power.Sqrt(), power.Exponent(2)} {
		t.Run(f.Name(), func(t *testing.T) {
			adv, err := AdversarialDirected(m, f, 6, 1e60)
			if err != nil {
				t.Fatal(err)
			}
			if adv.Built < 2 {
				t.Fatalf("built only %d pairs", adv.Built)
			}
			for i := 1; i < adv.Built; i++ {
				wantY := 2 * (adv.X[i-1] + adv.Y[i-1])
				if math.Abs(adv.Y[i]-wantY) > 1e-9*wantY {
					t.Errorf("y[%d] = %g, want %g", i, adv.Y[i], wantY)
				}
				if adv.X[i] < adv.Y[i] {
					t.Errorf("x[%d] = %g below y[%d] = %g", i, adv.X[i], i, adv.Y[i])
				}
				fi := f.Power(m.Loss(adv.X[i]))
				for j := 0; j < i; j++ {
					thr := math.Pow(adv.Y[i], m.Alpha) * f.Power(m.Loss(adv.X[j])) / m.Loss(adv.X[j])
					if fi < thr*(1-1e-9) {
						t.Errorf("power condition violated at i=%d, j=%d: %g < %g", i, j, fi, thr)
					}
				}
			}
			// The instance geometry must reflect X and Y.
			for i := 0; i < adv.Built; i++ {
				if got := adv.Instance.Length(i); math.Abs(got-adv.X[i]) > 1e-9*adv.X[i] {
					t.Errorf("instance length %d = %g, want %g", i, got, adv.X[i])
				}
			}
		})
	}
}

func TestAdversarialBoundedFStops(t *testing.T) {
	m := sinr.Default()
	adv, err := AdversarialDirected(m, power.Uniform(1), 10, 1e60)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Built != 1 {
		t.Errorf("bounded f built %d pairs, want 1 (construction impossible)", adv.Built)
	}
}

func TestAdversarialValidation(t *testing.T) {
	m := sinr.Default()
	if _, err := AdversarialDirected(m, power.Linear(), 0, 1e10); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := AdversarialDirected(m, power.Linear(), 3, 0.5); err == nil {
		t.Error("xmax ≤ 1 should fail")
	}
	if _, err := AdversarialDirected(sinr.Model{Alpha: 0, Beta: 1}, power.Linear(), 3, 1e10); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestPerturb(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, err := UniformRandom(rng, 10, 100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Perturb(rng, in, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.N(); i++ {
		if d := math.Abs(out.Length(i) - in.Length(i)); d > 0.05 {
			t.Errorf("request %d length moved by %g", i, d)
		}
	}
	// Perturb requires Euclidean instances.
	nested, _ := NestedExponential(3, 2)
	if _, err := Perturb(rng, nested, 0.01); err == nil {
		t.Error("line instance should be rejected")
	}
}

// TestGeneratorsDeterministicProperty: the generators are deterministic
// given the seed.
func TestGeneratorsDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		a, err := UniformRandom(rand.New(rand.NewSource(seed)), 8, 50, 1, 4)
		if err != nil {
			return false
		}
		b, err := UniformRandom(rand.New(rand.NewSource(seed)), 8, 50, 1, 4)
		if err != nil {
			return false
		}
		for i := 0; i < a.N(); i++ {
			if a.Length(i) != b.Length(i) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestAdversarialKeyInequality verifies the central step of the Theorem 1
// proof on the constructed instances: every pair i drowns every earlier
// pair k, i.e. the interference pair i's sender causes at receiver v_k is
// at least f(ℓ(x_k))/((4·x_k)^α) — a (4^α)-fraction of pair k's own signal.
// This is what forces any single slot to O(4^α/β) pairs.
func TestAdversarialKeyInequality(t *testing.T) {
	m := sinr.Default()
	for _, f := range []power.Assignment{power.Linear(), power.Sqrt(), power.Exponent(2)} {
		t.Run(f.Name(), func(t *testing.T) {
			adv, err := AdversarialDirected(m, f, 8, 1e60)
			if err != nil {
				t.Fatal(err)
			}
			in := adv.Instance
			powers := power.Powers(m, in, f)
			for k := 0; k < adv.Built; k++ {
				signalK := powers[k] / m.RequestLoss(in, k)
				for i := k + 1; i < adv.Built; i++ {
					interf := powers[i] / m.Loss(in.Space.Dist(in.Reqs[i].U, in.Reqs[k].V))
					if floor := signalK / math.Pow(4, m.Alpha); interf < floor*(1-1e-9) {
						t.Errorf("pair %d does not drown pair %d: interference %g below %g",
							i, k, interf, floor)
					}
				}
			}
		})
	}
}
