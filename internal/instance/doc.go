// Package instance generates interference scheduling workloads: random
// and clustered point sets, the paper's nested exponential chain
// (Section 1.2 intuition), plain line chains, and the adversarial family
// from the proof of Theorem 1 parameterized by an arbitrary oblivious
// power function.
//
// Exported entry points:
//
//   - UniformRandom and Clustered are the generic Euclidean workloads the
//     experiments and benchmarks default to.
//   - NestedExponential builds the exponentially nested request chain
//     that separates uniform and linear powers from square root powers.
//   - LineChain builds equally spaced unit requests on a line.
//   - AdversarialDirected constructs the Ω(n) lower-bound family of
//     Theorem 1 against a given oblivious power function: whatever f the
//     scheduler commits to, the instance forces linearly many colors in
//     the directed variant.
//   - Perturb jitters an instance for sensitivity experiments.
package instance
