package benchio

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// Metrics is the per-operation cost of a finished benchmark loop. Embed
// it in a row struct to flatten the fields into the JSON object.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Checkpoint snapshots the allocator counters before a timed loop.
type Checkpoint struct {
	totalAlloc, mallocs uint64
}

// Begin snapshots the allocator; call it before b.ResetTimer. The
// counters are process-global, so concurrent benchmarks would pollute
// each other — the framework runs benchmarks sequentially.
func Begin() Checkpoint {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Checkpoint{totalAlloc: ms.TotalAlloc, mallocs: ms.Mallocs}
}

// End converts the checkpoint into per-operation metrics for the
// just-finished loop; call it with the timer stopped. TotalAlloc and
// Mallocs are monotone (GC does not decrease them), so the deltas are
// valid even with collection disabled inside the loop.
func (c Checkpoint) End(b *testing.B) Metrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := float64(b.N)
	return Metrics{
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / n,
		BytesPerOp:  float64(ms.TotalAlloc-c.totalAlloc) / n,
		AllocsPerOp: float64(ms.Mallocs-c.mallocs) / n,
	}
}

// Recorder accumulates benchmark rows keyed by identity. The framework
// invokes each sub-benchmark several times (calibration first); keying
// keeps only the final, longest measurement per sub-benchmark.
type Recorder struct {
	path string
	mu   sync.Mutex
	rows map[string]any
}

// NewRecorder returns a recorder that Flush writes to path.
func NewRecorder(path string) *Recorder {
	return &Recorder{path: path, rows: map[string]any{}}
}

// Record stores row under key, replacing any earlier measurement. The
// key also fixes the row's position in the flushed file (rows are sorted
// by key), so make it collate the way the file should read.
func (r *Recorder) Record(key string, row any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rows[key] = row
}

// Flush writes the recorded rows as one sorted, indented JSON array. A
// recorder that recorded nothing writes nothing — plain test runs leave
// the trajectory files untouched.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rows) == 0 {
		return nil
	}
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]any, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, r.rows[k])
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.path, append(data, '\n'), 0o644)
}
