// Package benchio is the shared emission layer of the BENCH_*.json
// benchmark trajectory files: a keyed recorder that deduplicates the
// calibration reruns of the testing framework, sorts rows for stable
// diffs, and flushes one indented JSON array per file from TestMain —
// machinery that used to be copied per trajectory in bench_test.go. It
// also standardizes the measured quantities: wall time plus allocator
// pressure (bytes and allocations per operation).
package benchio
