package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type row struct {
	Name string `json:"name"`
	Metrics
}

func TestRecorderFlushSortedAndDeduped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	r := NewRecorder(path)
	r.Record("b", row{Name: "b"})
	r.Record("a", row{Name: "stale"})
	r.Record("a", row{Name: "a", Metrics: Metrics{NsPerOp: 1}})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "a" || rows[1].Name != "b" {
		t.Fatalf("rows = %+v, want deduped [a b]", rows)
	}
	if rows[0].NsPerOp != 1 {
		t.Fatalf("embedded metrics did not flatten: %+v", rows[0])
	}
}

func TestRecorderEmptyWritesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_empty.json")
	if err := NewRecorder(path).Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("empty recorder wrote %s", path)
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	cp := Begin()
	b.ResetTimer()
	var sink []byte
	for i := 0; i < b.N; i++ {
		sink = make([]byte, 64)
	}
	b.StopTimer()
	_ = sink
	met := cp.End(b)
	if met.NsPerOp < 0 || met.AllocsPerOp < 1 || met.BytesPerOp < 64 {
		b.Fatalf("implausible metrics: %+v", met)
	}
}
