// Package power implements oblivious power assignments.
//
// A power assignment is oblivious (Section 1.1 of the paper) if there is a
// function f: R>0 → R>0 such that the power of every request i is
// p_i = f(ℓ(u_i, v_i)), i.e. it depends only on the loss between the
// request's own endpoints. The paper's central assignment is the square
// root assignment p̄_i = √ℓ(u_i, v_i).
//
// Exported entry points:
//
//   - Assignment is the interface (Name + Power); Func wraps an arbitrary
//     oblivious function.
//   - Uniform, Linear and Sqrt are the three assignments the paper
//     analyzes: uniform and linear suffer the Ω(n) lower bound of
//     Theorem 1, square root achieves the polylogarithmic guarantee of
//     Theorem 2 for bidirectional requests.
//   - Exponent(τ) is p_i = ℓ_i^τ, used by the exponent-sweep experiment;
//     τ ∈ {0, 0.5, 1} canonicalize to the named assignments so
//     algorithms gated on sqrt accept Exponent(0.5).
//   - Powers evaluates an assignment over an instance; Scale and
//     TotalEnergy are the helpers the noise-lifting and energy
//     experiments use.
package power
