package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func TestAssignmentValues(t *testing.T) {
	tests := []struct {
		a    Assignment
		loss float64
		want float64
		name string
	}{
		{a: Uniform(2), loss: 100, want: 2, name: "uniform"},
		{a: Linear(), loss: 100, want: 100, name: "linear"},
		{a: Sqrt(), loss: 100, want: 10, name: "sqrt"},
		{a: Exponent(0), loss: 100, want: 1, name: "uniform"},
		{a: Exponent(0.5), loss: 100, want: 10, name: "sqrt"},
		{a: Exponent(2), loss: 10, want: 100, name: "loss^2"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Power(tc.loss); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("%s.Power(%g) = %g, want %g", tc.a.Name(), tc.loss, got, tc.want)
			}
			if tc.a.Name() != tc.name {
				t.Errorf("Name = %q, want %q", tc.a.Name(), tc.name)
			}
		})
	}
}

func TestFunc(t *testing.T) {
	a := Func("cube", func(l float64) float64 { return l * l * l })
	if a.Name() != "cube" {
		t.Errorf("Name = %q", a.Name())
	}
	if got := a.Power(2); got != 8 {
		t.Errorf("Power(2) = %g, want 8", got)
	}
}

func TestPowers(t *testing.T) {
	line, err := geom.NewLine([]float64{0, 2, 10, 14})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(line, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Model{Alpha: 2, Beta: 1}
	got := Powers(m, in, Sqrt())
	// Lengths 2 and 4, losses 4 and 16, sqrt powers 2 and 4.
	if got[0] != 2 || got[1] != 4 {
		t.Errorf("sqrt powers = %v, want [2 4]", got)
	}
}

func TestScale(t *testing.T) {
	in := []float64{1, 2, 3}
	got := Scale(in, 10)
	if got[0] != 10 || got[2] != 30 {
		t.Errorf("Scale = %v", got)
	}
	if in[0] != 1 {
		t.Error("Scale mutated its input")
	}
}

func TestTotalEnergy(t *testing.T) {
	p := []float64{1, 2, 4}
	if got := TotalEnergy(p, nil); got != 7 {
		t.Errorf("TotalEnergy(nil) = %g, want 7", got)
	}
	if got := TotalEnergy(p, []int{0, 2}); got != 5 {
		t.Errorf("TotalEnergy([0 2]) = %g, want 5", got)
	}
}

// TestSqrtIsGeometricMean: the square root assignment is the geometric mean
// of uniform (exponent 0) and linear (exponent 1) on every loss.
func TestSqrtIsGeometricMean(t *testing.T) {
	f := func(x float64) bool {
		l := math.Abs(x) + 0.001
		s := Sqrt().Power(l)
		u := Exponent(0).Power(l)
		lin := Linear().Power(l)
		return math.Abs(s-math.Sqrt(u*lin)) < 1e-9*s
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestExponentMonotone: ℓ^τ is monotone in ℓ for τ > 0 and monotone in τ
// for ℓ > 1.
func TestExponentMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		l1 := 1 + math.Abs(a)
		l2 := l1 + math.Abs(b) + 0.001
		for _, tau := range []float64{0.25, 0.5, 1, 1.5} {
			if Exponent(tau).Power(l1) > Exponent(tau).Power(l2) {
				return false
			}
		}
		return Exponent(0.3).Power(l2) <= Exponent(0.7).Power(l2)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
