package power

import (
	"fmt"
	"math"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// Assignment is an oblivious power assignment: a function of the loss
// between a request's endpoints.
type Assignment interface {
	// Name identifies the assignment in experiment output.
	Name() string
	// Power returns the power for a request whose endpoint loss is loss.
	Power(loss float64) float64
}

// funcAssignment adapts an arbitrary function to the Assignment interface.
type funcAssignment struct {
	name string
	f    func(loss float64) float64
}

func (a funcAssignment) Name() string               { return a.name }
func (a funcAssignment) Power(loss float64) float64 { return a.f(loss) }

// Func wraps an arbitrary oblivious power function.
func Func(name string, f func(loss float64) float64) Assignment {
	return funcAssignment{name: name, f: f}
}

// Uniform returns the uniform power assignment: every request transmits with
// the same constant power p.
func Uniform(p float64) Assignment {
	return funcAssignment{name: "uniform", f: func(float64) float64 { return p }}
}

// Linear returns the linear power assignment p_i = ℓ_i: the power is
// proportional to the loss, so the received signal strength at the
// request's own receiver is constant. It is the energy-minimal assignment
// (up to the noise floor) discussed in Section 6.
func Linear() Assignment {
	return funcAssignment{name: "linear", f: func(loss float64) float64 { return loss }}
}

// Sqrt returns the square root power assignment p̄_i = √ℓ_i, the paper's
// universally good assignment for the bidirectional problem (Theorem 2).
func Sqrt() Assignment {
	return funcAssignment{name: "sqrt", f: math.Sqrt}
}

// Exponent returns the assignment p_i = ℓ_i^τ. The named special cases
// are canonicalized — Exponent(0) IS Uniform(1), Exponent(0.5) IS Sqrt,
// Exponent(1) IS Linear, name included — so algorithms gated on the sqrt
// assignment accept Exponent(0.5). The exponent-sweep experiment (E8)
// uses intermediate values.
func Exponent(tau float64) Assignment {
	switch tau {
	case 0:
		return Uniform(1)
	case 0.5:
		return Sqrt()
	case 1:
		return Linear()
	}
	return funcAssignment{
		name: fmt.Sprintf("loss^%.3g", tau),
		f:    func(loss float64) float64 { return math.Pow(loss, tau) },
	}
}

// Powers evaluates the assignment on every request of the instance.
func Powers(m sinr.Model, in *problem.Instance, a Assignment) []float64 {
	out := make([]float64, in.N())
	for i := range out {
		out[i] = a.Power(m.RequestLoss(in, i))
	}
	return out
}

// Scale multiplies all powers by c and returns a new slice. Scaling all
// powers by the same positive factor preserves feasibility when the noise
// is zero (Section 1.1) and is used to lift zero-noise schedules to
// positive noise.
func Scale(powers []float64, c float64) []float64 {
	out := make([]float64, len(powers))
	for i, p := range powers {
		out[i] = p * c
	}
	return out
}

// TotalEnergy returns the sum of the powers of the requests in set, or of
// all requests if set is nil.
func TotalEnergy(powers []float64, set []int) float64 {
	var sum float64
	if set == nil {
		for _, p := range powers {
			sum += p
		}
		return sum
	}
	for _, i := range set {
		sum += powers[i]
	}
	return sum
}
