// Package lint holds oblint's five project-invariant analyzers. Each one
// pins a contract that an earlier PR established by hand and that future
// growth (daemon, sharding, pipeline parallelism) would otherwise erode:
//
//   - hotpath: //oblint:hotpath functions stay free of math.Pow,
//     fmt.Sprint*, capacity-less append growth, and interface dispatch on
//     devirtualizable types (the PR-5 HST win).
//   - ctxloop: exported context-aware solver entry points poll ctx inside
//     every n-scaling loop (the PR-1 post-review fix).
//   - trackerreset: a recycled sinr.SetTracker is Reset before re-Add
//     (the PR 3–5 tracker pooling contract).
//   - registryhygiene: solvers are registered through NewSolver so
//     Stats.Engine is always populated, and internal packages carry a
//     doc.go.
//   - benchguard: Benchmark functions reset the timer after setup so
//     BENCH_*.json numbers measure the algorithm, not the harness.
//
// The analyzers run over cmd/oblint (and through make lint / CI); their
// semantics are specified by the analysistest fixtures under testdata.
package lint
