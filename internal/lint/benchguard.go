package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// BenchGuard keeps the BENCH_*.json numbers honest: a Benchmark function
// (or a sub-benchmark literal passed to b.Run) that performs setup work
// before its timed b.N loop must neutralize that work with b.ResetTimer
// — or bracket it in b.StopTimer/b.StartTimer. Benchmarks using
// `for b.Loop()` are exempt (the loop method handles timing itself), and
// benchmark functions without a b.N loop are pure delegators and are
// skipped.
var BenchGuard = &analysis.Analyzer{
	Name: "benchguard",
	Doc: "require Benchmark functions that do setup before the timed b.N loop to call " +
		"b.ResetTimer (or stop the timer around the setup)",
	Run: runBenchGuard,
}

func runBenchGuard(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isBenchmarkDecl(pass, fd) {
				checkBenchBody(pass, funcName(fd), fd.Body)
			}
			// Sub-benchmarks: function literals passed to (*testing.B).Run.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				if name, isB := bMethod(pass, call); !isB || name != "Run" {
					return true
				}
				if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
					checkBenchBody(pass, funcName(fd)+" sub-benchmark", lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

func isBenchmarkDecl(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Benchmark") {
		return false
	}
	params := fd.Type.Params.List
	if len(params) != 1 {
		return false
	}
	tv, ok := pass.Info.Types[params[0].Type]
	return ok && typeIs(tv.Type, "testing", "B")
}

// checkBenchBody walks the top-level statements of one benchmark body:
// it tracks setup calls against timer manipulation until the timed loop.
func checkBenchBody(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	sawSetup := false
	timerStopped := false
	for _, stmt := range body.List {
		if loop, kind := timedLoop(pass, stmt); kind != loopNone {
			if kind == loopBN && sawSetup {
				pass.Reportf(loop.Pos(),
					"%s does setup before the timed b.N loop without b.ResetTimer (the timer is measuring the harness)", name)
			}
			return // statements after the first timed loop are teardown
		}
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				switch m, isB := bMethod(pass, call); {
				case isB && m == "ResetTimer":
					sawSetup = false
					continue
				case isB && m == "StopTimer":
					timerStopped = true
					continue
				case isB && m == "StartTimer":
					timerStopped = false
					continue
				}
			}
		}
		if !timerStopped && stmtDoesSetup(pass, stmt) {
			sawSetup = true
		}
	}
}

type loopKind int

const (
	loopNone loopKind = iota
	loopBN
	loopBLoop
)

// timedLoop classifies a statement as the benchmark's timed loop: a for
// or range statement driven by b.N, or a `for b.Loop()` loop.
func timedLoop(pass *analysis.Pass, stmt ast.Stmt) (ast.Stmt, loopKind) {
	switch l := stmt.(type) {
	case *ast.ForStmt:
		if cond, ok := ast.Unparen(l.Cond).(*ast.BinaryExpr); ok {
			if isBN(pass, cond.X) || isBN(pass, cond.Y) {
				return l, loopBN
			}
		}
		if call, ok := ast.Unparen(l.Cond).(*ast.CallExpr); ok {
			if m, isB := bMethod(pass, call); isB && m == "Loop" {
				return l, loopBLoop
			}
		}
	case *ast.RangeStmt:
		if isBN(pass, l.X) {
			return l, loopBN
		}
	}
	return nil, loopNone
}

// isBN reports whether e is the b.N field of a *testing.B value.
func isBN(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "N" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	return ok && typeIs(tv.Type, "testing", "B")
}

// bMethod reports whether call invokes a method on a *testing.B receiver
// (including the promoted testing.common helpers) and returns its name.
func bMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal || !typeIs(s.Recv(), "testing", "B") {
		return "", false
	}
	return sel.Sel.Name, true
}

// stmtDoesSetup reports whether the statement contains a call that does
// real work: anything but builtins and *testing.B methods. Function
// literal bodies are skipped — defining a closure is free; calling it
// counts where the call happens.
func stmtDoesSetup(pass *analysis.Pass, stmt ast.Stmt) bool {
	setup := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if setup {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, isB := bMethod(pass, call); isB {
			return true
		}
		switch calleeObj(pass.Info, call).(type) {
		case *types.Builtin, *types.TypeName:
			return true // builtins and conversions are not setup work
		}
		setup = true
		return false
	})
	return setup
}
