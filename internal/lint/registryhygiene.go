package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// RegistryHygiene pins two packaging conventions. First, every solver
// handed to Register must be constructed by NewSolver with the same name
// literal: the NewSolver wrapper is what backfills Stats.Engine from the
// resolved affectance mode, so a hand-rolled Solver registered directly
// would report an empty engine in every result (and the name literal is
// what Lookup and the CLI -solver flag key on). Second, every internal
// package carries a doc.go, so `go doc` explains a package before a
// reader has to reverse-engineer it.
var RegistryHygiene = &analysis.Analyzer{
	Name: "registryhygiene",
	Doc: "require Register calls to wrap solvers in NewSolver with a matching name, " +
		"and internal packages to carry a doc.go",
	Run: runRegistryHygiene,
}

func runRegistryHygiene(pass *analysis.Pass) error {
	checkDocFile(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRegisterCall(pass, call)
			return true
		})
	}
	return nil
}

// checkDocFile reports internal packages without a doc.go. External test
// units are skipped: the doc belongs to the package proper.
func checkDocFile(pass *analysis.Pass) {
	if pass.IsTest || len(pass.Files) == 0 || pass.Pkg == nil || pass.Pkg.Name() == "main" {
		return
	}
	path := pass.PkgPath
	if !strings.HasPrefix(path, "internal/") && !strings.Contains(path, "/internal/") {
		return
	}
	for _, name := range pass.FileNames {
		if name == "doc.go" {
			return
		}
	}
	pass.Reportf(pass.Files[0].Name.Pos(), "internal package %s has no doc.go", path)
}

// checkRegisterCall applies the NewSolver discipline to calls of a
// package-level function named Register whose first argument is a string.
func checkRegisterCall(pass *analysis.Pass, call *ast.CallExpr) {
	callee := calleeObj(pass.Info, call)
	if callee == nil || callee.Name() != "Register" || len(call.Args) < 2 {
		return
	}
	if tv, ok := pass.Info.Types[call.Args[0]]; !ok || !isStringType(tv.Type) {
		return
	}
	inner, ok := ast.Unparen(call.Args[1]).(*ast.CallExpr)
	if !ok {
		pass.Reportf(call.Args[1].Pos(),
			"solver registered without NewSolver: Stats.Engine stays empty on every result (wrap the solve func in NewSolver)")
		return
	}
	if callee := calleeObj(pass.Info, inner); callee == nil || callee.Name() != "NewSolver" {
		pass.Reportf(call.Args[1].Pos(),
			"solver registered without NewSolver: Stats.Engine stays empty on every result (wrap the solve func in NewSolver)")
		return
	}
	if len(inner.Args) == 0 {
		return
	}
	regName, ok1 := stringLit(call.Args[0])
	solName, ok2 := stringLit(inner.Args[0])
	if ok1 && ok2 && regName != solName {
		pass.Reportf(call.Args[0].Pos(),
			"Register(%q) wraps NewSolver(%q): the registry key and the solver name must match", regName, solName)
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringLit extracts the value of a string basic literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
