package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzers returns every oblint analyzer in the order cmd/oblint runs
// them.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPath,
		CtxLoop,
		TrackerReset,
		RegistryHygiene,
		BenchGuard,
		ObsGuard,
	}
}

// typeIs reports whether t (behind any pointers and aliases) is the named
// type path.name. Matching is by path and name, never object identity, so
// it holds across independently type-checked units and fixture stubs.
func typeIs(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return typeIs(t, "context", "Context") }

// calleeObj resolves the object a call invokes: the function or method
// for ident and selector callees, nil for indirect calls through
// expressions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function path.name.
func isPkgFunc(obj types.Object, path, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == path
}

// isBuiltin reports whether obj is a language builtin (append, len, ...).
func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// funcName renders a FuncDecl's name with its receiver type for
// diagnostics, e.g. "Engine.place".
func funcName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}

// directiveOnLines reports whether the file carries an //oblint:<name>
// directive on any of the given lines.
func directiveOnLines(pass *analysis.Pass, file *ast.File, name string, lines ...int) bool {
	for _, d := range analysis.Directives(pass.Fset, file) {
		if d.Name != name {
			continue
		}
		for _, l := range lines {
			if d.Line == l {
				return true
			}
		}
	}
	return false
}
