package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// freshConstructors are the calls whose result is a tracker known to be
// empty: providers hand trackers out through these, and a freshly
// constructed tracker needs no Reset. newTracker is the online engine's
// pooled acquisition — it Resets recycled trackers on the way in, so it
// is the hand-off site Arrive and checkpoint Restore share.
var freshConstructors = map[string]bool{
	"NewSetTracker": true,
	"NewTracker":    true,
	"newTracker":    true,
}

// TrackerReset enforces the tracker recycling contract from the PR 3–5
// pooling work: a sinr.SetTracker that may come from a provider pool must
// be Reset before it is re-populated with Add. The analysis is
// flow-insensitive and per-function: an Add on a tracker is fine if the
// same function constructs it via NewSetTracker/NewTracker (or the
// engine's pooled newTracker, which Resets on recycle — the hand-off
// site Arrive and checkpoint Restore share), calls Reset on it, or
// carries an //oblint:fresh annotation — on the Add line, on the line
// above it, at the tracker's acquisition site, or on the function's doc
// comment (asserting every tracker the function touches is fresh or
// intentionally extended).
//
// A wrapper's same-named delegation — an Add method forwarding to a
// SetTracker field of its own receiver, the faultinject.Tracker shape —
// is a pass-through, not a population site: the wrapped tracker's
// freshness is whoever handed it into the wrapper's obligation, carried
// through unchanged.
var TrackerReset = &analysis.Analyzer{
	Name: "trackerreset",
	Doc: "require sinr.SetTracker values to be freshly constructed, Reset, or annotated " +
		"//oblint:fresh before Add re-populates them",
	Run: runTrackerReset,
}

func runTrackerReset(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasDirective(fd.Doc, "fresh") {
				continue
			}
			checkTrackerFunc(pass, file, fd)
		}
	}
	return nil
}

// isSetTracker reports whether t is the repro/internal/sinr.SetTracker
// interface (by path and name, so fixture stubs match too).
func isSetTracker(t types.Type) bool {
	return typeIs(t, "repro/internal/sinr", "SetTracker")
}

// trackerKey resolves a receiver expression to the object standing for
// the tracker: a local/param variable, or a struct field (which
// over-approximates across instances — deliberately, the analysis is a
// may-alias over-approximation).
func trackerKey(pass *analysis.Pass, recv ast.Expr) types.Object {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

func checkTrackerFunc(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl) {
	type addSite struct {
		call *ast.CallExpr
		recv ast.Expr
		obj  types.Object
	}
	var adds []addSite
	reset := make(map[types.Object]bool)
	fresh := make(map[types.Object]bool)

	// recordAcquisition classifies an assignment rhs → lhs object: fresh
	// constructor results and //oblint:fresh-annotated acquisitions.
	recordAcquisition := func(lhs ast.Expr, rhs ast.Expr, line int) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || !isSetTracker(obj.Type()) {
			return
		}
		if directiveOnLines(pass, file, "fresh", line, line-1) {
			fresh[obj] = true
			return
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if callee := calleeObj(pass.Info, call); callee != nil && freshConstructors[callee.Name()] {
				fresh[obj] = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				line := pass.Fset.Position(st.Pos()).Line
				for i := range st.Lhs {
					recordAcquisition(st.Lhs[i], st.Rhs[i], line)
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				line := pass.Fset.Position(st.Pos()).Line
				for i := range st.Names {
					recordAcquisition(st.Names[i], st.Values[i], line)
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal || !isSetTracker(s.Recv()) {
				return true
			}
			switch sel.Sel.Name {
			case "Reset":
				if obj := trackerKey(pass, sel.X); obj != nil {
					reset[obj] = true
				}
			case "Add":
				adds = append(adds, addSite{call: st, recv: sel.X, obj: trackerKey(pass, sel.X)})
			}
		}
		return true
	})

	for _, a := range adds {
		line := pass.Fset.Position(a.call.Pos()).Line
		if directiveOnLines(pass, file, "fresh", line, line-1) {
			continue
		}
		if wrapperPassThrough(pass, fd, a.recv) {
			continue
		}
		// A chained call like provider.NewSetTracker(...).Add(i) is fresh
		// by construction.
		if call, ok := ast.Unparen(a.recv).(*ast.CallExpr); ok {
			if callee := calleeObj(pass.Info, call); callee != nil && freshConstructors[callee.Name()] {
				continue
			}
		}
		if a.obj != nil && (fresh[a.obj] || reset[a.obj]) {
			continue
		}
		name := "tracker"
		if a.obj != nil {
			name = a.obj.Name()
		}
		pass.Reportf(a.call.Pos(),
			"Add on %s, which may be a recycled tracker, without Reset in %s (Reset it, or annotate //oblint:fresh with a reason)",
			name, funcName(fd))
	}
}

// wrapperPassThrough reports whether an Add call is a wrapper's
// delegation: the enclosing function is itself a method named Add, and
// the call's receiver is a field selected off that method's own
// receiver. The wrapper is forwarding the operation, not re-populating
// a recycled tracker — the freshness obligation travels with the
// tracker handed into the wrapper.
func wrapperPassThrough(pass *analysis.Pass, fd *ast.FuncDecl, recv ast.Expr) bool {
	if fd.Recv == nil || fd.Name.Name != "Add" ||
		len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recvObj := pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return false
	}
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.Info.Uses[base] == recvObj
}
