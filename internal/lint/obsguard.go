package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// obsPath is the package the guard contracts are defined against.
// Matching is by path and name (typeIs), so the analyzer works against
// both the real package and the fixture stub.
const obsPath = "repro/internal/obs"

// ObsGuard enforces the two usage contracts of internal/obs:
//
//   - Every span acquired with obs.Start or Collector.StartSpan must be
//     Ended on every path that leaves the function — defer the End, or
//     call it before each return. A leaked span never observes, so the
//     phase silently vanishes from the latency histograms.
//   - Inside //oblint:hotpath kernels, Collector.Emit must sit behind an
//     Enabled() or Tracing() guard: the guard is the single predictable
//     branch the disabled path is allowed to cost, and an unguarded Emit
//     pays the event construction even with no sink attached.
//
// The span check is structured and conservative: a deferred End (direct
// or via a deferred closure) satisfies it globally; otherwise the
// statement paths from the acquisition are walked, and every return —
// or the function's fall-through — reachable with a live span is
// reported. Spans that escape the function (stored, passed on, or
// captured by a non-deferred closure) are the next owner's problem and
// are skipped.
var ObsGuard = &analysis.Analyzer{
	Name: "obsguard",
	Doc: "require acquired obs spans to be Ended on every return path (defer or " +
		"all-paths call) and Collector.Emit in //oblint:hotpath functions to sit " +
		"behind an Enabled/Tracing guard",
	Run: runObsGuard,
}

func runObsGuard(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, scope := range spanScopes(fd.Body) {
				checkScopeSpans(pass, scope)
			}
			if analysis.HasDirective(fd.Doc, "hotpath") {
				checkGuardedEmit(pass, fd)
			}
		}
	}
	return nil
}

// spanScopes returns the function body plus the body of every function
// literal inside it; each is analyzed as an independent scope, because
// a literal has its own return paths.
func spanScopes(body *ast.BlockStmt) []*ast.BlockStmt {
	scopes := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	return scopes
}

// walkScope visits the nodes of one scope without descending into
// nested function literals (they are scopes of their own).
func walkScope(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return f(n)
	})
}

// spanAcq is one span acquisition in a scope: the assignment statement
// and the object the span is bound to (nil for the blank identifier).
type spanAcq struct {
	stmt ast.Stmt
	obj  types.Object
	pos  token.Pos
}

// checkScopeSpans finds the span acquisitions of one scope and verifies
// the End contract for each.
func checkScopeSpans(pass *analysis.Pass, scope *ast.BlockStmt) {
	var acqs []spanAcq
	walkScope(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		var spanLhs ast.Expr
		switch {
		case isPkgFunc(calleeObj(pass.Info, call), obsPath, "Start") && len(as.Lhs) == 2:
			spanLhs = as.Lhs[1]
		case isMethodOn(pass.Info, call, obsPath, "Collector", "StartSpan") && len(as.Lhs) == 1:
			spanLhs = as.Lhs[0]
		default:
			return true
		}
		id, ok := ast.Unparen(spanLhs).(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span acquired and discarded — it can never be Ended and will not observe")
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			acqs = append(acqs, spanAcq{stmt: as, obj: obj, pos: call.Pos()})
		}
		return true
	})
	for _, acq := range acqs {
		checkSpanEnds(pass, scope, acq)
	}
}

// checkSpanEnds verifies one acquisition: a deferred End anywhere in the
// scope settles it; an escaping span is skipped; otherwise the paths
// from the acquisition are walked and live returns reported.
func checkSpanEnds(pass *analysis.Pass, scope *ast.BlockStmt, acq spanAcq) {
	if hasDeferredEnd(pass, scope, acq.obj) {
		return
	}
	if spanEscapes(pass, scope, acq) {
		return
	}
	c := &spanChecker{pass: pass, acq: acq}
	live := c.block(scope.List, false)
	if live && !terminates(scope.List) {
		pass.Reportf(acq.pos, "span %s is not Ended before the function falls through (defer %s.End() at acquisition)",
			acq.obj.Name(), acq.obj.Name())
	}
}

// isEndCall reports whether expr is obj.End().
func isEndCall(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || !isMethodOn(pass.Info, call, obsPath, "Span", "End") {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// hasDeferredEnd reports whether the scope defers obj.End(), directly
// or through a deferred function literal that calls it.
func hasDeferredEnd(pass *analysis.Pass, scope *ast.BlockStmt, obj types.Object) bool {
	found := false
	walkScope(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCall(pass, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if found {
					return false
				}
				if es, ok := m.(*ast.ExprStmt); ok && isEndCall(pass, es.X, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// spanEscapes reports whether the span object is used for anything
// other than being acquired or Ended: passed to a call, assigned on,
// returned, or captured by a (non-deferred) closure. Responsibility for
// an escaping span lies with whoever receives it.
func spanEscapes(pass *analysis.Pass, scope *ast.BlockStmt, acq spanAcq) bool {
	endReceivers := make(map[*ast.Ident]bool)
	walkScope(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodOn(pass.Info, call, obsPath, "Span", "End") {
			return true
		}
		if id, ok := ast.Unparen(ast.Unparen(call.Fun).(*ast.SelectorExpr).X).(*ast.Ident); ok {
			endReceivers[id] = true
		}
		return true
	})
	defIdent := func() *ast.Ident {
		as := acq.stmt.(*ast.AssignStmt)
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && (pass.Info.Defs[id] == acq.obj || pass.Info.Uses[id] == acq.obj) {
				return id
			}
		}
		return nil
	}()
	escapes := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != acq.obj || id == defIdent || endReceivers[id] {
			return true
		}
		escapes = true
		return false
	})
	return escapes
}

// terminates reports whether a statement list ends in a return or a
// panic — the approximation under which a branch contributes nothing to
// its parent's fall-through state.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// spanChecker walks the statement paths of one scope tracking whether
// the acquired span is live (acquired, not yet Ended) and reports every
// return reachable in that state.
type spanChecker struct {
	pass *analysis.Pass
	acq  spanAcq
}

func (c *spanChecker) block(stmts []ast.Stmt, live bool) bool {
	for _, st := range stmts {
		live = c.stmt(st, live)
	}
	return live
}

// containsEnd reports an obj.End() anywhere in the subtree (same scope).
func (c *spanChecker) containsEnd(n ast.Node) bool {
	found := false
	walkScope(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if es, ok := m.(*ast.ExprStmt); ok && isEndCall(c.pass, es.X, c.acq.obj) {
			found = true
		}
		return !found
	})
	return found
}

// reportLiveReturns reports every return in the subtree when entered
// with a live span but no sequential analysis (loop and switch bodies);
// an End lexically before the return inside the same subtree excuses it.
func (c *spanChecker) stmt(st ast.Stmt, live bool) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		if s == c.acq.stmt {
			return true
		}
		return live
	case *ast.ExprStmt:
		if isEndCall(c.pass, s.X, c.acq.obj) {
			return false
		}
		return live
	case *ast.ReturnStmt:
		if live {
			c.pass.Reportf(s.Pos(), "return with span %s not Ended on this path (defer %s.End() at acquisition)",
				c.acq.obj.Name(), c.acq.obj.Name())
		}
		return live
	case *ast.BlockStmt:
		return c.block(s.List, live)
	case *ast.IfStmt:
		thenLive := c.block(s.Body.List, live)
		elseLive := live
		elseTerm := false
		if s.Else != nil {
			elseLive = c.stmt(s.Else, live)
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseTerm = terminates(blk.List)
			}
		}
		switch {
		case terminates(s.Body.List) && elseTerm:
			return false
		case terminates(s.Body.List):
			return elseLive
		case elseTerm:
			return thenLive
		default:
			// Live if any continuing path is live: the report fires at the
			// next return, which such a path reaches with the span open.
			return thenLive || elseLive
		}
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Non-sequential control flow is handled optimistically: an End
		// anywhere inside counts as Ended afterwards, and returns inside
		// are walked with the entry liveness.
		if live {
			c.reportUnendedReturns(st)
		}
		if c.containsEnd(st) {
			return false
		}
		return live
	default:
		return live
	}
}

// reportUnendedReturns reports returns inside non-sequential control
// flow (loops, switches) entered with a live span, unless an End call
// precedes the return lexically within the construct.
func (c *spanChecker) reportUnendedReturns(st ast.Stmt) {
	var endPos token.Pos = -1
	walkScope(st, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok && isEndCall(c.pass, es.X, c.acq.obj) {
			if endPos < 0 || es.Pos() < endPos {
				endPos = es.Pos()
			}
		}
		return true
	})
	walkScope(st, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if endPos < 0 || ret.Pos() < endPos {
			c.pass.Reportf(ret.Pos(), "return with span %s not Ended on this path (defer %s.End() at acquisition)",
				c.acq.obj.Name(), c.acq.obj.Name())
		}
		return true
	})
}

// checkGuardedEmit enforces the hot-path emission contract: every
// Collector.Emit inside a //oblint:hotpath function must be inside the
// body of an if whose condition consults Collector.Enabled or
// Collector.Tracing.
func checkGuardedEmit(pass *analysis.Pass, fd *ast.FuncDecl) {
	type posRange struct{ lo, hi token.Pos }
	var guarded []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		hasGuard := false
		ast.Inspect(ifs.Cond, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if ok && (isMethodOn(pass.Info, call, obsPath, "Collector", "Enabled") ||
				isMethodOn(pass.Info, call, obsPath, "Collector", "Tracing")) {
				hasGuard = true
			}
			return !hasGuard
		})
		if hasGuard {
			guarded = append(guarded, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodOn(pass.Info, call, obsPath, "Collector", "Emit") {
			return true
		}
		for _, r := range guarded {
			if call.Pos() >= r.lo && call.End() <= r.hi {
				return true
			}
		}
		pass.Reportf(call.Pos(), "unguarded Emit in hot path (wrap in if c.Tracing() so the disabled path costs one branch)")
		return true
	})
}

// isMethodOn reports whether call invokes the named method with a
// receiver of type path.typeName (behind pointers and aliases).
func isMethodOn(info *types.Info, call *ast.CallExpr, path, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), path, typeName)
}
