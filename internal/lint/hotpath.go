package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// devirtIfaces are interfaces with a known devirtualization path:
// dispatching through them inside a hot pair loop is a regression the
// project has already paid for once (PR 5 removed geom.Metric dispatch
// from the HST pair scans for a 14× build speedup via geom.DistFunc).
var devirtIfaces = []struct{ path, name, hint string }{
	{"repro/internal/geom", "Metric", "geom.DistFunc"},
}

// HotPath flags per-pair-loop performance regressions inside functions
// annotated //oblint:hotpath: math.Pow calls, fmt.Sprint*-family
// allocations (except as the direct argument of panic), appends that grow
// a local slice declared without capacity, and interface method dispatch
// on devirtualizable types.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag math.Pow, fmt.Sprint*, capacity-less append growth, and devirtualizable " +
		"interface dispatch inside functions annotated //oblint:hotpath",
	Run: runHotPath,
}

func runHotPath(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Calls that are the direct argument of panic are exempt from the
	// fmt rule: the formatting runs once, on the way out.
	panicArg := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && len(call.Args) == 1 && isBuiltin(calleeObj(pass.Info, call)) {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "panic" {
				panicArg[ast.Unparen(call.Args[0])] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.Info, call)
		switch {
		case isPkgFunc(obj, "math", "Pow"):
			pass.Reportf(call.Pos(), "math.Pow in hot path (use the integer-exponent fast paths or a precomputed table)")
		case isFmtAlloc(obj) && !panicArg[call]:
			pass.Reportf(call.Pos(), "fmt.%s allocates in hot path (format outside the loop, or panic directly)", obj.Name())
		case isBuiltin(obj) && obj.Name() == "append":
			checkHotAppend(pass, fd, call)
		}
		checkDevirt(pass, call)
		return true
	})
}

func isFmtAlloc(obj types.Object) bool {
	for _, name := range []string{"Sprintf", "Sprint", "Sprintln", "Errorf"} {
		if isPkgFunc(obj, "fmt", name) {
			return true
		}
	}
	return false
}

// checkDevirt reports method calls whose receiver's static type is a
// known-devirtualizable interface.
func checkDevirt(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	recv := s.Recv()
	if _, isIface := types.Unalias(recv).Underlying().(*types.Interface); !isIface {
		return
	}
	for _, d := range devirtIfaces {
		if typeIs(recv, d.path, d.name) {
			pass.Reportf(call.Pos(), "interface dispatch of %s.%s on %s in hot path (devirtualize with %s)",
				d.name, sel.Sel.Name, d.name, d.hint)
		}
	}
}

// checkHotAppend reports append calls that grow a local slice whose
// declaration provides no capacity. Fields, parameters, and slices whose
// declaration we cannot classify are exempt — the analyzer only fires on
// positive evidence.
func checkHotAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	if decl, found := localSliceDecl(pass, fd, obj); found && !declHasCapacity(pass, decl) {
		pass.Reportf(call.Pos(), "append grows %s, declared without capacity, in hot path (preallocate with make(_, 0, n))", id.Name)
	}
}

// localSliceDecl finds the expression (or nil for a bare var) that
// initializes obj inside fd. found is false when obj is not declared in
// fd's body (a parameter, field, or package variable).
func localSliceDecl(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) (init ast.Expr, found bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && pass.Info.Defs[lid] == obj {
					if len(st.Rhs) == len(st.Lhs) {
						init, found = st.Rhs[i], true
					} else {
						// Multi-value assignment: capacity unknowable here.
						init, found = nil, false
					}
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if pass.Info.Defs[name] == obj {
					if i < len(st.Values) {
						init, found = st.Values[i], true
					} else {
						init, found = nil, true // var x []T — zero value, no capacity
					}
					return false
				}
			}
		}
		return true
	})
	return init, found
}

// declHasCapacity classifies the initializer: make with an explicit
// capacity or a non-empty literal counts as capacity; anything we cannot
// prove capacity-less (other calls, conversions) also passes.
func declHasCapacity(pass *analysis.Pass, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case nil:
		return false // var x []T
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	case *ast.CallExpr:
		if obj := calleeObj(pass.Info, e); isBuiltin(obj) && obj.Name() == "make" {
			return len(e.Args) >= 3
		}
		return true
	default:
		return true
	}
}
