package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Run loads each fixture package under filepath.Join(testdata, "src"),
// applies the analyzer, and reports every mismatch between its
// diagnostics and the fixtures' // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, pkg, diags)
	}
}

// loader resolves fixture packages GOPATH-style under srcDir, falling
// back to the standard library importer for everything else.
type loader struct {
	srcDir string
	fset   *token.FileSet
	table  map[string]*types.Package
	std    types.ImporterFrom
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcDir: srcDir,
		fset:   fset,
		table:  make(map[string]*types.Package),
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// load parses and type-checks the fixture package at the import path.
func (ld *loader) load(path string) (*analysis.Package, error) {
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	sort.Strings(fileNames)
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	files := make([]*ast.File, 0, len(fileNames))
	for _, name := range fileNames {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking fixture %s:\n%s", path, strings.Join(typeErrs, "\n"))
	}
	return &analysis.Package{
		Path:      path,
		Dir:       dir,
		Fset:      ld.fset,
		Files:     files,
		FileNames: fileNames,
		Types:     tpkg,
		Info:      info,
	}, nil
}

func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ld.table[path]; ok {
		return pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.srcDir, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		ld.table[path] = pkg.Types
		return pkg.Types, nil
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// want is one parsed expectation: a regexp the diagnostic message on the
// expectation's line must match.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, raw := range parseQuoted(c.Text[idx+len("// want "):]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// parseQuoted extracts the sequence of Go string literals ("..." or
// `...`) that follows a want marker.
func parseQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" || (s[0] != '"' && s[0] != '`') {
			return out
		}
		lit, err := strconv.QuotedPrefix(s)
		if err != nil {
			return out
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return out
		}
		out = append(out, unq)
		s = s[len(lit):]
	}
}
