// Package analysistest runs an internal/lint/analysis analyzer over
// fixture packages and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<importpath>/ and are resolved
// GOPATH-style: an import inside a fixture first looks for another
// fixture directory of that path (so fixtures can stub project packages
// such as repro/internal/sinr), then falls back to the standard library.
// An expectation is a comment of the form
//
//	x := f() // want "regexp" "another regexp"
//
// attached to the line the diagnostic must appear on. Every diagnostic
// must be matched by an expectation and vice versa. Diagnostics pass
// through the same //oblint:ignore suppression as cmd/oblint, so
// fixtures can demonstrate the suppression path itself.
package analysistest
