package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotPath, "hotpath")
}

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxLoop, "ctxloop")
}

func TestTrackerReset(t *testing.T) {
	analysistest.Run(t, "testdata", lint.TrackerReset, "trackerreset")
}

func TestRegistryHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", lint.RegistryHygiene,
		"reg", "repro/internal/nodoc", "repro/internal/withdoc")
}

func TestBenchGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lint.BenchGuard, "benchguard")
}

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ObsGuard, "obsguard")
}
