package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxLoop enforces the cancellation contract of exported context-aware
// entry points (the PR-1 post-review fix): every top-level loop that can
// scale with the instance size must poll the context — directly, through
// a select on ctx.Done(), by passing ctx to a callee, or via a local
// closure that does.
//
// Loops bounded by a constant are exempt (they cannot scale with n), as
// are loops containing no calls and no nested loops (a bare O(n) sweep
// finishes fast). Nested loops are covered by their outermost ancestor:
// one poll per outer iteration is the project's granularity.
var CtxLoop = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "require exported functions taking a context.Context to poll the context " +
		"inside every non-constant top-level loop that does real work",
	Run: runCtxLoop,
}

func runCtxLoop(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !hasContextParam(pass, fd) {
				continue
			}
			closures := localClosures(pass, fd)
			for _, loop := range topLevelLoops(fd.Body) {
				if constantBound(pass, loop) || !loopDoesWork(pass, loop) {
					continue
				}
				if loopTouchesContext(pass, loop, closures) {
					continue
				}
				pass.Reportf(loop.Pos(),
					"loop in exported context-aware function %s never polls ctx (check ctx.Err or select on ctx.Done each iteration)",
					funcName(fd))
			}
		}
	}
	return nil
}

func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && isContext(tv.Type) {
			return true
		}
	}
	return false
}

// localClosures maps local variables to the function literals bound to
// them, so a loop that delegates its ctx poll to a helper closure (the
// solveOnline tick() pattern) is recognized one level deep.
func localClosures(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = lit
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					bind(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					bind(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// topLevelLoops collects the outermost for/range statements of body,
// descending through every non-loop construct including function
// literals, but never into a loop body.
func topLevelLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false
		}
		return true
	})
	return loops
}

// constantBound reports loops whose trip count is a compile-time
// constant: for i := 0; i < 8; i++ and for range k with constant k. The
// non-constant side must be a plain identifier (the induction variable) —
// a condition like len(remaining) > 0 compares against a constant but
// its trip count scales with the instance, so it is not exempt.
func constantBound(pass *analysis.Pass, loop ast.Stmt) bool {
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[ast.Unparen(e)]
		return ok && tv.Value != nil
	}
	isIdent := func(e ast.Expr) bool {
		_, ok := ast.Unparen(e).(*ast.Ident)
		return ok
	}
	switch l := loop.(type) {
	case *ast.ForStmt:
		cond, ok := ast.Unparen(l.Cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch cond.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			return (isConst(cond.X) && isIdent(cond.Y)) || (isConst(cond.Y) && isIdent(cond.X))
		}
	case *ast.RangeStmt:
		return isConst(l.X)
	}
	return false
}

// loopDoesWork reports whether the loop contains a non-builtin call or a
// nested loop — the shapes whose per-iteration cost can be unbounded.
func loopDoesWork(pass *analysis.Pass, loop ast.Stmt) bool {
	work := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if work {
			return false
		}
		switch nn := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n != loop {
				work = true
			}
		case *ast.CallExpr:
			if obj := calleeObj(pass.Info, nn); obj == nil || !isBuiltin(obj) {
				work = true
			}
		}
		return !work
	})
	return work
}

// loopTouchesContext reports whether the loop subtree references any
// context.Context-typed value, or calls a local closure that does.
func loopTouchesContext(pass *analysis.Pass, loop ast.Stmt, closures map[types.Object]*ast.FuncLit) bool {
	found := false
	visited := make(map[*ast.FuncLit]bool)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[nn]; obj != nil && isContext(obj.Type()) {
				found = true
			}
		case *ast.SelectorExpr:
			if tv, ok := pass.Info.Types[nn]; ok && isContext(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
				if lit, ok := closures[pass.Info.Uses[id]]; ok && !visited[lit] {
					visited[lit] = true
					ast.Inspect(lit, visit)
				}
			}
		}
		return !found
	}
	ast.Inspect(loop, visit)
	return found
}
