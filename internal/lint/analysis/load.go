package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked unit produced by Load: a package
// with its in-package test files, or an external test package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	FileNames []string
	Types     *types.Package
	Info      *types.Info
	IsTest    bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Deps         []string
	Error        *struct{ Err string }
}

// Load resolves patterns with `go list` run in dir and type-checks every
// matched package offline through the standard library's source importer
// (which shells out to go/build for path resolution, so module-local
// import paths work without a network or a populated module cache). Each
// package yields one unit covering its GoFiles and TestGoFiles, plus a
// second unit for its external test package when present.
//
// Checking runs in two phases, mirroring how the go tool builds test
// variants. Phase one checks every listed package's non-test files in
// dependency order and registers the result in a shared import table, so
// listed packages always resolve each other to the same *types.Package
// (test-file imports are not part of `go list`'s Deps order, so a
// single-phase load would let the source importer shadow listed packages
// with private copies and break type identity). Phase two re-checks each
// package together with its in-package test files as the unit analyzers
// see, and checks the external test unit against that test variant.
// Unlisted dependencies are resolved by the source importer; analyzers
// must therefore compare types by package path and name, never by object
// identity across packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}
	var listed []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which the offline loader does not support", lp.ImportPath)
		}
		listed = append(listed, lp)
	}
	// If A imports B then Deps(A) strictly contains Deps(B) ∪ {B}, so
	// ordering by dependency count is a valid topological order.
	sort.SliceStable(listed, func(i, j int) bool { return len(listed[i].Deps) < len(listed[j].Deps) })

	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("source importer does not implement types.ImporterFrom")
	}
	imp := &tableImporter{table: make(map[string]*types.Package), fallback: src}

	// Phase one: non-test files only, dependency order, into the table.
	baseUnits := make(map[string]*Package, len(listed))
	for _, lp := range listed {
		base, err := checkUnit(fset, imp, lp.Dir, lp.ImportPath, lp.GoFiles, false)
		if err != nil {
			return nil, err
		}
		imp.table[lp.ImportPath] = base.Types
		baseUnits[lp.ImportPath] = base
	}

	// Phase two: the analyzed units. The table is complete, so order no
	// longer matters; test-variant units are kept out of the table (a
	// package's test files are invisible to other packages), except that
	// the external test unit must see its own package's test variant.
	var pkgs []*Package
	for _, lp := range listed {
		unit := baseUnits[lp.ImportPath]
		if len(lp.TestGoFiles) > 0 {
			withTests := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
			var err error
			unit, err = checkUnit(fset, imp, lp.Dir, lp.ImportPath, withTests, false)
			if err != nil {
				return nil, err
			}
		}
		pkgs = append(pkgs, unit)
		if len(lp.XTestGoFiles) > 0 {
			ximp := &tableImporter{
				table:    map[string]*types.Package{lp.ImportPath: unit.Types},
				fallback: imp,
			}
			xt, err := checkUnit(fset, ximp, lp.Dir, lp.ImportPath+"_test", lp.XTestGoFiles, true)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// checkUnit parses and type-checks one file set as the package at path.
func checkUnit(fset *token.FileSet, imp types.Importer, dir, path string, fileNames []string, isTest bool) (*Package, error) {
	files := make([]*ast.File, 0, len(fileNames))
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, errors.Join(typeErrs...))
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		FileNames: fileNames,
		Types:     tpkg,
		Info:      info,
		IsTest:    isTest,
	}, nil
}

// NewInfo allocates a types.Info with every table analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// tableImporter resolves already-checked units from the shared table and
// delegates everything else to the source importer.
type tableImporter struct {
	table    map[string]*types.Package
	fallback types.ImporterFrom
}

func (t *tableImporter) Import(path string) (*types.Package, error) {
	return t.ImportFrom(path, "", 0)
}

func (t *tableImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := t.table[path]; ok {
		return pkg, nil
	}
	return t.fallback.ImportFrom(path, dir, mode)
}
