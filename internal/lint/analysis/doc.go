// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// plus a loader that type-checks module packages offline through the
// standard library's source importer.
//
// The project's invariant analyzers (package internal/lint) are written
// against this API on purpose: it mirrors go/analysis closely enough that
// migrating to the real framework (and go vet -vettool) is a mechanical
// search-and-replace once golang.org/x/tools is available to the build,
// while keeping the linter runnable in hermetic environments where it is
// not.
//
// Beyond the x/tools shape, the package owns the oblint directive
// conventions shared by every analyzer:
//
//	//oblint:hotpath        — marks a function as allocation/dispatch
//	                          sensitive (consumed by the hotpath analyzer)
//	//oblint:ignore reason  — suppresses any oblint diagnostic reported on
//	                          the directive's line or the line below; the
//	                          reason is mandatory
//	//oblint:fresh reason   — trackerreset-specific: asserts a tracker is
//	                          known fresh (or intentionally extended) at
//	                          this acquisition or Add site
//
// Suppression is applied centrally by RunAnalyzers, so the driver
// (cmd/oblint) and the analysistest harness agree on it by construction.
package analysis
