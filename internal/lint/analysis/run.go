package analysis

import (
	"fmt"
	"sort"
)

// RunAnalyzers applies every analyzer to every package unit, applies the
// //oblint:ignore suppression rules, and returns the surviving
// diagnostics sorted by position.
//
// Suppression is positional: an ignore directive cancels any diagnostic
// reported on its own line or on the line directly below (so the
// directive can sit at the end of the offending line or on its own line
// above it). An ignore without a reason suppresses nothing and is itself
// reported, as is a directive with an unknown name — typos must not
// silently disable the lint.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				PkgPath:   pkg.Path,
				Dir:       pkg.Dir,
				FileNames: pkg.FileNames,
				IsTest:    pkg.IsTest,
				report:    sink,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	type lineKey struct {
		file string
		line int
	}
	suppressed := make(map[lineKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range Directives(pkg.Fset, f) {
				pos := pkg.Fset.Position(d.Pos)
				switch d.Name {
				case "ignore":
					if d.Arg == "" {
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "oblint",
							Message: "//oblint:ignore requires a reason"})
						continue
					}
					suppressed[lineKey{pos.Filename, pos.Line}] = true
					suppressed[lineKey{pos.Filename, pos.Line + 1}] = true
				case "hotpath", "fresh":
					// Consumed by individual analyzers.
				default:
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "oblint",
						Message: fmt.Sprintf("unknown directive //oblint:%s", d.Name)})
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "oblint" && suppressed[lineKey{d.Pos.Filename, d.Pos.Line}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept, nil
}
