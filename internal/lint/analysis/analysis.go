package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass and how to run it. The shape
// mirrors golang.org/x/tools/go/analysis.Analyzer so analyzers written
// against it port mechanically.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters. It
	// must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks,
	// shown by cmd/oblint -list.
	Doc string

	// Run applies the analyzer to a single package unit. Diagnostics are
	// reported through the pass; a non-nil error aborts the whole run
	// (reserve it for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked view of one
// package unit plus the report sink. A "unit" is either a package
// together with its in-package test files, or the external test package
// (pkg_test) on its own.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions. It is shared
	// by every unit of a load, so positions from imported packages resolve
	// too.
	Fset *token.FileSet

	// Files are the parsed source files of the unit, with comments.
	Files []*ast.File

	// Pkg and Info are the type-checked package and the associated
	// use/def/selection tables for Files.
	Pkg  *types.Package
	Info *types.Info

	// PkgPath is the import path of the unit ("repro/internal/affect",
	// or "repro/internal/affect_test" for an external test unit).
	PkgPath string

	// Dir is the package directory on disk.
	Dir string

	// FileNames are the base names of the files in Files, index-aligned.
	FileNames []string

	// IsTest reports whether this unit is an external test package.
	IsTest bool

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a resolved source position, the analyzer
// that produced it, and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in oblint's canonical output format,
// pinned by cmd/oblint's golden test:
//
//	path/to/file.go:12:3: [hotpath] message
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
