package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one //oblint:NAME [arg...] comment, located by the line
// it appears on.
type Directive struct {
	Pos  token.Pos
	Line int
	Name string
	Arg  string
}

const directivePrefix = "//oblint:"

// Directives scans every comment of f for oblint directives. A trailing
// "// want" clause (the analysistest expectation syntax, which shares the
// line comment) is not part of the directive argument and is stripped.
func Directives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			if i := strings.Index(text, "// want"); i >= 0 {
				text = text[:i]
			}
			name, arg, _ := strings.Cut(text, " ")
			out = append(out, Directive{
				Pos:  c.Slash,
				Line: fset.Position(c.Slash).Line,
				Name: name,
				Arg:  strings.TrimSpace(arg),
			})
		}
	}
	return out
}

// HasDirective reports whether the comment group (typically a declaration
// doc comment) carries //oblint:name.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix+name)
		if ok && (rest == "" || strings.HasPrefix(rest, " ")) {
			return true
		}
	}
	return false
}
