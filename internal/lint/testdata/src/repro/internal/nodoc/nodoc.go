package nodoc // want "internal package repro/internal/nodoc has no doc.go"

// V exists so the package is not empty.
var V int
