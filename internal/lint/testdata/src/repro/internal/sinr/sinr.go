// Package sinr is a fixture stub of the tracker contract: the analyzers
// match types by package path and name, so this stub stands in for
// repro/internal/sinr.
package sinr

// SetTracker is the incremental feasibility tracker interface.
type SetTracker interface {
	Reset()
	Add(i int)
	CanAdd(i int) bool
	Members() []int
}

type nopTracker struct{}

func (nopTracker) Reset()          {}
func (nopTracker) Add(int)         {}
func (nopTracker) CanAdd(int) bool { return true }
func (nopTracker) Members() []int  { return nil }

// NewSetTracker returns a fresh, empty tracker.
func NewSetTracker() SetTracker { return nopTracker{} }
