// Package obs is a fixture stub of the observability contract: the
// obsguard analyzer matches types by package path and name, so this stub
// stands in for repro/internal/obs.
package obs

import "context"

// Event is one engine event.
type Event struct {
	Type string
}

// Collector is the metrics and event hub.
type Collector struct{}

// Enabled reports whether the collector is non-nil.
func (c *Collector) Enabled() bool { return c != nil }

// Tracing reports whether a sink is attached.
func (c *Collector) Tracing() bool { return c != nil }

// Emit forwards an event to the sinks.
func (c *Collector) Emit(Event) {}

// StartSpan opens a span on the collector.
func (c *Collector) StartSpan(string) *Span { return &Span{} }

// Span is one timed phase.
type Span struct{}

// End closes the span.
func (s *Span) End() {}

// Start opens a span on the context's collector.
func Start(ctx context.Context, _ string) (context.Context, *Span) {
	return ctx, &Span{}
}
