// Package geom is a fixture stub of the real metric interface: the
// analyzers match types by package path and name, so this stub stands in
// for repro/internal/geom.
package geom

// Metric is the devirtualizable metric interface.
type Metric interface {
	Dist(u, v int) float64
	N() int
}

// DistFunc devirtualizes m.
func DistFunc(m Metric) func(u, v int) float64 {
	return m.Dist
}
