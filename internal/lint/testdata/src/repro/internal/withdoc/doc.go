// Package withdoc carries a doc.go, so registryhygiene stays quiet.
package withdoc
