package withdoc

// V exists so the package is not empty.
var V int
