// Package ctxloop exercises the ctxloop analyzer. SqrtLPColoringCtx
// reproduces the PR-1 regression verbatim: the outer color loop ran LP
// rounds without ever polling ctx, and the post-review fix added the
// ctx.Err check at the top of every round.
package ctxloop

import "context"

type instance struct{ lens []float64 }

func (in *instance) n() int { return len(in.lens) }

func algorithmA(in *instance, remaining []int) []int {
	if len(remaining) == 0 {
		return nil
	}
	return remaining[:1]
}

// SqrtLPColoringCtx is the regression: an exported context-aware entry
// point whose color loop never polls ctx.
func SqrtLPColoringCtx(ctx context.Context, in *instance) ([][]int, error) {
	remaining := make([]int, in.n())
	for i := range remaining {
		remaining[i] = i
	}
	var classes [][]int
	for color := 0; len(remaining) > 0; color++ { // want "never polls ctx"
		class := algorithmA(in, remaining)
		classes = append(classes, class)
		remaining = remaining[len(class):]
	}
	return classes, nil
}

// SqrtLPColoringCtxFixed is the post-review shape: ctx.Err checked before
// every round.
func SqrtLPColoringCtxFixed(ctx context.Context, in *instance) ([][]int, error) {
	remaining := make([]int, in.n())
	for i := range remaining {
		remaining[i] = i
	}
	var classes [][]int
	for color := 0; len(remaining) > 0; color++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		class := algorithmA(in, remaining)
		classes = append(classes, class)
		remaining = remaining[len(class):]
	}
	return classes, nil
}

// RunContext delegates the poll to a local closure (the solveOnline tick
// pattern): resolved one level deep.
func RunContext(ctx context.Context, in *instance) error {
	tick := func() error { return ctx.Err() }
	for i := 0; i < in.n(); i++ {
		if err := tick(); err != nil {
			return err
		}
		algorithmA(in, nil)
	}
	return nil
}

// Select polls through a select on ctx.Done.
func Select(ctx context.Context, ch chan int, in *instance) error {
	for i := 0; i < in.n(); i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case v := <-ch:
			algorithmA(in, []int{v})
		}
	}
	return nil
}

// ConstBound loops a fixed number of times: exempt, it cannot scale with
// the instance.
func ConstBound(ctx context.Context, in *instance) {
	for i := 0; i < 8; i++ {
		algorithmA(in, nil)
	}
}

// NoWork sweeps without calling anything: exempt.
func NoWork(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// quietLoop is unexported: entry-point polling is its exported callers'
// job.
func quietLoop(ctx context.Context, in *instance) {
	for i := 0; i < in.n(); i++ {
		algorithmA(in, nil)
	}
}

// LevelWaveCtx mirrors the pipeline's stage-3 wave loop: frames fan out
// per recursion level and the poll at the top of every level keeps
// cancellation latency at one level, not one full decomposition.
func LevelWaveCtx(ctx context.Context, in *instance) error {
	wave := make([]int, in.n())
	for depth := 1; len(wave) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := wave[:0]
		for _, f := range wave {
			if len(algorithmA(in, []int{f})) > 1 {
				next = append(next, f)
			}
		}
		wave = next
	}
	return nil
}

// LevelWaveCtxUnpolled is the pre-fix stage-3 shape: the level loop does
// per-frame work but never checks the context.
func LevelWaveCtxUnpolled(ctx context.Context, in *instance) error {
	wave := make([]int, in.n())
	for depth := 1; len(wave) > 0; depth++ { // want "never polls ctx"
		next := wave[:0]
		for _, f := range wave {
			if len(algorithmA(in, []int{f})) > 1 {
				next = append(next, f)
			}
		}
		wave = next
	}
	return nil
}

// ThinRoundsCtx mirrors the stage-5 thinning loop: one feasibility check
// and one removal per round, ctx polled at the top of each round.
func ThinRoundsCtx(ctx context.Context, in *instance, set []int) ([]int, error) {
	cur := set
	for len(cur) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(algorithmA(in, cur)) == len(cur) {
			return cur, nil
		}
		cur = cur[:len(cur)-1]
	}
	return cur, nil
}

// ThinRoundsCtxUnpolled is the pre-fix stage-5 shape: removal rounds that
// can run for thousands of iterations without a poll.
func ThinRoundsCtxUnpolled(ctx context.Context, in *instance, set []int) ([]int, error) {
	cur := set
	for len(cur) > 0 { // want "never polls ctx"
		if len(algorithmA(in, cur)) == len(cur) {
			return cur, nil
		}
		cur = cur[:len(cur)-1]
	}
	return cur, nil
}
