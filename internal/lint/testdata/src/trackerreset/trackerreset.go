// Package trackerreset exercises the trackerreset analyzer: pooled
// trackers must be Reset before re-Add, with fresh construction and the
// //oblint:fresh escape hatch at its three attachment points.
package trackerreset

import "repro/internal/sinr"

type pool struct{ free []sinr.SetTracker }

func (p *pool) get() sinr.SetTracker {
	tr := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return tr
}

// reuseWithoutReset re-populates a pooled tracker raw: the violation.
func reuseWithoutReset(p *pool, items []int) {
	tr := p.get()
	for _, i := range items {
		tr.Add(i) // want "without Reset"
	}
}

// reuseWithReset follows the recycling contract.
func reuseWithReset(p *pool, items []int) {
	tr := p.get()
	tr.Reset()
	for _, i := range items {
		tr.Add(i)
	}
}

// freshConstructed needs no Reset: the constructor result is empty.
func freshConstructed(items []int) []int {
	tr := sinr.NewSetTracker()
	for _, i := range items {
		tr.Add(i)
	}
	return tr.Members()
}

// chained constructor calls are fresh by construction.
func chained(i int) {
	sinr.NewSetTracker().Add(i)
}

// freshAtAcquisition annotates the acquisition statement.
func freshAtAcquisition(p *pool, items []int) {
	tr := p.get() //oblint:fresh fixture: this pool Resets on put, not on get
	for _, i := range items {
		tr.Add(i)
	}
}

// freshAtAdd annotates the Add site itself.
func freshAtAdd(p *pool, i int) {
	tr := p.get()
	tr.Add(i) //oblint:fresh fixture: extending a live class

	tr.Add(i + 1) // want "without Reset"
}

// freshFunc uses the function-level escape hatch.
//
//oblint:fresh fixture: every tracker this helper touches is fresh by protocol
func freshFunc(p *pool, i int) {
	tr := p.get()
	tr.Add(i)
}

// wrapper models the faultinject.Tracker shape: a decorator holding the
// tracker it forwards to.
type wrapper struct{ inner sinr.SetTracker }

// Add is a pass-through, not a population site: the freshness
// obligation travels with the tracker handed into the wrapper.
func (w *wrapper) Add(i int) { w.inner.Add(i) }

// fill is NOT a pass-through — the method is not itself named Add, so
// the wrapper is re-populating its tracker and owes a Reset.
func (w *wrapper) fill(items []int) {
	for _, i := range items {
		w.inner.Add(i) // want "without Reset"
	}
}

type leaky struct{ inner sinr.SetTracker }

// Add on a tracker that is not a field of the receiver is still
// checked, even inside a method named Add.
func (l *leaky) Add(tr sinr.SetTracker, i int) {
	tr.Add(i) // want "without Reset"
}

// newTracker models the engine's pooled acquisition: recycled trackers
// are Reset on the way in, so the result is fresh by contract — the
// hand-off site Arrive and checkpoint Restore share.
func (p *pool) newTracker() sinr.SetTracker {
	tr := p.get()
	tr.Reset()
	return tr
}

// restoreSlots replays checkpointed membership through the pooled
// hand-off: no Reset needed at the call site.
func restoreSlots(p *pool, slots [][]int) {
	for _, members := range slots {
		tr := p.newTracker()
		for _, i := range members {
			tr.Add(i)
		}
	}
}
