// Package hotpath exercises the hotpath analyzer: math.Pow, fmt
// allocation, capacity-less append growth, and devirtualizable interface
// dispatch inside annotated functions, plus the //oblint:ignore
// suppression path.
package hotpath

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// pow is annotated hot and misuses math.Pow.
//
//oblint:hotpath
func pow(d, a float64) float64 {
	return math.Pow(d, a) // want "math.Pow in hot path"
}

// coldPow is not annotated, so anything goes.
func coldPow(d, a float64) float64 {
	return math.Pow(d, a)
}

// format allocates through fmt per iteration; the panic argument at the
// end is exempt.
//
//oblint:hotpath
func format(names []string) string {
	out := ""
	for _, n := range names {
		out = fmt.Sprintf("%s,%s", out, n) // want "fmt.Sprintf allocates in hot path"
	}
	if out == "" {
		panic(fmt.Sprintf("empty input %v", names))
	}
	return out
}

// grow demonstrates the append rule: flagged without capacity, clean with
// one, and suppressible with a reasoned ignore.
//
//oblint:hotpath
func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append grows out"
	}
	with := make([]int, 0, len(xs))
	for _, x := range xs {
		with = append(with, x)
	}
	var cold []int
	for _, x := range xs {
		cold = append(cold, x) //oblint:ignore fixture: demonstrating the suppression path
	}
	_ = cold
	return append(with, out...)
}

// dispatch pays interface dispatch per pair; the devirtualized closure is
// the sanctioned form.
//
//oblint:hotpath
func dispatch(m geom.Metric, n int) float64 {
	sum := 0.0
	f := geom.DistFunc(m)
	for u := 0; u < n; u++ {
		sum += m.Dist(u, 0) // want "interface dispatch of Metric.Dist"
		sum += f(u, 0)
	}
	return sum
}

// badDirectives carries a reason-less ignore and a typoed directive, both
// reported by the runner itself.
func badDirectives() {
	//oblint:ignore // want "requires a reason"
	//oblint:hotpat // want `unknown directive //oblint:hotpat`
}
