// Package obsguard exercises the obsguard analyzer: acquired spans must
// be Ended on every return path (defer, or a call on every path), and
// Collector.Emit inside //oblint:hotpath functions must sit behind an
// Enabled or Tracing guard.
package obsguard

import (
	"context"
	"errors"

	"repro/internal/obs"
)

// deferred is the sanctioned form: acquire, defer End.
func deferred(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "stage")
	defer sp.End()
	_ = ctx
	return nil
}

// deferredClosure Ends through a deferred closure, which also counts.
func deferredClosure(ctx context.Context) {
	_, sp := obs.Start(ctx, "stage")
	defer func() { sp.End() }()
}

// bothBranches Ends explicitly on every path; no defer required.
func bothBranches(col *obs.Collector, n int) int {
	sp := col.StartSpan("build")
	if n > 0 {
		sp.End()
		return n
	}
	sp.End()
	return 0
}

// earlyReturn leaks the span on the error path.
func earlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "stage")
	if fail {
		return errors.New("fail") // want "span sp not Ended on this path"
	}
	sp.End()
	return nil
}

// fallThrough Ends on one branch only and falls off the end.
func fallThrough(col *obs.Collector, n int) {
	sp := col.StartSpan("build") // want "not Ended before the function falls through"
	if n > 0 {
		sp.End()
	}
}

// loopReturn returns from inside a loop with the span still open.
func loopReturn(col *obs.Collector, xs []int) int {
	sp := col.StartSpan("scan")
	for _, x := range xs {
		if x < 0 {
			return x // want "span sp not Ended on this path"
		}
	}
	sp.End()
	return 0
}

// discard throws the span away at acquisition; it can never be Ended.
func discard(ctx context.Context) {
	_, _ = obs.Start(ctx, "stage") // want "acquired and discarded"
}

// handoff returns the span; the caller owns the End, so no diagnostic.
func handoff(col *obs.Collector) *obs.Span {
	sp := col.StartSpan("build")
	return sp
}

// litSpan acquires inside a function literal; each literal is analyzed
// as its own scope with its own return paths.
func litSpan(col *obs.Collector) {
	f := func(n int) {
		sp := col.StartSpan("inner") // want "not Ended before the function falls through"
		if n > 0 {
			sp.End()
		}
	}
	f(1)
}

// hotEmit is annotated hot: the bare Emit pays event construction even
// with no sink attached; the guarded forms are the sanctioned shape.
//
//oblint:hotpath
func hotEmit(col *obs.Collector, ev obs.Event) {
	col.Emit(ev) // want "unguarded Emit in hot path"
	if col.Tracing() {
		col.Emit(ev)
	}
	if ev.Type != "" && col.Enabled() {
		col.Emit(ev)
	}
}

// coldEmit is unannotated; bare Emits are fine off the hot path.
func coldEmit(col *obs.Collector, ev obs.Event) {
	col.Emit(ev)
}
