// Package benchguard exercises the benchguard analyzer: setup before the
// timed b.N loop must be neutralized by b.ResetTimer or a stopped timer,
// for b.Loop is self-timing, and benchmarks without a b.N loop are
// delegators.
package benchguard

import "testing"

func expensiveSetup() []int {
	return make([]int, 1024)
}

func work(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// BenchmarkBad times its own setup.
func BenchmarkBad(b *testing.B) {
	xs := expensiveSetup()
	for i := 0; i < b.N; i++ { // want "without b.ResetTimer"
		work(xs)
	}
}

// BenchmarkRange ranges over b.N and times its setup too.
func BenchmarkRange(b *testing.B) {
	xs := expensiveSetup()
	for range b.N { // want "without b.ResetTimer"
		work(xs)
	}
}

// BenchmarkReset neutralizes the setup.
func BenchmarkReset(b *testing.B) {
	xs := expensiveSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work(xs)
	}
}

// BenchmarkStopStart brackets the setup in a stopped timer.
func BenchmarkStopStart(b *testing.B) {
	b.StopTimer()
	xs := expensiveSetup()
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		work(xs)
	}
}

// BenchmarkLoop uses the self-timing loop helper.
func BenchmarkLoop(b *testing.B) {
	xs := expensiveSetup()
	for b.Loop() {
		work(xs)
	}
}

// BenchmarkDelegate has no timed loop of its own; its sub-benchmark
// literals are checked individually.
func BenchmarkDelegate(b *testing.B) {
	xs := expensiveSetup()
	b.Run("clean", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work(xs)
		}
	})
	b.Run("dirty", func(b *testing.B) {
		ys := expensiveSetup()
		for i := 0; i < b.N; i++ { // want "sub-benchmark does setup"
			work(ys)
		}
	})
}
