// Package reg exercises the registryhygiene Register discipline against
// local stubs of the root package's Register/NewSolver pair.
package reg

// Solver is the registrable interface.
type Solver interface{ Name() string }

type fnSolver struct{ name string }

func (s fnSolver) Name() string { return s.name }

// NewSolver wraps a solve func; in the real package this wrapper is what
// backfills Stats.Engine.
func NewSolver(name string, fn func() int) Solver { return fnSolver{name: name} }

// Register records a solver under name.
func Register(name string, s Solver) {}

func solveGreedy() int { return 0 }

func init() {
	Register("greedy", NewSolver("greedy", solveGreedy))
	Register("lp", NewSolver("lq", solveGreedy)) // want `Register\("lp"\) wraps NewSolver\("lq"\)`
	Register("raw", fnSolver{name: "raw"})       // want "without NewSolver"
	Register("quiet", fnSolver{name: "quiet"})   //oblint:ignore fixture: demonstrating suppression on a registry finding
}
