package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a packing LP: maximize C·x subject to A x ≤ B and 0 ≤ x ≤ 1.
// Upper bounds x_j ≤ 1 are implicit and handled internally.
type Problem struct {
	// C is the objective vector (length = number of variables).
	C []float64
	// A is the constraint matrix, row-major; may be empty.
	A [][]float64
	// B is the right-hand side (length = len(A)).
	B []float64
}

// Solution carries the optimum of a Problem.
type Solution struct {
	// X is the optimal primal point.
	X []float64
	// Value is C·X.
	Value float64
	// Iterations is the number of simplex pivots performed.
	Iterations int
}

var (
	// ErrBadShape indicates inconsistent dimensions in the problem.
	ErrBadShape = errors.New("lp: inconsistent problem dimensions")
	// ErrNotPacking indicates a negative coefficient or right-hand side,
	// which this specialized solver does not support.
	ErrNotPacking = errors.New("lp: negative entry; solver requires a packing LP")
	// ErrIterationLimit indicates the pivot limit was exceeded.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
)

const (
	pivotEps = 1e-10
	costEps  = 1e-9
)

// Solve optimizes the packing LP. The number of pivots is bounded by
// maxIter; pass 0 for a generous default.
func Solve(p Problem, maxIter int) (*Solution, error) {
	n := len(p.C)
	if n == 0 {
		return nil, fmt.Errorf("%w: no variables", ErrBadShape)
	}
	if len(p.A) != len(p.B) {
		return nil, fmt.Errorf("%w: %d rows, %d rhs entries", ErrBadShape, len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadShape, i, len(row), n)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: A[%d][%d]=%g", ErrNotPacking, i, j, v)
			}
		}
		if p.B[i] < 0 || math.IsNaN(p.B[i]) || math.IsInf(p.B[i], 0) {
			return nil, fmt.Errorf("%w: b[%d]=%g", ErrNotPacking, i, p.B[i])
		}
	}
	for j, v := range p.C {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: c[%d]=%g", ErrBadShape, j, v)
		}
	}
	if maxIter <= 0 {
		maxIter = 200 * (n + len(p.A) + 16)
	}

	// Tableau with rows = packing constraints + n upper-bound rows, and
	// columns = n structural variables + m slack variables + rhs.
	m := len(p.A) + n
	cols := n + m + 1
	t := make([][]float64, m+1) // last row is the objective
	for i := 0; i < len(p.A); i++ {
		row := make([]float64, cols)
		copy(row, p.A[i])
		row[n+i] = 1
		row[cols-1] = p.B[i]
		t[i] = row
	}
	for j := 0; j < n; j++ {
		row := make([]float64, cols)
		row[j] = 1
		row[n+len(p.A)+j] = 1
		row[cols-1] = 1
		t[len(p.A)+j] = row
	}
	obj := make([]float64, cols)
	for j := 0; j < n; j++ {
		obj[j] = -p.C[j] // minimize -c·x
	}
	t[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	var iters int
	for ; iters < maxIter; iters++ {
		// Entering variable: Bland's rule (lowest index with negative
		// reduced cost).
		enter := -1
		for j := 0; j < n+m; j++ {
			if t[m][j] < -costEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test with Bland tie-breaking on the leaving basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][enter]
			if a <= pivotEps {
				continue
			}
			r := t[i][cols-1] / a
			if r < bestRatio-pivotEps || (math.Abs(r-bestRatio) <= pivotEps && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = r
				leave = i
			}
		}
		if leave < 0 {
			// Unbounded cannot happen with the box constraints, but guard.
			return nil, errors.New("lp: unbounded (internal error)")
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}
	if iters >= maxIter {
		return nil, ErrIterationLimit
	}

	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t[i][cols-1]
		}
	}
	var val float64
	for j := 0; j < n; j++ {
		// Clamp tiny numerical noise into the box.
		if x[j] < 0 {
			x[j] = 0
		}
		if x[j] > 1 {
			x[j] = 1
		}
		val += p.C[j] * x[j]
	}
	return &Solution{X: x, Value: val, Iterations: iters}, nil
}

// pivot performs a Gauss-Jordan pivot on t[row][col].
func pivot(t [][]float64, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	pr[col] = 1 // exact
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		ri := t[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
}
