// Package lp implements a small dense primal simplex solver for the
// packing linear programs used by the paper's coloring algorithm
// (Theorem 15):
//
//	maximize    c·x
//	subject to  A x ≤ b,  0 ≤ x ≤ 1
//
// with A ≥ 0 and b ≥ 0, so the origin with slack basis is always feasible
// and no phase-1 is required. Bland's rule guards against cycling. The
// solver is exact enough for randomized-rounding inputs; it is not a
// general-purpose LP library.
//
// Exported entry points: Problem describes the packing LP, Solve returns
// a Solution (optimum value and primal vector). The only caller is the
// per-distance-class selection LP of internal/coloring (Lemma 16).
package lp
