package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestBoxOnly(t *testing.T) {
	// No packing rows: optimum is x = 1 everywhere.
	sol := solveOK(t, Problem{C: []float64{1, 2, 3}})
	if math.Abs(sol.Value-6) > 1e-9 {
		t.Errorf("value = %g, want 6", sol.Value)
	}
	for j, x := range sol.X {
		if math.Abs(x-1) > 1e-9 {
			t.Errorf("x[%d] = %g, want 1", j, x)
		}
	}
}

func TestSingleConstraint(t *testing.T) {
	// max x1+x2 s.t. x1+x2 ≤ 1.
	sol := solveOK(t, Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}},
		B: []float64{1},
	})
	if math.Abs(sol.Value-1) > 1e-9 {
		t.Errorf("value = %g, want 1", sol.Value)
	}
}

func TestWeightedObjective(t *testing.T) {
	// max 3x1+x2 s.t. x1+x2 ≤ 1: all weight on x1.
	sol := solveOK(t, Problem{
		C: []float64{3, 1},
		A: [][]float64{{1, 1}},
		B: []float64{1},
	})
	if math.Abs(sol.Value-3) > 1e-9 {
		t.Errorf("value = %g, want 3", sol.Value)
	}
	if math.Abs(sol.X[0]-1) > 1e-9 {
		t.Errorf("x1 = %g, want 1", sol.X[0])
	}
}

func TestBindingBoxAndRow(t *testing.T) {
	// max x1+x2 s.t. 2x1+x2 ≤ 2. Optimum at x1=0.5... no: x2 ≤ 1 binds,
	// then 2x1 ≤ 1 → x1 = 0.5, value 1.5.
	sol := solveOK(t, Problem{
		C: []float64{1, 1},
		A: [][]float64{{2, 1}},
		B: []float64{2},
	})
	if math.Abs(sol.Value-1.5) > 1e-9 {
		t.Errorf("value = %g, want 1.5", sol.Value)
	}
}

func TestZeroRHSForcesZero(t *testing.T) {
	sol := solveOK(t, Problem{
		C: []float64{5},
		A: [][]float64{{1}},
		B: []float64{0},
	})
	if sol.Value != 0 {
		t.Errorf("value = %g, want 0", sol.Value)
	}
}

func TestMultipleConstraints(t *testing.T) {
	// max x1+x2+x3 s.t. x1+x2 ≤ 1, x2+x3 ≤ 1. Optimum x1=x3=1, x2=0 → 2.
	sol := solveOK(t, Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{{1, 1, 0}, {0, 1, 1}},
		B: []float64{1, 1},
	})
	if math.Abs(sol.Value-2) > 1e-9 {
		t.Errorf("value = %g, want 2", sol.Value)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
		want error
	}{
		{name: "no vars", p: Problem{}, want: ErrBadShape},
		{name: "rhs mismatch", p: Problem{C: []float64{1}, A: [][]float64{{1}}, B: nil}, want: ErrBadShape},
		{name: "ragged row", p: Problem{C: []float64{1, 1}, A: [][]float64{{1}}, B: []float64{1}}, want: ErrBadShape},
		{name: "negative A", p: Problem{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{1}}, want: ErrNotPacking},
		{name: "negative b", p: Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}}, want: ErrNotPacking},
		{name: "NaN c", p: Problem{C: []float64{math.NaN()}}, want: ErrBadShape},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Solve(tc.p, 0)
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestNegativeObjectiveEntriesAllowed(t *testing.T) {
	// Negative objective coefficients are fine: those variables stay 0.
	sol := solveOK(t, Problem{
		C: []float64{-1, 2},
		A: [][]float64{{1, 1}},
		B: []float64{10},
	})
	if math.Abs(sol.Value-2) > 1e-9 {
		t.Errorf("value = %g, want 2", sol.Value)
	}
	if sol.X[0] > 1e-9 {
		t.Errorf("x1 = %g, want 0", sol.X[0])
	}
}

// bruteForceBestSubset returns the best 0/1 objective value satisfying the
// packing constraints, by enumeration.
func bruteForceBestSubset(p Problem) float64 {
	n := len(p.C)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for r := range p.A {
			var s float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					s += p.A[r][j]
				}
			}
			if s > p.B[r]+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var v float64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				v += p.C[j]
			}
		}
		if v > best {
			best = v
		}
	}
	return best
}

// TestLPDominatesIntegral: the fractional optimum of a packing LP is at
// least the best integral (0/1) solution, and the returned point is
// feasible. Random small instances.
func TestLPDominatesIntegral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		rows := r.Intn(5)
		p := Problem{C: make([]float64, n), A: make([][]float64, rows), B: make([]float64, rows)}
		for j := range p.C {
			p.C[j] = r.Float64() * 3
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				if r.Float64() < 0.7 {
					p.A[i][j] = r.Float64() * 2
				}
			}
			p.B[i] = r.Float64() * 3
		}
		sol, err := Solve(p, 0)
		if err != nil {
			return false
		}
		// Feasibility of the returned point.
		for i := range p.A {
			var s float64
			for j := range p.A[i] {
				s += p.A[i][j] * sol.X[j]
			}
			if s > p.B[i]+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 || x > 1+1e-9 {
				return false
			}
		}
		return sol.Value >= bruteForceBestSubset(p)-1e-6
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIterationLimit(t *testing.T) {
	p := Problem{
		C: []float64{1, 1, 1, 1},
		A: [][]float64{{1, 1, 1, 1}},
		B: []float64{2},
	}
	if _, err := Solve(p, 1); !errors.Is(err, ErrIterationLimit) {
		t.Errorf("error = %v, want ErrIterationLimit", err)
	}
}
