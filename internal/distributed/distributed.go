package distributed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/affect"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// Protocol configures the contention scheme. The zero value is invalid;
// use Default.
type Protocol struct {
	// Assignment is the oblivious power assignment every node applies
	// locally (the paper's motivation for obliviousness).
	Assignment power.Assignment
	// InitialProb is the transmission probability of a fresh request.
	InitialProb float64
	// Backoff multiplies a request's probability after a failed attempt
	// (0 < Backoff ≤ 1).
	Backoff float64
	// MinProb floors the transmission probability.
	MinProb float64
	// MaxSlots aborts the simulation (0 means 64·n + 1024).
	MaxSlots int
	// NoCache disables the affectance cache the simulator otherwise
	// attaches for its per-slot SINR success checks.
	NoCache bool
}

// Default returns the protocol parameters used by the experiments: square
// root powers, initial probability 1/2, halving backoff, floor 1/64.
func Default() Protocol {
	return Protocol{
		Assignment:  power.Sqrt(),
		InitialProb: 0.5,
		Backoff:     0.5,
		MinProb:     1.0 / 64,
	}
}

// Result reports one protocol run.
type Result struct {
	// Schedule is the feasible schedule induced by the success slots
	// (colors compressed to be contiguous).
	Schedule *problem.Schedule
	// Slots is the number of contention slots until the last success; the
	// distributed analogue of the schedule length.
	Slots int
	// Attempts is the total number of transmission attempts.
	Attempts int
	// Failures is the number of failed attempts.
	Failures int
}

// ErrSlotsExhausted is returned when the protocol fails to drain the
// request set within MaxSlots (pathological parameters).
var ErrSlotsExhausted = errors.New("distributed: slot budget exhausted")

// Run simulates the protocol on a bidirectional instance.
func (p Protocol) Run(m sinr.Model, in *problem.Instance, rng *rand.Rand) (*Result, error) {
	return p.RunContext(context.Background(), m, in, rng)
}

// RunContext is Run with cooperative cancellation: the context is checked
// every contention slot, so a canceled ctx aborts a long simulation.
func (p Protocol) RunContext(ctx context.Context, m sinr.Model, in *problem.Instance, rng *rand.Rand) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("distributed: nil rng")
	}
	if p.Assignment == nil {
		return nil, errors.New("distributed: nil assignment")
	}
	if !(p.InitialProb > 0 && p.InitialProb <= 1) {
		return nil, fmt.Errorf("distributed: initial probability %g outside (0,1]", p.InitialProb)
	}
	if !(p.Backoff > 0 && p.Backoff <= 1) {
		return nil, fmt.Errorf("distributed: backoff %g outside (0,1]", p.Backoff)
	}
	if !(p.MinProb > 0 && p.MinProb <= p.InitialProb) {
		return nil, fmt.Errorf("distributed: min probability %g outside (0, initial]", p.MinProb)
	}
	maxSlots := p.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 64*in.N() + 1024
	}

	powers := power.Powers(m, in, p.Assignment)
	// Every slot probes feasibility against the active set; precompute the
	// affectance matrices once so those probes are row sums. A caller that
	// pre-attached a covering engine (possibly the sparse grid one) wins.
	if !p.NoCache && m.CacheFor(in, powers) == nil {
		m = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
	}
	// When the attached engine exposes trackers instead of rows (the
	// sparse engine materializes none), the per-slot success checks run on
	// one recycled sinr.SetTracker: add the slot's active set, read each
	// member's margin, Reset. Sparse margins are lower bounds on the exact
	// ones, so a declared success is always a true success — the protocol
	// stays correct, at worst a failed attempt is re-contended.
	var tracker sinr.SetTracker
	if c := m.CacheFor(in, powers); c != nil {
		if tp, ok := c.(sinr.TrackerProvider); ok {
			tracker = tp.NewSetTracker(m, sinr.Bidirectional)
		}
	}
	s := problem.NewSchedule(in.N())
	copy(s.Powers, powers)

	prob := make([]float64, in.N())
	pending := make([]int, 0, in.N())
	for i := range prob {
		prob[i] = p.InitialProb
		pending = append(pending, i)
	}

	res := &Result{}
	var successSlots []int // slot of success per request (parallel to Colors)
	successSlots = make([]int, in.N())

	slot := 0
	for ; len(pending) > 0 && slot < maxSlots; slot++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each pending request independently decides to transmit.
		var active []int
		for _, i := range pending {
			if rng.Float64() < prob[i] {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			continue
		}
		res.Attempts += len(active)
		// A transmission succeeds if its own SINR constraint holds against
		// the full active set (success is a local property: each endpoint
		// decodes or it does not).
		var succeeded []int
		if tracker != nil {
			tracker.Reset()
			for _, i := range active {
				tracker.Add(i)
			}
			for _, i := range active {
				if tracker.Margin(i) >= -sinr.Tol {
					succeeded = append(succeeded, i)
				}
			}
		} else {
			for _, i := range active {
				if m.RequestFeasible(in, sinr.Bidirectional, powers, active, i) {
					succeeded = append(succeeded, i)
				}
			}
		}
		res.Failures += len(active) - len(succeeded)
		if len(succeeded) == 0 {
			for _, i := range active {
				if prob[i] *= p.Backoff; prob[i] < p.MinProb {
					prob[i] = p.MinProb
				}
			}
			continue
		}
		done := make(map[int]bool, len(succeeded))
		for _, i := range succeeded {
			done[i] = true
			successSlots[i] = slot
		}
		next := pending[:0]
		for _, i := range pending {
			if !done[i] {
				next = append(next, i)
				if contains(active, i) {
					if prob[i] *= p.Backoff; prob[i] < p.MinProb {
						prob[i] = p.MinProb
					}
				}
			}
		}
		pending = next
		res.Slots = slot + 1
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("%w: %d requests pending after %d slots", ErrSlotsExhausted, len(pending), maxSlots)
	}

	// Compress success slots into contiguous colors.
	slotColor := make(map[int]int)
	for _, sl := range successSlots {
		if _, ok := slotColor[sl]; !ok {
			slotColor[sl] = 0
		}
	}
	ordered := make([]int, 0, len(slotColor))
	for sl := range slotColor {
		ordered = append(ordered, sl)
	}
	sort.Ints(ordered)
	for c, sl := range ordered {
		slotColor[sl] = c
	}
	for i := range s.Colors {
		s.Colors[i] = slotColor[successSlots[i]]
	}
	res.Schedule = s
	return res, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
