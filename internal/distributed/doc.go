// Package distributed implements a slotted, fully distributed contention
// protocol for the bidirectional interference scheduling problem under an
// oblivious power assignment — an experimental answer to the open question
// of Section 6 of the paper ("is there a distributed coloring procedure
// with the same kind of performance guarantee?").
//
// Oblivious assignments need no coordination to pick powers; the only
// remaining coordination problem is who transmits when. The protocol is a
// classic decay scheme: in every slot each pending request transmits with
// its current probability; a transmission succeeds if its SINR constraint
// holds against all simultaneously transmitting requests, and failures
// back off multiplicatively. The slot of first success is the request's
// color, so the produced schedule is feasible by construction (removing
// failed transmitters from a slot only lowers interference).
//
// Exported entry points:
//
//   - Protocol configures the scheme (assignment, probabilities, backoff,
//     slot budget); Default returns the experiments' parameters.
//   - Protocol.Run / RunContext simulate the protocol and report the
//     induced Schedule plus Slots/Attempts/Failures counters. The
//     simulator precomputes the affectance matrices (package affect) so
//     each slot's SINR success checks are row sums; with a pre-attached
//     sparse engine (sinr.TrackerProvider) the checks instead run on one
//     recycled conservative tracker, so the protocol scales past the
//     dense memory wall; NoCache restores the direct computation.
package distributed
