package distributed

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/affect/sparse"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/sinr"
)

func TestDefaultParameters(t *testing.T) {
	p := Default()
	if p.Assignment == nil || p.Assignment.Name() != "sqrt" {
		t.Error("default assignment should be sqrt")
	}
	if p.InitialProb <= 0 || p.Backoff <= 0 || p.MinProb <= 0 {
		t.Error("default probabilities must be positive")
	}
}

func TestRunValidation(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(4, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := (Protocol{}).Run(m, in, rng); err == nil {
		t.Error("zero-value protocol should fail")
	}
	p := Default()
	if _, err := p.Run(m, in, nil); err == nil {
		t.Error("nil rng should fail")
	}
	p = Default()
	p.InitialProb = 2
	if _, err := p.Run(m, in, rng); err == nil {
		t.Error("probability > 1 should fail")
	}
	p = Default()
	p.Backoff = 0
	if _, err := p.Run(m, in, rng); err == nil {
		t.Error("zero backoff should fail")
	}
	p = Default()
	p.MinProb = 1
	p.InitialProb = 0.5
	if _, err := p.Run(m, in, rng); err == nil {
		t.Error("min probability above initial should fail")
	}
}

func TestProtocolDrainsAndValidates(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(2)), 40, 200, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Default().Run(m, in, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, res.Schedule); err != nil {
		t.Errorf("invalid distributed schedule: %v", err)
	}
	if res.Slots < res.Schedule.NumColors() {
		t.Errorf("slots %d below colors %d", res.Slots, res.Schedule.NumColors())
	}
	if res.Attempts < in.N() {
		t.Errorf("attempts %d below n", res.Attempts)
	}
	if res.Failures != res.Attempts-countSuccesses(res) {
		t.Errorf("failure accounting inconsistent: %d attempts, %d failures", res.Attempts, res.Failures)
	}
}

// countSuccesses: every request succeeds exactly once.
func countSuccesses(res *Result) int { return len(res.Schedule.Colors) }

func TestProtocolSingleRequest(t *testing.T) {
	m := sinr.Default()
	in, err := instance.LineChain(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Default().Run(m, in, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumColors() != 1 {
		t.Errorf("colors = %d, want 1", res.Schedule.NumColors())
	}
}

func TestSlotBudgetExhausted(t *testing.T) {
	m := sinr.Default()
	// The nested instance under uniform powers allows only one request per
	// slot; with a tiny slot budget the protocol cannot drain.
	in, err := instance.NestedExponential(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Default()
	p.Assignment = power.Uniform(1)
	p.MaxSlots = 2
	_, err = p.Run(m, in, rand.New(rand.NewSource(5)))
	if !errors.Is(err, ErrSlotsExhausted) {
		t.Errorf("error = %v, want ErrSlotsExhausted", err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(6)), 20, 150, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Default().Run(m, in, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Default().Run(m, in, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || a.Attempts != b.Attempts {
		t.Error("protocol not deterministic for a fixed seed")
	}
}

// TestProtocolValidityProperty: the protocol always produces valid
// bidirectional schedules across random workloads and assignments.
func TestProtocolValidityProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 4+r.Intn(24), 200, 1, 6)
		if err != nil {
			return false
		}
		p := Default()
		if r.Intn(2) == 0 {
			p.Assignment = power.Exponent(0.25 + r.Float64()*0.5)
		}
		res, err := p.Run(m, in, r)
		if err != nil {
			return false
		}
		return res.Schedule.Complete() && m.CheckSchedule(in, sinr.Bidirectional, res.Schedule) == nil
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(91))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// countingProvider wraps a tracker-providing cache and records whether
// the simulator asked it for a tracker and got one.
type countingProvider struct {
	sinr.Cache
	calls      int
	gotTracker bool
}

func (c *countingProvider) NewSetTracker(m sinr.Model, v sinr.Variant) sinr.SetTracker {
	c.calls++
	tr := c.Cache.(sinr.TrackerProvider).NewSetTracker(m, v)
	if tr != nil {
		c.gotTracker = true
	}
	return tr
}

// TestTrackerPathMatchesOracle runs the protocol with a pre-attached
// sparse engine (the tracker-backed per-slot success checks) and pins the
// contract of the conservative margins: the run drains, the schedule
// passes the exact dense oracle, and with ε=0 — where the sparse builder
// degenerates to the dense cache bitwise — the run reproduces the
// row-path schedule exactly, seed for seed.
func TestTrackerPathMatchesOracle(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(7)), 60, 220, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := Default()
	powers := power.Powers(m, in, p.Assignment)

	eng, err := sparse.New(m, sinr.Bidirectional, in, powers, sparse.Options{Epsilon: sparse.DefaultEpsilon})
	if err != nil {
		t.Fatal(err)
	}
	// The counting wrapper gives a positive signal that the tracker path
	// actually engaged — a silent regression to the row/direct fallback
	// would still drain and still pass the oracle, so without this the
	// test could not tell the feature from its absence.
	counting := &countingProvider{Cache: eng}
	res, err := p.Run(m.WithCache(counting), in, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if counting.calls == 0 || !counting.gotTracker {
		t.Fatalf("per-slot checks did not run on a provider tracker (calls=%d, tracker=%v)",
			counting.calls, counting.gotTracker)
	}
	if !res.Schedule.Complete() {
		t.Fatal("tracker path left an incomplete schedule")
	}
	// The oracle model carries no cache: every margin is the direct exact
	// computation.
	if err := m.CheckSchedule(in, sinr.Bidirectional, res.Schedule); err != nil {
		t.Errorf("tracker-path schedule fails the dense oracle: %v", err)
	}

	// ε=0 degenerates to the dense cache, which provides no trackers —
	// the protocol must route such a run through the row path, where it
	// is the plain cached run bitwise. (This pins the routing contract of
	// the degeneration; it is NOT a tracker-vs-row equivalence — the
	// conservative tracker may legitimately demote successes.)
	zero, err := sparse.For(m, sinr.Bidirectional, in, powers, sparse.Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := zero.(sinr.TrackerProvider); ok {
		t.Fatal("eps=0 engine provides trackers; the degeneration contract moved")
	}
	a, err := p.Run(m.WithCache(zero), in, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(m, in, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || a.Attempts != b.Attempts || a.Failures != b.Failures {
		t.Errorf("eps=0 run diverged: %+v vs %+v", a, b)
	}
	for i := range a.Schedule.Colors {
		if a.Schedule.Colors[i] != b.Schedule.Colors[i] {
			t.Fatalf("eps=0 colors diverge at request %d", i)
		}
	}
}
