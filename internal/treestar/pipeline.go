package treestar

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime/pprof"

	"repro/internal/affect"
	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/hst"
	"repro/internal/nodeloss"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// CacheBuilder constructs the affectance engine stage 5 thins over. The
// pipeline re-invokes it for every restricted instance it extracts a color
// class from, so the caller decides dense vs sparse per sub-instance (auto
// mode shrinks back to dense once the remaining set is small). The
// returned cache must cover (in, powers) under m's path-loss exponent for
// the bidirectional variant.
type CacheBuilder func(m sinr.Model, in *problem.Instance, powers []float64) (sinr.Cache, error)

// engineFor resolves the stage-5 affectance engine: the Engine hook when
// set, the dense cache otherwise.
func (p Pipeline) engineFor(m sinr.Model, in *problem.Instance, powers []float64) (sinr.Cache, error) {
	if p.Engine != nil {
		return p.Engine(m, in, powers)
	}
	return affect.New(m, sinr.Bidirectional, in, powers), nil
}

// stage runs f as one pipeline stage under a span "pipeline/<name>"
// from the context's collector and a pprof label stage=<name>, so the
// span histograms and CPU profile samples attribute cost to the same
// stage names. With no collector in the context the span is inert and
// only the label remains — profiles stay attributable in unobserved
// runs (oblsched -cpuprofile without -metrics).
func stage(ctx context.Context, name string, f func() error) error {
	_, sp := obs.Start(ctx, "pipeline/"+name)
	defer sp.End()
	var err error
	pprof.Do(ctx, pprof.Labels("stage", name), func(context.Context) { err = f() })
	return err
}

// Run executes the Theorem 2 pipeline on the instance and returns one color
// class of request indices that is feasible in the original metric under
// the square root power assignment with gain m.Beta (bidirectional SINR
// constraints), together with per-stage diagnostics.
func (p Pipeline) Run(m sinr.Model, in *problem.Instance, rng *rand.Rand) ([]int, *PipelineStats, error) {
	return p.runCtx(context.Background(), m, in, rng, &arena{})
}

// arena bundles the buffers one class extraction needs and the next one
// can reuse: the node-loss split's scratch (stage 1), the selection
// marker arrays (stage 3), the thinning score buffers (stage 5), and the
// all-nodes identity list of stage 2. ColoringWithStats allocates one
// arena and threads it through every restricted instance, so the
// per-class setup cost stops scaling with the number of colors. An arena
// must not be shared by concurrent runs.
type arena struct {
	nl       nodeloss.Scratch
	tree     treeScratch
	thin     coloring.ThinScratch
	allNodes []int
	loss     map[int]float64
}

// runCtx is Run under a context. The context's obs collector (if any)
// receives one span per stage — "pipeline/stage1" through
// "pipeline/stage5" — and one "pipeline/hst-build" span per sampled
// tree; each stage also runs under a stage=<name> pprof label. The two
// long stages poll the context: stage 3 once per recursion level and
// stage 5 once per thinning round, so cancellation does not wait for a
// whole class extraction.
func (p Pipeline) runCtx(ctx context.Context, m sinr.Model, in *problem.Instance, rng *rand.Rand, ar *arena) ([]int, *PipelineStats, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if rng == nil {
		return nil, nil, errors.New("treestar: nil rng")
	}
	stats := &PipelineStats{}

	// Stage 1 (Section 3.2): split the pairs into the node-loss problem.
	var (
		nl      *nodeloss.Instance
		mapping *nodeloss.PairMapping
	)
	if err := stage(ctx, "stage1", func() error {
		var err error
		nl, mapping, err = nodeloss.FromPairsScratch(m, in, &ar.nl)
		return err
	}); err != nil {
		return nil, nil, err
	}
	stats.ActiveNodes = nl.N()
	if in.N() == 1 {
		stats.PairsKept, stats.FinalPairs = 1, 1
		return []int{0}, stats, nil
	}
	betaNode := nodeloss.PairGainToNodeGain(m.Beta)

	// Stage 2 (Lemma 6 / Proposition 7): sample r tree embeddings of the
	// active nodes and keep the tree whose core covers the most of them.
	var (
		ensemble *hst.Ensemble
		bestTree int
		core     []int
	)
	if err := stage(ctx, "stage2", func() error {
		// NewSubOwned: nl.Nodes lives in the arena's node-loss scratch,
		// which is stable until the next class's stage 1 — after this
		// class's ensemble is dead.
		sub, err := geom.NewSubOwned(in.Space, nl.Nodes)
		if err != nil {
			return err
		}
		r := p.Trees
		if r <= 0 {
			r = int(math.Ceil(math.Log2(float64(nl.N())))) + 2
		}
		ensemble, err = hst.BuildEnsembleObserved(sub, r, p.StretchBound, rng, obs.FromContext(ctx))
		if err != nil {
			return err
		}
		if cap(ar.allNodes) < nl.N() {
			ar.allNodes = make([]int, nl.N())
		}
		allNodes := ar.allNodes[:nl.N()]
		for i := range allNodes {
			allNodes[i] = i
		}
		bestTree, core = ensemble.BestCoreTreeSampled(allNodes, rng)
		stats.CoreNodes = len(core)
		if len(core) == 0 {
			return errors.New("treestar: empty tree core")
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Stage 3 (Lemmas 5 and 9): explicit tree, centroid decomposition,
	// per-level star selection. Leaf v of the explicit tree is active node
	// v of the node-loss instance.
	var kept []int
	if err := stage(ctx, "stage3", func() error {
		tree, err := ensemble.Trees[bestTree].ExplicitTree()
		if err != nil {
			return err
		}
		if ar.loss == nil {
			ar.loss = make(map[int]float64, len(core))
		} else {
			clear(ar.loss)
		}
		loss := ar.loss
		for _, v := range core {
			loss[v] = nl.Loss[v]
		}
		// Target gain on the tree: the tree metric dominates the original, so
		// feasibility transfers to the original metric only after paying the
		// core stretch (Lemma 8); the final thinning restores the exact pair
		// gain, so a modest tree gain keeps the kept set large.
		treeGain := betaNode
		var treeStats *TreeStats
		kept, treeStats, err = SelectOnTreeCtx(ctx, m, tree, core, loss, betaNode, treeGain,
			TreeOptions{Faithful: p.Faithful, scratch: &ar.tree})
		if err != nil {
			return err
		}
		stats.Tree = *treeStats
		stats.TreeKept = len(kept)
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Stage 4: back to pairs — keep requests with both endpoints alive.
	var pairs []int
	if err := stage(ctx, "stage4", func() error {
		pairs = nodeloss.PairsWithBothEndpoints(mapping, kept)
		stats.PairsKept = len(pairs)
		if len(pairs) == 0 {
			// Guarantee progress: a single request is always feasible alone.
			longest := 0
			for i := 1; i < in.N(); i++ {
				if in.Length(i) > in.Length(longest) {
					longest = i
				}
			}
			pairs = []int{longest}
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Stage 5 (Lemma 8 / Proposition 3): thin to the full bidirectional
	// gain in the original metric under the square root assignment. For
	// kept sets large enough that the O(|pairs|²)-per-round thinning
	// dominates the engine build, precompute the affectance engine so the
	// thinning runs on the incremental tracker — the Engine hook picks
	// dense rows or the sparse grid per restricted instance; the thinning
	// consumes either transparently through sinr.SetTracker.
	var final []int
	if err := stage(ctx, "stage5", func() error {
		powers := power.Powers(m, in, power.Sqrt())
		mThin := m
		if !p.NoCache && len(pairs) >= 32 {
			c, err := p.engineFor(m, in, powers)
			if err != nil {
				return err
			}
			mThin = m.WithCache(c)
		}
		var err error
		final, err = coloring.ThinToGainCtx(ctx, mThin, in, sinr.Bidirectional, powers, pairs, m.Beta, &ar.thin)
		if err != nil {
			return err
		}
		stats.FinalPairs = len(final)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	return final, stats, nil
}

// Coloring repeatedly extracts pipeline color classes until every request
// is colored, producing a complete bidirectional schedule under the square
// root power assignment. It is the fully constructive counterpart of
// Theorem 2's existence statement.
func (p Pipeline) Coloring(m sinr.Model, in *problem.Instance, rng *rand.Rand) (*problem.Schedule, error) {
	s, _, err := p.ColoringWithStats(context.Background(), m, in, rng)
	return s, err
}

// ColoringWithStats is Coloring, additionally reporting the per-stage
// diagnostics of the first extracted color class — the run over the full
// instance, and hence the most informative one. The context is checked
// before every extracted class and, inside a class, once per stage-3
// recursion level and once per stage-5 thinning round, so a canceled ctx
// aborts a long coloring mid-class rather than minutes later.
//
// Reusable buffers (one arena) are threaded through every class, and the
// per-class randomness is split up front: each color draws exactly one
// seed from rng and runs on its own derived stream — mirroring
// BuildEnsemble's per-tree seeds — so the stream consumed inside one
// class can never shift the classes after it.
func (p Pipeline) ColoringWithStats(ctx context.Context, m sinr.Model, in *problem.Instance, rng *rand.Rand) (*problem.Schedule, *PipelineStats, error) {
	if rng == nil {
		return nil, nil, errors.New("treestar: nil rng")
	}
	s := problem.NewSchedule(in.N())
	copy(s.Powers, power.Powers(m, in, power.Sqrt()))
	remaining := make([]int, in.N())
	for i := range remaining {
		remaining[i] = i
	}
	var firstStats *PipelineStats
	ar := &arena{}
	for color := 0; len(remaining) > 0; color++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		classRng := rand.New(rand.NewSource(rng.Int63()))
		subInst, mapping, err := in.Restrict(remaining)
		if err != nil {
			return nil, nil, err
		}
		class, stats, err := p.runCtx(ctx, m, subInst, classRng, ar)
		if err != nil {
			return nil, nil, err
		}
		if firstStats == nil {
			firstStats = stats
		}
		if len(class) == 0 {
			return nil, nil, errors.New("treestar: pipeline returned empty class")
		}
		inClass := make(map[int]bool, len(class))
		for _, sub := range class {
			orig := mapping[sub]
			s.Colors[orig] = color
			inClass[orig] = true
		}
		next := remaining[:0]
		for _, i := range remaining {
			if !inClass[i] {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return s, firstStats, nil
}
