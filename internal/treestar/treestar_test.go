package treestar

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/affect/sparse"
	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// pathTree builds a path 0-1-...-(n-1) with unit edges.
func pathTree(t *testing.T, n int) *geom.Tree {
	t.Helper()
	tr, err := geom.NewTree(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := tr.AddEdge(i-1, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// fullComp builds the compID/pos stamp arrays marking every node of the
// tree as one component with id 1, matching the helpers' calling
// convention inside SelectOnTreeCtx.
func fullComp(n int) (nodes []int, compID, pos []int32) {
	nodes = make([]int, n)
	compID = make([]int32, n)
	pos = make([]int32, n)
	for i := range nodes {
		nodes[i] = i
		compID[i] = 1
		pos[i] = int32(i)
	}
	return nodes, compID, pos
}

func TestCentroidOfPath(t *testing.T) {
	tr := pathTree(t, 7)
	nodes, compID, pos := fullComp(7)
	c := centroid(tr, nodes, compID, 1, pos)
	if c != 3 {
		t.Errorf("centroid of a 7-path = %d, want 3", c)
	}
}

func TestCentroidOfStar(t *testing.T) {
	tr, err := geom.NewTree(6)
	if err != nil {
		t.Fatal(err)
	}
	for leaf := 1; leaf < 6; leaf++ {
		if err := tr.AddEdge(0, leaf, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	nodes, compID, pos := fullComp(6)
	if c := centroid(tr, nodes, compID, 1, pos); c != 0 {
		t.Errorf("centroid of a star = %d, want the hub 0", c)
	}
}

// TestCentroidBalancedProperty: the centroid splits any random tree into
// components of at most half the size.
func TestCentroidBalancedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		tr, err := geom.NewTree(n)
		if err != nil {
			return false
		}
		for v := 1; v < n; v++ {
			if err := tr.AddEdge(r.Intn(v), v, 1+r.Float64()); err != nil {
				return false
			}
		}
		if err := tr.Finalize(); err != nil {
			return false
		}
		nodes, compID, pos := fullComp(n)
		c := centroid(tr, nodes, compID, 1, pos)
		for _, comp := range componentsWithout(tr, nodes, compID, 1, pos, c) {
			if len(comp) > n/2 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestComponentsWithout(t *testing.T) {
	tr := pathTree(t, 5)
	nodes, compID, pos := fullComp(5)
	comps := componentsWithout(tr, nodes, compID, 1, pos, 2)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[2] {
		t.Errorf("component sizes = %d, %d; want 2 and 2", len(comps[0]), len(comps[1]))
	}
}

func TestSelectOnTreePostcondition(t *testing.T) {
	m := sinr.Default()
	tr := pathTree(t, 32)
	terminals := make([]int, 0, 16)
	loss := make(map[int]float64)
	rng := rand.New(rand.NewSource(5))
	for v := 0; v < 32; v += 2 {
		terminals = append(terminals, v)
		loss[v] = 0.5 + rng.Float64()*8
	}
	betaPrime := 1.0
	beta := 0.05
	kept, stats, err := SelectOnTree(m, tr, terminals, loss, betaPrime, beta, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) == 0 {
		t.Fatal("empty selection")
	}
	if stats.Levels < 2 {
		t.Errorf("levels = %d, want ≥ 2 on a 32-path", stats.Levels)
	}
	// Verify beta-feasibility under √ℓ in the tree metric.
	for _, u := range kept {
		var interf float64
		for _, v := range kept {
			if v != u {
				interf += math.Sqrt(loss[v]) / m.Loss(tr.Dist(u, v))
			}
		}
		signal := 1 / math.Sqrt(loss[u])
		if signal < beta*interf*(1-1e-9) {
			t.Errorf("terminal %d violates the gain: signal %g, β·I %g", u, signal, beta*interf)
		}
	}
}

func TestSelectOnTreeValidation(t *testing.T) {
	m := sinr.Default()
	tr := pathTree(t, 4)
	if _, _, err := SelectOnTree(m, tr, nil, nil, 1, 1, TreeOptions{}); err == nil {
		t.Error("no terminals should fail")
	}
	if _, _, err := SelectOnTree(m, tr, []int{0}, map[int]float64{}, 1, 1, TreeOptions{}); err == nil {
		t.Error("missing loss should fail")
	}
}

func TestPipelineRunFeasibleClass(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(8))
	in, err := instance.UniformRandom(rng, 24, 200, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	class, stats, err := (Pipeline{}).Run(m, in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(class) == 0 {
		t.Fatal("empty class")
	}
	powers := power.Powers(m, in, power.Sqrt())
	if !m.SetFeasible(in, sinr.Bidirectional, powers, class) {
		t.Error("pipeline class infeasible at full gain")
	}
	if stats.ActiveNodes != 48 {
		t.Errorf("active nodes = %d, want 48", stats.ActiveNodes)
	}
	if stats.FinalPairs != len(class) {
		t.Errorf("stats.FinalPairs = %d, class = %d", stats.FinalPairs, len(class))
	}
}

func TestPipelineSingleRequest(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(9))
	in, err := instance.UniformRandom(rng, 1, 50, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	class, _, err := (Pipeline{}).Run(m, in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(class) != 1 || class[0] != 0 {
		t.Errorf("class = %v, want [0]", class)
	}
}

func TestPipelineColoringValid(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(10))
	in, err := instance.UniformRandom(rng, 20, 150, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := (Pipeline{}).Coloring(m, in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Errorf("invalid pipeline schedule: %v", err)
	}
}

func TestPipelineNilRNG(t *testing.T) {
	m := sinr.Default()
	in, err := instance.NestedExponential(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Pipeline{}).Run(m, in, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// TestPipelineValidityProperty: pipeline classes are always feasible at the
// full gain, across random workloads.
func TestPipelineValidityProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 4+r.Intn(16), 120, 1, 5)
		if err != nil {
			return false
		}
		class, _, err := (Pipeline{}).Run(m, in, r)
		if err != nil || len(class) == 0 {
			return false
		}
		powers := power.Powers(m, in, power.Sqrt())
		return m.SetFeasible(in, sinr.Bidirectional, powers, class)
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(81))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPipelineFaithfulMode exercises the worst-case parameterized star
// selection end to end: classes stay feasible, just smaller than the
// default light mode (documented in E14).
func TestPipelineFaithfulMode(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(11))
	in, err := instance.UniformRandom(rng, 16, 150, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	class, stats, err := (Pipeline{Faithful: true}).Run(m, in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(class) == 0 {
		t.Fatal("empty class")
	}
	powers := power.Powers(m, in, power.Sqrt())
	if !m.SetFeasible(in, sinr.Bidirectional, powers, class) {
		t.Error("faithful pipeline class infeasible")
	}
	if stats.Tree.StarCalls == 0 {
		t.Error("faithful mode made no star calls")
	}
}

// TestSelectOnTreeFaithfulPostcondition: the faithful option keeps the
// feasibility postcondition on the tree metric.
func TestSelectOnTreeFaithfulPostcondition(t *testing.T) {
	m := sinr.Default()
	tr := pathTree(t, 16)
	terminals := make([]int, 0, 8)
	loss := make(map[int]float64)
	rng := rand.New(rand.NewSource(12))
	for v := 0; v < 16; v += 2 {
		terminals = append(terminals, v)
		loss[v] = 0.5 + rng.Float64()*4
	}
	kept, _, err := SelectOnTree(m, tr, terminals, loss, 1.0, 0.02, TreeOptions{Faithful: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range kept {
		var interf float64
		for _, v := range kept {
			if v != u {
				interf += math.Sqrt(loss[v]) / m.Loss(tr.Dist(u, v))
			}
		}
		if 1/math.Sqrt(loss[u]) < 0.02*interf*(1-1e-9) {
			t.Errorf("terminal %d violates the target gain", u)
		}
	}
}

// TestPipelineEngineHook pins the stage-5 CacheBuilder contract: the hook
// is consulted for every restricted instance whose kept set is large
// enough, receives (sub-)instances it must cover, and its errors abort
// the run. A sparse-engine hook must still yield schedules the exact
// oracle accepts.
func TestPipelineEngineHook(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(5)), 80, 200, 1, 6)
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	sparseHook := func(mm sinr.Model, sub *problem.Instance, powers []float64) (sinr.Cache, error) {
		calls++
		return sparse.New(mm, sinr.Bidirectional, sub, powers, sparse.Options{Epsilon: sparse.DefaultEpsilon})
	}
	s, err := Pipeline{Engine: sparseHook}.Coloring(m, in, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("engine hook never consulted at n=80")
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Errorf("sparse-hook schedule fails the exact oracle: %v", err)
	}

	wantErr := errors.New("engine build failed")
	_, err = Pipeline{Engine: func(sinr.Model, *problem.Instance, []float64) (sinr.Cache, error) {
		return nil, wantErr
	}}.Coloring(m, in, rand.New(rand.NewSource(2)))
	if !errors.Is(err, wantErr) {
		t.Errorf("hook error not propagated: %v", err)
	}
}

// TestSelectOnTreeCtxCanceled: a canceled context aborts the selection at
// the next recursion level with the context's error.
func TestSelectOnTreeCtxCanceled(t *testing.T) {
	m := sinr.Default()
	tr := pathTree(t, 32)
	terminals := make([]int, 0, 16)
	loss := make(map[int]float64)
	rng := rand.New(rand.NewSource(5))
	for v := 0; v < 32; v += 2 {
		terminals = append(terminals, v)
		loss[v] = 0.5 + rng.Float64()*8
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SelectOnTreeCtx(ctx, m, tr, terminals, loss, 1.0, 0.05, TreeOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestColoringCanceled: ColoringWithStats under an already-canceled
// context returns the context's error instead of a schedule.
func TestColoringCanceled(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(13)), 20, 150, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := (Pipeline{}).ColoringWithStats(ctx, m, in, rand.New(rand.NewSource(1))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestColoringDeterministicAcrossGOMAXPROCS: the per-class rng split and
// the deterministic merges keep the full coloring bitwise identical no
// matter how many workers the pools run (satellite of the scale PR).
func TestColoringDeterministicAcrossGOMAXPROCS(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(21)), 48, 200, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) *problem.Schedule {
		old := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(old)
		s, err := (Pipeline{}).Coloring(m, in, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := solve(1), solve(4)
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatalf("Colors[%d]: GOMAXPROCS=1 gives %d, GOMAXPROCS=4 gives %d", i, a.Colors[i], b.Colors[i])
		}
		if a.Powers[i] != b.Powers[i] {
			t.Fatalf("Powers[%d] differs across GOMAXPROCS", i)
		}
	}
}
