// Package treestar implements the reduction from tree metrics to star
// metrics (Lemma 9 of the paper) by centroid decomposition, and composes
// it with the tree embeddings of package hst and the star analysis of
// package star into the full constructive pipeline behind Theorem 2: from
// a general metric, extract a large set of requests that is feasible in
// one color under the square root power assignment.
//
// Exported entry points:
//
//   - SelectOnTree realizes Lemma 9: centroid recursion over an explicit
//     tree, one star selection (Lemma 5) per level, final verification at
//     the target gain. TreeOptions.Faithful switches between the paper's
//     worst-case star selection and the practical greedy variant.
//   - Pipeline chains the stages of Theorem 2: pair→node-loss splitting
//     (package nodeloss, Section 3.2), HST ensemble and best-core tree
//     (package hst, Lemma 6/Proposition 7), SelectOnTree, and a final
//     ThinToGain back in the original metric (Proposition 3). Run
//     extracts one color class with per-stage PipelineStats;
//     Coloring/ColoringWithStats iterate it into a complete schedule.
//     The final thinning stage precomputes an affectance engine for
//     large kept sets (disable with Pipeline.NoCache); Pipeline.Engine
//     chooses how it is built — the exact dense cache by default, the
//     sparse grid engine via the solver layer — and the thinning
//     consumes either transparently through sinr.SetTracker.
package treestar
