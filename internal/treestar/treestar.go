package treestar

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/sinr"
	"repro/internal/star"
)

// TreeOptions tunes SelectOnTree.
type TreeOptions struct {
	// Faithful uses the worst-case parameterized star selection of Lemma 5
	// (star.Select) at every recursion level, as in the paper's proof.
	// The default (false) uses star.SelectLight — greedy thinning at the
	// target gain — which retains far more nodes on benign inputs while
	// guaranteeing the same feasibility postcondition.
	Faithful bool
}

// TreeStats reports diagnostics from SelectOnTree.
type TreeStats struct {
	// Levels is the depth of the centroid recursion.
	Levels int
	// StarCalls is the number of star selections performed.
	StarCalls int
	// DroppedByStars is the number of terminals dropped by star selections.
	DroppedByStars int
	// DroppedRepair is the number of terminals dropped by the final
	// verification pass on the tree metric.
	DroppedRepair int
}

// SelectOnTree realizes Lemma 9 constructively. Given an edge-weighted tree
// (which may contain Steiner nodes), a set of terminal nodes with loss
// parameters, and the witness gain betaPrime (the gain for which the
// terminal set is feasible under some power assignment), it returns a
// subset of the terminals that is beta-feasible under the square root
// assignment with respect to the tree shortest-path metric.
//
// The recursion splits the tree at a centroid c, runs the star selection of
// Lemma 5 on the star metric induced by the tree distances to c, and
// recurses into the subtrees; a terminal survives if it survives at every
// recursion level. Every pair of terminals has its exact tree distance in
// the star of the level at which it is separated, so the per-level star
// budgets sum to a global interference bound.
func SelectOnTree(m sinr.Model, t *geom.Tree, terminals []int, loss map[int]float64, betaPrime, beta float64, opts TreeOptions) ([]int, *TreeStats, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if len(terminals) == 0 {
		return nil, nil, errors.New("treestar: no terminals")
	}
	for _, v := range terminals {
		if _, ok := loss[v]; !ok {
			return nil, nil, fmt.Errorf("treestar: terminal %d has no loss parameter", v)
		}
	}
	stats := &TreeStats{}
	alive := make(map[int]bool, len(terminals))
	for _, v := range terminals {
		alive[v] = true
	}

	// Per-level star gain: the recursion depth is at most log2 of the tree
	// size, and each level contributes at most 1/(starGain·√ℓ_u)
	// interference, so starGain = levels·beta keeps the total within the
	// beta budget.
	maxLevels := int(math.Ceil(math.Log2(float64(t.N())))) + 1
	starGain := float64(maxLevels) * beta
	if starGain > betaPrime {
		starGain = betaPrime
	}

	// Iterative recursion over components (stack of node sets).
	all := make([]int, t.N())
	for i := range all {
		all[i] = i
	}
	type frame struct {
		nodes []int
		depth int
	}
	stack := []frame{{nodes: all, depth: 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.depth > stats.Levels {
			stats.Levels = f.depth
		}
		termsHere := make([]int, 0, len(f.nodes))
		inComp := make(map[int]bool, len(f.nodes))
		for _, v := range f.nodes {
			inComp[v] = true
		}
		for _, v := range f.nodes {
			if alive[v] {
				termsHere = append(termsHere, v)
			}
		}
		if len(termsHere) <= 1 || len(f.nodes) <= 1 {
			continue
		}
		c := centroid(t, f.nodes, inComp)

		// Star selection at this level.
		kept, err := selectStarAt(m, t, c, termsHere, loss, betaPrime, starGain, beta, opts)
		if err != nil {
			return nil, nil, err
		}
		stats.StarCalls++
		keptSet := make(map[int]bool, len(kept))
		for _, v := range kept {
			keptSet[v] = true
		}
		for _, v := range termsHere {
			if !keptSet[v] {
				alive[v] = false
				stats.DroppedByStars++
			}
		}

		// Split at the centroid: the components of f.nodes \ {c}, with c
		// attached to its largest component (the paper keeps one incident
		// edge).
		comps := componentsWithout(t, f.nodes, inComp, c)
		if len(comps) == 0 {
			continue
		}
		largest := 0
		for i := 1; i < len(comps); i++ {
			if len(comps[i]) > len(comps[largest]) {
				largest = i
			}
		}
		comps[largest] = append(comps[largest], c)
		for _, comp := range comps {
			if len(comp) > 1 {
				stack = append(stack, frame{nodes: comp, depth: f.depth + 1})
			}
		}
	}

	// Final verification on the tree metric at gain beta with greedy repair.
	kept := make([]int, 0, len(terminals))
	for _, v := range terminals {
		if alive[v] {
			kept = append(kept, v)
		}
	}
	kept, repaired := repairOnTree(m, t, kept, loss, beta)
	stats.DroppedRepair = repaired
	if len(kept) == 0 {
		return nil, stats, errors.New("treestar: selection removed every terminal")
	}
	return kept, stats, nil
}

// selectStarAt builds the star induced by tree distances to center c over
// the given terminals and runs the Lemma 5 selection. A terminal located
// exactly at c receives a tiny positive radius, which only overestimates
// its received interference (the star distance ε+δ_v ≈ δ_v is the exact
// tree distance).
func selectStarAt(m sinr.Model, t *geom.Tree, c int, terms []int, loss map[int]float64, betaPrime, starGain, beta float64, opts TreeOptions) ([]int, error) {
	radii := make([]float64, len(terms))
	losses := make([]float64, len(terms))
	minPos := math.Inf(1)
	for i, v := range terms {
		radii[i] = t.Dist(v, c)
		losses[i] = loss[v]
		if radii[i] > 0 && radii[i] < minPos {
			minPos = radii[i]
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	for i := range radii {
		if radii[i] == 0 {
			radii[i] = minPos / 1e6
		}
	}
	st, err := star.New(radii, losses)
	if err != nil {
		return nil, err
	}
	var keptIdx []int
	if opts.Faithful {
		keptIdx, _, err = star.Select(m, st, betaPrime, starGain)
	} else {
		keptIdx, err = star.SelectLight(m, st, beta)
	}
	if err != nil {
		// An empty star selection is not fatal for the pipeline: treat it
		// as dropping all terminals of this component.
		return nil, nil
	}
	kept := make([]int, len(keptIdx))
	for i, k := range keptIdx {
		kept[i] = terms[k]
	}
	return kept, nil
}

// centroid returns a node of the component whose removal leaves connected
// pieces of at most half the component's size.
func centroid(t *geom.Tree, nodes []int, inComp map[int]bool) int {
	if len(nodes) == 1 {
		return nodes[0]
	}
	root := nodes[0]
	// Iterative post-order to compute subtree sizes within the component.
	size := make(map[int]int, len(nodes))
	parent := make(map[int]int, len(nodes))
	order := make([]int, 0, len(nodes))
	stack := []int{root}
	parent[root] = -1
	seen := map[int]bool{root: true}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		nbrs, _ := t.Neighbors(u)
		for _, v := range nbrs {
			if inComp[v] && !seen[v] {
				seen[v] = true
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		size[u]++
		if p := parent[u]; p >= 0 {
			size[p] += size[u]
		}
	}
	total := len(order)
	best, bestMax := root, total
	for _, u := range order {
		// Maximum component size if u is removed.
		worst := total - size[u]
		nbrs, _ := t.Neighbors(u)
		for _, v := range nbrs {
			if inComp[v] && parent[v] == u && size[v] > worst {
				worst = size[v]
			}
		}
		if worst < bestMax {
			bestMax = worst
			best = u
		}
	}
	return best
}

// componentsWithout returns the connected components of the component after
// removing node c.
func componentsWithout(t *geom.Tree, nodes []int, inComp map[int]bool, c int) [][]int {
	visited := map[int]bool{c: true}
	var comps [][]int
	for _, s := range nodes {
		if visited[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			nbrs, _ := t.Neighbors(u)
			for _, v := range nbrs {
				if inComp[v] && !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// repairOnTree greedily removes terminals until the set is beta-feasible
// under the square root assignment in the tree metric. It returns the
// surviving set and the number of removals.
func repairOnTree(m sinr.Model, t *geom.Tree, kept []int, loss map[int]float64, beta float64) ([]int, int) {
	var removed int
	signal := func(v int) float64 { return 1 / math.Sqrt(loss[v]) }
	interf := func(set []int, u int) float64 {
		var sum float64
		for _, v := range set {
			if v == u {
				continue
			}
			sum += math.Sqrt(loss[v]) / m.Loss(t.Dist(u, v))
		}
		return sum
	}
	for len(kept) > 0 {
		feasible := true
		for _, u := range kept {
			if signal(u) < beta*interf(kept, u)*(1-1e-9) {
				feasible = false
				break
			}
		}
		if feasible {
			return kept, removed
		}
		worst, worstScore := 0, math.Inf(-1)
		for a, u := range kept {
			var score float64
			for _, v := range kept {
				if v == u {
					continue
				}
				score += math.Sqrt(loss[u]) / m.Loss(t.Dist(u, v)) / signal(v)
			}
			if score > worstScore {
				worstScore = score
				worst = a
			}
		}
		kept = append(kept[:worst], kept[worst+1:]...)
		removed++
	}
	return kept, removed
}

// PipelineStats aggregates diagnostics of one run of the Theorem 2 pipeline.
type PipelineStats struct {
	// ActiveNodes is the number of request endpoints (2·requests).
	ActiveNodes int
	// CoreNodes is the size of the best tree core (Proposition 7).
	CoreNodes int
	// TreeKept is the number of nodes surviving the tree selection
	// (Lemma 9).
	TreeKept int
	// PairsKept is the number of requests with both endpoints kept.
	PairsKept int
	// FinalPairs is the number of requests after the final thinning in the
	// original metric.
	FinalPairs int
	Tree       TreeStats
}

// Pipeline extracts one color class of requests that is feasible in the
// ORIGINAL metric under the square root power assignment with gain m.Beta,
// following the proof of Theorem 2 end to end: split pairs into node-loss
// form (Section 3.2), embed into O(log n) random trees and keep the best
// core (Lemma 6 / Proposition 7), select on the tree via stars (Lemmas 5
// and 9), return to pairs, and thin to the full gain in the original metric
// (Lemma 8 / Proposition 3). The returned indices refer to in.Reqs.
type Pipeline struct {
	// Trees is the number of HST samples r (default: ⌈log2 n⌉ + 2).
	Trees int
	// StretchBound overrides the core stretch threshold (default O(log n)).
	StretchBound float64
	// Faithful selects the worst-case parameterized star selection inside
	// the tree stage (see TreeOptions.Faithful).
	Faithful bool
	// NoCache disables the affectance cache the final thinning stage
	// otherwise builds for large kept sets.
	NoCache bool
	// Engine overrides how that stage-5 affectance engine is built (see
	// CacheBuilder); nil selects the exact dense cache. Solvers route the
	// sparse grid engine through it so the pipeline scales past the dense
	// O(n²) memory wall.
	Engine CacheBuilder
}
