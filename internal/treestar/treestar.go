package treestar

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/sinr"
	"repro/internal/star"
)

// TreeOptions tunes SelectOnTree.
type TreeOptions struct {
	// Faithful uses the worst-case parameterized star selection of Lemma 5
	// (star.Select) at every recursion level, as in the paper's proof.
	// The default (false) uses star.SelectLight — greedy thinning at the
	// target gain — which retains far more nodes on benign inputs while
	// guaranteeing the same feasibility postcondition.
	Faithful bool

	// scratch supplies the reusable per-selection buffers; the pipeline
	// threads one through every color class. Nil allocates fresh.
	scratch *treeScratch
}

// treeScratch holds the O(t.N()) marker arrays of SelectOnTreeCtx, reused
// across the restricted instances of a coloring.
type treeScratch struct {
	alive  []bool
	compID []int32
	pos    []int32
	// lossv is the loss map flattened to node-indexed storage; only
	// terminal entries are written (and only terminal entries are read),
	// so it needs no clearing between classes.
	lossv []float64
	ix    distIndex
}

// sized returns the marker arrays for an n-node tree, reallocating only
// on growth. alive and compID are cleared (component id 0 is the root
// frame); pos is stamped per frame before any read.
func (sc *treeScratch) sized(n int) (alive []bool, compID, pos []int32) {
	if cap(sc.alive) < n {
		sc.alive = make([]bool, n)
		sc.compID = make([]int32, n)
		sc.pos = make([]int32, n)
	}
	alive, compID, pos = sc.alive[:n], sc.compID[:n], sc.pos[:n]
	clear(alive)
	clear(compID)
	return alive, compID, pos
}

// TreeStats reports diagnostics from SelectOnTree.
type TreeStats struct {
	// Levels is the depth of the centroid recursion.
	Levels int
	// StarCalls is the number of star selections performed.
	StarCalls int
	// DroppedByStars is the number of terminals dropped by star selections.
	DroppedByStars int
	// DroppedRepair is the number of terminals dropped by the final
	// verification pass on the tree metric.
	DroppedRepair int
}

// SelectOnTree realizes Lemma 9 constructively. Given an edge-weighted tree
// (which may contain Steiner nodes), a set of terminal nodes with loss
// parameters, and the witness gain betaPrime (the gain for which the
// terminal set is feasible under some power assignment), it returns a
// subset of the terminals that is beta-feasible under the square root
// assignment with respect to the tree shortest-path metric.
//
// The recursion splits the tree at a centroid c, runs the star selection of
// Lemma 5 on the star metric induced by the tree distances to c, and
// recurses into the subtrees; a terminal survives if it survives at every
// recursion level. Every pair of terminals has its exact tree distance in
// the star of the level at which it is separated, so the per-level star
// budgets sum to a global interference bound.
func SelectOnTree(m sinr.Model, t *geom.Tree, terminals []int, loss map[int]float64, betaPrime, beta float64, opts TreeOptions) ([]int, *TreeStats, error) {
	return SelectOnTreeCtx(context.Background(), m, t, terminals, loss, betaPrime, beta, opts)
}

// frameResult carries one component's parallel-phase output into the
// sequential merge.
type frameResult struct {
	active   bool
	err      error
	centroid int
	dropped  []int
	comps    [][]int
}

// SelectOnTreeCtx is SelectOnTree under a context, polled once per
// recursion level — stage 3 of the pipeline runs minutes at scale, and
// cancellation must not wait for the whole selection.
//
// The centroid recursion is processed level-synchronously: all
// components of one depth are independent (they partition the tree
// nodes, and a star selection only reads terminals of its own
// component), so each level fans out across the bounded worker pool and
// merges its results in component order. The merge order, the in-frame
// scan orders, and the component numbering are all deterministic, so the
// kept set is bitwise-identical to the sequential recursion regardless
// of GOMAXPROCS.
func SelectOnTreeCtx(ctx context.Context, m sinr.Model, t *geom.Tree, terminals []int, loss map[int]float64, betaPrime, beta float64, opts TreeOptions) ([]int, *TreeStats, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if len(terminals) == 0 {
		return nil, nil, errors.New("treestar: no terminals")
	}
	missing := -1
	for _, v := range terminals {
		if _, ok := loss[v]; !ok {
			missing = v
			break
		}
	}
	if missing >= 0 {
		return nil, nil, fmt.Errorf("treestar: terminal %d has no loss parameter", missing)
	}
	stats := &TreeStats{}
	sc := opts.scratch
	if sc == nil {
		sc = &treeScratch{}
	}
	alive, compID, pos := sc.sized(t.N())
	if cap(sc.lossv) < t.N() {
		sc.lossv = make([]float64, t.N())
	}
	lossv := sc.lossv[:t.N()]
	for _, v := range terminals {
		alive[v] = true
		lossv[v] = loss[v]
	}

	// Per-level star gain: the recursion depth is at most log2 of the tree
	// size, and each level contributes at most 1/(starGain·√ℓ_u)
	// interference, so starGain = levels·beta keeps the total within the
	// beta budget.
	maxLevels := int(math.Ceil(math.Log2(float64(t.N())))) + 1
	starGain := float64(maxLevels) * beta
	if starGain > betaPrime {
		starGain = betaPrime
	}

	all := make([]int, t.N())
	ident := int32(0)
	for i := range all {
		all[i] = i
		pos[i] = ident
		ident++
	}
	type frame struct {
		nodes []int
		id    int32
	}
	wave := []frame{{nodes: all, id: 0}}
	nextID := int32(1)
	for depth := 1; len(wave) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		stats.Levels = depth
		results := make([]frameResult, len(wave))
		// Parallel phase: per-component reads only — alive, compID and pos
		// are written exclusively by the sequential merge below, and the
		// components of one wave are node-disjoint.
		par.ForEach(len(wave), func(fi int) {
			f := &wave[fi]
			res := &results[fi]
			if len(f.nodes) <= 1 {
				return
			}
			terms := make([]int, 0, len(f.nodes))
			for _, v := range f.nodes {
				if alive[v] {
					terms = append(terms, v)
				}
			}
			if len(terms) <= 1 {
				return
			}
			c := centroid(t, f.nodes, compID, f.id, pos)

			// Star selection at this level.
			kept, err := selectStarAt(m, t, c, terms, lossv, betaPrime, starGain, beta, opts)
			if err != nil {
				res.err = err
				return
			}
			keptSet := make(map[int]bool, len(kept))
			for _, v := range kept {
				keptSet[v] = true
			}
			dropped := make([]int, 0, len(terms)-len(kept))
			for _, v := range terms {
				if !keptSet[v] {
					dropped = append(dropped, v)
				}
			}
			res.active = true
			res.centroid = c
			res.dropped = dropped
			res.comps = componentsWithout(t, f.nodes, compID, f.id, pos, c)
		})
		// Sequential merge in component order: apply drops, stamp the
		// child components, build the next wave.
		next := wave[:0]
		for fi := range results {
			res := &results[fi]
			if res.err != nil {
				return nil, nil, res.err
			}
			if !res.active {
				continue
			}
			stats.StarCalls++
			stats.DroppedByStars += len(res.dropped)
			for _, v := range res.dropped {
				alive[v] = false
			}
			// Split at the centroid: the components without it, with the
			// centroid attached to its largest component (the paper keeps
			// one incident edge).
			comps := res.comps
			if len(comps) == 0 {
				continue
			}
			largest := 0
			for i := 1; i < len(comps); i++ {
				if len(comps[i]) > len(comps[largest]) {
					largest = i
				}
			}
			comps[largest] = append(comps[largest], res.centroid)
			for _, comp := range comps {
				if len(comp) > 1 {
					id := nextID
					nextID++
					for i, v := range comp {
						compID[v] = id
						pos[v] = int32(i)
					}
					next = append(next, frame{nodes: comp, id: id})
				}
			}
		}
		wave = next
	}

	// Final verification on the tree metric at gain beta with greedy repair.
	kept := make([]int, 0, len(terminals))
	for _, v := range terminals {
		if alive[v] {
			kept = append(kept, v)
		}
	}
	kept, repaired := repairOnTree(m, t, kept, lossv, beta, &sc.ix)
	stats.DroppedRepair = repaired
	if len(kept) == 0 {
		return nil, stats, errors.New("treestar: selection removed every terminal")
	}
	return kept, stats, nil
}

// selectStarAt builds the star induced by tree distances to center c over
// the given terminals and runs the Lemma 5 selection. A terminal located
// exactly at c receives a tiny positive radius, which only overestimates
// its received interference (the star distance ε+δ_v ≈ δ_v is the exact
// tree distance).
func selectStarAt(m sinr.Model, t *geom.Tree, c int, terms []int, loss []float64, betaPrime, starGain, beta float64, opts TreeOptions) ([]int, error) {
	radii := make([]float64, len(terms))
	losses := make([]float64, len(terms))
	minPos := math.Inf(1)
	for i, v := range terms {
		radii[i] = t.Dist(v, c)
		losses[i] = loss[v]
		if radii[i] > 0 && radii[i] < minPos {
			minPos = radii[i]
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	for i := range radii {
		if radii[i] == 0 {
			radii[i] = minPos / 1e6
		}
	}
	st, err := star.New(radii, losses)
	if err != nil {
		return nil, err
	}
	var keptIdx []int
	if opts.Faithful {
		keptIdx, _, err = star.Select(m, st, betaPrime, starGain)
	} else {
		keptIdx, err = star.SelectLight(m, st, beta)
	}
	if err != nil {
		// An empty star selection is not fatal for the pipeline: treat it
		// as dropping all terminals of this component.
		return nil, nil
	}
	kept := make([]int, len(keptIdx))
	for i, k := range keptIdx {
		kept[i] = terms[k]
	}
	return kept, nil
}

// centroid returns a node of the component whose removal leaves connected
// pieces of at most half the component's size. Membership is the stamp
// test compID[v] == id, and pos maps a member to its index in nodes, so
// all bookkeeping runs on position-indexed slices instead of the maps
// that dominated stage 3's profile.
func centroid(t *geom.Tree, nodes []int, compID []int32, id int32, pos []int32) int {
	if len(nodes) == 1 {
		return nodes[0]
	}
	n := len(nodes)
	// Iterative pre-order from nodes[0] to compute subtree sizes within
	// the component; everything is indexed by position in nodes.
	size := make([]int32, n)
	parent := make([]int32, n)
	order := make([]int32, 0, n)
	stack := make([]int32, 0, n)
	seen := make([]bool, n)
	seen[0] = true
	parent[0] = -1
	stack = append(stack, 0)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, p)
		u := nodes[p]
		for k, deg := 0, t.Degree(u); k < deg; k++ {
			v, _ := t.Neighbor(u, k)
			if compID[v] != id {
				continue
			}
			if q := pos[v]; !seen[q] {
				seen[q] = true
				parent[q] = p
				stack = append(stack, q)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		p := order[i]
		size[p]++
		if pp := parent[p]; pp >= 0 {
			size[pp] += size[p]
		}
	}
	total := int32(len(order))
	best, bestMax := nodes[0], total
	for _, p := range order {
		// Maximum component size if this node is removed.
		worst := total - size[p]
		u := nodes[p]
		for k, deg := 0, t.Degree(u); k < deg; k++ {
			v, _ := t.Neighbor(u, k)
			if compID[v] != id {
				continue
			}
			if q := pos[v]; parent[q] == p && size[q] > worst {
				worst = size[q]
			}
		}
		if worst < bestMax {
			bestMax = worst
			best = u
		}
	}
	return best
}

// componentsWithout returns the connected components of the component
// (the nodes stamped with id) after removing node c.
func componentsWithout(t *geom.Tree, nodes []int, compID []int32, id int32, pos []int32, c int) [][]int {
	visited := make([]bool, len(nodes))
	visited[pos[c]] = true
	var comps [][]int
	stack := make([]int, 0, len(nodes))
	for _, s := range nodes {
		if visited[pos[s]] {
			continue
		}
		visited[pos[s]] = true
		var comp []int
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for k, deg := 0, t.Degree(u); k < deg; k++ {
				v, _ := t.Neighbor(u, k)
				if compID[v] != id || visited[pos[v]] {
					continue
				}
				visited[pos[v]] = true
				stack = append(stack, v)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// distIndex answers tree-metric distance queries in O(1): dist(u,v) =
// wd[u] + wd[v] - 2·wd[lca(u,v)], with the LCA found by a range-minimum
// over an Euler tour (sparse table). Building is O(n log n); the repair
// pass below issues O(k²) distance queries, which made Tree.Dist's
// per-query ancestor walk the measured stage-3 hot spot at scale. The
// buffers are grow-only scratch, reused across color classes.
type distIndex struct {
	wd        []float64 // weighted depth from the DFS root (node 0)
	depth     []int32   // hop depth, the RMQ key
	first     []int32   // first Euler position of each node
	parent    []int32
	kidx      []int32
	stack     []int32
	eulerNode []int32
	eulerDep  []int32
	table     []int32 // levels × elen sparse table of min-depth positions
	lg        []uint8 // floor(log2) lookup
	elen      int
}

// build indexes the tree. The DFS runs from node 0 (every tree here is
// connected — ExplicitTree and the test trees alike).
func (ix *distIndex) build(t *geom.Tree) {
	n := t.N()
	if cap(ix.wd) < n {
		ix.wd = make([]float64, n)
		ix.depth = make([]int32, n)
		ix.first = make([]int32, n)
		ix.parent = make([]int32, n)
		ix.kidx = make([]int32, n)
		ix.stack = make([]int32, 0, n)
	}
	wd, depth, first := ix.wd[:n], ix.depth[:n], ix.first[:n]
	parent, kidx := ix.parent[:n], ix.kidx[:n]
	clear(kidx)
	elen := 2*n - 1
	if cap(ix.eulerNode) < elen {
		ix.eulerNode = make([]int32, 0, elen)
		ix.eulerDep = make([]int32, 0, elen)
	}
	euler, edep := ix.eulerNode[:0], ix.eulerDep[:0]
	wd[0], depth[0], first[0], parent[0] = 0, 0, 0, -1
	euler, edep = append(euler, 0), append(edep, 0)
	stack := append(ix.stack[:0], 0)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		advanced := false
		for kidx[u] < int32(t.Degree(int(u))) {
			v, w := t.Neighbor(int(u), int(kidx[u]))
			kidx[u]++
			if int32(v) == parent[u] {
				continue
			}
			parent[v] = u
			wd[v] = wd[u] + w
			depth[v] = depth[u] + 1
			first[v] = int32(len(euler))
			euler, edep = append(euler, int32(v)), append(edep, depth[v])
			stack = append(stack, int32(v))
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				euler, edep = append(euler, p), append(edep, depth[p])
			}
		}
	}
	ix.eulerNode, ix.eulerDep, ix.stack = euler, edep, stack[:0]
	elen = len(euler)
	ix.elen = elen
	levels := 1
	for 1<<levels <= elen {
		levels++
	}
	if cap(ix.table) < levels*elen {
		ix.table = make([]int32, levels*elen)
	}
	tbl := ix.table[:levels*elen]
	row := tbl[:elen]
	pi := int32(0)
	for i := range row {
		row[i] = pi
		pi++
	}
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		prev, row := tbl[(k-1)*elen:k*elen], tbl[k*elen:(k+1)*elen]
		for i := 0; i+(1<<k) <= elen; i++ {
			a, b := prev[i], prev[i+half]
			if edep[b] < edep[a] {
				a = b
			}
			row[i] = a
		}
	}
	if cap(ix.lg) < elen+1 {
		ix.lg = make([]uint8, elen+1)
	}
	lg := ix.lg[:elen+1]
	for i := 2; i <= elen; i++ {
		lg[i] = lg[i/2] + 1
	}
}

// dist returns the tree shortest-path distance between u and v.
//
//oblint:hotpath
func (ix *distIndex) dist(u, v int) float64 {
	if u == v {
		return 0
	}
	a, b := ix.first[u], ix.first[v]
	if a > b {
		a, b = b, a
	}
	k := ix.lg[b-a+1]
	row := ix.table[int(k)*ix.elen:]
	p, q := row[a], row[int(b)+1-(1<<k)]
	if ix.eulerDep[q] < ix.eulerDep[p] {
		p = q
	}
	return ix.wd[u] + ix.wd[v] - 2*ix.wd[ix.eulerNode[p]]
}

// repairOnTree greedily removes terminals until the set is beta-feasible
// under the square root assignment in the tree metric. It returns the
// surviving set and the number of removals.
//
// The removal order matches the original per-round recomputation — worst
// normalized offender first, earliest index on ties — but the
// interference sums are accumulated once up front (O(k²), fanned over
// the worker pool with per-row sums in member order, so the result is
// GOMAXPROCS-independent) and maintained incrementally per removal. The
// offender score factors as score(u) = √ℓ_u · I(u) with I(u) the
// interference sum, so one accumulator serves both the feasibility test
// and the removal choice.
//
//oblint:hotpath
func repairOnTree(m sinr.Model, t *geom.Tree, kept []int, loss []float64, beta float64, ix *distIndex) ([]int, int) {
	k := len(kept)
	if k == 0 {
		return kept, 0
	}
	ix.build(t)
	sq := make([]float64, k)
	for a, v := range kept {
		sq[a] = math.Sqrt(loss[v])
	}
	inter := make([]float64, k)
	par.ForEach(k, func(a int) {
		u := kept[a]
		var sum float64
		for b, v := range kept {
			if b == a {
				continue
			}
			sum += sq[b] / m.Loss(ix.dist(u, v))
		}
		inter[a] = sum
	})
	dead := make([]bool, k)
	removed := 0
	for {
		feasible := true
		worst, worstScore := -1, math.Inf(-1)
		for a := 0; a < k; a++ {
			if dead[a] {
				continue
			}
			if 1/sq[a] < beta*inter[a]*(1-1e-9) {
				feasible = false
			}
			if score := sq[a] * inter[a]; score > worstScore {
				worstScore = score
				worst = a
			}
		}
		if feasible || worst < 0 {
			out := kept[:0]
			for a := 0; a < k; a++ {
				if !dead[a] {
					out = append(out, kept[a])
				}
			}
			return out, removed
		}
		dead[worst] = true
		removed++
		w := kept[worst]
		for a := 0; a < k; a++ {
			if dead[a] {
				continue
			}
			inter[a] -= sq[worst] / m.Loss(ix.dist(kept[a], w))
		}
	}
}

// PipelineStats aggregates diagnostics of one run of the Theorem 2 pipeline.
type PipelineStats struct {
	// ActiveNodes is the number of request endpoints (2·requests).
	ActiveNodes int
	// CoreNodes is the size of the best tree core (Proposition 7).
	CoreNodes int
	// TreeKept is the number of nodes surviving the tree selection
	// (Lemma 9).
	TreeKept int
	// PairsKept is the number of requests with both endpoints kept.
	PairsKept int
	// FinalPairs is the number of requests after the final thinning in the
	// original metric.
	FinalPairs int
	Tree       TreeStats
}

// Pipeline extracts one color class of requests that is feasible in the
// ORIGINAL metric under the square root power assignment with gain m.Beta,
// following the proof of Theorem 2 end to end: split pairs into node-loss
// form (Section 3.2), embed into O(log n) random trees and keep the best
// core (Lemma 6 / Proposition 7), select on the tree via stars (Lemmas 5
// and 9), return to pairs, and thin to the full gain in the original metric
// (Lemma 8 / Proposition 3). The returned indices refer to in.Reqs.
type Pipeline struct {
	// Trees is the number of HST samples r (default: ⌈log2 n⌉ + 2).
	Trees int
	// StretchBound overrides the core stretch threshold (default O(log n)).
	StretchBound float64
	// Faithful selects the worst-case parameterized star selection inside
	// the tree stage (see TreeOptions.Faithful).
	Faithful bool
	// NoCache disables the affectance cache the final thinning stage
	// otherwise builds for large kept sets.
	NoCache bool
	// Engine overrides how that stage-5 affectance engine is built (see
	// CacheBuilder); nil selects the exact dense cache. Solvers route the
	// sparse grid engine through it so the pipeline scales past the dense
	// O(n²) memory wall.
	Engine CacheBuilder
}
