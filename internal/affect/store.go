package affect

import (
	"math"
	"sync"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// Store deduplicates caches across solves that revisit the same instance —
// the batch runner SolveAll hands one Store to all of its workers, so a
// sweep that solves one instance under several solvers or seeds builds the
// matrices once. Keys combine instance identity, variant, path-loss
// exponent and a hash of the powers; concurrent requests for the same key
// build the cache exactly once.
type Store struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
}

type storeKey struct {
	in    *problem.Instance
	v     sinr.Variant
	alpha float64
	n     int
	hash  uint64
}

type storeEntry struct {
	once sync.Once
	c    *Cache
}

// NewStore returns an empty cache store.
func NewStore() *Store {
	return &Store{entries: map[storeKey]*storeEntry{}}
}

// For returns the cache for (model, variant, instance, powers), building it
// on first use. A hash collision (same key, different powers) falls back to
// building an unshared cache, so the result always covers the arguments.
func (s *Store) For(m sinr.Model, v sinr.Variant, in *problem.Instance, powers []float64) *Cache {
	key := storeKey{in: in, v: v, alpha: m.Alpha, n: len(powers), hash: hashPowers(powers)}
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &storeEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.c = New(m, v, in, powers) })
	if !e.c.Covers(in, m.Alpha, powers) {
		return New(m, v, in, powers)
	}
	return e.c
}

// hashPowers is FNV-1a over the bit patterns of the powers.
func hashPowers(powers []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, p := range powers {
		bits := math.Float64bits(p)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime
		}
	}
	return h
}
