package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/affect"
	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// testInstances returns one uniform and one clustered instance, the two
// workload shapes the property tests sweep.
func testInstances(t *testing.T, seed int64, n int) []*problem.Instance {
	t.Helper()
	uni, err := instance.UniformRandom(rand.New(rand.NewSource(seed)), n, 120, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := instance.Clustered(rand.New(rand.NewSource(seed+1)), n, 4, 15, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []*problem.Instance{uni, clu}
}

func variants() []sinr.Variant { return []sinr.Variant{sinr.Directed, sinr.Bidirectional} }

// TestForEpsilonZeroIsDense pins the documented degeneration: ε=0 selects
// the dense engine itself, so "sparse with ε=0" agrees with dense not
// just numerically but bitwise by construction.
func TestForEpsilonZeroIsDense(t *testing.T) {
	m := sinr.Default()
	for _, in := range testInstances(t, 7, 40) {
		powers := power.Powers(m, in, power.Sqrt())
		for _, v := range variants() {
			c, err := For(m, v, in, powers, Options{Epsilon: 0})
			if err != nil {
				t.Fatal(err)
			}
			dense, ok := c.(*affect.Cache)
			if !ok {
				t.Fatalf("For(ε=0) = %T, want *affect.Cache", c)
			}
			// The dense cache drives the exact tracker; spot-check a full
			// add/margin sweep against a reference dense build bitwise.
			ref := affect.New(m, v, in, powers)
			tr := affect.NewTracker(m, v, dense)
			want := affect.NewTracker(m, v, ref)
			for i := 0; i < in.N(); i++ {
				if tr.CanAdd(i) != want.CanAdd(i) {
					t.Fatalf("%s: CanAdd(%d) diverges at ε=0", v, i)
				}
				if tr.CanAdd(i) {
					tr.Add(i)
					want.Add(i)
				}
				if tr.SetFeasible() != want.SetFeasible() {
					t.Fatalf("%s: SetFeasible diverges at ε=0", v)
				}
			}
			for _, i := range tr.Members() {
				if tr.Margin(i) != want.Margin(i) {
					t.Fatalf("%s: Margin(%d) = %g, want %g (bitwise)", v, i, tr.Margin(i), want.Margin(i))
				}
			}
		}
	}
}

// TestAllNearMatchesDenseBitwise builds the sparse engine with an error
// budget so tiny that every pair lands in the near regime, and checks the
// tracker agrees with the dense one bitwise on Add-sequence margins: the
// near entries are computed with the dense formulas and accumulated in
// the same member order, so even the floating-point drift matches.
func TestAllNearMatchesDenseBitwise(t *testing.T) {
	m := sinr.Default()
	for _, in := range testInstances(t, 11, 60) {
		powers := power.Powers(m, in, power.Sqrt())
		for _, v := range variants() {
			eng, err := New(m, v, in, powers, Options{Epsilon: 1e-12})
			if err != nil {
				t.Fatal(err)
			}
			if eng.Entries() != in.N()*(in.N()-1) {
				t.Fatalf("%s: ε→0 engine is not all-near: %d entries of %d",
					v, eng.Entries(), in.N()*(in.N()-1))
			}
			dense := affect.New(m, v, in, powers)
			tr := eng.NewSetTracker(m, v)
			want := affect.NewTracker(m, v, dense)
			rng := rand.New(rand.NewSource(3))
			for _, i := range rng.Perm(in.N())[:in.N()/2] {
				tr.Add(i)
				want.Add(i)
			}
			for _, i := range tr.Members() {
				if tr.Margin(i) != want.Margin(i) {
					t.Fatalf("%s: all-near Margin(%d) = %g, want %g (bitwise)",
						v, i, tr.Margin(i), want.Margin(i))
				}
			}
			if tr.SetFeasible() != want.SetFeasible() {
				t.Fatalf("%s: all-near SetFeasible diverges", v)
			}
			// Removal must cancel entry for entry on the same path.
			for _, i := range tr.Members()[:tr.Len()/2] {
				tr.Remove(i)
				want.Remove(i)
			}
			for _, i := range tr.Members() {
				if got, ref := tr.Margin(i), want.Margin(i); got != ref {
					t.Fatalf("%s: post-remove Margin(%d) = %g, want %g", v, i, got, ref)
				}
			}
		}
	}
}

// TestPairBoundIsUpperBound is the load-bearing invariant: for every pair
// the engine's bound dominates the exact affectance — bitwise equal when
// near, a finite overestimate within the 1+ε budget when far.
func TestPairBoundIsUpperBound(t *testing.T) {
	m := sinr.Default()
	for _, eps := range []float64{0.5, 8, 64} {
		for _, in := range testInstances(t, 23, 80) {
			powers := power.Powers(m, in, power.Sqrt())
			for _, v := range variants() {
				eng, err := New(m, v, in, powers, Options{Epsilon: eps})
				if err != nil {
					t.Fatal(err)
				}
				budget := 1 + eps
				for i := 0; i < in.N(); i++ {
					for j := 0; j < in.N(); j++ {
						if i == j {
							continue
						}
						var e1, e2 float64
						if v == sinr.Directed {
							e1 = powers[j] / m.Loss(in.Space.Dist(in.Reqs[j].U, in.Reqs[i].V))
						} else {
							e1 = powers[j] / m.MinLossToNode(in, j, in.Reqs[i].U)
							e2 = powers[j] / m.MinLossToNode(in, j, in.Reqs[i].V)
						}
						b1, b2 := eng.PairBound(i, j)
						near := eng.nearPair(i, j)
						if near {
							if b1 != e1 || b2 != e2 {
								t.Fatalf("eps=%g %s: near pair (%d,%d) not exact", eps, v, i, j)
							}
							continue
						}
						if b1 < e1 || b2 < e2 {
							t.Fatalf("eps=%g %s: far bound (%d,%d) below exact: (%g,%g) < (%g,%g)",
								eps, v, i, j, b1, b2, e1, e2)
						}
						// The ε budget bounds the per-entry overestimate.
						if e1 > 0 && b1 > e1*budget*(1+1e-9) {
							t.Fatalf("eps=%g %s: far bound (%d,%d) breaks the budget: %g > (1+ε)·%g",
								eps, v, i, j, b1, e1)
						}
					}
				}
			}
		}
	}
}

// nearPair reports whether (i, j) has a stored exact entry (test hook).
func (e *Engine) nearPair(i, j int) bool { return e.findEntry(i, j) >= 0 }

// TestTrackerConservative drives a greedy fill through the sparse tracker
// at several budgets and checks that every set it accepts is feasible
// under the exact (uncached, dense-oracle) constraints, and that its
// margins never exceed the exact ones.
func TestTrackerConservative(t *testing.T) {
	m := sinr.Default()
	for _, eps := range []float64{2, 8, 32} {
		for _, in := range testInstances(t, 42, 120) {
			powers := power.Powers(m, in, power.Sqrt())
			for _, v := range variants() {
				eng, err := New(m, v, in, powers, Options{Epsilon: eps})
				if err != nil {
					t.Fatal(err)
				}
				var classes [][]int
				var trackers []sinr.SetTracker
				for i := 0; i < in.N(); i++ {
					placed := false
					for k, tr := range trackers {
						if tr.CanAdd(i) {
							tr.Add(i) //oblint:fresh extending a live class the tracker already holds
							classes[k] = append(classes[k], i)
							placed = true
							break
						}
					}
					if !placed {
						tr := eng.NewSetTracker(m, v)
						if !tr.CanAdd(i) {
							t.Fatalf("eps=%g %s: singleton %d rejected", eps, v, i)
						}
						tr.Add(i)
						trackers = append(trackers, tr)
						classes = append(classes, []int{i})
					}
				}
				for k, class := range classes {
					if !trackers[k].SetFeasible() {
						t.Fatalf("eps=%g %s: tracker class %d self-reports infeasible", eps, v, k)
					}
					// The dense oracle must accept every sparse-accepted set.
					if !m.SetFeasible(in, v, powers, class) {
						t.Fatalf("eps=%g %s: sparse-accepted class %d fails the dense oracle", eps, v, k)
					}
					for _, i := range class {
						exact := m.Margin(in, v, powers, class, i)
						if got := trackers[k].Margin(i); got > exact+1e-9 {
							t.Fatalf("eps=%g %s: margin(%d) = %g above exact %g", eps, v, i, got, exact)
						}
					}
				}
			}
		}
	}
}

// TestTrackerChurnAgainstFresh exercises Add/Remove/Reset cancellation:
// after a random churn the accumulators must match a freshly built
// tracker over the same final set to within floating-point drift.
func TestTrackerChurnAgainstFresh(t *testing.T) {
	m := sinr.Default()
	for _, in := range testInstances(t, 5, 90) {
		powers := power.Powers(m, in, power.Sqrt())
		for _, v := range variants() {
			eng, err := New(m, v, in, powers, Options{Epsilon: 8})
			if err != nil {
				t.Fatal(err)
			}
			tr := eng.NewSetTracker(m, v)
			rng := rand.New(rand.NewSource(99))
			active := map[int]bool{}
			for ev := 0; ev < 400; ev++ {
				i := rng.Intn(in.N())
				if active[i] {
					tr.Remove(i)
					delete(active, i)
				} else {
					tr.Add(i)
					active[i] = true
				}
			}
			fresh := eng.NewSetTracker(m, v)
			for _, i := range tr.Members() {
				fresh.Add(i)
			}
			for _, i := range tr.Members() {
				got, want := tr.Margin(i), fresh.Margin(i)
				if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
					t.Fatalf("%s: churned margin(%d) = %g, fresh = %g", v, i, got, want)
				}
			}
			// Reset must return the tracker to a reusable empty state.
			tr.Reset()
			if tr.Len() != 0 {
				t.Fatalf("%s: Reset left %d members", v, tr.Len())
			}
			for _, i := range fresh.Members() {
				tr.Add(i)
			}
			for _, i := range fresh.Members() {
				if got, want := tr.Margin(i), fresh.Margin(i); got != want {
					t.Fatalf("%s: post-Reset margin(%d) = %g, want %g", v, i, got, want)
				}
			}
		}
	}
}

// TestRemoveNonFinite pins the recompute path: two requests sharing a
// node have +Inf mutual affectance; removing one must restore finite,
// correct accumulators for the rest.
func TestRemoveNonFinite(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 0}, {0, 1}, {40, 40}, {40, 47}}
	reqs := []problem.Request{{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 4}}
	space, err := geom.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(space, reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	for _, v := range variants() {
		eng, err := New(m, v, in, powers, Options{Epsilon: 8})
		if err != nil {
			t.Fatal(err)
		}
		tr := eng.NewSetTracker(m, v)
		tr.Add(0)
		tr.Add(1) // shares node 0 with request 0 → ±Inf entries
		tr.Add(2)
		if tr.SetFeasible() {
			t.Fatalf("%s: node-sharing requests cannot be co-feasible", v)
		}
		tr.Remove(1)
		fresh := eng.NewSetTracker(m, v)
		fresh.Add(0)
		fresh.Add(2)
		for _, i := range []int{0, 2} {
			got, want := tr.Margin(i), fresh.Margin(i)
			if math.IsNaN(got) || math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%s: post-Inf-remove margin(%d) = %g, want %g", v, i, got, want)
			}
		}
	}
}

// TestInterferenceBoundDominatesExact checks the set-query face used by
// the LP-repair budget path.
func TestInterferenceBoundDominatesExact(t *testing.T) {
	m := sinr.Default()
	in := testInstances(t, 77, 70)[0]
	powers := power.Powers(m, in, power.Sqrt())
	eng, err := New(m, sinr.Bidirectional, in, powers, Options{Epsilon: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	set := rng.Perm(in.N())[:20]
	for i := 0; i < in.N(); i++ {
		bu, bv := eng.InterferenceBound(set, i)
		eu := m.RequestInterferenceU(in, powers, set, i)
		ev := m.RequestInterferenceV(in, powers, set, i)
		if bu < eu*(1-1e-12) || bv < ev*(1-1e-12) {
			t.Fatalf("InterferenceBound(%d) = (%g,%g) below exact (%g,%g)", i, bu, bv, eu, ev)
		}
	}
}

// TestUnsupportedMetric pins the error contract for metrics without
// coordinates and the Supported predicate.
func TestUnsupportedMetric(t *testing.T) {
	d := [][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}
	space, err := geom.NewMatrix(d)
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(space, []problem.Request{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if Supported(in.Space) {
		t.Fatal("matrix metric reported as grid-supported")
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	if _, err := New(m, sinr.Bidirectional, in, powers, Options{Epsilon: 8}); err == nil {
		t.Fatal("New over a matrix metric should fail")
	}
	if _, err := New(m, sinr.Bidirectional, in, powers, Options{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon should fail")
	}
}

// TestCovers mirrors the dense cache's acceptance rule.
func TestCovers(t *testing.T) {
	m := sinr.Default()
	in := testInstances(t, 13, 30)[0]
	powers := power.Powers(m, in, power.Sqrt())
	eng, err := New(m, sinr.Bidirectional, in, powers, Options{Epsilon: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Covers(in, m.Alpha, powers) {
		t.Fatal("engine does not cover its build arguments")
	}
	clone := append([]float64(nil), powers...)
	if !eng.Covers(in, m.Alpha, clone) {
		t.Fatal("value-equal powers rejected")
	}
	if !eng.Covers(in, m.Alpha, clone) { // memoized second hit
		t.Fatal("memoized powers rejected")
	}
	different := append([]float64(nil), powers...)
	different[0] *= 2
	if eng.Covers(in, m.Alpha, different) {
		t.Fatal("different powers accepted")
	}
	if eng.Covers(in, m.Alpha+1, powers) {
		t.Fatal("wrong alpha accepted")
	}
	if eng.NewSetTracker(m, sinr.Directed) != nil {
		t.Fatal("tracker for the wrong variant should be nil")
	}
	other := sinr.Model{Alpha: m.Alpha + 1, Beta: 1}
	if eng.NewSetTracker(other, sinr.Bidirectional) != nil {
		t.Fatal("tracker for the wrong alpha should be nil")
	}
}

// TestRings pins the ε → near-radius map: monotone non-increasing in ε,
// and the all-near regime for vanishing budgets.
func TestRings(t *testing.T) {
	prev := int32(math.MaxInt32)
	for _, eps := range []float64{1e-9, 0.1, 1, 8, 64, 1e6} {
		r := rings(eps, 3, 2)
		if r < 1 {
			t.Fatalf("rings(%g) = %d < 1", eps, r)
		}
		if r > prev {
			t.Fatalf("rings not monotone at ε=%g: %d > %d", eps, r, prev)
		}
		prev = r
	}
	if r := rings(1e6, 3, 2); r != 1 {
		t.Fatalf("huge ε should reach the minimum radius, got %d", r)
	}
}
