package sparse

import (
	"fmt"
	"math"

	"repro/internal/sinr"
)

// Tracker is the conservative incremental set-feasibility engine over a
// sparse affectance Engine. It maintains, per member, one combined
// interference bound per constraint node: exact near-field entries plus
// cell-granular far-field upper bounds, applied pairwise so additions and
// removals cancel. Margins computed from the bound are lower bounds on
// the true margins — a set the tracker accepts always passes the dense
// oracle — and Add/Remove/CanAdd touch only the candidate's near-cell
// neighbors, the current members, and the per-cell far-field
// accumulators.
//
// A Tracker is not safe for concurrent use.
type Tracker struct {
	e           *Engine
	beta, noise float64

	members []int
	pos     []int32 // pos[i] = index into members, -1 if absent

	// acc1[k]/acc2[k] is the interference bound accumulated at member
	// members[k]'s constraint node(s): directed uses acc1 (receiver),
	// bidirectional acc1 at U and acc2 at V.
	acc1, acc2 []float64

	// Per-cell far-field accumulators over the members' source cells:
	// cellPow[c] is the total power of the members with a source endpoint
	// in the cell. Candidate-side probes (AddMargin, the CanAdd early
	// exit) read the far field from them in O(#occupied cells); the
	// reference-counted entries vanish with their last member, so no
	// floating-point residue outlives a cell.
	cellIDs   []int32
	cellPow   []float64
	cellCnt   []int32
	cellIndex map[int32]int32

	// scratch marks the candidate's near entries during one operation so
	// the member loop distinguishes near from far partners in O(1).
	scratchEntry []int32
	scratchEpoch []uint32
	epoch        uint32
}

var _ sinr.SetTracker = (*Tracker)(nil)

// NewSetTracker implements sinr.TrackerProvider: it returns a fresh empty
// tracker for the model's gain and noise, or nil when the engine was
// built for a different variant or path-loss exponent.
func (e *Engine) NewSetTracker(m sinr.Model, v sinr.Variant) sinr.SetTracker {
	if v != e.v || m.Alpha != e.alpha {
		return nil
	}
	return &Tracker{
		e:            e,
		beta:         m.Beta,
		noise:        m.Noise,
		pos:          newNegOnes(e.n),
		cellIndex:    make(map[int32]int32),
		scratchEntry: make([]int32, e.n),
		scratchEpoch: make([]uint32, e.n),
	}
}

func newNegOnes(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Len returns the current set size.
func (t *Tracker) Len() int { return len(t.members) }

// Contains reports whether request i is in the set.
func (t *Tracker) Contains(i int) bool { return t.pos[i] >= 0 }

// At returns the k-th member in insertion order, without allocating.
func (t *Tracker) At(k int) int { return t.members[k] }

// Members returns the current set in insertion order (a copy).
func (t *Tracker) Members() []int {
	return append([]int(nil), t.members...)
}

// Reset empties the tracker without dropping its backing storage, so the
// online engine can recycle it across slot re-packs.
func (t *Tracker) Reset() {
	for _, i := range t.members {
		t.pos[i] = -1
	}
	t.members = t.members[:0]
	t.acc1 = t.acc1[:0]
	t.acc2 = t.acc2[:0]
	t.cellIDs = t.cellIDs[:0]
	t.cellPow = t.cellPow[:0]
	t.cellCnt = t.cellCnt[:0]
	clear(t.cellIndex)
}

// markNear stamps the active near partners of request j for this
// operation; nearEntry answers in O(1) afterwards.
//
//oblint:hotpath
func (t *Tracker) markNear(j int) {
	t.epoch++
	if t.epoch == 0 {
		clear(t.scratchEpoch)
		t.epoch = 1
	}
	e := t.e
	for ee := e.start[j]; ee < e.start[j+1]; ee++ {
		if k := e.adj[ee]; t.pos[k] >= 0 {
			t.scratchEntry[k] = ee
			t.scratchEpoch[k] = t.epoch
		}
	}
}

// nearEntry returns the CSR entry of active near partner k in the marked
// request's row, or -1 when the pair is far (valid until the next mark).
//
//oblint:hotpath
func (t *Tracker) nearEntry(k int) int32 {
	if t.scratchEpoch[k] == t.epoch {
		return t.scratchEntry[k]
	}
	return -1
}

// --- per-cell far-field accumulators ---

//oblint:hotpath
func (t *Tracker) bumpCell(c int32, p float64) {
	if idx, ok := t.cellIndex[c]; ok {
		t.cellPow[idx] += p
		t.cellCnt[idx]++
		return
	}
	t.cellIndex[c] = int32(len(t.cellIDs))
	t.cellIDs = append(t.cellIDs, c)
	t.cellPow = append(t.cellPow, p)
	t.cellCnt = append(t.cellCnt, 1)
}

//oblint:hotpath
func (t *Tracker) dropCell(c int32, p float64) {
	idx := t.cellIndex[c]
	if t.cellCnt[idx]--; t.cellCnt[idx] > 0 {
		t.cellPow[idx] -= p
		return
	}
	delete(t.cellIndex, c)
	last := int32(len(t.cellIDs) - 1)
	if idx != last {
		t.cellIDs[idx] = t.cellIDs[last]
		t.cellPow[idx] = t.cellPow[last]
		t.cellCnt[idx] = t.cellCnt[last]
		t.cellIndex[t.cellIDs[idx]] = idx
	}
	t.cellIDs = t.cellIDs[:last]
	t.cellPow = t.cellPow[:last]
	t.cellCnt = t.cellCnt[:last]
}

//oblint:hotpath
func (t *Tracker) cellAdd(j int) {
	e := t.e
	t.bumpCell(e.cellU[j], e.powers[j])
	if e.v == sinr.Bidirectional && e.cellV[j] != e.cellU[j] {
		t.bumpCell(e.cellV[j], e.powers[j])
	}
}

//oblint:hotpath
func (t *Tracker) cellRemove(j int) {
	e := t.e
	t.dropCell(e.cellU[j], e.powers[j])
	if e.v == sinr.Bidirectional && e.cellV[j] != e.cellU[j] {
		t.dropCell(e.cellV[j], e.powers[j])
	}
}

// farCells sums the far-field bound the occupied cells add at target cell
// tgt, skipping cells within the near radius — their members' exact
// contributions are accounted separately.
//
//oblint:hotpath
func (t *Tracker) farCells(tgt int32) float64 {
	e := t.e
	var s float64
	for idx, c := range t.cellIDs {
		if e.g.cheb(c, tgt) > e.r {
			s += t.cellPow[idx] * e.invBox(c, tgt)
		}
	}
	return s
}

// --- margins ---

// margin converts an interference bound into the normalized margin of the
// sinr package. Because the bound overestimates the true interference,
// the result is a lower bound on the exact margin.
//
//oblint:hotpath
func (t *Tracker) margin(i int, i1, i2 float64) float64 {
	signal := t.e.signals[i]
	if signal == 0 {
		return math.Inf(-1)
	}
	mg := (signal - t.beta*(i1+t.noise)) / signal
	if t.e.v == sinr.Bidirectional {
		if mg2 := (signal - t.beta*(i2+t.noise)) / signal; mg2 < mg {
			mg = mg2
		}
	}
	return mg
}

// Margin returns the conservative SINR margin of member i in O(1).
//
//oblint:hotpath
func (t *Tracker) Margin(i int) float64 {
	p := t.pos[i]
	if p < 0 {
		panic(fmt.Sprintf("sparse: Margin(%d): not a member", i))
	}
	return t.margin(i, t.acc1[p], t.acc2[p])
}

// AddMargin returns the conservative margin request i would have if it
// were added, without mutating the tracker: exact near entries from i's
// row plus the per-cell far-field accumulators — O(k_near + #cells).
//
//oblint:hotpath
func (t *Tracker) AddMargin(i int) float64 {
	if t.pos[i] >= 0 {
		return t.Margin(i)
	}
	e := t.e
	var b1, b2 float64
	for ee := e.start[i]; ee < e.start[i+1]; ee++ {
		if t.pos[e.adj[ee]] >= 0 {
			b1 += e.a1[ee]
			if e.a2 != nil {
				b2 += e.a2[ee]
			}
		}
	}
	if e.v == sinr.Directed {
		b1 += t.farCells(e.cellV[i])
	} else {
		b1 += t.farCells(e.cellU[i])
		b2 += t.farCells(e.cellV[i])
	}
	return t.margin(i, b1, b2)
}

// CanAdd reports whether request i can join without violating its own
// conservative constraint or any member's.
//
//oblint:hotpath
func (t *Tracker) CanAdd(i int) bool {
	if t.pos[i] >= 0 {
		return false
	}
	// Candidate side first: the cell-accumulator probe is O(k_near +
	// #cells) and rejects most misfits before the member scan.
	if t.AddMargin(i) < -sinr.Tol {
		return false
	}
	e := t.e
	t.markNear(i)
	for p, k := range t.members {
		var c1, c2 float64
		if ee := t.nearEntry(k); ee >= 0 {
			me := e.mirror[ee]
			c1 = e.a1[me]
			if e.a2 != nil {
				c2 = e.a2[me]
			}
		} else if e.v == sinr.Directed {
			c1 = e.farBound(i, e.cellV[k])
		} else {
			c1 = e.farBound(i, e.cellU[k])
			c2 = e.farBound(i, e.cellV[k])
		}
		if t.margin(k, t.acc1[p]+c1, t.acc2[p]+c2) < -sinr.Tol {
			return false
		}
	}
	return true
}

// Add inserts request i, updating every member's bound with i's pairwise
// contribution (exact when near, cell-granular when far) and accumulating
// i's own bound the same way, so a later Remove cancels entry for entry.
// It panics if i is already a member.
//
//oblint:hotpath
func (t *Tracker) Add(i int) {
	if t.pos[i] >= 0 {
		panic(fmt.Sprintf("sparse: Add(%d): already a member", i))
	}
	e := t.e
	t.markNear(i)
	var own1, own2 float64
	for p, k := range t.members {
		if ee := t.nearEntry(k); ee >= 0 {
			own1 += e.a1[ee]
			me := e.mirror[ee]
			t.acc1[p] += e.a1[me]
			if e.a2 != nil {
				own2 += e.a2[ee]
				t.acc2[p] += e.a2[me]
			}
		} else if e.v == sinr.Directed {
			own1 += e.farBound(k, e.cellV[i])
			t.acc1[p] += e.farBound(i, e.cellV[k])
		} else {
			own1 += e.farBound(k, e.cellU[i])
			own2 += e.farBound(k, e.cellV[i])
			t.acc1[p] += e.farBound(i, e.cellU[k])
			t.acc2[p] += e.farBound(i, e.cellV[k])
		}
	}
	t.pos[i] = int32(len(t.members))
	t.members = append(t.members, i)
	t.acc1 = append(t.acc1, own1)
	t.acc2 = append(t.acc2, own2)
	t.cellAdd(i)
}

// Remove deletes request i, subtracting the same pairwise contributions
// Add applied; insertion order of the remaining members is preserved. A
// non-finite near entry (zero-distance pair) cannot be subtracted without
// corrupting the accumulator, so such members are recomputed from
// scratch, mirroring the dense tracker. It panics if i is not a member.
//
//oblint:hotpath
func (t *Tracker) Remove(i int) {
	p := t.pos[i]
	if p < 0 {
		panic(fmt.Sprintf("sparse: Remove(%d): not a member", i))
	}
	e := t.e
	t.markNear(i)
	copy(t.members[p:], t.members[p+1:])
	copy(t.acc1[p:], t.acc1[p+1:])
	copy(t.acc2[p:], t.acc2[p+1:])
	last := len(t.members) - 1
	t.members = t.members[:last]
	t.acc1 = t.acc1[:last]
	t.acc2 = t.acc2[:last]
	for k := int(p); k < last; k++ {
		t.pos[t.members[k]] = int32(k)
	}
	t.pos[i] = -1
	t.cellRemove(i)

	for p, k := range t.members {
		if ee := t.nearEntry(k); ee >= 0 {
			me := e.mirror[ee]
			v1 := e.a1[me]
			var v2 float64
			if e.a2 != nil {
				v2 = e.a2[me]
			}
			if isFinite(v1) && isFinite(v2) {
				t.acc1[p] -= v1
				t.acc2[p] -= v2
			} else {
				t.acc1[p], t.acc2[p] = t.recompute(k)
			}
		} else if e.v == sinr.Directed {
			t.acc1[p] -= e.farBound(i, e.cellV[k])
		} else {
			t.acc1[p] -= e.farBound(i, e.cellU[k])
			t.acc2[p] -= e.farBound(i, e.cellV[k])
		}
	}
}

// recompute rebuilds member k's interference bound from scratch against
// the current members: exact entries over k's near row, pairwise far
// bounds for the rest — O(k_near + |set|·log k_near).
//
//oblint:hotpath
func (t *Tracker) recompute(k int) (b1, b2 float64) {
	e := t.e
	for ee := e.start[k]; ee < e.start[k+1]; ee++ {
		j := e.adj[ee]
		if int(j) != k && t.pos[j] >= 0 {
			b1 += e.a1[ee]
			if e.a2 != nil {
				b2 += e.a2[ee]
			}
		}
	}
	for _, j := range t.members {
		if j == k || e.findEntry(k, j) >= 0 {
			continue
		}
		if e.v == sinr.Directed {
			b1 += e.farBound(j, e.cellV[k])
		} else {
			b1 += e.farBound(j, e.cellU[k])
			b2 += e.farBound(j, e.cellV[k])
		}
	}
	return b1, b2
}

// SetFeasible reports whether every member's conservative constraint
// holds, in O(|set|). True implies the set passes the dense oracle.
//
//oblint:hotpath
func (t *Tracker) SetFeasible() bool {
	for p, i := range t.members {
		if t.margin(i, t.acc1[p], t.acc2[p]) < -sinr.Tol {
			return false
		}
	}
	return true
}

// WorstMargin returns the minimum conservative margin over the members
// and the request attaining it ((+Inf, -1) for an empty set).
//
//oblint:hotpath
func (t *Tracker) WorstMargin() (float64, int) {
	worst, arg := math.Inf(1), -1
	for p, i := range t.members {
		if mg := t.margin(i, t.acc1[p], t.acc2[p]); mg < worst {
			worst = mg
			arg = i
		}
	}
	return worst, arg
}

// isFinite reports whether f is neither ±Inf nor NaN.
func isFinite(f float64) bool {
	return !math.IsInf(f, 0) && !math.IsNaN(f)
}
