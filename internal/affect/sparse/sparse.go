package sparse

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/affect"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// DefaultEpsilon is the default per-entry far-field overestimate budget.
// At the experiments' α=3 in two dimensions it yields a near radius of
// 3 cell rings — exact entries for everything within three cells, cell-
// granular upper bounds beyond.
const DefaultEpsilon = 8.0

// AutoThreshold is the instance size above which the auto affectance mode
// switches from the dense engine to the sparse one: below it the dense
// matrices fit comfortably (≤ ~½ GB) and stay bitwise-exact; above it
// their O(n²) memory takes over the solve cost.
const AutoThreshold = 4096

// defaultOccupancy is the target number of endpoint sites per grid cell.
const defaultOccupancy = 2.0

// Options configure the sparse engine.
type Options struct {
	// Epsilon is the error budget of the far-field truncation: every
	// far-pair entry overestimates the true affectance by at most a
	// factor 1+ε (the near radius is derived from it, see rings). Larger
	// ε means fewer exact entries — less memory and faster probes, but
	// looser margins and so potentially more colors. It never costs
	// correctness: the bound direction makes every accepted set feasible.
	// 0 selects the dense path (For degenerates to affect.New bitwise);
	// negative is invalid.
	Epsilon float64
	// CellOccupancy is the target number of endpoint sites per grid cell
	// (default 2). It trades cell count against per-cell list length.
	CellOccupancy float64
}

// rings converts the error budget into the near radius in cells: far
// pairs are at Chebyshev cell distance > r, where their box distance is
// ≥ r·h while their true distance is at most box + 2h√dim, so the
// affectance overestimate factor is ≤ (1 + 2√dim/r)^α ≤ 1+ε. A vanishing
// budget saturates to "everything is near" (the neighbor enumeration is
// clamped to the occupied grid, so a huge radius stays finite work).
func rings(eps, alpha float64, dim int) int32 {
	f := math.Pow(1+eps, 1/alpha) - 1
	if f <= 0 {
		return math.MaxInt32
	}
	r := math.Ceil(2 * math.Sqrt(float64(dim)) / f)
	if r < 1 {
		return 1
	}
	if r >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(r)
}

// Engine is the grid-bucketed affectance engine for one (instance, model,
// variant, powers) tuple: exact CSR entries for near pairs, cell-granular
// conservative upper bounds for everything else. It implements sinr.Cache
// (with nil rows) and sinr.TrackerProvider; schedulers consume it through
// the trackers.
//
// Like the dense cache it is immutable after construction and safe for
// concurrent readers; the trackers it hands out are not.
type Engine struct {
	in     *problem.Instance
	v      sinr.Variant
	alpha  float64
	n      int
	eps    float64
	r      int32
	orig   *float64
	powers []float64

	signals, losses []float64
	loss            sinr.Model // alpha-only model for loss evaluations

	g            *grid
	cellU, cellV []int32 // cell id of each request's U / V endpoint

	// Near-pair CSR. Row i lists the near partners of request i in
	// ascending order; a1[e] (and a2[e] for the bidirectional variant) is
	// the exact affectance adj[e] adds at i's constraint node(s), bitwise
	// equal to the dense matrix entry. mirror[e] locates the reverse
	// entry (i in adj[e]'s row), so "what does j inflict" is one indexed
	// load away from "what does j receive".
	start  []int32
	adj    []int32
	a1, a2 []float64
	mirror []int32

	// accepted memoizes the last alternate powers slice that compared
	// value-equal to the snapshot (see affect.Cache.Covers for the full
	// memo rationale; one slot suffices for the solver call patterns).
	accepted atomic.Value // sliceKey
}

var (
	_ sinr.Cache           = (*Engine)(nil)
	_ sinr.TrackerProvider = (*Engine)(nil)
)

type sliceKey struct {
	p *float64
	n int
}

// ErrUnsupportedMetric is returned when the sparse engine is requested
// over a metric that carries no grid coordinates. The solver layer
// returns it verbatim wherever it pre-validates a forced sparse mode, so
// the message cannot drift between solvers.
var ErrUnsupportedMetric = errors.New("sparse: metric space carries no grid coordinates (need Euclidean dim ≤ 3 or a line)")

// For returns the affectance engine for the options: the dense cache when
// Epsilon is zero — the documented bitwise degeneration — and the sparse
// engine otherwise. It fails when Epsilon is negative or the sparse
// engine is requested over a metric without coordinates (see Supported).
func For(m sinr.Model, v sinr.Variant, in *problem.Instance, powers []float64, o Options) (sinr.Cache, error) {
	if o.Epsilon == 0 {
		return affect.New(m, v, in, powers), nil
	}
	return New(m, v, in, powers, o)
}

// New builds the sparse engine. Epsilon must be positive (use For for the
// ε=0 dense degeneration) and the instance metric must be Supported.
func New(m sinr.Model, v sinr.Variant, in *problem.Instance, powers []float64, o Options) (*Engine, error) {
	if !(o.Epsilon > 0) {
		return nil, fmt.Errorf("sparse: epsilon must be > 0, got %g", o.Epsilon)
	}
	if v != sinr.Directed && v != sinr.Bidirectional {
		return nil, fmt.Errorf("sparse: unknown variant %d", int(v))
	}
	n := in.N()
	if len(powers) != n {
		return nil, fmt.Errorf("sparse: %d powers for %d requests", len(powers), n)
	}
	fn, dim, ok := points(in.Space)
	if !ok {
		return nil, ErrUnsupportedMetric
	}
	occ := o.CellOccupancy
	if occ <= 0 {
		occ = defaultOccupancy
	}
	e := &Engine{
		in:     in,
		v:      v,
		alpha:  m.Alpha,
		n:      n,
		eps:    o.Epsilon,
		r:      rings(o.Epsilon, m.Alpha, dim),
		orig:   &powers[0],
		powers: append([]float64(nil), powers...),
		loss:   sinr.Model{Alpha: m.Alpha, Beta: 1},
	}

	e.signals = make([]float64, n)
	e.losses = make([]float64, n)
	for i := 0; i < n; i++ {
		e.losses[i] = m.RequestLoss(in, i)
		e.signals[i] = powers[i] / e.losses[i]
	}

	// Bucket the endpoints and index each cell's requests.
	nodes := make([]int, 0, 2*n)
	for _, r := range in.Reqs {
		nodes = append(nodes, r.U, r.V)
	}
	nodeCell := make([]int32, in.Space.N())
	for i := range nodeCell {
		nodeCell[i] = -1
	}
	e.g = newGrid(fn, dim, nodes, occ, nodeCell)
	e.cellU = make([]int32, n)
	e.cellV = make([]int32, n)
	for i, r := range in.Reqs {
		cu, cv := nodeCell[r.U], nodeCell[r.V]
		e.cellU[i], e.cellV[i] = cu, cv
		e.g.reqs[cu] = append(e.g.reqs[cu], int32(i))
		if cv != cu {
			e.g.reqs[cv] = append(e.g.reqs[cv], int32(i))
		}
	}

	// Near adjacency: request j is near i iff some endpoint cell of j is
	// within r Chebyshev cells of some endpoint cell of i — a symmetric
	// relation, discovered by scanning the neighbor cells of i's own
	// cells. Worker-local stamps dedupe requests seen through several
	// cells.
	lists := make([][]int32, n)
	parallelChunks(n, func(lo, hi int) {
		stamp := make([]int32, n)
		for i := lo; i < hi; i++ {
			mark := int32(i) + 1
			var out []int32
			visit := func(id int32) {
				for _, j := range e.g.reqs[id] {
					if int(j) != i && stamp[j] != mark {
						stamp[j] = mark
						out = append(out, j)
					}
				}
			}
			e.g.neighborCells(e.cellU[i], e.r, visit)
			if e.cellV[i] != e.cellU[i] {
				e.g.neighborCells(e.cellV[i], e.r, visit)
			}
			slices.Sort(out)
			lists[i] = out
		}
	})

	var total int64
	e.start = make([]int32, n+1)
	for i, l := range lists {
		total += int64(len(l))
		if total > math.MaxInt32 {
			return nil, fmt.Errorf("sparse: near structure overflows (%d entries at ε=%g); raise epsilon or use the dense engine", total, o.Epsilon)
		}
		e.start[i+1] = e.start[i] + int32(len(l))
	}
	e.adj = make([]int32, total)
	e.a1 = make([]float64, total)
	if v == sinr.Bidirectional {
		e.a2 = make([]float64, total)
	}
	e.mirror = make([]int32, total)

	// Exact near entries, with the same formulas as the dense fill so the
	// two agree bitwise on every stored pair.
	parallelChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := e.start[i]
			copy(e.adj[base:e.start[i+1]], lists[i])
			switch v {
			case sinr.Directed:
				vi := in.Reqs[i].V
				for k, j := range lists[i] {
					e.a1[base+int32(k)] = powers[j] / m.Loss(in.Space.Dist(in.Reqs[j].U, vi))
				}
			case sinr.Bidirectional:
				for k, j := range lists[i] {
					e.a1[base+int32(k)] = powers[j] / m.MinLossToNode(in, int(j), in.Reqs[i].U)
					e.a2[base+int32(k)] = powers[j] / m.MinLossToNode(in, int(j), in.Reqs[i].V)
				}
			}
		}
	})
	parallelChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ee := e.start[i]; ee < e.start[i+1]; ee++ {
				j := e.adj[ee]
				rev := e.findEntry(int(j), i)
				if rev < 0 {
					panic(fmt.Sprintf("sparse: asymmetric near pair (%d,%d)", i, j))
				}
				e.mirror[ee] = rev
			}
		}
	})
	return e, nil
}

// parallelChunks runs fn over contiguous chunks of 0..n-1 on a pool of
// GOMAXPROCS workers.
func parallelChunks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// findEntry returns the CSR index of partner j in row i, or -1.
func (e *Engine) findEntry(i, j int) int32 {
	lo, hi := e.start[i], e.start[i+1]
	row := e.adj[lo:hi]
	k, ok := sort.Find(len(row), func(k int) int { return j - int(row[k]) })
	if !ok {
		return -1
	}
	return lo + int32(k)
}

// --- geometry-backed bounds ---

// invBox returns 1/ℓ(boxdist) for two cells beyond each other's adjacent
// ring — the per-cell affectance kernel of the far field.
func (e *Engine) invBox(c, tgt int32) float64 {
	return 1 / e.loss.Loss(e.g.boxDist(c, tgt))
}

// farBound returns the conservative upper bound on the affectance request
// j adds at any node of cell tgt, at cell granularity: the worse of j's
// endpoint-cell kernels (the bidirectional min-loss is attained at one of
// the endpoints, and each kernel dominates its endpoint's exact term, so
// the max dominates the pair while staying within the 1+ε budget). It
// must only be used for far pairs (every endpoint cell of j beyond the
// near radius of tgt), where the box distances are strictly positive.
func (e *Engine) farBound(j int, tgt int32) float64 {
	b := e.invBox(e.cellU[j], tgt)
	if e.v == sinr.Bidirectional {
		if cv := e.cellV[j]; cv != e.cellU[j] {
			if b2 := e.invBox(cv, tgt); b2 > b {
				b = b2
			}
		}
	}
	return e.powers[j] * b
}

// PairBound returns a conservative upper bound on the affectance request
// j adds at request i's constraint node(s): exact (bitwise equal to the
// dense entry) for near pairs, the cell-granular far bound otherwise. For
// the directed variant only the first value is meaningful.
func (e *Engine) PairBound(i, j int) (b1, b2 float64) {
	if ee := e.findEntry(i, j); ee >= 0 {
		b1 = e.a1[ee]
		if e.a2 != nil {
			b2 = e.a2[ee]
		}
		return b1, b2
	}
	if e.v == sinr.Directed {
		return e.farBound(j, e.cellV[i]), 0
	}
	return e.farBound(j, e.cellU[i]), e.farBound(j, e.cellV[i])
}

// InterferenceBound returns a conservative upper bound on the total
// interference the requests of set (excluding i itself) add at request
// i's constraint node(s): U and V endpoints for the bidirectional
// variant, the receiver (first value) for the directed one. The LP-repair
// budget checks run on it at scale — O(|set|·log k) instead of walking a
// dense row.
func (e *Engine) InterferenceBound(set []int, i int) (u, v float64) {
	for _, j := range set {
		if j == i {
			continue
		}
		b1, b2 := e.PairBound(i, j)
		u += b1
		v += b2
	}
	return u, v
}

// Near returns the number of stored near entries of request i (testing
// and diagnostics).
func (e *Engine) Near(i int) int { return int(e.start[i+1] - e.start[i]) }

// Entries returns the total number of stored exact entries.
func (e *Engine) Entries() int { return len(e.adj) }

// Rings returns the near radius in cells derived from the error budget.
func (e *Engine) Rings() int { return int(e.r) }

// Epsilon returns the engine's error budget.
func (e *Engine) Epsilon() float64 { return e.eps }

// Cells returns the number of occupied grid cells.
func (e *Engine) Cells() int { return len(e.g.coords) }

// Bytes returns the approximate resident payload of the engine in
// bytes: the near-pair CSR, the per-request vectors and the grid
// buckets. Map bucket overhead of the cell index is not counted, so
// the figure is a floor — good for the memory gauges and the sparse
// vs dense comparison, not an allocator-exact accounting.
func (e *Engine) Bytes() int64 {
	b := 8 * int64(len(e.powers)+len(e.signals)+len(e.losses)+len(e.a1)+len(e.a2))
	b += 4 * int64(len(e.cellU)+len(e.cellV)+len(e.start)+len(e.adj)+len(e.mirror))
	b += int64(len(e.g.coords)) * int64(3*4) // cellCoord payload
	for _, rs := range e.g.reqs {
		b += 4 * int64(len(rs))
	}
	return b
}

// N returns the number of requests the engine was built for.
func (e *Engine) N() int { return e.n }

// Variant returns the SINR variant the engine was built for.
func (e *Engine) Variant() sinr.Variant { return e.v }

// --- sinr.Cache ---

// Covers reports whether the engine answers queries for this instance,
// path-loss exponent and powers, with the same acceptance rule as the
// dense cache: build-slice identity, a memoized previously accepted
// slice, or full value equality.
func (e *Engine) Covers(in *problem.Instance, alpha float64, powers []float64) bool {
	if in != e.in || alpha != e.alpha || len(powers) != e.n {
		return false
	}
	if e.n == 0 {
		return true
	}
	p := &powers[0]
	if p == e.orig {
		return true
	}
	key := sliceKey{p: p, n: len(powers)}
	if k, _ := e.accepted.Load().(sliceKey); k == key {
		return true
	}
	for i, v := range powers {
		if v != e.powers[i] {
			return false
		}
	}
	e.accepted.Store(key)
	return true
}

// DirectedInto returns nil: the engine materializes no rows. Row-walking
// consumers must gate on sinr.TrackerProvider instead.
func (e *Engine) DirectedInto(int) []float64 { return nil }

// DirectedFrom returns nil; see DirectedInto.
func (e *Engine) DirectedFrom(int) []float64 { return nil }

// IntoU returns nil; see DirectedInto.
func (e *Engine) IntoU(int) []float64 { return nil }

// IntoV returns nil; see DirectedInto.
func (e *Engine) IntoV(int) []float64 { return nil }

// FromU returns nil; see DirectedInto.
func (e *Engine) FromU(int) []float64 { return nil }

// FromV returns nil; see DirectedInto.
func (e *Engine) FromV(int) []float64 { return nil }

// Signals returns the per-request signal strengths p_i/ℓ_i.
func (e *Engine) Signals() []float64 { return e.signals }

// Losses returns the per-request endpoint losses ℓ_i.
func (e *Engine) Losses() []float64 { return e.losses }
