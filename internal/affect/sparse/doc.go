// Package sparse is the spatially-bucketed affectance engine: the memory
// face of the SINR hot path at production scale. The dense engine
// (package affect) materializes n×n float64 matrices — ≈190 MB at
// n=2000 and ≈120 GB at n=50000 — while affectance decays as d^(-α), so
// at large n the overwhelming majority of entries are negligible. This
// package exploits exactly that structure.
//
// The engine buckets the request endpoints into a uniform grid of cells
// and splits every request pair into two regimes:
//
//   - near pairs — some endpoint cells within `rings` Chebyshev cells of
//     each other — keep their exact per-pair affectance entries, stored in
//     a CSR adjacency (bitwise identical to the dense matrix entries);
//   - far pairs are never stored: their contribution is bounded from
//     above at cell granularity, p_j/ℓ(boxdist(cell_j, cell_i)), where
//     boxdist is the minimum distance between the two cells' boxes.
//
// Because the far field is an upper bound, every margin the engine
// reports is a lower bound on the true SINR margin: a set the engine
// accepts is provably feasible under the exact constraints (the dense
// oracle), while a set it rejects may in truth have fit — the engine
// trades schedule length for O(n·k) memory, never feasibility.
//
// The Epsilon option is the explicit error budget of that trade: the
// near radius is derived from it so that every far-field entry
// overestimates the true affectance by at most a factor 1+ε
// (see rings()). ε=0 degenerates to the dense path bitwise — For
// returns the dense affect.Cache itself.
//
// An Engine implements sinr.Cache (Covers/Signals/Losses; the row
// accessors return nil — rows are exactly what it refuses to
// materialize) and sinr.TrackerProvider, through which the schedulers
// obtain conservative incremental trackers whose Add/Remove/CanAdd touch
// only near-cell neighbors plus per-cell far-field accumulators.
package sparse
