package sparse

import (
	"math"

	"repro/internal/geom"
)

// maxDim is the largest Euclidean dimension the grid buckets. Higher
// dimensions (and non-coordinate metrics) have no grid; Supported gates
// them out and For falls back to the dense engine.
const maxDim = 3

// cellCoord is the integer coordinate of a grid cell; unused trailing
// axes stay zero so the value is directly comparable and hashable.
type cellCoord [maxDim]int32

// grid is a uniform cell decomposition of the bounding box of the request
// endpoints. Only occupied cells are materialized, keyed by their integer
// coordinate, so memory is O(#distinct endpoint cells) regardless of the
// bounding-box aspect ratio.
type grid struct {
	dim        int
	h          float64 // cell edge length
	min        [maxDim]float64
	cmin, cmax [maxDim]int32       // bounding box of the occupied cell coordinates
	coords     []cellCoord         // cell id -> integer coordinate
	ids        map[cellCoord]int32 // integer coordinate -> cell id
	reqs       [][]int32           // cell id -> requests with an endpoint in the cell (sorted, deduped)
}

// pointFn resolves a node index to coordinates (unused axes zero).
type pointFn func(node int) [maxDim]float64

// points returns a coordinate accessor for the metric, or ok=false when
// the metric carries no usable geometry (explicit matrices, trees, stars,
// or Euclidean spaces above maxDim dimensions).
func points(space geom.Metric) (fn pointFn, dim int, ok bool) {
	switch s := space.(type) {
	case *geom.Euclidean:
		d := s.Dim()
		if d > maxDim {
			return nil, 0, false
		}
		return func(node int) [maxDim]float64 {
			var p [maxDim]float64
			copy(p[:], s.Point(node))
			return p
		}, d, true
	case *geom.Line:
		return func(node int) [maxDim]float64 {
			return [maxDim]float64{s.Coord(node)}
		}, 1, true
	default:
		return nil, 0, false
	}
}

// Supported reports whether the metric space carries the coordinates the
// grid decomposition needs: a Euclidean space of at most 3 dimensions or
// a line metric. For every other metric the dense engine is the only
// affectance cache.
func Supported(space geom.Metric) bool {
	_, _, ok := points(space)
	return ok
}

// newGrid buckets the given nodes of the space. nodes lists the node
// indices that appear as request endpoints (duplicates allowed); occ is
// the target number of endpoint sites per cell, which fixes the cell edge
// from the observed density. nodeCell receives the cell id of every
// listed node (indexed by node id; untouched entries stay -1).
func newGrid(fn pointFn, dim int, nodes []int, occ float64, nodeCell []int32) *grid {
	g := &grid{dim: dim, ids: make(map[cellCoord]int32)}

	var max [maxDim]float64
	for k := 0; k < dim; k++ {
		g.min[k] = math.Inf(1)
		max[k] = math.Inf(-1)
	}
	for _, w := range nodes {
		p := fn(w)
		for k := 0; k < dim; k++ {
			if p[k] < g.min[k] {
				g.min[k] = p[k]
			}
			if p[k] > max[k] {
				max[k] = p[k]
			}
		}
	}

	// Cell edge from the density of the occupied volume: axes with zero
	// extent (all points coplanar/collinear) contribute no volume and are
	// excluded from the effective dimension, so a 2-d instance laid out
	// on a line still gets sensibly sized cells.
	vol, effDim := 1.0, 0
	for k := 0; k < dim; k++ {
		if ext := max[k] - g.min[k]; ext > 0 {
			vol *= ext
			effDim++
		}
	}
	if effDim == 0 {
		// Degenerate: every endpoint coincides. One cell holds everything
		// (problem.New rejects zero-length requests, so this cannot occur
		// for real instances, but the grid must not divide by zero).
		g.h = 1
	} else {
		g.h = math.Pow(vol*occ/float64(len(nodes)), 1/float64(effDim))
		if !(g.h > 0) {
			g.h = 1
		}
	}

	for _, w := range nodes {
		if nodeCell[w] >= 0 {
			continue
		}
		p := fn(w)
		var cc cellCoord
		for k := 0; k < dim; k++ {
			cc[k] = int32(math.Floor((p[k] - g.min[k]) / g.h))
		}
		id, seen := g.ids[cc]
		if !seen {
			id = int32(len(g.coords))
			if id == 0 {
				g.cmin, g.cmax = cc, cc
			} else {
				for k := 0; k < dim; k++ {
					if cc[k] < g.cmin[k] {
						g.cmin[k] = cc[k]
					}
					if cc[k] > g.cmax[k] {
						g.cmax[k] = cc[k]
					}
				}
			}
			g.ids[cc] = id
			g.coords = append(g.coords, cc)
			g.reqs = append(g.reqs, nil)
		}
		nodeCell[w] = id
	}
	return g
}

// cheb returns the Chebyshev distance between two cells in cell units.
func (g *grid) cheb(a, b int32) int32 {
	var m int32
	ca, cb := &g.coords[a], &g.coords[b]
	for k := 0; k < g.dim; k++ {
		d := ca[k] - cb[k]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// boxDist returns the minimum Euclidean distance between the boxes of two
// cells: per axis, cells that are not adjacent leave a gap of
// (|Δ|-1)·h. It is a lower bound on the distance between any point of
// cell a and any point of cell b, and is strictly positive whenever the
// cells are beyond each other's adjacent ring.
func (g *grid) boxDist(a, b int32) float64 {
	var s float64
	ca, cb := &g.coords[a], &g.coords[b]
	for k := 0; k < g.dim; k++ {
		d := ca[k] - cb[k]
		if d < 0 {
			d = -d
		}
		if d > 1 {
			gap := float64(d-1) * g.h
			s += gap * gap
		}
	}
	return math.Sqrt(s)
}

// neighborCells calls visit with the id of every occupied cell within
// Chebyshev distance r of cell c (including c itself). The scan ranges
// are clamped to the occupied bounding box, so a saturated radius (tiny
// ε) enumerates the whole grid rather than overflowing.
func (g *grid) neighborCells(c int32, r int32, visit func(id int32)) {
	base := g.coords[c]
	var lo, hi [maxDim]int32
	for k := 0; k < g.dim; k++ {
		l, h := int64(base[k])-int64(r), int64(base[k])+int64(r)
		if l < int64(g.cmin[k]) {
			l = int64(g.cmin[k])
		}
		if h > int64(g.cmax[k]) {
			h = int64(g.cmax[k])
		}
		lo[k], hi[k] = int32(l), int32(h)
	}
	var cc cellCoord
	var rec func(k int)
	rec = func(k int) {
		if k == g.dim {
			if id, ok := g.ids[cc]; ok {
				visit(id)
			}
			return
		}
		for v := lo[k]; v <= hi[k]; v++ {
			cc[k] = v
			rec(k + 1)
		}
	}
	rec(0)
}
