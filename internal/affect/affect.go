package affect

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// Cache is the precomputed affectance engine: for one (instance, model,
// variant, powers) tuple it stores the full n×n affectance matrices as flat
// row-major []float64, plus the per-request loss and signal vectors, and
// implements the sinr.Cache hook so that attaching it to a Model turns the
// O(pow)-per-pair interference queries into array loads.
//
// For the directed variant one matrix is stored (interference at each
// request's receiver); for the bidirectional variant two (interference at
// each request's U and V endpoint). Each matrix is also stored transposed,
// so both access patterns of the algorithms — "what does request i receive"
// (Into rows) and "what does request j inflict" (From rows) — stream
// through contiguous memory.
//
// Diagonal entries are stored as zero: a request never interferes with
// itself, and the query loops skip j == i explicitly, mirroring the direct
// computation.
//
// The powers slice is snapshotted at build time. Covers accepts the
// original slice by pointer and any other slice with bitwise-equal
// contents (value comparisons are memoized by slice identity, so repeated
// queries stay O(1)). Mutating a powers slice after the cache accepted it
// is a caller bug — the same bug as mutating the build slice itself.
type Cache struct {
	in     *problem.Instance
	alpha  float64
	n      int
	orig   *float64  // first element of the build slice (fast-path identity)
	powers []float64 // snapshot of the build powers

	signals []float64
	losses  []float64

	// directed matrices (nil for the bidirectional variant)
	dInto, dFrom []float64
	// bidirectional matrices (nil for the directed variant)
	uInto, vInto, uFrom, vFrom []float64

	// The transposed From views are materialized lazily on first use: the
	// greedy and online hot paths need them, but plain interference
	// queries (Model.*Interference, margins, CheckSchedule) only stream
	// Into rows, and for those a cache at half the memory suffices. Each
	// transpose is built exactly once, behind a sync.Once, so concurrent
	// readers (SolveAll workers sharing a Store) race neither on the build
	// nor on the slice assignment.
	dFromOnce, uFromOnce, vFromOnce sync.Once

	// accepted memoizes alternate powers slices that compared equal to the
	// snapshot, as an immutable copy-on-write list of slice identities.
	accepted atomic.Value // []sliceKey
	memoMu   sync.Mutex

	// bytes tracks the float64 payload held by the cache. Atomic because
	// the lazy From transposes grow it concurrently with Bytes readers
	// (SolveAll workers share a cache through the Store).
	bytes atomic.Int64
}

var _ sinr.Cache = (*Cache)(nil)

// sliceKey identifies a []float64 by backing array and length.
type sliceKey struct {
	p *float64
	n int
}

// maxMemo bounds the accepted-slice memo; beyond it, equal slices are
// re-compared on every Covers call (still correct, just slower).
const maxMemo = 16

// New builds the affectance cache for the given model, variant, instance
// and powers. The matrices are filled by a worker pool sized to
// GOMAXPROCS. It panics if len(powers) != in.N() — every call site derives
// the powers from the instance, so a mismatch is a programming error.
func New(m sinr.Model, v sinr.Variant, in *problem.Instance, powers []float64) *Cache {
	n := in.N()
	if len(powers) != n {
		panic(fmt.Sprintf("affect: %d powers for %d requests", len(powers), n))
	}
	c := &Cache{
		in:     in,
		alpha:  m.Alpha,
		n:      n,
		orig:   &powers[0],
		powers: append([]float64(nil), powers...),
	}
	c.signals = make([]float64, n)
	c.losses = make([]float64, n)
	for i := 0; i < n; i++ {
		c.losses[i] = m.RequestLoss(in, i)
		c.signals[i] = powers[i] / c.losses[i]
	}
	switch v {
	case sinr.Directed:
		c.dInto = make([]float64, n*n)
	case sinr.Bidirectional:
		c.uInto = make([]float64, n*n)
		c.vInto = make([]float64, n*n)
	default:
		panic(fmt.Sprintf("affect: unknown variant %d", int(v)))
	}

	// Fill the Into matrices row by row: row i holds the interference every
	// other request adds at request i's constraint node(s). The entries are
	// computed with the exact formulas of the sinr package, so cached and
	// uncached queries agree bitwise.
	parallelRows(n, func(i int) {
		base := i * n
		switch v {
		case sinr.Directed:
			vi := in.Reqs[i].V
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				c.dInto[base+j] = powers[j] / m.Loss(in.Space.Dist(in.Reqs[j].U, vi))
			}
		case sinr.Bidirectional:
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				c.uInto[base+j] = powers[j] / m.MinLossToNode(in, j, in.Reqs[i].U)
				c.vInto[base+j] = powers[j] / m.MinLossToNode(in, j, in.Reqs[i].V)
			}
		}
	})

	// The transposed From matrices are NOT built here: they materialize
	// lazily on first access (see DirectedFrom/FromU/FromV), so a solve
	// that never walks them — every pure Into consumer — pays half the
	// dense memory.
	c.bytes.Store(8 * int64(len(c.powers)+len(c.signals)+len(c.losses)+
		len(c.dInto)+len(c.uInto)+len(c.vInto)))
	return c
}

// parallelRows runs fill(i) for every row 0..n-1 on a pool of GOMAXPROCS
// workers, splitting the rows into contiguous chunks.
func parallelRows(n int, fill func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fill(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fill(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// transpose returns the transpose of an n×n row-major matrix, filled in
// parallel by destination row.
func transpose(a []float64, n int) []float64 {
	t := make([]float64, n*n)
	parallelRows(n, func(j int) {
		base := j * n
		for i := 0; i < n; i++ {
			t[base+i] = a[i*n+j]
		}
	})
	return t
}

// N returns the number of requests the cache was built for.
func (c *Cache) N() int { return c.n }

// Covers reports whether the cache answers queries for this instance,
// path-loss exponent and powers. Instance identity is by pointer; powers
// are accepted by pointer identity with the build slice, by membership in
// the memo of previously accepted slices, or — once — by full value
// comparison, after which the slice identity is memoized.
func (c *Cache) Covers(in *problem.Instance, alpha float64, powers []float64) bool {
	if in != c.in || alpha != c.alpha || len(powers) != c.n {
		return false
	}
	if c.n == 0 {
		return true
	}
	p := &powers[0]
	if p == c.orig {
		return true
	}
	key := sliceKey{p: p, n: len(powers)}
	accepted, _ := c.accepted.Load().([]sliceKey)
	for _, k := range accepted {
		if k == key {
			return true
		}
	}
	for i, v := range powers {
		if v != c.powers[i] {
			return false
		}
	}
	c.memoize(key)
	return true
}

// memoize records a powers slice that compared equal to the snapshot, via
// copy-on-write so concurrent Covers calls never lock on the read path.
func (c *Cache) memoize(key sliceKey) {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	accepted, _ := c.accepted.Load().([]sliceKey)
	if len(accepted) >= maxMemo {
		return
	}
	for _, k := range accepted {
		if k == key {
			return
		}
	}
	next := make([]sliceKey, len(accepted)+1)
	copy(next, accepted)
	next[len(accepted)] = key
	c.accepted.Store(next)
}

func (c *Cache) row(a []float64, i int) []float64 {
	if a == nil {
		return nil
	}
	return a[i*c.n : (i+1)*c.n : (i+1)*c.n]
}

// DirectedInto returns row i of the directed affectance matrix (nil for a
// bidirectional cache). See sinr.Cache.
func (c *Cache) DirectedInto(i int) []float64 { return c.row(c.dInto, i) }

// DirectedFrom returns row j of the transposed directed matrix,
// materializing the transpose on first use.
func (c *Cache) DirectedFrom(j int) []float64 {
	if c.dInto == nil {
		return nil
	}
	c.dFromOnce.Do(func() {
		c.dFrom = transpose(c.dInto, c.n)
		c.bytes.Add(8 * int64(len(c.dFrom)))
	})
	return c.row(c.dFrom, j)
}

// IntoU returns row i of the bidirectional affectance matrix at endpoint U
// (nil for a directed cache). See sinr.Cache.
func (c *Cache) IntoU(i int) []float64 { return c.row(c.uInto, i) }

// IntoV returns row i of the bidirectional affectance matrix at endpoint V.
func (c *Cache) IntoV(i int) []float64 { return c.row(c.vInto, i) }

// FromU returns row j of the transposed endpoint-U matrix, materializing
// the transpose on first use.
func (c *Cache) FromU(j int) []float64 {
	if c.uInto == nil {
		return nil
	}
	c.uFromOnce.Do(func() {
		c.uFrom = transpose(c.uInto, c.n)
		c.bytes.Add(8 * int64(len(c.uFrom)))
	})
	return c.row(c.uFrom, j)
}

// FromV returns row j of the transposed endpoint-V matrix, materializing
// the transpose on first use.
func (c *Cache) FromV(j int) []float64 {
	if c.vInto == nil {
		return nil
	}
	c.vFromOnce.Do(func() {
		c.vFrom = transpose(c.vInto, c.n)
		c.bytes.Add(8 * int64(len(c.vFrom)))
	})
	return c.row(c.vFrom, j)
}

// Bytes returns the float64 payload currently held by the cache, in
// bytes. It grows when a lazy From transpose materializes, so it
// reports what the cache holds now, not its eventual worst case.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Signals returns the per-request signal strengths p_i/ℓ_i.
func (c *Cache) Signals() []float64 { return c.signals }

// Losses returns the per-request endpoint losses ℓ_i.
func (c *Cache) Losses() []float64 { return c.losses }
