// Package affect is the precomputed affectance engine behind the SINR hot
// path. Every solver in this reproduction bottoms out in interference
// queries of the physical model (package sinr) that recompute a path loss
// d^α per sender/receiver pair on every call; this package precomputes,
// per (instance, model, variant, powers) tuple, the full n×n affectance
// matrices — flat row-major []float64, filled by a worker pool — plus the
// per-request loss and signal vectors, and serves them through the
// sinr.Cache hook so that the model's feasibility checks become array
// sums.
//
// The term "affectance" follows the SINR scheduling literature: entry
// (i, j) is the normalized interference request j inflicts on request i's
// constraint node(s) under the fixed powers. The paper itself
// (Fanghänel, Kesselheim, Räcke, Vöcking, PODC 2009) phrases its proofs
// in these per-pair interference terms; the engine merely materializes
// them once instead of deriving them per query.
//
// Exported entry points:
//
//   - New builds a Cache; attach it with sinr.Model.WithCache. Cached and
//     uncached queries agree bitwise — the uncached path remains the
//     oracle, and TestOracleCrossCheck pins the equivalence for all power
//     variants.
//   - Store deduplicates caches across solves; the batch runner SolveAll
//     hands one Store to all workers.
//   - Tracker maintains a transmission set with running interference
//     accumulators: O(|set|) insert/remove and O(1) member margins,
//     replacing the O(|set|²) re-scan of direct set-feasibility. Greedy
//     coloring and the thinning of Proposition 3 build on it.
package affect
