package affect

import (
	"fmt"
	"math"

	"repro/internal/sinr"
)

// Tracker maintains a set of simultaneously transmitting requests together
// with running interference accumulators, so that membership queries cost
// O(1), insertions and removals cost O(|set|) row operations, and a full
// set-feasibility check costs O(|set|) — instead of the O(|set|²) re-scan
// of the direct computation. It is the engine behind the cached paths of
// greedy coloring and gain-scaling thinning.
//
// A Tracker is built over any sinr.Cache (typically *Cache) and the
// model's gain and noise; it is not safe for concurrent use.
type Tracker struct {
	v     sinr.Variant
	beta  float64
	noise float64
	c     sinr.Cache

	members []int // insertion order, preserved by Remove
	pos     []int // pos[i] = index into members, -1 if absent

	// acc1[i] is the running interference received by member i at its
	// constraint node (directed: the receiver; bidirectional: endpoint U).
	// acc2 is endpoint V (bidirectional only).
	acc1, acc2 []float64
}

var _ sinr.SetTracker = (*Tracker)(nil)

// NewTracker builds an empty tracker for the given variant over the cache.
// The model supplies the gain β and the noise ν; its path-loss exponent
// must be the one the cache was built for. It panics if the cache lacks
// the matrices of the requested variant.
func NewTracker(m sinr.Model, v sinr.Variant, c sinr.Cache) *Tracker {
	n := len(c.Signals())
	switch v {
	case sinr.Directed:
		if n > 0 && c.DirectedInto(0) == nil {
			panic("affect: tracker needs a directed cache")
		}
	case sinr.Bidirectional:
		if n > 0 && c.IntoU(0) == nil {
			panic("affect: tracker needs a bidirectional cache")
		}
	default:
		panic(fmt.Sprintf("affect: unknown variant %d", int(v)))
	}
	t := &Tracker{
		v:     v,
		beta:  m.Beta,
		noise: m.Noise,
		c:     c,
		pos:   make([]int, n),
		acc1:  make([]float64, n),
		acc2:  make([]float64, n),
	}
	for i := range t.pos {
		t.pos[i] = -1
	}
	return t
}

// Len returns the current set size.
func (t *Tracker) Len() int { return len(t.members) }

// Contains reports whether request i is in the set.
func (t *Tracker) Contains(i int) bool { return t.pos[i] >= 0 }

// Members returns the current set in insertion order. The returned slice
// is a copy.
func (t *Tracker) Members() []int {
	return append([]int(nil), t.members...)
}

// At returns the k-th member in insertion order, without allocating.
func (t *Tracker) At(k int) int { return t.members[k] }

// Reset empties the tracker in O(|set|) without dropping the cache or the
// backing arrays, so a tracker can be recycled for a fresh set (the online
// engine re-packs slots this way instead of reallocating three O(n)
// vectors per re-pack).
func (t *Tracker) Reset() {
	for _, i := range t.members {
		t.pos[i] = -1
		t.acc1[i], t.acc2[i] = 0, 0
	}
	t.members = t.members[:0]
}

// Add inserts request i, updating every member's accumulators with i's
// contribution and computing i's own accumulated interference — O(|set|)
// row operations. It panics if i is already a member.
//
//oblint:hotpath
func (t *Tracker) Add(i int) {
	if t.pos[i] >= 0 {
		panic(fmt.Sprintf("affect: Add(%d): already a member", i))
	}
	switch t.v {
	case sinr.Directed:
		from := t.c.DirectedFrom(i)
		into := t.c.DirectedInto(i)
		var own float64
		for _, k := range t.members {
			t.acc1[k] += from[k]
			own += into[k]
		}
		t.acc1[i] = own
	case sinr.Bidirectional:
		fromU, fromV := t.c.FromU(i), t.c.FromV(i)
		intoU, intoV := t.c.IntoU(i), t.c.IntoV(i)
		var ownU, ownV float64
		for _, k := range t.members {
			t.acc1[k] += fromU[k]
			t.acc2[k] += fromV[k]
			ownU += intoU[k]
			ownV += intoV[k]
		}
		t.acc1[i] = ownU
		t.acc2[i] = ownV
	}
	t.pos[i] = len(t.members)
	t.members = append(t.members, i)
}

// Remove deletes request i, subtracting its contribution from every
// remaining member's accumulators — O(|set|). The insertion order of the
// remaining members is preserved. It panics if i is not a member.
//
//oblint:hotpath
func (t *Tracker) Remove(i int) {
	p := t.pos[i]
	if p < 0 {
		panic(fmt.Sprintf("affect: Remove(%d): not a member", i))
	}
	copy(t.members[p:], t.members[p+1:])
	t.members = t.members[:len(t.members)-1]
	for k := p; k < len(t.members); k++ {
		t.pos[t.members[k]] = k
	}
	t.pos[i] = -1
	t.acc1[i], t.acc2[i] = 0, 0
	// Subtracting a non-finite contribution (a zero-distance pair, e.g.
	// two requests sharing a node, has affectance p/0 = +Inf) would turn
	// an Inf accumulator into NaN and silently corrupt every later
	// margin; recompute such members' accumulators from the rows instead.
	switch t.v {
	case sinr.Directed:
		from := t.c.DirectedFrom(i)
		for _, k := range t.members {
			if c := from[k]; isFinite(c) {
				t.acc1[k] -= c
			} else {
				t.acc1[k] = t.rowSum(t.c.DirectedInto(k))
			}
		}
	case sinr.Bidirectional:
		fromU, fromV := t.c.FromU(i), t.c.FromV(i)
		for _, k := range t.members {
			if c := fromU[k]; isFinite(c) {
				t.acc1[k] -= c
			} else {
				t.acc1[k] = t.rowSum(t.c.IntoU(k))
			}
			if c := fromV[k]; isFinite(c) {
				t.acc2[k] -= c
			} else {
				t.acc2[k] = t.rowSum(t.c.IntoV(k))
			}
		}
	}
}

// isFinite reports whether f is neither ±Inf nor NaN.
func isFinite(f float64) bool {
	return !math.IsInf(f, 0) && !math.IsNaN(f)
}

// rowSum recomputes a member's accumulated interference exactly: the sum
// of the given Into row over the current members (the diagonal entry is
// stored as zero, so the member itself contributes nothing).
//
//oblint:hotpath
func (t *Tracker) rowSum(row []float64) float64 {
	var sum float64
	for _, j := range t.members {
		sum += row[j]
	}
	return sum
}

// margin converts accumulated interference into the normalized margin of
// the sinr package: (signal - β·(interference + noise)) / signal.
//
//oblint:hotpath
func (t *Tracker) margin(i int, interf1, interf2 float64) float64 {
	signal := t.c.Signals()[i]
	if signal == 0 {
		return math.Inf(-1)
	}
	mg := (signal - t.beta*(interf1+t.noise)) / signal
	if t.v == sinr.Bidirectional {
		if mg2 := (signal - t.beta*(interf2+t.noise)) / signal; mg2 < mg {
			mg = mg2
		}
	}
	return mg
}

// Margin returns the current SINR margin of member i in O(1), matching
// sinr.Model.Margin over the tracked set up to the accumulated
// floating-point drift of the incremental updates (≈ machine epsilon per
// insert/remove, far below the feasibility tolerance).
//
//oblint:hotpath
func (t *Tracker) Margin(i int) float64 {
	if t.pos[i] < 0 {
		panic(fmt.Sprintf("affect: Margin(%d): not a member", i))
	}
	return t.margin(i, t.acc1[i], t.acc2[i])
}

// AddMargin returns the margin request i would have if it were added to
// the current set, without mutating the tracker — O(|set|).
//
//oblint:hotpath
func (t *Tracker) AddMargin(i int) float64 {
	if t.pos[i] >= 0 {
		return t.Margin(i)
	}
	var interf1, interf2 float64
	switch t.v {
	case sinr.Directed:
		into := t.c.DirectedInto(i)
		for _, k := range t.members {
			interf1 += into[k]
		}
	case sinr.Bidirectional:
		intoU, intoV := t.c.IntoU(i), t.c.IntoV(i)
		for _, k := range t.members {
			interf1 += intoU[k]
			interf2 += intoV[k]
		}
	}
	return t.margin(i, interf1, interf2)
}

// CanAdd reports whether request i can join the set without violating its
// own SINR constraint or any member's — O(|set|).
//
//oblint:hotpath
func (t *Tracker) CanAdd(i int) bool {
	if t.pos[i] >= 0 {
		return false
	}
	if t.AddMargin(i) < -sinr.Tol {
		return false
	}
	switch t.v {
	case sinr.Directed:
		from := t.c.DirectedFrom(i)
		for _, k := range t.members {
			if t.margin(k, t.acc1[k]+from[k], 0) < -sinr.Tol {
				return false
			}
		}
	case sinr.Bidirectional:
		fromU, fromV := t.c.FromU(i), t.c.FromV(i)
		for _, k := range t.members {
			if t.margin(k, t.acc1[k]+fromU[k], t.acc2[k]+fromV[k]) < -sinr.Tol {
				return false
			}
		}
	}
	return true
}

// SetFeasible reports whether every member's SINR constraint holds, in
// O(|set|).
//
//oblint:hotpath
func (t *Tracker) SetFeasible() bool {
	for _, i := range t.members {
		if t.margin(i, t.acc1[i], t.acc2[i]) < -sinr.Tol {
			return false
		}
	}
	return true
}

// WorstMargin returns the minimum margin over the members and the request
// attaining it (the earliest member on ties, matching the scan order of
// sinr.Model.WorstMargin). It returns (+Inf, -1) for an empty set.
//
//oblint:hotpath
func (t *Tracker) WorstMargin() (float64, int) {
	worst, arg := math.Inf(1), -1
	for _, i := range t.members {
		if mg := t.margin(i, t.acc1[i], t.acc2[i]); mg < worst {
			worst = mg
			arg = i
		}
	}
	return worst, arg
}
