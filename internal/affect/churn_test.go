package affect

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// freshTracker rebuilds a tracker from scratch by inserting the members in
// the same insertion order, so its accumulators carry no incremental
// history. It is the drift-free reference the churn tests compare against.
func freshTracker(m sinr.Model, v sinr.Variant, c sinr.Cache, members []int) *Tracker {
	tr := NewTracker(m, v, c)
	for _, i := range members {
		tr.Add(i)
	}
	return tr
}

// sameMargin compares a churned tracker's margin with the from-scratch
// value: non-finite values must match exactly (an Inf accumulator that
// drifted to NaN is precisely the bug class this hunts), finite ones to a
// tight relative tolerance.
func sameMargin(got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	if math.IsInf(want, 0) {
		return got == want
	}
	return !math.IsNaN(got) && math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
}

// churnCrossCheck runs a randomized add/remove/re-add sequence on one
// tracker and, after every step, compares every member's margin and the
// set verdicts against a tracker rebuilt from scratch — catching any
// accumulator drift the incremental updates introduce.
func churnCrossCheck(t *testing.T, m sinr.Model, v sinr.Variant, in *problem.Instance, powers []float64, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := New(m, v, in, powers)
	tr := NewTracker(m, v, c)
	for step := 0; step < steps; step++ {
		i := rng.Intn(in.N())
		if tr.Contains(i) {
			tr.Remove(i)
		} else {
			tr.Add(i)
		}
		ref := freshTracker(m, v, c, tr.Members())
		for _, j := range tr.Members() {
			if got, want := tr.Margin(j), ref.Margin(j); !sameMargin(got, want) {
				t.Fatalf("%s step %d: margin(%d) churned %g, fresh %g", v, step, j, got, want)
			}
		}
		if got, want := tr.SetFeasible(), ref.SetFeasible(); got != want {
			t.Fatalf("%s step %d: SetFeasible churned %t, fresh %t", v, step, got, want)
		}
		// The argmin may legitimately differ when two members tie within
		// the drift band; the worst value itself must still agree.
		gw, _ := tr.WorstMargin()
		ww, _ := ref.WorstMargin()
		if !sameMargin(gw, ww) {
			t.Fatalf("%s step %d: WorstMargin churned %g, fresh %g", v, step, gw, ww)
		}
	}
}

// TestTrackerChurnMatchesFresh is the adversarial-churn drift check on
// well-separated random instances, for both variants and the three named
// assignments.
func TestTrackerChurnMatchesFresh(t *testing.T) {
	in := randomInstance(t, 21, 30)
	m := sinr.Default()
	for _, a := range assignments() {
		powers := power.Powers(m, in, a)
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			churnCrossCheck(t, m, v, in, powers, 77, 400)
		}
	}
}

// sharedNodeInstance builds a line instance where several requests share a
// node, so their mutual affectance rows contain p/0 = +Inf entries — the
// non-finite regime of Remove's recompute path.
func sharedNodeInstance(t *testing.T) *problem.Instance {
	t.Helper()
	l, err := geom.NewLine([]float64{0, 1, 1, 2, 2, 3, 40, 41, 41, 42, 90, 95})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, []problem.Request{
		{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, // chain sharing coordinates 1 and 2
		{U: 6, V: 7}, {U: 8, V: 9}, // second shared coordinate at 41
		{U: 10, V: 11}, // isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestTrackerChurnZeroDistance runs the same drift check on an instance
// riddled with zero-distance pairs: every remove of an Inf partner must
// leave the survivors' accumulators exactly where a from-scratch build
// puts them, for hundreds of re-add cycles.
func TestTrackerChurnZeroDistance(t *testing.T) {
	in := sharedNodeInstance(t)
	m := sinr.Default()
	for _, a := range assignments() {
		powers := power.Powers(m, in, a)
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			churnCrossCheck(t, m, v, in, powers, 99, 600)
		}
	}
}

// TestTrackerReset pins the recycle contract: after Reset the tracker is
// empty, every query treats former members as absent, and a re-populated
// tracker is indistinguishable from a freshly allocated one.
func TestTrackerReset(t *testing.T) {
	in := sharedNodeInstance(t)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	c := New(m, sinr.Bidirectional, in, powers)
	tr := NewTracker(m, sinr.Bidirectional, c)
	for _, i := range []int{0, 1, 5, 3} { // includes an Inf pair (0,1)
		tr.Add(i)
	}
	tr.Reset()
	if tr.Len() != 0 || len(tr.Members()) != 0 {
		t.Fatalf("Reset left %d members", tr.Len())
	}
	for i := 0; i < in.N(); i++ {
		if tr.Contains(i) {
			t.Fatalf("Reset left request %d a member", i)
		}
	}
	// Recycled tracker must match a fresh one on a new set, including the
	// accumulators of requests that were members before the Reset.
	for _, i := range []int{1, 2, 5} {
		tr.Add(i)
	}
	ref := freshTracker(m, sinr.Bidirectional, c, []int{1, 2, 5})
	for _, j := range tr.Members() {
		if got, want := tr.Margin(j), ref.Margin(j); !sameMargin(got, want) {
			t.Fatalf("recycled margin(%d) %g, fresh %g", j, got, want)
		}
	}
	if got, want := tr.SetFeasible(), ref.SetFeasible(); got != want {
		t.Fatalf("recycled SetFeasible %t, fresh %t", got, want)
	}
}
