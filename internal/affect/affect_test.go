package affect

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// assignments are the three power variants the acceptance criteria name.
func assignments() []power.Assignment {
	return []power.Assignment{power.Uniform(1), power.Sqrt(), power.Linear()}
}

func randomInstance(t testing.TB, seed int64, n int) *problem.Instance {
	t.Helper()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(seed)), n, 100, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func randomSet(rng *rand.Rand, n int) []int {
	var set []int
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			set = append(set, i)
		}
	}
	if len(set) == 0 {
		set = []int{rng.Intn(n)}
	}
	return set
}

// TestOracleCrossCheck is the acceptance-criteria oracle: on randomized
// instances, for uniform, sqrt and linear powers and both SINR variants,
// the margins computed through the attached cache agree with the uncached
// computation to 1e-9 (they are in fact designed to agree bitwise).
func TestOracleCrossCheck(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := randomInstance(t, seed, 60)
		rng := rand.New(rand.NewSource(seed + 100))
		for _, a := range assignments() {
			for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
				m := sinr.Default()
				powers := power.Powers(m, in, a)
				cached := m.WithCache(New(m, v, in, powers))
				for trial := 0; trial < 10; trial++ {
					set := randomSet(rng, in.N())
					for _, i := range set {
						got := cached.Margin(in, v, powers, set, i)
						want := m.Margin(in, v, powers, set, i)
						if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
							t.Fatalf("seed %d %s %s: margin(%d) cached %g, uncached %g",
								seed, a.Name(), v, i, got, want)
						}
					}
					if got, want := cached.SetFeasible(in, v, powers, set), m.SetFeasible(in, v, powers, set); got != want {
						t.Fatalf("seed %d %s %s: SetFeasible cached %t, uncached %t", seed, a.Name(), v, got, want)
					}
				}
			}
		}
	}
}

// TestOracleCrossCheckBeta pins that a cache built once survives WithBeta:
// the matrices depend only on alpha and the powers.
func TestOracleCrossCheckBeta(t *testing.T) {
	in := randomInstance(t, 7, 40)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	c := New(m, sinr.Bidirectional, in, powers)
	strict := m.WithBeta(4).WithCache(c)
	if strict.CacheFor(in, powers) == nil {
		t.Fatal("cache must survive WithBeta")
	}
	set := []int{0, 3, 5, 17, 20}
	for _, i := range set {
		got := strict.Margin(in, sinr.Bidirectional, powers, set, i)
		want := m.WithBeta(4).Margin(in, sinr.Bidirectional, powers, set, i)
		if got != want {
			t.Fatalf("margin(%d) with beta 4: cached %g, uncached %g", i, got, want)
		}
	}
}

func TestCoversIdentityAndValue(t *testing.T) {
	in := randomInstance(t, 2, 20)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	c := New(m, sinr.Bidirectional, in, powers)

	if !c.Covers(in, m.Alpha, powers) {
		t.Error("must cover the build slice")
	}
	copied := append([]float64(nil), powers...)
	if !c.Covers(in, m.Alpha, copied) {
		t.Error("must cover a bitwise-equal copy")
	}
	// Second query hits the memo.
	if !c.Covers(in, m.Alpha, copied) {
		t.Error("memoized copy must still be covered")
	}
	other := power.Powers(m, in, power.Linear())
	if c.Covers(in, m.Alpha, other) {
		t.Error("must not cover different powers")
	}
	if c.Covers(in, m.Alpha+1, powers) {
		t.Error("must not cover a different alpha")
	}
	in2 := randomInstance(t, 3, 20)
	if c.Covers(in2, m.Alpha, powers) {
		t.Error("must not cover a different instance")
	}
	if c.Covers(in, m.Alpha, powers[:10]) {
		t.Error("must not cover a shorter slice")
	}
}

func TestCacheForDetachesOnMismatch(t *testing.T) {
	in := randomInstance(t, 4, 15)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	cached := m.WithCache(New(m, sinr.Bidirectional, in, powers))
	if cached.CacheFor(in, powers) == nil {
		t.Fatal("cache should cover its build tuple")
	}
	other := power.Powers(m, in, power.Uniform(1))
	if cached.CacheFor(in, other) != nil {
		t.Fatal("CacheFor must reject foreign powers")
	}
	// Queries with foreign powers silently fall back and stay correct.
	set := []int{0, 1, 2}
	if got, want := cached.Margin(in, sinr.Bidirectional, other, set, 1), m.Margin(in, sinr.Bidirectional, other, set, 1); got != want {
		t.Fatalf("fallback margin %g, want %g", got, want)
	}
}

func TestVariantRowsNil(t *testing.T) {
	in := randomInstance(t, 5, 10)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	d := New(m, sinr.Directed, in, powers)
	if d.DirectedInto(0) == nil || d.DirectedFrom(0) == nil {
		t.Error("directed cache must serve directed rows")
	}
	if d.IntoU(0) != nil || d.FromV(0) != nil {
		t.Error("directed cache must not serve bidirectional rows")
	}
	b := New(m, sinr.Bidirectional, in, powers)
	if b.IntoU(0) == nil || b.IntoV(0) == nil || b.FromU(0) == nil || b.FromV(0) == nil {
		t.Error("bidirectional cache must serve endpoint rows")
	}
	if b.DirectedInto(0) != nil {
		t.Error("bidirectional cache must not serve directed rows")
	}
}

func TestTransposeConsistency(t *testing.T) {
	in := randomInstance(t, 6, 25)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	c := New(m, sinr.Bidirectional, in, powers)
	for i := 0; i < in.N(); i++ {
		intoU, intoV := c.IntoU(i), c.IntoV(i)
		for j := 0; j < in.N(); j++ {
			if c.FromU(j)[i] != intoU[j] || c.FromV(j)[i] != intoV[j] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestTrackerMatchesOracle drives a random insert/remove sequence and
// checks margins and set feasibility against the uncached model after
// every operation, for both variants and all three power assignments.
func TestTrackerMatchesOracle(t *testing.T) {
	in := randomInstance(t, 11, 40)
	rng := rand.New(rand.NewSource(42))
	m := sinr.Default()
	for _, a := range assignments() {
		powers := power.Powers(m, in, a)
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			c := New(m, v, in, powers)
			tr := NewTracker(m, v, c)
			var set []int
			inSet := make(map[int]bool)
			for step := 0; step < 200; step++ {
				i := rng.Intn(in.N())
				if inSet[i] {
					tr.Remove(i)
					delete(inSet, i)
					for k, x := range set {
						if x == i {
							set = append(set[:k], set[k+1:]...)
							break
						}
					}
				} else {
					tr.Add(i)
					inSet[i] = true
					set = append(set, i)
				}
				if tr.Len() != len(set) {
					t.Fatalf("step %d: tracker size %d, want %d", step, tr.Len(), len(set))
				}
				for _, j := range set {
					got := tr.Margin(j)
					want := m.Margin(in, v, powers, set, j)
					if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("%s %s step %d: margin(%d) tracker %g, oracle %g",
							a.Name(), v, step, j, got, want)
					}
				}
				if got, want := tr.SetFeasible(), m.SetFeasible(in, v, powers, set); got != want {
					// Disagreement is only legal within the drift band
					// around the tolerance; re-check with the margins.
					worst, _, err := m.WorstMargin(in, v, powers, set)
					if err != nil || math.Abs(worst+sinr.Tol) > 1e-6 {
						t.Fatalf("%s %s step %d: SetFeasible tracker %t, oracle %t (worst %g)",
							a.Name(), v, step, got, want, worst)
					}
				}
			}
		}
	}
}

func TestTrackerOrderAndQueries(t *testing.T) {
	in := randomInstance(t, 12, 20)
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	tr := NewTracker(m, sinr.Bidirectional, New(m, sinr.Bidirectional, in, powers))
	for _, i := range []int{5, 2, 9, 0, 7} {
		tr.Add(i)
	}
	tr.Remove(9)
	got := tr.Members()
	want := []int{5, 2, 0, 7}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("members %v, want %v (insertion order preserved)", got, want)
		}
	}
	if !tr.Contains(2) || tr.Contains(9) {
		t.Error("Contains wrong after Remove")
	}
	// AddMargin must agree with the oracle margin of the extended set.
	cand := 11
	wantMg := m.Margin(in, sinr.Bidirectional, powers, append(tr.Members(), cand), cand)
	if gotMg := tr.AddMargin(cand); math.Abs(gotMg-wantMg) > 1e-9*(1+math.Abs(wantMg)) {
		t.Fatalf("AddMargin %g, oracle %g", gotMg, wantMg)
	}
	// CanAdd must agree with a direct feasibility probe of the extended set.
	ext := append(tr.Members(), cand)
	wantOK := m.SetFeasible(in, sinr.Bidirectional, powers, ext)
	if gotOK := tr.CanAdd(cand); gotOK != wantOK {
		t.Fatalf("CanAdd %t, oracle %t", gotOK, wantOK)
	}
	worst, arg := tr.WorstMargin()
	oWorst, oArg, err := m.WorstMargin(in, sinr.Bidirectional, powers, tr.Members())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-oWorst) > 1e-9*(1+math.Abs(oWorst)) || arg != oArg {
		t.Fatalf("WorstMargin (%g,%d), oracle (%g,%d)", worst, arg, oWorst, oArg)
	}
}

func TestStoreDeduplicates(t *testing.T) {
	in := randomInstance(t, 13, 15)
	m := sinr.Default()
	s := NewStore()
	p1 := power.Powers(m, in, power.Sqrt())
	p2 := power.Powers(m, in, power.Sqrt()) // equal values, distinct slice
	c1 := s.For(m, sinr.Bidirectional, in, p1)
	c2 := s.For(m, sinr.Bidirectional, in, p2)
	if c1 != c2 {
		t.Error("equal powers on the same instance must share a cache")
	}
	c3 := s.For(m, sinr.Bidirectional, in, power.Powers(m, in, power.Linear()))
	if c3 == c1 {
		t.Error("different powers must not share a cache")
	}
	c4 := s.For(m, sinr.Directed, in, p1)
	if c4 == c1 {
		t.Error("different variants must not share a cache")
	}
	if !c4.Covers(in, m.Alpha, p1) || c4.DirectedInto(0) == nil {
		t.Error("store must return a covering cache of the right variant")
	}
}

func TestNewPanicsOnLengthMismatch(t *testing.T) {
	in := randomInstance(t, 14, 5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on powers length mismatch")
		}
	}()
	New(sinr.Default(), sinr.Bidirectional, in, make([]float64, 3))
}

// TestTrackerZeroDistancePairs pins the Inf-affectance regression: two
// requests sharing a node have mutual affectance p/0 = +Inf, and removing
// one must not leave NaN accumulators (Inf - Inf) that mask the partner's
// constraints. Margins after any insert/remove sequence must match the
// uncached oracle.
func TestTrackerZeroDistancePairs(t *testing.T) {
	// Nodes at 0,1 | 1,2 | 50,51: requests 0 and 1 share coordinate 1.
	l, err := geom.NewLine([]float64{0, 1, 1, 2, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	m := sinr.Default()
	powers := power.Powers(m, in, power.Sqrt())
	c := New(m, sinr.Bidirectional, in, powers)
	tr := NewTracker(m, sinr.Bidirectional, c)

	tr.Add(0)
	tr.Add(1) // infinite mutual interference with 0
	tr.Add(2)
	if tr.SetFeasible() {
		t.Fatal("zero-distance pair must be infeasible together")
	}
	tr.Remove(1) // must not poison request 0's accumulators with NaN
	for _, i := range tr.Members() {
		got := tr.Margin(i)
		want := m.Margin(in, sinr.Bidirectional, powers, tr.Members(), i)
		if math.IsNaN(got) || math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("margin(%d) after removing Inf partner: tracker %g, oracle %g", i, got, want)
		}
	}
	if got, want := tr.SetFeasible(), m.SetFeasible(in, sinr.Bidirectional, powers, tr.Members()); got != want {
		t.Fatalf("SetFeasible after Inf removal: tracker %t, oracle %t", got, want)
	}
	// Re-adding the partner must restore the infinite interference.
	tr.Add(1)
	if tr.SetFeasible() {
		t.Fatal("re-added zero-distance pair must be infeasible again")
	}
}
