package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/problem"
)

// MST computes a minimum spanning tree of the metric by Prim's algorithm
// (dense O(n²), which is optimal for an implicit complete graph) and
// returns its edges as communication requests.
func MST(space geom.Metric) ([]problem.Request, error) {
	n := space.N()
	if n < 2 {
		return nil, errors.New("topology: need at least two nodes")
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	for v := range bestDist {
		bestDist[v] = math.Inf(1)
		bestFrom[v] = -1
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		bestDist[v] = space.Dist(0, v)
		bestFrom[v] = 0
	}
	edges := make([]problem.Request, 0, n-1)
	for len(edges) < n-1 {
		pick, pickDist := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !inTree[v] && bestDist[v] < pickDist {
				pick, pickDist = v, bestDist[v]
			}
		}
		if pick < 0 {
			return nil, errors.New("topology: disconnected metric (infinite distances)")
		}
		if pickDist == 0 {
			return nil, fmt.Errorf("topology: coincident nodes %d and %d", bestFrom[pick], pick)
		}
		edges = append(edges, problem.Request{U: bestFrom[pick], V: pick})
		inTree[pick] = true
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := space.Dist(pick, v); d < bestDist[v] {
					bestDist[v] = d
					bestFrom[v] = pick
				}
			}
		}
	}
	return edges, nil
}

// TotalWeight returns the sum of the metric lengths of the given requests.
func TotalWeight(space geom.Metric, reqs []problem.Request) float64 {
	var sum float64
	for _, r := range reqs {
		sum += space.Dist(r.U, r.V)
	}
	return sum
}

// ConnectivityInstance places n points uniformly in [0, side]² and returns
// the instance whose requests are the MST edges: scheduling it with few
// colors is exactly the strong-connectivity scheduling problem of [12]
// restricted to the canonical spanning structure. Adjacent tree edges share
// a node and therefore can never share a color (their mutual min-loss
// distance is zero), so the chromatic number is at least the maximum
// degree of the tree.
func ConnectivityInstance(rng *rand.Rand, n int, side float64) (*problem.Instance, error) {
	if n < 2 {
		return nil, errors.New("topology: need at least two points")
	}
	if !(side > 0) {
		return nil, fmt.Errorf("topology: side must be positive, got %g", side)
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * side, rng.Float64() * side}
	}
	space, err := geom.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	edges, err := MST(space)
	if err != nil {
		return nil, err
	}
	return problem.New(space, edges)
}

// MaxDegree returns the maximum node degree of the request set viewed as a
// graph — a lower bound on the number of colors of any schedule, because
// requests sharing a node cannot be simultaneous in the physical model.
func MaxDegree(space geom.Metric, reqs []problem.Request) int {
	deg := make(map[int]int)
	best := 0
	for _, r := range reqs {
		deg[r.U]++
		deg[r.V]++
		if deg[r.U] > best {
			best = deg[r.U]
		}
		if deg[r.V] > best {
			best = deg[r.V]
		}
	}
	return best
}

// ExponentialChain builds the geometric line workload used by the
// aspect-ratio experiment (E12): n pairs along a line whose lengths grow by
// the given ratio (x_i = ratio^i) with gaps equal to the local length, so
// the aspect ratio of the instance is ≈ ratio^n.
func ExponentialChain(n int, ratio float64) (*problem.Instance, error) {
	if n < 1 {
		return nil, errors.New("topology: need at least one pair")
	}
	if !(ratio > 1) {
		return nil, fmt.Errorf("topology: ratio must exceed 1, got %g", ratio)
	}
	if float64(n)*math.Log(ratio) > 600 {
		return nil, fmt.Errorf("topology: ratio^n overflows float64")
	}
	coords := make([]float64, 0, 2*n)
	reqs := make([]problem.Request, 0, n)
	pos := 0.0
	for i := 0; i < n; i++ {
		length := math.Pow(ratio, float64(i))
		coords = append(coords, pos, pos+length)
		reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
		pos += 2 * length // gap equal to the local length
	}
	line, err := geom.NewLine(coords)
	if err != nil {
		return nil, err
	}
	return problem.New(line, reqs)
}
