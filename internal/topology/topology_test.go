package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func TestMSTPath(t *testing.T) {
	// Points on a line: the MST is the path of consecutive neighbors.
	l, err := geom.NewLine([]float64{0, 1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	edges, err := MST(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(edges))
	}
	if got := TotalWeight(l, edges); got != 6 {
		t.Errorf("MST weight = %g, want 6 (1+2+3)", got)
	}
}

func TestMSTIsSpanningAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 12)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	e, err := geom.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := MST(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != len(pts)-1 {
		t.Fatalf("edges = %d, want %d", len(edges), len(pts)-1)
	}
	// Spanning: union-find over the edges connects everything.
	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, r := range edges {
		parent[find(r.U)] = find(r.V)
	}
	root := find(0)
	for v := range pts {
		if find(v) != root {
			t.Fatalf("node %d not connected", v)
		}
	}
	// Cut property spot check: no edge can be replaced by a strictly
	// shorter edge crossing the cut it defines. Cheap proxy: total weight
	// must not exceed the weight of the greedy nearest-neighbor path.
	var nnPath float64
	for i := 1; i < len(pts); i++ {
		nnPath += e.Dist(i-1, i)
	}
	if TotalWeight(e, edges) > nnPath+1e-9 {
		t.Error("MST heavier than a Hamiltonian path")
	}
}

func TestMSTErrors(t *testing.T) {
	l, _ := geom.NewLine([]float64{0})
	if _, err := MST(l); err == nil {
		t.Error("single node should fail")
	}
	dup, _ := geom.NewLine([]float64{0, 0})
	if _, err := MST(dup); err == nil {
		t.Error("coincident nodes should fail")
	}
}

func TestConnectivityInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in, err := ConnectivityInstance(rng, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 29 {
		t.Fatalf("requests = %d, want 29", in.N())
	}
	if deg := MaxDegree(in.Space, in.Reqs); deg < 1 || deg > 6 {
		t.Errorf("planar MST max degree = %d, want 1..6", deg)
	}
	if _, err := ConnectivityInstance(rng, 1, 100); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := ConnectivityInstance(rng, 5, 0); err == nil {
		t.Error("zero side should fail")
	}
}

// TestConnectivitySchedulable: MST instances schedule validly under sqrt
// powers with greedy first-fit, and colors respect the degree lower bound.
func TestConnectivitySchedulable(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(3))
	in, err := ConnectivityInstance(rng, 40, 200)
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	s, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if s.NumColors() < MaxDegree(in.Space, in.Reqs) {
		t.Errorf("colors %d below the degree lower bound %d", s.NumColors(), MaxDegree(in.Space, in.Reqs))
	}
}

// TestLPHandlesSharedEndpoints: the LP coloring must survive instances with
// node-sharing requests (the conflict pre-filter).
func TestLPHandlesSharedEndpoints(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(4))
	in, err := ConnectivityInstance(rng, 24, 150)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := coloring.SqrtLPColoring(m, in, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Fatalf("invalid LP schedule on MST instance: %v", err)
	}
}

func TestMaxDegree(t *testing.T) {
	l, _ := geom.NewLine([]float64{0, 1, 2, 3})
	if got := MaxDegree(l, nil); got != 0 {
		t.Errorf("MaxDegree(nil) = %d", got)
	}
	reqs := []problem.Request{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}
	if got := MaxDegree(l, reqs); got != 3 {
		t.Errorf("MaxDegree(star) = %d, want 3", got)
	}
}

func TestExponentialChain(t *testing.T) {
	in, err := ExponentialChain(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := math.Pow(2, float64(i))
		if got := in.Length(i); math.Abs(got-want) > 1e-9 {
			t.Errorf("length %d = %g, want %g", i, got, want)
		}
	}
	if _, err := ExponentialChain(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ExponentialChain(5, 1); err == nil {
		t.Error("ratio 1 should fail")
	}
	if _, err := ExponentialChain(5000, 2); err == nil {
		t.Error("overflow should fail")
	}
}

// TestMSTWeightBelowStarProperty: the MST of any random point set is no
// heavier than the spanning star rooted at node 0 (any spanning subgraph
// upper-bounds the MST weight).
func TestMSTWeightBelowStarProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64() * 50, r.Float64() * 50}
		}
		e, err := geom.NewEuclidean(pts)
		if err != nil {
			return false
		}
		edges, err := MST(e)
		if err != nil {
			return true // coincident points: rejection is correct
		}
		var starWeight float64
		for v := 1; v < n; v++ {
			starWeight += e.Dist(0, v)
		}
		return TotalWeight(e, edges) <= starWeight+1e-9
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(95))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
