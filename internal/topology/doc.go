// Package topology builds spanning structures over node sets and turns
// them into interference scheduling instances. It reproduces the workload
// of Moscibroda and Wattenhofer's strong-connectivity question (the
// paper's Section 1.3): given n arbitrarily placed points, schedule a set
// of links that strongly connects them — here the edges of a minimum
// spanning tree, which is the canonical such link set.
//
// Exported entry points:
//
//   - MST computes the minimum spanning tree of a metric (dense Prim) as
//     communication requests; TotalWeight and MaxDegree report its shape.
//   - ConnectivityInstance wraps the MST edges into a problem.Instance —
//     the input of the connectivity experiment.
//   - ExponentialChain builds the exponentially-spread chain topology
//     whose MST stresses the length-class behavior of the schedulers.
package topology
