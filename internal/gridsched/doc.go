// Package gridsched implements the classic spatial-reuse TDMA baseline
// for two-dimensional Euclidean instances: requests are bucketed into
// geometric length classes; within a class the plane is tiled with cells
// proportional to the class length and colors are reused between cells
// whose grid coordinates agree modulo a reuse factor k, so simultaneous
// transmitters are at least k cells apart. The reuse factor adapts
// (doubles) until every class verifies against the exact SINR
// constraints.
//
// This is the folklore algorithm that graph-based MAC protocols implement
// and against which the paper's SINR-native algorithms should be
// compared: its color count carries an O(log Δ) factor from the length
// classes, where Δ is the aspect ratio (geom.AspectRatio).
//
// Exported entry points: Schedule runs the baseline under Options (reuse
// factors, length-class base) and returns a valid schedule plus
// per-class diagnostics.
package gridsched
