package gridsched

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/problem"
	"repro/internal/sinr"
)

// Options tunes the scheduler; the zero value uses the defaults.
type Options struct {
	// InitialReuse is the starting reuse factor k (default 2).
	InitialReuse int
	// MaxReuse caps the adaptive doubling (default 64).
	MaxReuse int
	// Assignment is the oblivious power assignment (default square root).
	Assignment power.Assignment
}

func (o Options) withDefaults() Options {
	if o.InitialReuse < 2 {
		o.InitialReuse = 2
	}
	if o.MaxReuse <= 0 {
		o.MaxReuse = 64
	}
	if o.Assignment == nil {
		o.Assignment = power.Sqrt()
	}
	return o
}

// Schedule colors a 2-D Euclidean bidirectional instance with the
// length-class/grid-reuse scheme and returns a verified schedule.
func Schedule(m sinr.Model, in *problem.Instance, opts Options) (*problem.Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e, ok := in.Space.(*geom.Euclidean)
	if !ok || e.Dim() != 2 {
		return nil, errors.New("gridsched: requires a 2-dimensional Euclidean instance")
	}
	opts = opts.withDefaults()
	powers := power.Powers(m, in, opts.Assignment)

	classes := lengthClasses(in)
	s := problem.NewSchedule(in.N())
	copy(s.Powers, powers)
	base := 0
	for _, class := range classes {
		used, err := scheduleClass(m, in, e, powers, class, base, s, opts)
		if err != nil {
			return nil, err
		}
		base += used
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		return nil, fmt.Errorf("gridsched: verification failed: %w", err)
	}
	return s, nil
}

// lengthClasses buckets request indices by ⌊log2(length/minLength)⌋.
func lengthClasses(in *problem.Instance) [][]int {
	minLen := math.Inf(1)
	for i := 0; i < in.N(); i++ {
		if l := in.Length(i); l < minLen {
			minLen = l
		}
	}
	buckets := make(map[int][]int)
	maxKey := 0
	for i := 0; i < in.N(); i++ {
		k := int(math.Floor(math.Log2(in.Length(i) / minLen)))
		buckets[k] = append(buckets[k], i)
		if k > maxKey {
			maxKey = k
		}
	}
	var out [][]int
	for k := 0; k <= maxKey; k++ {
		if len(buckets[k]) > 0 {
			out = append(out, buckets[k])
		}
	}
	return out
}

// scheduleClass colors one length class starting at color offset base and
// returns the number of colors consumed. The reuse factor doubles until
// the class verifies.
func scheduleClass(m sinr.Model, in *problem.Instance, e *geom.Euclidean, powers []float64, class []int, base int, s *problem.Schedule, opts Options) (int, error) {
	maxLen := 0.0
	for _, i := range class {
		if l := in.Length(i); l > maxLen {
			maxLen = l
		}
	}
	cell := 2 * maxLen // senders of one cell are within 2·cell of its receivers

	for k := opts.InitialReuse; k <= opts.MaxReuse; k *= 2 {
		colors, ok := tryReuse(m, in, e, powers, class, cell, k)
		if ok {
			// Compress the sparse (reuse-pattern, rank) colors into a
			// contiguous range so no color class is empty.
			remap := make(map[int]int)
			for _, c := range colors {
				if _, seen := remap[c]; !seen {
					remap[c] = len(remap)
				}
			}
			for i, c := range colors {
				s.Colors[class[i]] = base + remap[c]
			}
			return len(remap), nil
		}
	}
	return 0, fmt.Errorf("gridsched: class of %d requests did not verify up to reuse %d", len(class), opts.MaxReuse)
}

// tryReuse assigns colors with reuse factor k and verifies every class.
// The color of a request is (cellX mod k, cellY mod k, rank within cell),
// flattened; requests in one cell serialize, and cells sharing a color are
// ≥ (k-1) cells apart.
func tryReuse(m sinr.Model, in *problem.Instance, e *geom.Euclidean, powers []float64, class []int, cell float64, k int) ([]int, bool) {
	type cellKey struct{ x, y int }
	perCell := make(map[cellKey][]int)
	for _, i := range class {
		p := e.Point(in.Reqs[i].U)
		key := cellKey{x: int(math.Floor(p[0] / cell)), y: int(math.Floor(p[1] / cell))}
		perCell[key] = append(perCell[key], i)
	}
	maxRank := 0
	for _, members := range perCell {
		if len(members) > maxRank {
			maxRank = len(members)
		}
	}
	// Color = ((x mod k)·k + (y mod k))·maxRank + rank.
	colors := make([]int, len(class))
	pos := make(map[int]int, len(class))
	for a, i := range class {
		pos[i] = a
	}
	classColor := make(map[int][]int) // color -> request indices
	for key, members := range perCell {
		mx := ((key.x % k) + k) % k
		my := ((key.y % k) + k) % k
		for rank, i := range members {
			c := (mx*k+my)*maxRank + rank
			colors[pos[i]] = c
			classColor[c] = append(classColor[c], i)
		}
	}
	for _, members := range classColor {
		if !m.SetFeasible(in, sinr.Bidirectional, powers, members) {
			return nil, false
		}
	}
	return colors, true
}
