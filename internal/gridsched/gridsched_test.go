package gridsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/coloring"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/sinr"
)

func TestScheduleValid(t *testing.T) {
	m := sinr.Default()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(1)), 50, 300, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Schedule(m, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := m.CheckSchedule(in, sinr.Bidirectional, s); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}

func TestScheduleRejectsNonEuclidean(t *testing.T) {
	m := sinr.Default()
	in, err := instance.NestedExponential(4, 2) // a line instance
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(m, in, Options{}); err == nil {
		t.Error("line instances should be rejected")
	}
}

func TestScheduleInvalidModel(t *testing.T) {
	in, err := instance.UniformRandom(rand.New(rand.NewSource(1)), 5, 100, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(sinr.Model{Alpha: 0, Beta: 1}, in, Options{}); err == nil {
		t.Error("invalid model should be rejected")
	}
}

func TestLengthClassesCoverAll(t *testing.T) {
	in, err := instance.UniformRandom(rand.New(rand.NewSource(2)), 40, 300, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	classes := lengthClasses(in)
	seen := make(map[int]bool)
	for _, class := range classes {
		var lo, hi float64
		for _, i := range class {
			if seen[i] {
				t.Fatalf("request %d in two classes", i)
			}
			seen[i] = true
			l := in.Length(i)
			if lo == 0 || l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if hi > 2*lo*(1+1e-9) {
			t.Errorf("class spans lengths [%g, %g], ratio above 2", lo, hi)
		}
	}
	if len(seen) != in.N() {
		t.Errorf("classes cover %d of %d", len(seen), in.N())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := (Options{}).withDefaults()
	if o.InitialReuse != 2 || o.MaxReuse != 64 || o.Assignment == nil {
		t.Errorf("defaults = %+v", o)
	}
	o = (Options{InitialReuse: 4, MaxReuse: 8, Assignment: power.Linear()}).withDefaults()
	if o.InitialReuse != 4 || o.MaxReuse != 8 || o.Assignment.Name() != "linear" {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

// TestGridValidityProperty: the grid scheduler always produces valid
// schedules on random workloads, and it never beats the conflict-clique
// lower bound.
func TestGridValidityProperty(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := instance.UniformRandom(r, 8+r.Intn(40), 250, 1, 8)
		if err != nil {
			return false
		}
		s, err := Schedule(m, in, Options{})
		if err != nil {
			return false
		}
		if m.CheckSchedule(in, sinr.Bidirectional, s) != nil {
			return false
		}
		powers := power.Powers(m, in, power.Sqrt())
		lb := coloring.CliqueLowerBound(m, in, sinr.Bidirectional, powers)
		return s.NumColors() >= lb
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(103))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestGridWorseThanGreedy documents the expected relationship: the grid
// TDMA baseline uses at least as many colors as SINR-native first-fit on
// clustered workloads (that gap is the point of the comparison).
func TestGridWorseThanGreedy(t *testing.T) {
	m := sinr.Default()
	in, err := instance.Clustered(rand.New(rand.NewSource(3)), 48, 4, 15, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Schedule(m, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	powers := power.Powers(m, in, power.Sqrt())
	greedy, err := coloring.GreedyFirstFit(m, in, sinr.Bidirectional, powers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumColors() < greedy.NumColors() {
		t.Errorf("grid %d colors beat greedy %d: unexpected on clustered workloads",
			grid.NumColors(), greedy.NumColors())
	}
}
