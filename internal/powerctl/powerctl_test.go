package powerctl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/problem"
	"repro/internal/sinr"
)

func lineInstance(t *testing.T, coords []float64, reqs []problem.Request) *problem.Instance {
	t.Helper()
	l, err := geom.NewLine(coords)
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestGrowthRateKnownMatrix(t *testing.T) {
	// 2x2 matrix [[0,a],[b,0]] has spectral radius sqrt(a·b).
	a, b := 4.0, 9.0
	apply := func(dst, src []float64) {
		dst[0] = a * src[1]
		dst[1] = b * src[0]
	}
	got := GrowthRate(apply, 2, Defaults())
	if math.Abs(got-6) > 1e-6 {
		t.Errorf("growth rate = %g, want 6", got)
	}
}

func TestGrowthRateZeroMap(t *testing.T) {
	apply := func(dst, src []float64) { dst[0], dst[1] = 0, 0 }
	if got := GrowthRate(apply, 2, Defaults()); got != 0 {
		t.Errorf("growth rate = %g, want 0", got)
	}
}

func TestEmptySet(t *testing.T) {
	in := lineInstance(t, []float64{0, 1}, []problem.Request{{U: 0, V: 1}})
	_, err := Feasible(sinr.Default(), in, sinr.Directed, nil, Options{})
	if !errors.Is(err, ErrEmptySet) {
		t.Errorf("error = %v, want ErrEmptySet", err)
	}
}

func TestSingletonAlwaysFeasible(t *testing.T) {
	in := lineInstance(t, []float64{0, 1}, []problem.Request{{U: 0, V: 1}})
	for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
		m := sinr.Model{Alpha: 3, Beta: 2, Noise: 1}
		res, err := Feasible(m, in, v, []int{0}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("%v: singleton should be feasible", v)
		}
		if !m.SetFeasible(in, v, res.Powers, []int{0}) {
			t.Errorf("%v: witness powers do not satisfy the constraints", v)
		}
	}
}

func TestFarPairsFeasibleNearPairsNot(t *testing.T) {
	m := sinr.Model{Alpha: 3, Beta: 1}
	far := lineInstance(t, []float64{0, 1, 100, 101}, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
		res, err := Feasible(m, far, v, []int{0, 1}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("%v: far pairs should be feasible (rate %g)", v, res.GrowthRate)
		}
		if !m.SetFeasible(far, v, res.Powers, []int{0, 1}) {
			t.Errorf("%v: witness powers invalid", v)
		}
	}

	// Mutually drowning pairs: each receiver sits within 0.05 of the other
	// pair's sender while its own sender is ~10 away, so the product of
	// cross gains is ≈ (10/0.05)^(2α), far above 1.
	near := lineInstance(t, []float64{0, 10, 10.05, 0.05}, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	res, err := Feasible(m, near, sinr.Directed, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("mutually-drowning pairs should be infeasible (rate %g)", res.GrowthRate)
	}
}

func TestCoincidentSenderReceiver(t *testing.T) {
	m := sinr.Model{Alpha: 3, Beta: 1}
	in := lineInstance(t, []float64{0, 1, 1, 2}, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	res, err := Feasible(m, in, sinr.Directed, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || !math.IsInf(res.GrowthRate, 1) {
		t.Errorf("coincident sender/receiver should be infeasible with infinite rate, got %+v", res)
	}
}

func TestDirectedBorderlineRejected(t *testing.T) {
	// Symmetric two-pair instance tuned so the spectral radius is exactly
	// 1: both receivers at x=1, both cross distances equal both own
	// distances (α=1, β=1).
	m := sinr.Model{Alpha: 1, Beta: 1}
	in := lineInstance(t, []float64{0, 1, 2, 1}, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	res, err := Feasible(m, in, sinr.Directed, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("borderline rate %g should be rejected", res.GrowthRate)
	}
	if math.Abs(res.GrowthRate-1) > 1e-6 {
		t.Errorf("growth rate = %g, want ~1", res.GrowthRate)
	}
}

func TestNestedInstanceFeasibleUnderOptimal(t *testing.T) {
	// The nested instance of the paper's introduction: u_i = -2^i,
	// v_i = 2^i. The interference map is linear in β, so after measuring
	// the growth rate at β = 1 the instance must be feasible in one slot at
	// any gain comfortably below 1/rate — and the witness must verify.
	var coords []float64
	var reqs []problem.Request
	for i := 1; i <= 6; i++ {
		r := math.Pow(2, float64(i))
		coords = append(coords, -r, r)
		reqs = append(reqs, problem.Request{U: 2 * (i - 1), V: 2*(i-1) + 1})
	}
	in := lineInstance(t, coords, reqs)
	set := []int{0, 1, 2, 3, 4, 5}
	probe, err := Feasible(sinr.Model{Alpha: 3, Beta: 1}, in, sinr.Bidirectional, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(probe.GrowthRate > 0) || math.IsInf(probe.GrowthRate, 0) {
		t.Fatalf("unexpected growth rate %g", probe.GrowthRate)
	}
	m := sinr.Model{Alpha: 3, Beta: 0.5 / probe.GrowthRate}
	res, err := Feasible(m, in, sinr.Bidirectional, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("nested set should be feasible at gain %g (rate %g)", m.Beta, res.GrowthRate)
	}
	if !m.SetFeasible(in, sinr.Bidirectional, res.Powers, set) {
		t.Error("witness powers do not satisfy the bidirectional constraints")
	}
}

func TestUnknownVariant(t *testing.T) {
	in := lineInstance(t, []float64{0, 1, 5, 6}, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if _, err := Feasible(sinr.Default(), in, sinr.Variant(42), []int{0, 1}, Options{}); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestInvalidModel(t *testing.T) {
	in := lineInstance(t, []float64{0, 1}, []problem.Request{{U: 0, V: 1}})
	if _, err := Feasible(sinr.Model{Alpha: 0, Beta: 1}, in, sinr.Directed, []int{0}, Options{}); err == nil {
		t.Error("invalid model should error")
	}
}

// TestWitnessConsistencyProperty: whenever the oracle declares a random set
// feasible, the witness powers must satisfy the SINR constraints; whenever
// it declares clearly-separated instances feasible the greedy check agrees.
func TestWitnessConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		coords := make([]float64, 0, 2*n)
		reqs := make([]problem.Request, 0, n)
		x := 0.0
		for i := 0; i < n; i++ {
			length := 0.5 + r.Float64()*3
			gap := 0.1 + r.Float64()*20
			coords = append(coords, x, x+length)
			reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
			x += length + gap
		}
		l, err := geom.NewLine(coords)
		if err != nil {
			return false
		}
		in, err := problem.New(l, reqs)
		if err != nil {
			return false
		}
		m := sinr.Model{Alpha: 1 + 3*r.Float64(), Beta: 0.2 + r.Float64()}
		set := make([]int, n)
		for i := range set {
			set[i] = i
		}
		for _, v := range []sinr.Variant{sinr.Directed, sinr.Bidirectional} {
			res, err := Feasible(m, in, v, set, Options{})
			if err != nil {
				return false
			}
			if res.Feasible && !m.SetFeasible(in, v, res.Powers, set) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMonotonicityProperty: adding a request to a set can only increase the
// growth rate.
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		coords := make([]float64, 0, 2*n)
		reqs := make([]problem.Request, 0, n)
		x := 0.0
		for i := 0; i < n; i++ {
			coords = append(coords, x, x+1+r.Float64())
			reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
			x += 3 + r.Float64()*10
		}
		l, err := geom.NewLine(coords)
		if err != nil {
			return false
		}
		in, err := problem.New(l, reqs)
		if err != nil {
			return false
		}
		m := sinr.Default()
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		sub := all[:n-1]
		rAll, err := Feasible(m, in, sinr.Directed, all, Options{})
		if err != nil {
			return false
		}
		rSub, err := Feasible(m, in, sinr.Directed, sub, Options{})
		if err != nil {
			return false
		}
		return rAll.GrowthRate >= rSub.GrowthRate-1e-9
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
