// Package powerctl decides whether a set of requests can be scheduled in
// a single time slot when the power assignment is unconstrained (the
// "optimal power assignment" the paper's theorems quantify over), and
// produces witness powers when it can.
//
// Directed variant: with noise ν = 0 the SINR constraints for a set S read
// p_i ≥ Σ_{j≠i} B_ij p_j with B_ij = β·ℓ_i/ℓ(u_j, v_i). A positive
// solution exists iff the spectral radius ρ(B) < 1 (Perron–Frobenius);
// this package estimates ρ by power iteration and obtains witness powers
// from the convergent fixed-point iteration p ← Bp + 1.
//
// Bidirectional variant: the right-hand side becomes the monotone,
// homogeneous map I_i(p) = β·ℓ_i·max_{w∈{u_i,v_i}} Σ_{j≠i} p_j/min-loss(j,w).
// Feasibility is equivalent to the nonlinear Perron root (Collatz–Wielandt
// growth rate) of I being < 1, estimated by normalized iteration — the
// standard-interference-function framework of Yates (1995).
//
// Exported entry points: Feasible runs the test and returns witness
// powers, GrowthRate exposes the estimated Perron root, Options/Defaults
// tune the iterations. This oracle is the baseline the lower-bound and
// single-slot experiments compare oblivious assignments against.
package powerctl
