package powerctl

import (
	"math"
	"testing"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// TestDirectedTwoPairAnalytic checks the oracle against the closed form
// for two directed pairs: the gain matrix is [[0, B01], [B10, 0]] with
// spectral radius √(B01·B10), where
// B_ij = β·ℓ(own_i)/ℓ(u_j → v_i).
func TestDirectedTwoPairAnalytic(t *testing.T) {
	for _, tc := range []struct {
		name   string
		coords []float64 // u0, v0, u1, v1
		alpha  float64
		beta   float64
	}{
		{name: "symmetric", coords: []float64{0, 1, 3, 2}, alpha: 2, beta: 1},
		{name: "asymmetric lengths", coords: []float64{0, 2, 10, 7}, alpha: 3, beta: 0.5},
		{name: "barely apart", coords: []float64{0, 1, 2.2, 3.2}, alpha: 2.5, beta: 1.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := lineInstance(t, tc.coords, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
			m := sinr.Model{Alpha: tc.alpha, Beta: tc.beta}
			res, err := Feasible(m, in, sinr.Directed, []int{0, 1}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			l0 := m.Loss(math.Abs(tc.coords[1] - tc.coords[0]))
			l1 := m.Loss(math.Abs(tc.coords[3] - tc.coords[2]))
			cross01 := m.Loss(math.Abs(tc.coords[2] - tc.coords[1])) // u1 -> v0
			cross10 := m.Loss(math.Abs(tc.coords[0] - tc.coords[3])) // u0 -> v1
			want := math.Sqrt((tc.beta * l0 / cross01) * (tc.beta * l1 / cross10))
			if math.Abs(res.GrowthRate-want) > 1e-6*(1+want) {
				t.Errorf("growth rate = %g, want %g", res.GrowthRate, want)
			}
			if res.Feasible != (want < 1-1e-7) {
				t.Errorf("feasible = %v at rate %g", res.Feasible, want)
			}
		})
	}
}

// TestBidirectionalSymmetricNestedAnalytic checks the bidirectional oracle
// on the two-pair nested instance (±2, ±4), whose interference map has the
// closed-form Perron root β·√(2^α·4^α).
func TestBidirectionalSymmetricNestedAnalytic(t *testing.T) {
	in := lineInstance(t, []float64{-2, 2, -4, 4}, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	m := sinr.Model{Alpha: 3, Beta: 1}
	res, err := Feasible(m, in, sinr.Bidirectional, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pair 0 (length 4, loss 4^α) sees pair 1's closer endpoint at
	// distance 2 from each of its endpoints: I_0 = β·4^α·p1/2^α = β·2^α·p1.
	// Pair 1 (length 8) sees pair 0's closer endpoint at distance 2:
	// I_1 = β·8^α·p0/2^α = β·4^α·p0. Perron root: β·√(2^α·4^α) = β·√(8^α).
	want := math.Sqrt(math.Pow(8, 3))
	if math.Abs(res.GrowthRate-want) > 1e-6*want {
		t.Errorf("growth rate = %g, want %g", res.GrowthRate, want)
	}
	if res.Feasible {
		t.Error("rate ≫ 1 must be infeasible")
	}
	// At β slightly below 1/want the same set becomes feasible.
	m2 := sinr.Model{Alpha: 3, Beta: 0.9 / want}
	res2, err := Feasible(m2, in, sinr.Bidirectional, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Feasible {
		t.Errorf("rate %g at reduced gain should be feasible", res2.GrowthRate)
	}
	if !m2.SetFeasible(in, sinr.Bidirectional, res2.Powers, []int{0, 1}) {
		t.Error("witness powers invalid")
	}
}

// TestGrowthRateReducibleMatrix: a strictly triangular (nilpotent) map has
// spectral radius 0 and must be reported as highly feasible.
func TestGrowthRateReducibleMatrix(t *testing.T) {
	apply := func(dst, src []float64) {
		dst[0] = 0.5 * src[1]
		dst[1] = 0
	}
	got := GrowthRate(apply, 2, Defaults())
	if got > 1e-6 {
		t.Errorf("nilpotent growth rate = %g, want ~0", got)
	}
}
