package powerctl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/problem"
	"repro/internal/sinr"
)

// Options tunes the iterative feasibility tests. The zero value is replaced
// by Defaults.
type Options struct {
	// MaxIter bounds the number of power/fixed-point iterations.
	MaxIter int
	// Tol is the convergence tolerance on the growth-rate estimate.
	Tol float64
	// Margin is the dead zone around growth rate 1 inside which the set is
	// conservatively declared infeasible (the paper requires strict
	// inequalities, so borderline sets are rejected).
	Margin float64
}

// Defaults returns the option values used by the experiments.
func Defaults() Options {
	return Options{MaxIter: 500, Tol: 1e-12, Margin: 1e-7}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.MaxIter <= 0 {
		o.MaxIter = d.MaxIter
	}
	if o.Tol <= 0 {
		o.Tol = d.Tol
	}
	if o.Margin <= 0 {
		o.Margin = d.Margin
	}
	return o
}

// Result reports the outcome of a feasibility test.
type Result struct {
	// Feasible is true if the set admits a single-slot schedule with some
	// positive power assignment.
	Feasible bool
	// GrowthRate is the estimated (nonlinear) spectral radius of the
	// interference map; Feasible is GrowthRate < 1 - Margin.
	GrowthRate float64
	// Powers holds witness powers indexed like the instance's requests
	// (zero outside the set) when Feasible, nil otherwise.
	Powers []float64
}

// ErrEmptySet is returned when the candidate set is empty.
var ErrEmptySet = errors.New("powerctl: empty request set")

// Feasible decides single-slot feasibility of set under optimal power
// control for the given variant.
func Feasible(m sinr.Model, in *problem.Instance, v sinr.Variant, set []int, opt Options) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if len(set) == 0 {
		return Result{}, ErrEmptySet
	}
	if len(set) == 1 {
		return singletonResult(m, in, set[0]), nil
	}
	switch v {
	case sinr.Directed:
		return directedFeasible(m, in, set, opt.withDefaults())
	case sinr.Bidirectional:
		return bidirectionalFeasible(m, in, set, opt.withDefaults())
	default:
		return Result{}, fmt.Errorf("powerctl: unknown variant %d", int(v))
	}
}

// singletonResult handles sets of size one, which are always feasible: the
// only constraint is p/ℓ ≥ β·ν, satisfiable by scaling.
func singletonResult(m sinr.Model, in *problem.Instance, i int) Result {
	powers := make([]float64, in.N())
	// Signal strength 1 plus enough headroom for the noise term.
	powers[i] = m.RequestLoss(in, i) * (1 + 2*m.Beta*m.Noise)
	return Result{Feasible: true, GrowthRate: 0, Powers: powers}
}

// directedFeasible builds the k×k gain matrix B over the set and tests
// ρ(B) < 1.
func directedFeasible(m sinr.Model, in *problem.Instance, set []int, opt Options) (Result, error) {
	k := len(set)
	b := make([][]float64, k)
	for a := 0; a < k; a++ {
		i := set[a]
		li := m.RequestLoss(in, i)
		row := make([]float64, k)
		vi := in.Reqs[i].V
		for c := 0; c < k; c++ {
			if c == a {
				continue
			}
			j := set[c]
			cross := m.Loss(in.Space.Dist(in.Reqs[j].U, vi))
			if cross == 0 {
				// A foreign sender sits exactly on our receiver: infinite
				// interference, never feasible together.
				return Result{Feasible: false, GrowthRate: math.Inf(1)}, nil
			}
			row[c] = m.Beta * li / cross
		}
		b[a] = row
	}
	apply := func(dst, src []float64) {
		for a := 0; a < k; a++ {
			var s float64
			row := b[a]
			for c := 0; c < k; c++ {
				s += row[c] * src[c]
			}
			dst[a] = s
		}
	}
	rho := GrowthRate(apply, k, opt)
	res := Result{GrowthRate: rho}
	if rho >= 1-opt.Margin {
		return res, nil
	}
	powers, ok := directedWitness(m, in, set, b)
	if !ok || !m.SetFeasible(in, sinr.Directed, powers, set) {
		// Conservative: near the feasibility boundary the linear solve can
		// fail to produce a strictly feasible point; reject.
		return res, nil
	}
	res.Feasible = true
	res.Powers = powers
	return res, nil
}

// directedWitness solves (I − B)p = c exactly by Gaussian elimination with
// partial pivoting, where c_i = ℓ_i·(1 + β·ν) provides slack for both the
// noise and the strict inequality. It reports ok = false if the system is
// singular or yields non-positive powers.
func directedWitness(m sinr.Model, in *problem.Instance, set []int, b [][]float64) ([]float64, bool) {
	k := len(set)
	a := make([][]float64, k)
	for i := 0; i < k; i++ {
		row := make([]float64, k+1)
		for j := 0; j < k; j++ {
			row[j] = -b[i][j]
		}
		row[i] += 1
		row[k] = m.RequestLoss(in, set[i]) * (1 + m.Beta*m.Noise)
		a[i] = row
	}
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for j := col; j <= k; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	powers := make([]float64, in.N())
	for i := 0; i < k; i++ {
		p := a[i][k] / a[i][i]
		if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
			return nil, false
		}
		powers[set[i]] = p
	}
	return powers, true
}

// bidirectionalFeasible tests the growth rate of the monotone interference
// map of the bidirectional constraints.
func bidirectionalFeasible(m sinr.Model, in *problem.Instance, set []int, opt Options) (Result, error) {
	k := len(set)
	// crossU[a][c] = β·ℓ_a / min-loss(request c → endpoint U of request a),
	// likewise crossV for endpoint V. The interference map is
	// I_a(p) = max(Σ_c crossU[a][c]·p_c, Σ_c crossV[a][c]·p_c).
	crossU := make([][]float64, k)
	crossV := make([][]float64, k)
	for a := 0; a < k; a++ {
		i := set[a]
		li := m.RequestLoss(in, i)
		ru := make([]float64, k)
		rv := make([]float64, k)
		for c := 0; c < k; c++ {
			if c == a {
				continue
			}
			j := set[c]
			lu := m.MinLossToNode(in, j, in.Reqs[i].U)
			lv := m.MinLossToNode(in, j, in.Reqs[i].V)
			if lu == 0 || lv == 0 {
				return Result{Feasible: false, GrowthRate: math.Inf(1)}, nil
			}
			ru[c] = m.Beta * li / lu
			rv[c] = m.Beta * li / lv
		}
		crossU[a] = ru
		crossV[a] = rv
	}
	apply := func(dst, src []float64) {
		for a := 0; a < k; a++ {
			var su, sv float64
			ru, rv := crossU[a], crossV[a]
			for c := 0; c < k; c++ {
				su += ru[c] * src[c]
				sv += rv[c] * src[c]
			}
			if sv > su {
				su = sv
			}
			dst[a] = su
		}
	}
	rho := GrowthRate(apply, k, opt)
	res := Result{GrowthRate: rho}
	if rho >= 1-opt.Margin {
		return res, nil
	}
	powers := witnessPowers(m, in, set, apply, opt)
	if !m.SetFeasible(in, sinr.Bidirectional, powers, set) {
		// Conservative: near the boundary the fixed-point iteration may not
		// have converged to a strictly feasible point; reject.
		return res, nil
	}
	res.Feasible = true
	res.Powers = powers
	return res, nil
}

// GrowthRate estimates the Perron root of a monotone homogeneous map by
// normalized iteration from the all-ones vector. For a linear map this is
// classic power iteration; for the bidirectional max-of-linear map it is the
// Collatz–Wielandt growth rate. Because the map can be imprimitive (e.g. a
// two-cycle, whose per-step norms oscillate), the estimate is the geometric
// mean of the per-step growth over the second half of the iterations, which
// converges to the Perron root even in the periodic case.
func GrowthRate(apply func(dst, src []float64), k int, opt Options) float64 {
	x := make([]float64, k)
	y := make([]float64, k)
	for i := range x {
		x[i] = 1
	}
	var (
		lambda  = math.Inf(1)
		logSum  float64
		samples int
	)
	half := opt.MaxIter / 2
	for it := 0; it < opt.MaxIter; it++ {
		apply(y, x)
		norm := 0.0
		for _, v := range y {
			if v > norm {
				norm = v
			}
		}
		if norm == 0 {
			return 0 // no interference at all
		}
		for i := range y {
			y[i] /= norm
		}
		// Floor the iterate to keep it strictly positive, so the estimate
		// tracks the overall spectral radius even for reducible maps.
		const floor = 1e-300
		for i := range y {
			if y[i] < floor {
				y[i] = floor
			}
		}
		x, y = y, x
		if math.Abs(norm-lambda) <= opt.Tol*math.Max(1, norm) && it > 10 {
			return norm
		}
		lambda = norm
		if it >= half {
			logSum += math.Log(norm)
			samples++
		}
	}
	if samples == 0 {
		return lambda
	}
	return math.Exp(logSum / float64(samples))
}

// witnessPowers runs the fixed-point iteration p ← A(p) + c, which converges
// when the growth rate is < 1, and returns powers indexed by request.
// c_i = ℓ_i·(1 + β·ν) so that the fixed point has slack against both the
// noise and the strict inequality. Convergence is geometric with the growth
// rate as the factor; callers verify the result and treat non-convergence
// as infeasible.
func witnessPowers(m sinr.Model, in *problem.Instance, set []int, apply func(dst, src []float64), opt Options) []float64 {
	k := len(set)
	c := make([]float64, k)
	for a, i := range set {
		li := m.RequestLoss(in, i)
		c[a] = li * (1 + m.Beta*m.Noise)
	}
	p := append([]float64(nil), c...)
	q := make([]float64, k)
	for it := 0; it < 20*opt.MaxIter; it++ {
		apply(q, p)
		var delta float64
		for a := 0; a < k; a++ {
			next := q[a] + c[a]
			if rel := math.Abs(next-p[a]) / math.Max(1, math.Abs(p[a])); rel > delta {
				delta = rel
			}
			p[a] = next
		}
		if delta < opt.Tol {
			break
		}
	}
	powers := make([]float64, in.N())
	for a, i := range set {
		powers[i] = p[a]
	}
	return powers
}
