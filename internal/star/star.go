package star

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/powerctl"
	"repro/internal/sinr"
)

// Instance is a node-loss instance on a star metric: node i sits at
// distance Radii[i] from the center and carries loss parameter Loss[i].
// The metric distance between distinct nodes i and j is Radii[i]+Radii[j].
type Instance struct {
	Radii []float64
	Loss  []float64
}

// New validates and builds a star instance.
func New(radii, loss []float64) (*Instance, error) {
	if len(radii) == 0 || len(radii) != len(loss) {
		return nil, fmt.Errorf("star: %d radii, %d losses", len(radii), len(loss))
	}
	for i := range radii {
		if !(radii[i] > 0) || math.IsInf(radii[i], 0) {
			return nil, fmt.Errorf("star: invalid radius %g at node %d", radii[i], i)
		}
		if !(loss[i] > 0) || math.IsInf(loss[i], 0) {
			return nil, fmt.Errorf("star: invalid loss %g at node %d", loss[i], i)
		}
	}
	return &Instance{
		Radii: append([]float64(nil), radii...),
		Loss:  append([]float64(nil), loss...),
	}, nil
}

// N returns the number of nodes.
func (st *Instance) N() int { return len(st.Radii) }

// Decay returns d_i = δ_i^α, the loss between node i and the star center.
func (st *Instance) Decay(m sinr.Model, i int) float64 { return m.Loss(st.Radii[i]) }

// SqrtPowers returns the square root assignment p̄_i = √ℓ_i.
func (st *Instance) SqrtPowers() []float64 {
	out := make([]float64, st.N())
	for i, l := range st.Loss {
		out[i] = math.Sqrt(l)
	}
	return out
}

// Interference returns Σ_{j∈set, j≠i} p_j/(δ_i+δ_j)^α at node i.
func (st *Instance) Interference(m sinr.Model, powers []float64, set []int, i int) float64 {
	var sum float64
	for _, j := range set {
		if j == i {
			continue
		}
		sum += powers[j] / m.Loss(st.Radii[i]+st.Radii[j])
	}
	return sum
}

const tol = 1e-9

// Feasible reports whether set is beta-feasible under the given powers.
func (st *Instance) Feasible(m sinr.Model, beta float64, powers []float64, set []int) bool {
	for _, i := range set {
		signal := powers[i] / st.Loss[i]
		if signal < beta*(st.Interference(m, powers, set, i)+m.Noise)*(1-tol) {
			return false
		}
	}
	return true
}

// OptimalGain returns the largest gain β* for which some power assignment
// makes the whole star instance feasible: β* = 1/ρ(M) for the matrix
// M_ij = ℓ_i/ℓ(i,j) (Perron–Frobenius, computed by power iteration).
func (st *Instance) OptimalGain(m sinr.Model) float64 {
	n := st.N()
	if n == 1 {
		return math.Inf(1)
	}
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row[j] = st.Loss[i] / m.Loss(st.Radii[i]+st.Radii[j])
		}
		rows[i] = row
	}
	apply := func(dst, src []float64) {
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += rows[i][j] * src[j]
			}
			dst[i] = s
		}
	}
	rho := powerctl.GrowthRate(apply, n, powerctl.Defaults())
	if rho == 0 {
		return math.Inf(1)
	}
	return 1 / rho
}

// SelectStats counts the nodes removed by each stage of Select.
type SelectStats struct {
	// DroppedMarkov counts nodes dropped by the per-class Markov step of
	// Claim 12 (largest hypothetical loss parameters).
	DroppedMarkov int
	// DroppedInterference counts nodes whose measured interference from
	// lower or higher decay classes exceeded half their signal budget
	// (Lemma 11's selection rule).
	DroppedInterference int
	// DroppedCrowding counts large-loss nodes dropped by the crowding rule
	// of Section 4.4 (too many small-loss nodes between consecutive
	// large-loss nodes).
	DroppedCrowding int
	// DroppedRepair counts nodes removed by the final verification pass.
	DroppedRepair int
}

// Dropped returns the total number of dropped nodes.
func (s *SelectStats) Dropped() int {
	return s.DroppedMarkov + s.DroppedInterference + s.DroppedCrowding + s.DroppedRepair
}

// Select constructively realizes Lemma 5: assuming the instance is
// betaPrime-feasible under some power assignment, it returns a subset that
// is beta-feasible (beta ≤ betaPrime) under the square root assignment,
// dropping O((beta/betaPrime)^{2/3} + small-class noise) of the nodes.
func Select(m sinr.Model, st *Instance, betaPrime, beta float64) ([]int, *SelectStats, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if !(beta > 0) || !(betaPrime > 0) {
		return nil, nil, fmt.Errorf("star: gains must be positive, got beta=%g betaPrime=%g", beta, betaPrime)
	}
	if beta > betaPrime {
		return nil, nil, fmt.Errorf("star: beta %g exceeds betaPrime %g", beta, betaPrime)
	}
	n := st.N()
	stats := &SelectStats{}
	if n == 1 {
		return []int{0}, stats, nil
	}

	// Rescale so that every decay d_u > 1 (W.l.o.g. step of Lemma 11's
	// proof). Scaling distances by s and losses by s^α preserves
	// feasibility under the square root assignment.
	minR := math.Inf(1)
	for _, r := range st.Radii {
		if r < minR {
			minR = r
		}
	}
	s := 2 / minR
	sa := m.Loss(s)
	radii := make([]float64, n)
	loss := make([]float64, n)
	for i := range radii {
		radii[i] = st.Radii[i] * s
		loss[i] = st.Loss[i] * sa
	}
	decay := make([]float64, n)
	for i := range decay {
		decay[i] = m.Loss(radii[i])
	}

	// Large/small loss split: a_i = ℓ_i/d_i against 2^{α+1}/β'.
	thresholdA := math.Pow(2, m.Alpha+1) / betaPrime
	large := make([]bool, n)
	lossHyp := make([]float64, n) // hypothetical (reduced) losses ℓ'
	for i := range lossHyp {
		lossHyp[i] = loss[i]
		if a := loss[i] / decay[i]; a > thresholdA {
			large[i] = true
			lossHyp[i] = decay[i] * thresholdA
		}
	}

	// β'' for the small-loss stage (constant c1 of Section 4.4).
	betaSmall := (math.Pow(2, m.Alpha) + 1) * beta
	eps := math.Pow(betaSmall/betaPrime, 2.0/3.0)
	if eps > 0.9 {
		eps = 0.9
	}

	// Decay classes D_j = {u : 2^{j-1} < d_u ≤ 2^j}.
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = int(math.Ceil(math.Log2(decay[i])))
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	// Markov step (Claim 12): within each class drop the eps-fraction of
	// nodes with the largest hypothetical loss parameters.
	classes := make(map[int][]int)
	for i := 0; i < n; i++ {
		classes[classOf[i]] = append(classes[classOf[i]], i)
	}
	for _, members := range classes {
		drop := int(math.Floor(eps * float64(len(members))))
		if drop == 0 {
			continue
		}
		sorted := append([]int(nil), members...)
		sort.Slice(sorted, func(a, b int) bool { return lossHyp[sorted[a]] > lossHyp[sorted[b]] })
		for _, u := range sorted[:drop] {
			alive[u] = false
			stats.DroppedMarkov++
		}
	}

	// Interference selection (Lemma 11): under √ℓ' powers, keep nodes whose
	// interference from lower-or-equal classes and from higher classes each
	// stay within half the β''-budget.
	pHyp := make([]float64, n)
	for i := range pHyp {
		pHyp[i] = math.Sqrt(lossHyp[i])
	}
	var interfDrop []int
	for u := 0; u < n; u++ {
		if !alive[u] {
			continue
		}
		var low, high float64
		for v := 0; v < n; v++ {
			if v == u || !alive[v] {
				continue
			}
			contrib := pHyp[v] / m.Loss(radii[u]+radii[v])
			if classOf[v] <= classOf[u] {
				low += contrib
			} else {
				high += contrib
			}
		}
		budget := 1 / (2 * betaSmall * math.Sqrt(lossHyp[u]))
		if low > budget || high > budget {
			interfDrop = append(interfDrop, u)
		}
	}
	for _, u := range interfDrop {
		alive[u] = false
		stats.DroppedInterference++
	}

	// Crowding rule (Section 4.4): order nodes by decay; for each surviving
	// large-loss node i, count the surviving small-loss nodes in the decay
	// intervals adjacent to i (S_i and S_succ(i)); drop i if the block
	// exceeds β'/β''.
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if alive[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return decay[order[a]] < decay[order[b]] })
	limit := betaPrime / betaSmall
	var crowded []int
	for pos, i := range order {
		if !large[i] {
			continue
		}
		// S_i: small-loss nodes between the previous large-loss node and i;
		// S_succ: between i and the next large-loss node.
		count := 1
		for q := pos - 1; q >= 0 && !large[order[q]]; q-- {
			count++
		}
		for q := pos + 1; q < len(order) && !large[order[q]]; q++ {
			count++
		}
		if float64(count) > limit {
			crowded = append(crowded, i)
		}
	}
	for _, u := range crowded {
		alive[u] = false
		stats.DroppedCrowding++
	}

	// Final verification against the real loss parameters under the real
	// square root assignment at gain beta; greedily repair any residual
	// violations (covers the constant-factor slack of Lemmas 10, 13, 14).
	kept := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if alive[i] {
			kept = append(kept, i)
		}
	}
	kept, repaired := st.thinToGain(m, beta, kept)
	stats.DroppedRepair = repaired
	if len(kept) == 0 {
		return nil, stats, errors.New("star: selection removed every node")
	}
	return kept, stats, nil
}

// thinToGain greedily removes nodes (worst total normalized interference
// first) until set is gain-feasible under the square root assignment, and
// returns the survivors with the number of removals.
func (st *Instance) thinToGain(m sinr.Model, gain float64, set []int) ([]int, int) {
	powers := st.SqrtPowers()
	kept := append([]int(nil), set...)
	var removed int
	for len(kept) > 0 && !st.Feasible(m, gain, powers, kept) {
		worst, worstScore := 0, math.Inf(-1)
		for a, j := range kept {
			var score float64
			for _, i := range kept {
				if i == j {
					continue
				}
				score += powers[j] / m.Loss(st.Radii[i]+st.Radii[j]) * st.Loss[i] / powers[i]
			}
			if score > worstScore {
				worstScore = score
				worst = a
			}
		}
		kept = append(kept[:worst], kept[worst+1:]...)
		removed++
	}
	return kept, removed
}

// SelectLight is the empirical counterpart of Select used inside the
// Theorem 2 pipeline: it skips the worst-case classification machinery and
// simply thins the star to the target gain under the square root
// assignment. It retains far more nodes than the worst-case parameterized
// Select on benign inputs while guaranteeing the same postcondition.
func SelectLight(m sinr.Model, st *Instance, gain float64) ([]int, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !(gain > 0) {
		return nil, fmt.Errorf("star: gain must be positive, got %g", gain)
	}
	all := make([]int, st.N())
	for i := range all {
		all[i] = i
	}
	kept, _ := st.thinToGain(m, gain, all)
	return kept, nil
}

// Random generates a star instance with log-uniform radii in
// [1, radiusSpread] and loss parameters ℓ_i = d_i·a_i with log-uniform
// a_i in [aMin, aMax]. It is the workload generator for experiment E7.
func Random(rng *rand.Rand, m sinr.Model, n int, radiusSpread, aMin, aMax float64) (*Instance, error) {
	if n <= 0 {
		return nil, errors.New("star: n must be positive")
	}
	if !(radiusSpread >= 1) || !(0 < aMin && aMin <= aMax) {
		return nil, fmt.Errorf("star: invalid parameters spread=%g aMin=%g aMax=%g", radiusSpread, aMin, aMax)
	}
	radii := make([]float64, n)
	loss := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = math.Exp(rng.Float64() * math.Log(radiusSpread))
		a := aMin * math.Exp(rng.Float64()*math.Log(aMax/aMin))
		loss[i] = m.Loss(radii[i]) * a
	}
	return New(radii, loss)
}
