package star

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sinr"
)

// TestSelectAllLargeLoss exercises the Lemma 10 regime: every node has
// a_i = ℓ_i/d_i above the 2^{α+1}/β' threshold, and the loss parameters
// spread geometrically, so the whole star should survive at a modest
// target gain.
func TestSelectAllLargeLoss(t *testing.T) {
	m := sinr.Default()
	n := 12
	betaPrime := 1.0
	thresholdA := math.Pow(2, m.Alpha+1) / betaPrime // = 16 at α=3
	radii := make([]float64, n)
	loss := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = math.Pow(2, float64(i)) // decays 8^i
		// Large-loss: a_i = 4·threshold, spreading ℓ_i geometrically.
		loss[i] = m.Loss(radii[i]) * thresholdA * 4
	}
	st, err := New(radii, loss)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 10 promises feasibility at β ≈ β'/2^{α+2} when the star is
	// β'-feasible; verify the implementation achieves a comparable target.
	betaPrime = st.OptimalGain(m) * 0.9
	if !(betaPrime > 0) || math.IsInf(betaPrime, 1) {
		t.Skip("degenerate star")
	}
	beta := betaPrime / math.Pow(2, m.Alpha+3)
	kept, stats, err := Select(m, st, betaPrime, beta)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Feasible(m, beta, st.SqrtPowers(), kept) {
		t.Error("kept set infeasible")
	}
	if len(kept) < n*3/4 {
		t.Errorf("large-loss star kept only %d of %d (stats %+v)", len(kept), n, *stats)
	}
}

// TestSelectAllSmallLoss exercises the Lemma 11 regime: loss parameters
// well below the decay threshold.
func TestSelectAllSmallLoss(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(2))
	n := 64
	radii := make([]float64, n)
	loss := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = 1 + rng.Float64()*100
		// Small loss: a_i far below 2^{α+1}/β'.
		loss[i] = m.Loss(radii[i]) * 0.01
	}
	st, err := New(radii, loss)
	if err != nil {
		t.Fatal(err)
	}
	betaPrime := st.OptimalGain(m) * 0.9
	if !(betaPrime > 0) || math.IsInf(betaPrime, 1) {
		t.Skip("degenerate star")
	}
	beta := betaPrime / 256
	kept, _, err := Select(m, st, betaPrime, beta)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Feasible(m, beta, st.SqrtPowers(), kept) {
		t.Error("kept set infeasible")
	}
	if len(kept) < n/2 {
		t.Errorf("small-loss star kept only %d of %d", len(kept), n)
	}
}

func TestSelectLightPostcondition(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(3))
	st, err := Random(rng, m, 48, 200, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, gain := range []float64{0.01, 0.1, 1} {
		kept, err := SelectLight(m, st, gain)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Feasible(m, gain, st.SqrtPowers(), kept) {
			t.Errorf("gain %g: kept set infeasible", gain)
		}
	}
	if _, err := SelectLight(m, st, 0); err == nil {
		t.Error("zero gain should fail")
	}
	if _, err := SelectLight(sinr.Model{Alpha: 0, Beta: 1}, st, 1); err == nil {
		t.Error("invalid model should fail")
	}
}

// TestSelectLightMonotoneInGain: a weaker target gain keeps at least as
// many nodes.
func TestSelectLightMonotoneInGain(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(4))
	st, err := Random(rng, m, 64, 500, 0.5, 30)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := SelectLight(m, st, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := SelectLight(m, st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(weak) < len(strong) {
		t.Errorf("weak gain kept %d < strong gain %d", len(weak), len(strong))
	}
}

func TestSelectStatsDroppedTotal(t *testing.T) {
	s := &SelectStats{DroppedMarkov: 1, DroppedInterference: 2, DroppedCrowding: 3, DroppedRepair: 4}
	if got := s.Dropped(); got != 10 {
		t.Errorf("Dropped = %d, want 10", got)
	}
}
