package star

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sinr"
)

func TestBreakdownAdditivity(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(5))
	st, err := Random(rng, m, 32, 100, 0.1, 200)
	if err != nil {
		t.Fatal(err)
	}
	set := make([]int, st.N())
	for i := range set {
		set[i] = i
	}
	powers := st.SqrtPowers()
	betaPrime := 1.0
	for i := 0; i < st.N(); i++ {
		b := st.InterferenceBreakdown(m, betaPrime, set, i)
		total := st.Interference(m, powers, set, i)
		if math.Abs(b.Total()-total) > 1e-9*(1+total) {
			t.Fatalf("node %d: breakdown %g != total %g", i, b.Total(), total)
		}
		if b.FromLarge < 0 || b.FromSmall < 0 {
			t.Fatalf("node %d: negative component %+v", i, b)
		}
	}
}

func TestBreakdownAllLarge(t *testing.T) {
	m := sinr.Default()
	betaPrime := 1.0
	thr := math.Pow(2, m.Alpha+1) / betaPrime
	radii := []float64{1, 2, 4}
	loss := make([]float64, 3)
	for i, r := range radii {
		loss[i] = m.Loss(r) * thr * 2
	}
	st, err := New(radii, loss)
	if err != nil {
		t.Fatal(err)
	}
	set := []int{0, 1, 2}
	for i := range set {
		if !st.IsLargeLoss(m, betaPrime, i) {
			t.Fatalf("node %d should be large-loss", i)
		}
		b := st.InterferenceBreakdown(m, betaPrime, set, i)
		if b.FromSmall != 0 {
			t.Errorf("node %d: FromSmall = %g, want 0", i, b.FromSmall)
		}
		if !b.LargeSelf {
			t.Errorf("node %d: LargeSelf false", i)
		}
	}
}

// TestCrossInterferenceBoundedAfterSelect verifies the combined effect of
// Lemmas 13/14 on mixed stars: after Select, at every kept node both the
// large→ and small→ interference components stay within the node's full
// β-budget (each component is at most the total, which Select certifies).
func TestCrossInterferenceBoundedAfterSelect(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(6))
	st, err := Random(rng, m, 96, 500, 0.05, 500) // wide a-range: mixed regimes
	if err != nil {
		t.Fatal(err)
	}
	betaPrime := st.OptimalGain(m) * 0.9
	if !(betaPrime > 0) || math.IsInf(betaPrime, 1) {
		t.Skip("degenerate star")
	}
	beta := betaPrime / 64
	kept, _, err := Select(m, st, betaPrime, beta)
	if err != nil {
		t.Fatal(err)
	}
	var largeCount int
	for _, i := range kept {
		b := st.InterferenceBreakdown(m, betaPrime, kept, i)
		budget := 1 / (beta * math.Sqrt(st.Loss[i]))
		if b.FromLarge > budget*(1+1e-9) || b.FromSmall > budget*(1+1e-9) {
			t.Errorf("node %d: components (%g, %g) exceed budget %g", i, b.FromLarge, b.FromSmall, budget)
		}
		if b.LargeSelf {
			largeCount++
		}
	}
	t.Logf("kept %d nodes (%d large-loss)", len(kept), largeCount)
}
