package star

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sinr"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty star should fail")
	}
	if _, err := New([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := New([]float64{0}, []float64{1}); err == nil {
		t.Error("zero radius should fail")
	}
	if _, err := New([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative loss should fail")
	}
}

func TestDecayAndPowers(t *testing.T) {
	m := sinr.Model{Alpha: 3, Beta: 1}
	st, err := New([]float64{2}, []float64{16})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Decay(m, 0); got != 8 {
		t.Errorf("decay = %g, want 8", got)
	}
	if got := st.SqrtPowers()[0]; got != 4 {
		t.Errorf("sqrt power = %g, want 4", got)
	}
}

func TestInterferenceHandComputed(t *testing.T) {
	m := sinr.Model{Alpha: 2, Beta: 1}
	st, err := New([]float64{1, 1, 2}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1, 1, 1}
	// At node 0: node 1 at distance 2 → 1/4; node 2 at distance 3 → 1/9.
	want := 0.25 + 1.0/9
	if got := st.Interference(m, p, []int{0, 1, 2}, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("interference = %g, want %g", got, want)
	}
}

func TestFeasibleSymmetricStar(t *testing.T) {
	// n equal nodes: radii 1, losses 1, unit powers, α=2. Interference at
	// each node is (n-1)/4; feasible iff 1 ≥ β(n-1)/4.
	m := sinr.Model{Alpha: 2, Beta: 1}
	radii := []float64{1, 1, 1}
	loss := []float64{1, 1, 1}
	st, err := New(radii, loss)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1, 1, 1}
	if !st.Feasible(m, 1, p, []int{0, 1, 2}) {
		t.Error("3 nodes at interference 1/2 should be feasible at gain 1")
	}
	big := make([]float64, 10)
	one := make([]float64, 10)
	all := make([]int, 10)
	for i := range big {
		big[i], one[i], all[i] = 1, 1, i
	}
	stBig, err := New(big, one)
	if err != nil {
		t.Fatal(err)
	}
	if stBig.Feasible(m, 1, one, all) {
		t.Error("10 nodes at interference 9/4 should be infeasible at gain 1")
	}
}

func TestOptimalGainSymmetric(t *testing.T) {
	// Symmetric star: M_ij = ℓ/(2^α) for i≠j, spectral radius
	// (n-1)·ℓ/2^α, so β* = 2^α/((n-1)·ℓ).
	m := sinr.Model{Alpha: 3, Beta: 1}
	n := 5
	radii := make([]float64, n)
	loss := make([]float64, n)
	all := make([]int, n)
	for i := range radii {
		radii[i], loss[i], all[i] = 1, 2, i
	}
	st, err := New(radii, loss)
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0 / (4 * 2)
	if got := st.OptimalGain(m); math.Abs(got-want) > 1e-6*want {
		t.Errorf("OptimalGain = %g, want %g", got, want)
	}
	// Single node: infinite.
	st1, _ := New([]float64{1}, []float64{1})
	if got := st1.OptimalGain(m); !math.IsInf(got, 1) {
		t.Errorf("single-node OptimalGain = %g, want +Inf", got)
	}
}

func TestSelectValidation(t *testing.T) {
	m := sinr.Default()
	st, _ := New([]float64{1, 2}, []float64{1, 8})
	if _, _, err := Select(m, st, 1, 2); err == nil {
		t.Error("beta > betaPrime should fail")
	}
	if _, _, err := Select(m, st, -1, -1); err == nil {
		t.Error("negative gains should fail")
	}
	if _, _, err := Select(sinr.Model{Alpha: 0, Beta: 1}, st, 1, 1); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestSelectSingleton(t *testing.T) {
	m := sinr.Default()
	st, _ := New([]float64{1}, []float64{1})
	kept, stats, err := Select(m, st, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || stats.Dropped() != 0 {
		t.Errorf("kept = %v, dropped = %d", kept, stats.Dropped())
	}
}

// TestSelectPostcondition: on feasible random stars, Select returns a
// subset that is beta-feasible under the square root assignment.
func TestSelectPostcondition(t *testing.T) {
	m := sinr.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := Random(r, m, 8+r.Intn(40), 100, 0.1, 100)
		if err != nil {
			return false
		}
		betaPrime := st.OptimalGain(m) * 0.9
		if math.IsInf(betaPrime, 1) || betaPrime <= 0 {
			return true
		}
		beta := betaPrime / 16
		kept, _, err := Select(m, st, betaPrime, beta)
		if err != nil {
			return false
		}
		return st.Feasible(m, beta, st.SqrtPowers(), kept)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSelectRetainsLargeFraction: Lemma 5's shape — with betaPrime ≫ beta,
// the selection keeps most nodes of a feasible star.
func TestSelectRetainsLargeFraction(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(7))
	var keptTotal, total int
	for trial := 0; trial < 10; trial++ {
		st, err := Random(rng, m, 64, 1000, 0.5, 50)
		if err != nil {
			t.Fatal(err)
		}
		betaPrime := st.OptimalGain(m) * 0.9
		if betaPrime <= 0 || math.IsInf(betaPrime, 1) {
			continue
		}
		beta := betaPrime / 1000
		kept, _, err := Select(m, st, betaPrime, beta)
		if err != nil {
			t.Fatal(err)
		}
		keptTotal += len(kept)
		total += st.N()
	}
	if total == 0 {
		t.Skip("no feasible stars generated")
	}
	if frac := float64(keptTotal) / float64(total); frac < 0.5 {
		t.Errorf("kept fraction %g, want ≥ 0.5 at βʹ/β = 1000", frac)
	}
}

// TestSelectFractionMonotoneInGainRatio: shrinking beta (relative to
// betaPrime) should not shrink the kept fraction much — the dropped
// fraction scales like (beta/betaPrime)^{2/3} (Lemma 5).
func TestSelectFractionMonotoneInGainRatio(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(9))
	st, err := Random(rng, m, 96, 500, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	betaPrime := st.OptimalGain(m) * 0.9
	if betaPrime <= 0 || math.IsInf(betaPrime, 1) {
		t.Skip("degenerate star")
	}
	keptLoose, _, err := Select(m, st, betaPrime, betaPrime/2048)
	if err != nil {
		t.Fatal(err)
	}
	keptTight, _, err := Select(m, st, betaPrime, betaPrime/16)
	if err != nil {
		t.Fatal(err)
	}
	if len(keptLoose) < len(keptTight)/2 {
		t.Errorf("loose target kept %d, tight target kept %d: expected loose ≳ tight",
			len(keptLoose), len(keptTight))
	}
}

func TestRandomValidation(t *testing.T) {
	m := sinr.Default()
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(rng, m, 0, 10, 1, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Random(rng, m, 5, 0.5, 1, 2); err == nil {
		t.Error("spread < 1 should fail")
	}
	if _, err := Random(rng, m, 5, 10, 2, 1); err == nil {
		t.Error("aMin > aMax should fail")
	}
}
