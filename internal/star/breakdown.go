package star

import (
	"math"

	"repro/internal/sinr"
)

// Breakdown splits the interference received at a node under the square
// root assignment by the origin class of Section 4.4: large-loss nodes
// (a_i = ℓ_i/d_i above 2^{α+1}/β') versus small-loss nodes. Lemma 13 bounds
// the small→large direction and Lemma 14 the large→small direction; the
// diagnostic makes both directions measurable.
type Breakdown struct {
	// FromLarge is the interference contributed by large-loss nodes.
	FromLarge float64
	// FromSmall is the interference contributed by small-loss nodes.
	FromSmall float64
	// LargeSelf reports whether the node itself is large-loss.
	LargeSelf bool
}

// Total returns the combined interference.
func (b Breakdown) Total() float64 { return b.FromLarge + b.FromSmall }

// IsLargeLoss reports whether node i is a large-loss node at witness gain
// betaPrime: a_i = ℓ_i/d_i > 2^{α+1}/β'.
func (st *Instance) IsLargeLoss(m sinr.Model, betaPrime float64, i int) bool {
	return st.Loss[i]/st.Decay(m, i) > math.Pow(2, m.Alpha+1)/betaPrime
}

// InterferenceBreakdown computes the large/small interference split at
// node i from the other nodes of set, under the square root assignment.
func (st *Instance) InterferenceBreakdown(m sinr.Model, betaPrime float64, set []int, i int) Breakdown {
	powers := st.SqrtPowers()
	b := Breakdown{LargeSelf: st.IsLargeLoss(m, betaPrime, i)}
	for _, j := range set {
		if j == i {
			continue
		}
		contrib := powers[j] / m.Loss(st.Radii[i]+st.Radii[j])
		if st.IsLargeLoss(m, betaPrime, j) {
			b.FromLarge += contrib
		} else {
			b.FromSmall += contrib
		}
	}
	return b
}
