// Package star implements the star-metric analysis of Section 4 of the
// paper (Lemma 5 and its supporting Lemmas 10–14): given a node-loss
// instance on a star metric that is β'-feasible under some power
// assignment, it constructively selects a (1 − O((β/β')^{2/3}))-fraction
// of the nodes that is β-feasible under the square root power assignment.
//
// The selection follows the proof structure: nodes are split by the ratio
// a_i = ℓ_i/d_i between loss parameter and decay into large-loss nodes
// (handled by Lemma 10 plus the crowding rule of Section 4.4) and
// small-loss nodes (handled by the decay classes D_j and the Markov drop
// of Lemma 11). A final verification pass enforces the exact
// β-feasibility postcondition.
//
// Exported entry points:
//
//   - New builds a star Instance from radii and loss parameters.
//   - Select is the faithful Lemma 5 selection with its Breakdown
//     diagnostics; SelectLight is the practical greedy variant with the
//     same postcondition, used by default in the Theorem 2 pipeline.
//   - Random generates star workloads for tests and experiments.
package star
