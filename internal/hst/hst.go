package hst

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/par"
)

// Embedding is one random HST over the nodes of a base metric.
type Embedding struct {
	base geom.Metric
	// level[i][u] is the cluster id of node u at level i; level 0 has
	// singleton clusters, the top level one cluster.
	level [][]int
	// radii[i] is the cluster radius b·2^{i-1} at level i.
	radii []float64
	// b is the random scale factor in [1, 2).
	b float64

	// Scan-path accelerators, derived from the fields above by finish()
	// and carrying no information of their own. byNode holds the cluster
	// ids transposed per node (byNode[u·depth+i] = level[i][u]) so the
	// per-pair separation scan walks two contiguous slices; pow2[i] is
	// exactly 2^i, replacing a math.Pow per pair; dist is the
	// devirtualized base.Dist (geom.DistFunc). The O(n²) stretch scans
	// over these run ≈4× faster than through the naive representations,
	// bitwise-identically.
	byNode []int32
	pow2   []float64
	dist   func(i, j int) float64
}

// finish derives the scan-path accelerators from level/radii/b.
func (e *Embedding) finish() {
	n := e.base.N()
	depth := len(e.level)
	e.byNode = make([]int32, n*depth)
	for i, lv := range e.level {
		for u, id := range lv {
			e.byNode[u*depth+i] = int32(id)
		}
	}
	e.pow2 = make([]float64, depth+1)
	p := 1.0
	for i := range e.pow2 {
		e.pow2[i] = p
		p *= 2
	}
	e.dist = geom.DistFunc(e.base)
}

// sep returns the first index at which the two transposed cluster-id
// rows agree — the separation level — or the top level if only the root
// cluster is shared. It is the one copy of the scan behind sepLevel,
// StretchWithin and violatedMask.
//
//oblint:hotpath
func sep(lu, lv []int32) int {
	for i := range lu {
		if lu[i] == lv[i] {
			return i
		}
	}
	return len(lu) - 1
}

// sepLevel returns the smallest level at which u and v share a cluster.
//
//oblint:hotpath
func (e *Embedding) sepLevel(u, v int) int {
	depth := len(e.level)
	return sep(e.byNode[u*depth:(u+1)*depth], e.byNode[v*depth:(v+1)*depth])
}

// Dist returns the HST distance between u and v: both nodes hang at depth
// equal to the separation level below their lowest common cluster, with
// edge weight equal to the cluster radius at each level, so
// T(u,v) = 2·Σ_{j=1..sep} b·2^{j-1} = 2b·(2^sep − 1).
//
//oblint:hotpath
func (e *Embedding) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	sep := e.sepLevel(u, v)
	return 2 * e.b * (e.pow2[sep] - 1)
}

// N returns the number of nodes.
func (e *Embedding) N() int { return e.base.N() }

var _ geom.Metric = (*Embedding)(nil)

// Build constructs one random FRT-style HST over the metric. The metric
// must have strictly positive distances between distinct nodes.
func Build(base geom.Metric, rng *rand.Rand) (*Embedding, error) {
	if n := base.N(); n > 0 {
		return build(base, rng, geom.MinDist(base), geom.MaxDist(base))
	}
	return nil, errors.New("hst: empty metric")
}

// build is Build with the O(n²) metric extremes hoisted out, so an
// ensemble computes them once instead of once per tree.
func build(base geom.Metric, rng *rand.Rand, minD, maxD float64) (*Embedding, error) {
	n := base.N()
	if n == 0 {
		return nil, errors.New("hst: empty metric")
	}
	if n > 1 && !(minD > 0) {
		return nil, errors.New("hst: coincident nodes")
	}
	if n == 1 {
		e := &Embedding{base: base, level: [][]int{{0}}, radii: []float64{0}, b: 1}
		e.finish()
		return e, nil
	}
	dist := geom.DistFunc(base)

	// Scale so the minimum distance is 1 (implicitly: work with d/minD).
	scale := 1 / minD
	// Number of levels: radius at level L must cover the diameter.
	lmax := int(math.Ceil(math.Log2(maxD*scale))) + 2
	if lmax < 1 {
		lmax = 1
	}

	perm := rng.Perm(n)
	b := 1 + rng.Float64()

	// Build the laminar partition family top-down: the top level is a
	// single cluster; descending to level i, each node u picks the first
	// permutation node within the level radius r_i = b·2^{i-1}, and the new
	// cluster is keyed by (parent cluster, picked center), which refines
	// the parent partition. At level 0 the radius is below the minimum
	// distance, so clusters are singletons.
	level := make([][]int, lmax+1)
	radii := make([]float64, lmax+1)
	level[lmax] = make([]int, n) // all zeros: one cluster
	radii[lmax] = b * math.Pow(2, float64(lmax-1)) / scale
	// pos[u] is the permutation rank at which u's previous (larger-radius)
	// level found its center. Radii shrink as the loop descends, so the
	// qualifying set shrinks and the first qualifying rank can only grow —
	// each level's scan resumes where the previous one stopped, making the
	// total scan work per node O(n + levels) instead of O(n·levels). u
	// itself always qualifies (dist 0) and its rank is never below pos[u],
	// so every resumed scan terminates.
	pos := make([]int, n)
	for i := lmax - 1; i >= 0; i-- {
		r := b * math.Pow(2, float64(i-1)) / scale
		radii[i] = r
		cur := make([]int, n)
		type key struct{ parent, center int }
		idOf := make(map[key]int, n)
		// Below the minimum distance no node other than u itself can sit
		// within r, and u is always within r of itself, so the scan would
		// crawl to u's own rank and return u — skip it. This keeps the
		// singleton bottom level(s) O(n).
		singleton := r < minD
		for u := 0; u < n; u++ {
			center := u
			if !singleton {
				for k := pos[u]; k < n; k++ {
					if c := perm[k]; dist(u, c) <= r {
						center = c
						pos[u] = k
						break
					}
				}
			}
			k := key{parent: level[i+1][u], center: center}
			id, ok := idOf[k]
			if !ok {
				id = len(idOf)
				idOf[k] = id
			}
			cur[u] = id
		}
		level[i] = cur
	}

	e := &Embedding{base: base, level: level, radii: radii, b: b / scale}
	e.finish()
	return e, nil
}

// Stretch returns max over u ≠ v of T(v,u)/d(v,u) for the given node v.
//
//oblint:hotpath
func (e *Embedding) Stretch(v int) float64 {
	n := e.base.N() //oblint:ignore one O(1) metadata call per scan, not per pair
	var worst float64
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		d := e.dist(v, u)
		if d == 0 {
			return math.Inf(1)
		}
		if s := e.Dist(v, u) / d; s > worst {
			worst = s
		}
	}
	return worst
}

// StretchWithin decides Stretch(v) ≤ bound — the core-membership
// predicate of Lemma 6 — with the same pairs and the same arithmetic,
// but returning false at the first violating partner instead of always
// paying the full O(n) scan. The ensemble's core computations run on it;
// Stretch remains for callers that need the value itself.
//
//oblint:hotpath
func (e *Embedding) StretchWithin(v int, bound float64) bool {
	n := e.base.N() //oblint:ignore one O(1) metadata call per scan, not per pair
	depth := len(e.level)
	lv := e.byNode[v*depth : (v+1)*depth]
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		d := e.dist(v, u)
		if d == 0 {
			return false // Stretch is +Inf here, above any finite bound
		}
		s := sep(e.byNode[u*depth:(u+1)*depth], lv)
		if 2*e.b*(e.pow2[s]-1)/d > bound {
			return false
		}
	}
	return true
}

// violatedMask returns, for every node, whether its stretch exceeds
// bound. The stretch ratio T(u,v)/d(u,v) is symmetric, so each unordered
// pair is evaluated once and charged to both endpoints — half the work of
// n StretchWithin scans — with the same arithmetic and hence the same
// verdicts; pairs whose endpoints are both already violated are skipped
// (their ratio can no longer change any verdict).
//
//oblint:hotpath
func (e *Embedding) violatedMask(bound float64) []bool {
	n := e.base.N() //oblint:ignore one O(1) metadata call per scan, not per pair
	depth := len(e.level)
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		lv := e.byNode[v*depth : (v+1)*depth]
		for u := v + 1; u < n; u++ {
			if out[v] && out[u] {
				continue
			}
			d := e.dist(v, u)
			if d == 0 {
				out[v], out[u] = true, true
				continue
			}
			s := sep(e.byNode[u*depth:(u+1)*depth], lv)
			if 2*e.b*(e.pow2[s]-1)/d > bound {
				out[v], out[u] = true, true
			}
		}
	}
	return out
}

// Dominates verifies T(u,v) ≥ d(u,v) for all pairs (up to a relative
// tolerance); the FRT construction guarantees it, and tests call this.
func (e *Embedding) Dominates() bool {
	n := e.base.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if e.Dist(u, v) < e.base.Dist(u, v)*(1-1e-9) {
				return false
			}
		}
	}
	return true
}

// Ensemble is a collection of independent HST samples over one metric,
// playing the role of the trees T_1..T_r of Lemma 6.
type Ensemble struct {
	Trees []*Embedding
	// StretchBound is the stretch threshold defining tree cores.
	StretchBound float64
}

// BuildEnsemble samples r independent HSTs. A stretchBound ≤ 0 defaults to
// 24·ln(n+1): an O(log n) threshold calibrated so that, matching Lemma 6's
// statement, roughly 9/10 of the trees are good for each node (the
// per-node quantity is the maximum stretch over all partners, which needs
// a larger constant than the FRT expected per-pair stretch).
//
// The trees are built concurrently; determinism is preserved by drawing one
// seed per tree from rng up front, so equal rng states yield equal
// ensembles regardless of scheduling.
func BuildEnsemble(base geom.Metric, r int, stretchBound float64, rng *rand.Rand) (*Ensemble, error) {
	return BuildEnsembleObserved(base, r, stretchBound, rng, nil)
}

// BuildEnsembleObserved is BuildEnsemble reporting each tree build as a
// span "pipeline/hst-build" on the collector, so the r concurrent
// builds aggregate into one per-tree latency distribution. It takes the
// collector directly rather than a context: the per-tree goroutines are
// the instrumented unit, and a nil collector keeps them span-free.
//
// Validation runs before any seed is drawn from rng: an error return
// leaves the caller's rng stream exactly where it was, so retrying with
// fixed arguments reproduces the same ensemble.
func BuildEnsembleObserved(base geom.Metric, r int, stretchBound float64, rng *rand.Rand, col *obs.Collector) (*Ensemble, error) {
	if r <= 0 {
		return nil, fmt.Errorf("hst: need r ≥ 1 trees, got %d", r)
	}
	if base.N() == 0 {
		return nil, errors.New("hst: empty metric")
	}
	if stretchBound <= 0 {
		stretchBound = 24 * math.Log(float64(base.N())+1)
	}
	seeds := make([]int64, r)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	// The metric extremes are tree-independent; computing the two O(n²)
	// scans once here instead of inside every Build is an r-fold saving.
	minD, maxD := geom.MinDist(base), geom.MaxDist(base)
	trees := make([]*Embedding, r)
	errs := make([]error, r)
	// Bounded fan-out: each concurrent build holds O(n·depth) scratch, so
	// the pool caps peak memory at GOMAXPROCS builds instead of r.
	par.ForEach(r, func(i int) {
		sp := col.StartSpan("pipeline/hst-build")
		defer sp.End()
		trees[i], errs[i] = build(base, rand.New(rand.NewSource(seeds[i])), minD, maxD)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Ensemble{Trees: trees, StretchBound: stretchBound}, nil
}

// Core returns the nodes of tree t whose stretch is within the ensemble's
// bound (the core C_t of Lemma 6).
func (en *Ensemble) Core(t int) []int {
	var core []int
	tree := en.Trees[t]
	violated := tree.violatedMask(en.StretchBound)
	for v := 0; v < tree.N(); v++ {
		if !violated[v] {
			core = append(core, v)
		}
	}
	return core
}

// GoodTreeFraction returns, for node v, the fraction of trees whose core
// contains v. Lemma 6 guarantees this is ≥ 9/10 for suitable parameters.
func (en *Ensemble) GoodTreeFraction(v int) float64 {
	var good int
	for _, t := range en.Trees {
		if t.StretchWithin(v, en.StretchBound) {
			good++
		}
	}
	return float64(good) / float64(len(en.Trees))
}

// BestCoreTree returns the index of the tree whose core covers the most
// nodes of the given set, together with the covered subset (Proposition 7's
// constructive counterpart).
func (en *Ensemble) BestCoreTree(set []int) (int, []int) {
	// One stretch scan per (tree, node) pair is the pipeline's hottest
	// loop at scale; the trees are independent, so fan them out — bounded
	// at GOMAXPROCS, because each in-flight scan holds an O(n) mask.
	covered := make([][]int, len(en.Trees))
	par.ForEach(len(en.Trees), func(t int) {
		covered[t] = en.coveredOf(t, set)
	})
	bestTree, bestCovered := 0, []int(nil)
	for t := range covered {
		if len(covered[t]) > len(bestCovered) {
			bestTree, bestCovered = t, covered[t]
		}
	}
	return bestTree, bestCovered
}

// coveredOf returns the members of set inside tree t's core, via one
// exact violatedMask scan.
func (en *Ensemble) coveredOf(t int, set []int) []int {
	violated := en.Trees[t].violatedMask(en.StretchBound)
	covered := make([]int, 0, len(set))
	for _, v := range set {
		if !violated[v] {
			covered = append(covered, v)
		}
	}
	return covered
}

// Sampling parameters of BestCoreTreeSampled: below the threshold the
// exact scan is cheap enough to keep; above it each tree is scored on a
// fixed-size rng-drawn subset.
const (
	coreSampleThreshold = 4096
	coreSampleSize      = 1024
)

// BestCoreTreeSampled is BestCoreTree with the full (tree × node)
// stretch scan — the measured hot spot of the pipeline at scale —
// replaced, for len(set) ≥ 4096, by a two-round tournament: every tree
// is scored by core coverage of a 1024-node sample drawn from rng, and
// only the top two candidates pay the exact violatedMask rescan
// (exactness fallback). The returned covered subset is always exact for
// the returned tree. The sample is drawn from rng before any concurrent
// work, so equal rng states give equal results regardless of
// GOMAXPROCS; below the threshold rng is not consumed at all and the
// result equals BestCoreTree's.
func (en *Ensemble) BestCoreTreeSampled(set []int, rng *rand.Rand) (int, []int) {
	if len(set) < coreSampleThreshold || len(en.Trees) <= 2 {
		return en.BestCoreTree(set)
	}
	// Partial Fisher–Yates over a copy: the first coreSampleSize entries
	// become a uniform sample without replacement.
	sample := append([]int(nil), set...)
	for i := 0; i < coreSampleSize; i++ {
		j := i + rng.Intn(len(sample)-i)
		sample[i], sample[j] = sample[j], sample[i]
	}
	sample = sample[:coreSampleSize]
	counts := make([]int, len(en.Trees))
	par.ForEach(len(en.Trees), func(t int) {
		tree := en.Trees[t]
		good := 0
		for _, v := range sample {
			if tree.StretchWithin(v, en.StretchBound) {
				good++
			}
		}
		counts[t] = good
	})
	// Top two by sampled count; ties keep the lower tree index.
	first, second := 0, 1
	if counts[second] > counts[first] {
		first, second = second, first
	}
	for t := 2; t < len(counts); t++ {
		switch {
		case counts[t] > counts[first]:
			first, second = t, first
		case counts[t] > counts[second]:
			second = t
		}
	}
	finalists := [2]int{first, second}
	var exact [2][]int
	par.ForEach(len(finalists), func(k int) {
		exact[k] = en.coveredOf(finalists[k], set)
	})
	best := 0
	if len(exact[1]) > len(exact[0]) ||
		(len(exact[1]) == len(exact[0]) && finalists[1] < finalists[0]) {
		best = 1
	}
	return finalists[best], exact[best]
}

// ExplicitTree materializes the HST as an explicit edge-weighted tree whose
// first base.N() nodes are the metric's nodes (leaves) and whose remaining
// nodes are the internal clusters. It is the input for the centroid
// decomposition of Lemma 9.
func (e *Embedding) ExplicitTree() (*geom.Tree, error) {
	n := e.base.N()
	if n == 1 {
		return geom.NewTree(1)
	}
	depth := len(e.level)
	// Cluster ids are dense per level — the builder assigns them
	// 0,1,2,... in order of first appearance — so per-level slices index
	// cluster → explicit node directly, replacing the map-keyed
	// materialization that dominated stage 3 allocations at scale.
	// Level 0 clusters are the leaves themselves (nodes 0..n-1).
	nodeOf := make([][]int32, depth)
	next := n
	for i := 1; i < depth; i++ {
		lv := e.level[i]
		maxID := 0
		for _, id := range lv {
			if id > maxID {
				maxID = id
			}
		}
		ids := make([]int32, maxID+1)
		for k := range ids {
			ids[k] = -1
		}
		for _, id := range lv {
			if ids[id] < 0 {
				ids[id] = int32(next)
				next++
			}
		}
		nodeOf[i] = ids
	}
	t, err := geom.NewTree(next)
	if err != nil {
		return nil, err
	}
	// Edges: each cluster at level i-1 connects to its parent at level i
	// with weight equal to the level-i radius — one edge per child
	// cluster (all members of a child share the same parent; the family
	// is laminar).
	for i := 1; i < depth; i++ {
		lv := e.level[i]
		var added []bool
		if i > 1 {
			added = make([]bool, len(nodeOf[i-1]))
		}
		for u := 0; u < n; u++ {
			child := u
			if i > 1 {
				cid := e.level[i-1][u]
				if added[cid] {
					continue
				}
				added[cid] = true
				child = int(nodeOf[i-1][cid])
			}
			if err := t.AddEdge(child, int(nodeOf[i][lv[u]]), e.radii[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := t.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}
