// Package hst implements the tree-embedding machinery behind Lemma 6 of
// the paper (adapted from Gupta, Hajiaghayi and Räcke, "Oblivious network
// design"): randomized hierarchically separated trees in the style of
// Fakcharoenphol–Rao–Talwar whose shortest-path metric dominates the
// original metric, sampled O(log n) times so that for every node a
// constant fraction of the trees stretches all of its distances by at
// most a logarithmic factor (the node's "core" trees).
//
// Exported entry points:
//
//   - Build samples one Embedding (random permutation + random scale);
//     Embedding.Dist answers the HST metric, Embedding.ExplicitTree
//     materializes it as a geom.Tree for the centroid decomposition of
//     package treestar.
//   - BuildEnsemble samples r embeddings; Ensemble.BestCoreTree picks the
//     tree whose core covers the most nodes (Proposition 7), which is the
//     tree the Theorem 2 pipeline hands to SelectOnTree.
package hst
