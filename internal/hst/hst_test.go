package hst

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomPoints(r *rand.Rand, n int, side float64) geom.Metric {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64() * side, r.Float64() * side}
	}
	e, err := geom.NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	return e
}

func TestBuildSingleNode(t *testing.T) {
	l, _ := geom.NewLine([]float64{5})
	e, err := Build(l, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 1 {
		t.Fatalf("N = %d, want 1", e.N())
	}
	if e.Dist(0, 0) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestBuildRejectsCoincident(t *testing.T) {
	l, _ := geom.NewLine([]float64{1, 1})
	if _, err := Build(l, rand.New(rand.NewSource(1))); err == nil {
		t.Error("coincident nodes should be rejected")
	}
}

func TestDomination(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := randomPoints(rng, 40, 100)
	for trial := 0; trial < 5; trial++ {
		e, err := Build(base, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Dominates() {
			t.Fatal("HST does not dominate the base metric")
		}
	}
}

func TestTreeDistanceIsUltrametricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomPoints(r, 4+r.Intn(12), 50)
		e, err := Build(base, r)
		if err != nil {
			return false
		}
		n := base.N()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if e.Dist(i, j) > math.Max(e.Dist(i, k), e.Dist(k, j))+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestExpectedStretchLogarithmic: the average HST stretch over random trees
// stays within a generous O(log n) bound.
func TestExpectedStretchLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomPoints(rng, 32, 100)
	const trials = 20
	var sum float64
	var count int
	for trial := 0; trial < trials; trial++ {
		e, err := Build(base, rng)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < base.N(); u++ {
			for v := u + 1; v < base.N(); v++ {
				sum += e.Dist(u, v) / base.Dist(u, v)
				count++
			}
		}
	}
	avg := sum / float64(count)
	// FRT guarantees O(log n) ≈ 5 for n=32; allow a wide constant.
	if avg > 60 {
		t.Errorf("average stretch %g too large", avg)
	}
	if avg < 1 {
		t.Errorf("average stretch %g below 1 (domination broken)", avg)
	}
}

func TestExplicitTreeMatchesEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := randomPoints(rng, 20, 100)
	e, err := Build(base, rng)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := e.ExplicitTree()
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() < base.N() {
		t.Fatalf("explicit tree has %d nodes, fewer than %d leaves", tree.N(), base.N())
	}
	for u := 0; u < base.N(); u++ {
		for v := u + 1; v < base.N(); v++ {
			te := e.Dist(u, v)
			tt := tree.Dist(u, v)
			if math.Abs(te-tt) > 1e-9*(1+te) {
				t.Fatalf("tree distance (%d,%d): embedding %g vs explicit %g", u, v, te, tt)
			}
		}
	}
}

func TestExplicitTreeSingleNode(t *testing.T) {
	l, _ := geom.NewLine([]float64{3})
	e, err := Build(l, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := e.ExplicitTree()
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() != 1 {
		t.Errorf("tree N = %d, want 1", tree.N())
	}
}

func TestEnsembleCoreAndGoodFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomPoints(rng, 24, 100)
	en, err := BuildEnsemble(base, 16, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(en.Trees) != 16 {
		t.Fatalf("trees = %d, want 16", len(en.Trees))
	}
	if en.StretchBound <= 0 {
		t.Fatal("default stretch bound not set")
	}
	// Lemma 6's shape: on average, most trees are good for each node.
	var sum float64
	for v := 0; v < base.N(); v++ {
		sum += en.GoodTreeFraction(v)
	}
	if avg := sum / float64(base.N()); avg < 0.5 {
		t.Errorf("average good-tree fraction %g, want ≥ 0.5", avg)
	}
	// Core consistency: v in Core(t) iff stretch within bound.
	core := en.Core(0)
	inCore := make(map[int]bool)
	for _, v := range core {
		inCore[v] = true
	}
	for v := 0; v < base.N(); v++ {
		want := en.Trees[0].Stretch(v) <= en.StretchBound
		if inCore[v] != want {
			t.Errorf("core membership of %d inconsistent", v)
		}
	}
}

func TestBestCoreTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := randomPoints(rng, 16, 100)
	en, err := BuildEnsemble(base, 8, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, base.N())
	for i := range all {
		all[i] = i
	}
	ti, covered := en.BestCoreTree(all)
	if ti < 0 || ti >= 8 {
		t.Fatalf("tree index %d out of range", ti)
	}
	for _, other := range en.Trees {
		var c int
		for _, v := range all {
			if other.Stretch(v) <= en.StretchBound {
				c++
			}
		}
		if c > len(covered) {
			t.Error("BestCoreTree did not return the best tree")
		}
	}
}

func TestBuildEnsembleValidation(t *testing.T) {
	l, _ := geom.NewLine([]float64{0, 1})
	if _, err := BuildEnsemble(l, 0, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("r=0 should fail")
	}
}

// TestBuildEnsembleDeterministic: equal rng states produce identical
// ensembles despite the concurrent construction.
func TestBuildEnsembleDeterministic(t *testing.T) {
	base := randomPoints(rand.New(rand.NewSource(7)), 20, 100)
	a, err := BuildEnsemble(base, 6, 0, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEnsemble(base, 6, 0, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for ti := range a.Trees {
		for u := 0; u < base.N(); u++ {
			for v := u + 1; v < base.N(); v++ {
				if a.Trees[ti].Dist(u, v) != b.Trees[ti].Dist(u, v) {
					t.Fatalf("tree %d differs at (%d,%d)", ti, u, v)
				}
			}
		}
	}
}

// TestEmbeddingDistSymmetric: HST distances are symmetric and zero on the
// diagonal.
func TestEmbeddingDistSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := randomPoints(rng, 24, 100)
	e, err := Build(base, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < base.N(); u++ {
		if e.Dist(u, u) != 0 {
			t.Errorf("Dist(%d,%d) = %g", u, u, e.Dist(u, u))
		}
		for v := 0; v < base.N(); v++ {
			if e.Dist(u, v) != e.Dist(v, u) {
				t.Errorf("asymmetric HST distance (%d,%d)", u, v)
			}
		}
	}
}

// emptyMetric triggers BuildEnsembleObserved's n=0 validation without
// tripping the metric constructors' own guards.
type emptyMetric struct{}

func (emptyMetric) N() int                { return 0 }
func (emptyMetric) Dist(i, j int) float64 { return 0 }

// TestBuildEnsembleErrorLeavesRNGUntouched is the regression test for the
// rng error-path bug: a failing BuildEnsembleObserved used to draw the
// per-tree seeds before validating, silently advancing the caller's rng
// stream. Every validation error must now leave the stream exactly where
// it was.
func TestBuildEnsembleErrorLeavesRNGUntouched(t *testing.T) {
	cases := map[string]func(*rand.Rand) error{
		"empty metric": func(r *rand.Rand) error {
			_, err := BuildEnsembleObserved(emptyMetric{}, 4, 0, r, nil)
			return err
		},
		"r=0": func(r *rand.Rand) error {
			_, err := BuildEnsembleObserved(randomPoints(rand.New(rand.NewSource(1)), 4, 10), 0, 0, r, nil)
			return err
		},
	}
	for name, call := range cases {
		used := rand.New(rand.NewSource(99))
		fresh := rand.New(rand.NewSource(99))
		if err := call(used); err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		for i := 0; i < 16; i++ {
			if got, want := used.Int63(), fresh.Int63(); got != want {
				t.Fatalf("%s: rng stream diverged at draw %d after the error", name, i)
			}
		}
	}
}

// TestBestCoreTreeSampledSmallSetDelegates: below the sampling threshold
// the result equals BestCoreTree's and the rng is not consumed at all.
func TestBestCoreTreeSampledSmallSetDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomPoints(rng, 24, 100)
	en, err := BuildEnsemble(base, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, base.N())
	for i := range all {
		all[i] = i
	}
	wantTree, wantCov := en.BestCoreTree(all)
	sampled := rand.New(rand.NewSource(5))
	twin := rand.New(rand.NewSource(5))
	gotTree, gotCov := en.BestCoreTreeSampled(all, sampled)
	if gotTree != wantTree || len(gotCov) != len(wantCov) {
		t.Fatalf("sampled (%d, %d nodes) != exact (%d, %d nodes)", gotTree, len(gotCov), wantTree, len(wantCov))
	}
	for i := range gotCov {
		if gotCov[i] != wantCov[i] {
			t.Fatalf("covered[%d] = %d, want %d", i, gotCov[i], wantCov[i])
		}
	}
	for i := 0; i < 8; i++ {
		if sampled.Int63() != twin.Int63() {
			t.Fatal("small-set call consumed the rng")
		}
	}
}

// TestBestCoreTreeSampledLargeSet drives the sampling path (set larger
// than the threshold, duplicated node ids keep the metric small): the
// returned covered subset must be exact for the returned tree, and the
// result must be identical across GOMAXPROCS settings for equal rng
// states.
func TestBestCoreTreeSampledLargeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := randomPoints(rng, 48, 100)
	en, err := BuildEnsemble(base, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	set := make([]int, coreSampleThreshold+512)
	for i := range set {
		set[i] = i % base.N()
	}
	tree1, cov1 := en.BestCoreTreeSampled(set, rand.New(rand.NewSource(3)))
	want := en.coveredOf(tree1, set)
	if len(cov1) != len(want) {
		t.Fatalf("covered has %d nodes, exact rescan %d", len(cov1), len(want))
	}
	for i := range cov1 {
		if cov1[i] != want[i] {
			t.Fatalf("covered[%d] = %d, exact %d", i, cov1[i], want[i])
		}
	}
	old := runtime.GOMAXPROCS(4)
	tree2, cov2 := en.BestCoreTreeSampled(set, rand.New(rand.NewSource(3)))
	runtime.GOMAXPROCS(old)
	if tree2 != tree1 || len(cov2) != len(cov1) {
		t.Fatalf("GOMAXPROCS=4 gave (%d, %d nodes), GOMAXPROCS=1 gave (%d, %d nodes)",
			tree2, len(cov2), tree1, len(cov1))
	}
	for i := range cov2 {
		if cov2[i] != cov1[i] {
			t.Fatalf("covered diverges at %d across GOMAXPROCS", i)
		}
	}
}
