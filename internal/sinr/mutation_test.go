package sinr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/problem"
)

// buildContendedValid builds a clustered instance and a hand-rolled valid
// schedule (one request per color), then checks that specific corruptions
// are detected by CheckSchedule. These mutation tests pin down that the
// validator cannot be fooled by the failure modes the algorithms could
// plausibly produce.
func buildContendedValid(t *testing.T) (*problem.Instance, *problem.Schedule, Model) {
	t.Helper()
	// Two overlapping unit pairs very close together plus one far pair.
	l, err := geom.NewLine([]float64{0, 1, 0.4, 1.4, 200, 201})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(l, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Alpha: 3, Beta: 1}
	s := problem.NewSchedule(3)
	s.Colors = []int{0, 1, 0} // the near pairs are separated; far pair joins 0
	s.Powers = []float64{1, 1, 1}
	if err := m.CheckSchedule(in, Bidirectional, s); err != nil {
		t.Fatalf("fixture schedule should be valid: %v", err)
	}
	return in, s, m
}

func TestMutationMergeContendedColors(t *testing.T) {
	in, s, m := buildContendedValid(t)
	s.Colors[1] = 0 // force the two overlapping pairs into one slot
	if err := m.CheckSchedule(in, Bidirectional, s); err == nil {
		t.Error("merging contended colors must be detected")
	}
}

func TestMutationWeakenPower(t *testing.T) {
	in, s, m := buildContendedValid(t)
	// Pair 2 shares color 0 with pair 0; starving pair 2's power by 10^9
	// sinks its SINR against pair 0's interference.
	s.Powers[2] = 1e-9
	if err := m.CheckSchedule(in, Bidirectional, s); err == nil {
		t.Error("starved power must be detected")
	}
}

func TestMutationNegativePower(t *testing.T) {
	in, s, m := buildContendedValid(t)
	s.Powers[0] = -1
	if err := m.CheckSchedule(in, Bidirectional, s); err == nil {
		t.Error("negative power must be detected")
	}
}

func TestMutationUncolor(t *testing.T) {
	in, s, m := buildContendedValid(t)
	s.Colors[0] = -1
	if err := m.CheckSchedule(in, Bidirectional, s); err == nil {
		t.Error("unassigned request must be detected")
	}
}

func TestMutationEmptyColorClass(t *testing.T) {
	in, s, m := buildContendedValid(t)
	s.Colors = []int{0, 2, 0} // color 1 is empty
	if err := m.CheckSchedule(in, Bidirectional, s); err == nil {
		t.Error("empty color class must be detected")
	}
}

// TestMutationRandomizedBoostIsFine: corruptions that only increase a
// request's own power while it sits alone in its color must stay valid —
// guarding against an over-strict validator.
func TestMutationRandomizedBoostIsFine(t *testing.T) {
	in, s, m := buildContendedValid(t)
	rng := rand.New(rand.NewSource(1))
	s.Colors = []int{0, 1, 2} // everyone alone
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(3)
		s.Powers[i] *= 1 + rng.Float64()*10
		if err := m.CheckSchedule(in, Bidirectional, s); err != nil {
			t.Fatalf("solo power boost flagged as invalid: %v", err)
		}
	}
}
